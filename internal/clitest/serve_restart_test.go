package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// serveProc is one running fexserve binary plus the address it bound.
type serveProc struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:PORT
}

// startServe launches fexserve with the given extra flags on an
// ephemeral port and waits for the "listening" log line to learn which
// port the kernel assigned.
func startServe(t *testing.T, bin string, extra ...string) *serveProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting fexserve: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	// The bound address is logged as `msg=listening addr=127.0.0.1:PORT`
	// (slog text format). Scan until it appears, then keep draining the
	// pipe in the background so the server never blocks on logging.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, "msg=listening") {
				continue
			}
			for _, f := range strings.Fields(line) {
				if a, ok := strings.CutPrefix(f, "addr="); ok {
					addrCh <- a
				}
			}
			break
		}
		_, _ = io.Copy(io.Discard, stderr)
	}()

	select {
	case addr := <-addrCh:
		p := &serveProc{cmd: cmd, base: "http://" + addr}
		waitReady(t, p.base)
		return p
	case <-time.After(20 * time.Second):
		t.Fatal("fexserve never logged its listening address")
		return nil
	}
}

// sigterm sends SIGTERM and waits for a clean (code 0) exit — the drain
// path under test: flush and fsync the WAL, checkpoint, close.
func (p *serveProc) sigterm(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("fexserve exited uncleanly after SIGTERM: %v", err)
	}
	p.cmd.Process = nil
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("fexserve never became ready")
}

func serveJSON(t *testing.T, method, url string, payload, out any) int {
	t.Helper()
	var body io.Reader
	if payload != nil {
		raw, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s: %v\n%s", method, url, err, raw)
		}
	}
	return resp.StatusCode
}

// TestServeRestartPersistence is the drain-gap regression test: start
// fexserve with -data-dir, mutate the catalog over HTTP, SIGTERM it,
// restart on the same directory, and verify the surviving process
// serves exactly the acknowledged mutations — the proof that the
// shutdown path checkpointed (or at least fsynced) the WAL before exit.
func TestServeRestartPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "fexserve")
	dataDir := dir + "/state"

	s1 := startServe(t, bin, "-dim", "4", "-data-dir", dataDir)
	for i, v := range [][]float64{{5, 0, 0, 0}, {0, 5, 0, 0}, {0, 0, 5, 0}} {
		var got struct {
			ID int `json:"id"`
		}
		if code := serveJSON(t, http.MethodPost, s1.base+"/v1/items",
			map[string]any{"vector": v}, &got); code != http.StatusCreated {
			t.Fatalf("add: status %d", code)
		}
		if got.ID != i {
			t.Fatalf("add assigned id %d, want %d", got.ID, i)
		}
	}
	if code := serveJSON(t, http.MethodDelete, s1.base+"/v1/items/1", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	s1.sigterm(t)

	s2 := startServe(t, bin, "-dim", "4", "-data-dir", dataDir)
	var info struct {
		Items int `json:"items"`
	}
	if code := serveJSON(t, http.MethodGet, s2.base+"/v1/info", nil, &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Items != 2 {
		t.Fatalf("restarted catalog has %d items, want 2 (3 adds - 1 delete)", info.Items)
	}

	var sr struct {
		Results []struct {
			ID int `json:"id"`
		} `json:"results"`
	}
	if code := serveJSON(t, http.MethodPost, s2.base+"/v1/search",
		map[string]any{"vector": []float64{1, 0, 0.5, 0}, "k": 3}, &sr); code != http.StatusOK {
		t.Fatalf("search: status %d", code)
	}
	if len(sr.Results) != 2 {
		t.Fatalf("search returned %d results, want 2 (deleted item must stay gone)", len(sr.Results))
	}
	if sr.Results[0].ID != 0 || sr.Results[1].ID != 2 {
		t.Fatalf("search ranking %v, want ids [0 2]", sr.Results)
	}

	// The restart loaded the SIGTERM checkpoint: load time is exposed and
	// nothing needed replaying.
	resp, err := http.Get(s2.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	metrics := string(raw)
	if !metricPositive(metrics, "fexipro_snapshot_load_seconds") {
		t.Fatalf("metrics missing positive fexipro_snapshot_load_seconds:\n%s", metrics)
	}
	if got := metricSample(metrics, "fexipro_wal_replays_total"); got != "0" {
		t.Fatalf("fexipro_wal_replays_total = %q, want 0 after a checkpointing shutdown", got)
	}
	s2.sigterm(t)
}

// metricSample returns the value of the first sample of the named
// family ("" if absent).
func metricSample(body, name string) string {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			return fields[len(fields)-1]
		}
	}
	return ""
}

func metricPositive(body, name string) bool {
	s := metricSample(body, name)
	if s == "" {
		return false
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		return false
	}
	return v > 0
}
