// Package clitest builds the command-line tools and exercises them end
// to end: generate factors with fexgen, query them with fexquery, and
// regenerate a paper exhibit with fexbench.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/<name> into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "fexipro/cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest → repo root
}

func run(t *testing.T, bin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout: %s\nstderr: %s", bin, args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestGenQueryPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	fexgen := buildTool(t, dir, "fexgen")
	fexquery := buildTool(t, dir, "fexquery")

	out, _ := run(t, fexgen, "-profile", "movielens", "-items", "500", "-queries", "5", "-dim", "16", "-out", dir)
	if !strings.Contains(out, "items.fxp") {
		t.Fatalf("fexgen output: %s", out)
	}

	// Exact methods must agree on the top-1 line for every query.
	var first string
	for _, method := range []string{"fexipro", "naive", "ssl", "balltree"} {
		qout, _ := run(t, fexquery,
			"-items", filepath.Join(dir, "items.fxp"),
			"-queries", filepath.Join(dir, "queries.fxp"),
			"-k", "1", "-method", method)
		if first == "" {
			first = qout
			if !strings.Contains(first, "query 0:") {
				t.Fatalf("unexpected fexquery output: %s", first)
			}
			continue
		}
		if qout != first {
			t.Fatalf("method %s disagrees:\n%s\nvs\n%s", method, qout, first)
		}
	}
}

func TestGenTrainPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	fexgen := buildTool(t, dir, "fexgen")
	out, _ := run(t, fexgen, "-train", "-users", "120", "-trainitems", "80", "-dim", "6",
		"-peruser", "20", "-out", dir)
	if !strings.Contains(out, "training RMSE") {
		t.Fatalf("fexgen -train output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "items.fxp")); err != nil {
		t.Fatal(err)
	}
}

func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	fexbench := buildTool(t, dir, "fexbench")

	out, _ := run(t, fexbench, "-list")
	for _, id := range []string{"table3", "table8", "fig20"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list missing %s:\n%s", id, out)
		}
	}

	out, _ = run(t, fexbench, "-exp", "table3", "-profiles", "netflix", "-items", "800", "-queries", "5")
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "netflix") {
		t.Fatalf("table3 output:\n%s", out)
	}
}

func TestQueryStdin(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	fexgen := buildTool(t, dir, "fexgen")
	fexquery := buildTool(t, dir, "fexquery")
	run(t, fexgen, "-profile", "yelp", "-items", "200", "-queries", "1", "-dim", "4", "-out", dir)

	cmd := exec.Command(fexquery, "-items", filepath.Join(dir, "items.fxp"), "-stdin", "-k", "2")
	cmd.Stdin = strings.NewReader("0.5,-0.25,1.0,0.0\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("fexquery -stdin: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "query 0:") {
		t.Fatalf("stdin output: %s", out)
	}
}
