package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/faults"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

// TestE2EChaos is the race-detector end-to-end exercise: concurrent
// searchers, threshold scanners, mutators, and metrics scrapers hammer
// one guarded server while the fault registry injects call latency,
// call failures, and per-item scan latency. The test asserts:
//
//   - no deadlock (bounded by the test timeout; every client returns)
//   - every response is one of the expected statuses, and every non-2xx
//     body carries a machine-readable code
//   - cumulative *_total metrics are monotone across mid-run scrapes
//   - the request-total counters account for every request we sent
//
// CI runs this file under -race (the race job); the assertions
// themselves are scheduler-independent.
func TestE2EChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const dim = 8
	items := vec.NewMatrix(300, dim)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}

	reg := faults.NewRegistry(23)
	reg.Enable(faults.SiteServerSearch, faults.Plan{
		CallLatency:     200 * time.Microsecond,
		FailEveryNCalls: 17, // sprinkle 500 "injected" among the 200s
	})
	reg.Enable(faults.SiteServerMutate, faults.Plan{FailEveryNCalls: 13})
	reg.Enable(faults.SiteScan, faults.Plan{
		ItemLatency:      20 * time.Microsecond,
		ItemLatencyEvery: 64,
	})

	srv, err := server.NewWithConfig(items, core.Options{SVD: true, Int: true, Reduction: true}, server.Config{
		MaxConcurrent:  4,
		RequestTimeout: 250 * time.Millisecond,
		Faults:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	allowed := map[int]bool{200: true, 201: true, 204: true, 400: true, 404: true, 429: true, 500: true, 504: true}

	var (
		mu       sync.Mutex
		statuses = map[int]int{}
		issued   int // requests to guarded /v1/ routes
	)
	record := func(resp *http.Response, body []byte) {
		mu.Lock()
		statuses[resp.StatusCode]++
		issued++
		mu.Unlock()
		if !allowed[resp.StatusCode] {
			t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
		}
		if resp.StatusCode >= 400 {
			var e errorBody
			if err := json.Unmarshal(body, &e); err != nil || e.Code == "" {
				t.Errorf("status %d body lacks error code: %s", resp.StatusCode, body)
			}
		}
	}
	do := func(method, path string, payload any) {
		var rdr io.Reader
		if payload != nil {
			raw, err := json.Marshal(payload)
			if err != nil {
				t.Error(err)
				return
			}
			rdr = bytes.NewReader(raw)
		}
		req, err := http.NewRequest(method, ts.URL+path, rdr)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("%s %s: %v", method, path, err)
			return
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		record(resp, body)
	}
	randVec := func(rng *rand.Rand) []float64 {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		return v
	}

	// scrapeTotals parses the *_total metric lines off /metrics.
	scrapeTotals := func() map[string]float64 {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		totals := map[string]float64{}
		for _, line := range strings.Split(string(raw), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				continue
			}
			name := line[:sp]
			if !strings.Contains(name, "_total") {
				continue
			}
			var v float64
			if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err == nil {
				totals[name] = v
			}
		}
		return totals
	}

	const perWorker = 40
	// One constant-seeded RNG per worker (each goroutine owns exactly
	// one, so no locking), keeping chaos-run failures reproducible.
	searcherRNGs := []*rand.Rand{
		rand.New(rand.NewSource(101)),
		rand.New(rand.NewSource(102)),
		rand.New(rand.NewSource(103)),
		rand.New(rand.NewSource(104)),
	}
	mutatorRNGs := []*rand.Rand{
		rand.New(rand.NewSource(201)),
		rand.New(rand.NewSource(202)),
	}
	searchers, mutators := len(searcherRNGs), len(mutatorRNGs)
	var wg sync.WaitGroup
	for w := 0; w < searchers; w++ {
		rng := searcherRNGs[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%5 == 4 {
					thr := rng.NormFloat64()
					do("POST", "/v1/above", map[string]any{"vector": randVec(rng), "threshold": thr})
				} else {
					do("POST", "/v1/search", map[string]any{"vector": randVec(rng), "k": 1 + rng.Intn(10)})
				}
			}
		}()
	}
	for w := 0; w < mutators; w++ {
		rng := mutatorRNGs[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%3 == 2 {
					do("DELETE", fmt.Sprintf("/v1/items/%d", rng.Intn(400)), nil)
				} else {
					do("POST", "/v1/items", map[string]any{"vector": randVec(rng)})
				}
			}
		}()
	}
	// A scraper thread asserts monotonicity of every *_total while the
	// chaos runs; /metrics is unguarded so it must never shed or block.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		prev := scrapeTotals()
		for {
			select {
			case <-stopScrape:
				return
			case <-time.After(5 * time.Millisecond):
			}
			cur := scrapeTotals()
			for name, was := range prev {
				if now, ok := cur[name]; ok && now < was {
					t.Errorf("counter %s went backwards: %v -> %v", name, was, now)
				}
			}
			prev = cur
		}
	}()

	waitCh := make(chan struct{})
	go func() { wg.Wait(); close(waitCh) }()
	select {
	case <-waitCh:
	case <-time.After(60 * time.Second):
		t.Fatal("e2e chaos deadlocked: clients did not finish")
	}
	close(stopScrape)
	<-scrapeDone

	mu.Lock()
	defer mu.Unlock()
	want := searchers*perWorker + mutators*perWorker
	if issued != want {
		t.Fatalf("recorded %d responses, want %d", issued, want)
	}
	if statuses[200] == 0 || statuses[201] == 0 {
		t.Fatalf("chaos produced no successes: %v", statuses)
	}
	if statuses[500] == 0 {
		t.Fatalf("FailEveryNCalls never surfaced as 500: %v", statuses)
	}

	// The request counter accounts for every guarded request we issued
	// (health/metrics/readyz land on other route labels).
	totals := scrapeTotals()
	var reqTotal float64
	for name, v := range totals {
		if strings.HasPrefix(name, "fexserve_http_requests_total") && strings.Contains(name, `route="/v1/`) {
			reqTotal += v
		}
	}
	if int(reqTotal) < want {
		t.Fatalf("fexserve_http_requests_total across /v1/ routes = %v, want ≥ %d", reqTotal, want)
	}

	// Fault accounting: the registry saw the traffic it injected into.
	counts := reg.Counts()
	if counts[faults.SiteServerSearch].Calls == 0 || counts[faults.SiteServerMutate].Calls == 0 {
		t.Fatalf("fault sites saw no calls: %+v", counts)
	}
}
