package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/obs"
	"fexipro/internal/snap"
	"fexipro/internal/vec"
)

// Persistence (DESIGN.md §15). With Config.DataDir set, the server
// keeps its dynamic index durable across restarts:
//
//   - Boot loads <dir>/current.snap and replays <dir>/dyn.wal through
//     core.OpenRecovered, skipping the O(n·d²) preprocessing build; a
//     fresh directory builds from the initial matrix and checkpoints
//     immediately so the NEXT boot skips it.
//   - Every mutation handler applies the change to the in-memory index
//     and then appends one WAL record, all inside the same s.mu
//     critical section, before acknowledging the request. Replay order
//     therefore matches apply order, and a crash loses at most
//     unacknowledged work (plus, with WALSyncEvery > 1, the unsynced
//     tail — the operator opted into that window).
//   - Checkpoint serializes the index to a temp file, fsyncs, renames
//     over current.snap, and truncates the WAL; the snapshot's lastSeq
//     makes the rename-vs-truncate crash window safe (replay skips
//     records the snapshot already contains).
//
// ErrReloading is returned (as a 503) for mutations that arrive while a
// background Reload is building the replacement index.
var ErrReloading = errors.New("server: catalog reload in progress")

// persistBoot carries what openPersistence learned so NewWithConfig can
// surface it as metrics once the registry exists.
type persistBoot struct {
	wal      *snap.WAL
	loaded   bool // true: loaded from snapshot; false: built fresh + checkpointed
	loadDur  time.Duration
	saveDur  time.Duration
	replayed int
}

// openPersistence opens (or initializes) the data directory and returns
// the serving index. A dimension mismatch between the directory and the
// -items/-dim flags is a configuration error, not a rebuild trigger.
func openPersistence(cfg Config, initial *vec.Matrix, opts core.Options, shards int) (*core.DynamicIndex, *persistBoot, error) {
	syncEvery := cfg.WALSyncEvery
	if syncEvery < 1 {
		syncEvery = 1
	}
	b := &persistBoot{}
	start := time.Now()
	rec, err := core.OpenRecovered(context.Background(), cfg.DataDir, cfg.SearchWorkers, syncEvery)
	switch {
	case err == nil:
		b.loadDur = time.Since(start)
		b.replayed = rec.Replayed
		b.wal = rec.WAL
		b.loaded = true
		if initial != nil && initial.Cols != rec.Index.Dim() {
			_ = rec.WAL.Close()
			return nil, nil, fmt.Errorf("server: data dir %q holds a %d-dimensional index, flags say %d",
				cfg.DataDir, rec.Index.Dim(), initial.Cols)
		}
		return rec.Index, b, nil
	case errors.Is(err, core.ErrNoSnapshot):
		// First boot on an empty directory: build from the initial
		// matrix, then checkpoint so restarts load instead of rebuilding.
		if mkErr := os.MkdirAll(cfg.DataDir, 0o755); mkErr != nil {
			return nil, nil, fmt.Errorf("server: creating data dir: %w", mkErr)
		}
		idx, buildErr := core.NewDynamicIndexSharded(initial, opts, 0, shards, cfg.SearchWorkers)
		if buildErr != nil {
			return nil, nil, buildErr
		}
		saveStart := time.Now()
		if saveErr := core.WriteSnapshotDir(cfg.DataDir, idx, 0); saveErr != nil {
			return nil, nil, saveErr
		}
		b.saveDur = time.Since(saveStart)
		wal, _, walErr := snap.OpenWAL(filepath.Join(cfg.DataDir, core.WALFile), idx.Dim(), syncEvery, 0)
		if walErr != nil {
			return nil, nil, walErr
		}
		b.wal = wal
		return idx, b, nil
	default:
		return nil, nil, fmt.Errorf("server: recovering %q: %w", cfg.DataDir, err)
	}
}

// logMutationLocked appends one acknowledged mutation to the WAL and
// triggers the periodic checkpoint. Caller holds s.mu and has already
// applied the mutation to the in-memory index; a WAL failure is
// returned in err so the handler answers 500 (the mutation is then NOT
// acknowledged, and the next checkpoint re-converges the durable state
// with memory by snapshotting the full index). A failed periodic
// checkpoint is reported in ckpt separately — the mutation itself is
// durable in the WAL, so it is an operational problem for the handler
// to log after releasing s.mu, not a request failure.
func (s *Server) logMutationLocked(op snap.WALOp, id int, item []float64) (ckpt, err error) {
	if s.wal == nil {
		return nil, nil
	}
	if _, err := s.wal.Append(op, int64(id), item); err != nil {
		return nil, fmt.Errorf("wal append: %w", err)
	}
	s.walRecords.Inc()
	s.sinceCheckpoint++
	if s.checkpointEvery > 0 && s.sinceCheckpoint >= s.checkpointEvery {
		ckpt = s.checkpointLocked()
	}
	return ckpt, nil
}

// Checkpoint serializes the current index to the data directory and
// truncates the WAL. A no-op without Config.DataDir. fexserve calls
// this on SIGTERM (after draining) and after -checkpoint-every
// acknowledged mutations.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Server) checkpointLocked() error {
	if s.wal == nil {
		return nil
	}
	lastSeq := s.wal.NextSeq() - 1
	start := time.Now()
	// Snapshot + WAL truncation must exclude mutations, and the index is
	// single-writer by design; the write is a bounded serialization of
	// the in-memory state, same order of work as one shard rebuild.
	//lint:ignore lockhold checkpoint must atomically capture the index + WAL seq (DESIGN.md §15)
	if err := core.WriteSnapshotDir(s.dataDir, s.idx, lastSeq); err != nil {
		return fmt.Errorf("writing snapshot: %w", err)
	}
	s.snapSave.Set(time.Since(start).Seconds())
	if err := s.wal.Reset(lastSeq); err != nil {
		return fmt.Errorf("resetting wal: %w", err)
	}
	s.sinceCheckpoint = 0
	// The planner's learned cost calibration rides along with every
	// checkpoint (plan.go): cheap to write, and a restart then resumes
	// routing with converged coefficients instead of re-warming.
	if err := s.savePlanCalibrationLocked(); err != nil {
		return fmt.Errorf("writing plan calibration: %w", err)
	}
	return nil
}

// ClosePersistence fsyncs and closes the WAL. The server must not
// acknowledge further mutations afterwards; fexserve calls it after the
// final checkpoint on shutdown.
func (s *Server) ClosePersistence() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// Reload swaps in a freshly built index over a new item matrix with
// zero read downtime. The build — the expensive part — runs on the
// caller's goroutine WITHOUT holding s.mu, so searches keep answering
// on the old index throughout; only the O(1) pointer swap and the
// epoch checkpoint run under the lock. Mutations arriving during the
// build are rejected with 503 (ErrReloading) rather than acknowledged
// against a catalog that is about to be replaced wholesale: the
// no-acknowledged-mutation-lost invariant is kept by refusing the ack,
// not by replaying writes across epochs. The new matrix must keep the
// serving dimensionality.
func (s *Server) Reload(items *vec.Matrix, opts core.Options) error {
	if items.Cols != s.dim {
		return fmt.Errorf("server: reload matrix has %d dims, index serves %d", items.Cols, s.dim)
	}
	if !s.reloading.CompareAndSwap(false, true) {
		return ErrReloading
	}
	defer s.reloading.Store(false)

	shards := s.cfg.Shards
	if shards < 1 {
		shards = 1
	}
	idx, err := core.NewDynamicIndexSharded(items, opts, 0, shards, s.cfg.SearchWorkers)
	if err != nil {
		return err
	}
	if idx.Shards() > 1 {
		idx.SetShardObserver(obs.ShardScanObserver(s.reg, opts.Variant()))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx = idx
	// The planner's candidates close over the replaced index; rebuild
	// them over the new catalog, carrying the learned calibration across
	// the epoch (the cost coefficients describe the methods, not the
	// items, so they stay valid — and SizeFn re-reads the new Len).
	if s.planner != nil {
		cal := s.planner.Calibration()
		if err := s.initPlannerLocked(opts); err != nil {
			return err
		}
		s.planner.SetCalibration(cal)
	}
	s.items.Set(float64(idx.Len()))
	// New epoch: the snapshot now holds the replacement catalog and the
	// WAL restarts empty. Pre-reload records are superseded by design.
	return s.checkpointLocked()
}

// Reloading reports whether a background Reload is currently building.
func (s *Server) Reloading() bool { return s.reloading.Load() }
