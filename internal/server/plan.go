package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"fexipro/internal/core"
	"fexipro/internal/method"
	"fexipro/internal/obs"
	"fexipro/internal/plan"
)

// Query planning (DESIGN.md §16). With Config.Method == "auto" the
// server answers /v1/search through a cost-based planner instead of
// always hitting the FEXIPRO index: per query it predicts the cost of
// each exact candidate — the dynamic index (cheap per item after its
// pruning cascade, but transform overhead per query) and an exhaustive
// scan of the live catalog (no setup, every inner product computed) —
// and routes to the cheaper one, calibrating predictions online from
// observed latencies. Both candidates are exact over the same catalog,
// so routing never changes results, only latency. Decisions surface as
// fexipro_plan_decisions_total{method,reason}, per-method predicted/
// observed gauges, plan.method/plan.reason span attributes on traced
// queries, and the GET /v1/plan summary. With DataDir set, the learned
// calibration is checkpointed to plan.snap (fexplan/v1) alongside the
// index snapshot and reloaded at boot, so a restart resumes calibrated.

// methodAuto is the Config.Method value that enables the planner.
const methodAuto = "auto"

// validateMethod canonicalizes Config.Method.
func validateMethod(m string) (string, error) {
	switch strings.ToLower(m) {
	case "", "fexipro":
		return "fexipro", nil
	case methodAuto:
		return methodAuto, nil
	}
	return "", fmt.Errorf("server: unknown method %q (want \"fexipro\" or \"auto\")", m)
}

// initPlannerLocked builds (or rebuilds, after Reload) the planner over
// the CURRENT s.idx. The candidate pool is the serving FEXIPRO variant
// plus a live-catalog exhaustive scan; cost priors come from the method
// registry and are corrected online. Callers hold s.mu or are still
// single-goroutine (NewWithConfig).
func (s *Server) initPlannerLocked(opts core.Options) error {
	variant := opts.Variant()
	idxCost := method.CostModel{Setup: 6e-6, PerItem: 5e-10, PerDim: 1.1e-9, PrunePrior: 0.5}
	if d, ok := method.Lookup(variant); ok {
		idxCost = d.Cost
	}
	naive, ok := method.Lookup("Naive")
	if !ok {
		return fmt.Errorf("server: method registry has no Naive descriptor")
	}
	idx := s.idx
	cands := []plan.Candidate{
		{Name: variant, Searcher: idx, Cost: idxCost, Exact: true},
		{Name: naive.Name, Searcher: core.NewLiveScan(idx), Cost: naive.Cost, Exact: true},
	}
	p, err := plan.New(cands, plan.Options{
		D:      idx.Dim(),
		SizeFn: idx.Len, // the live catalog grows and shrinks under mutations
		Shards: idx.Shards(), Workers: s.cfg.SearchWorkers,
		OnDecision: s.notePlanDecision,
	})
	if err != nil {
		return err
	}
	s.planner = p
	return nil
}

// notePlanDecision exports one routing decision to the metrics
// registry. Counter/gauge handles are looked up per call: the label set
// is tiny (candidates × 3 reasons) and the registry interns them.
func (s *Server) notePlanDecision(d plan.Decision) {
	s.reg.Counter(obs.MetricPlanDecisions,
		"Planner routing decisions, by chosen method and reason (warmup/probe/cost).",
		obs.L("method", d.Method), obs.L("reason", d.Reason)).Inc()
	s.reg.Gauge(obs.MetricPlanPredicted,
		"Predicted per-query cost of the chosen method at decision time (seconds).",
		obs.L("method", d.Method)).Set(d.Predicted)
	s.reg.Gauge(obs.MetricPlanObserved,
		"Observed per-query cost EWMA of the chosen method (seconds).",
		obs.L("method", d.Method)).Set(d.Observed)
}

// planCalibrationPath is where the planner's learned coefficients live
// inside the data directory (a fexsnap/v1 container holding one
// fexplan/v1 section).
func (s *Server) planCalibrationPath() string {
	return filepath.Join(s.dataDir, plan.CalibrationFile)
}

// loadPlanCalibration primes the planner from a previously checkpointed
// plan.snap. Absence is normal (first boot); a corrupt or stale file is
// logged and ignored — calibration is an optimization, never worth
// failing a boot over, and the online EWMAs re-converge regardless.
func (s *Server) loadPlanCalibration() {
	if s.planner == nil || s.dataDir == "" {
		return
	}
	cal, err := plan.ReadFile(s.planCalibrationPath())
	switch {
	case err == nil:
		s.planner.SetCalibration(cal)
	case os.IsNotExist(err):
	default:
		s.log.Warn("ignoring unreadable plan calibration", "path", s.planCalibrationPath(), "err", err)
	}
}

// savePlanCalibrationLocked persists the planner's effective cost
// models during a checkpoint. Caller holds s.mu.
func (s *Server) savePlanCalibrationLocked() error {
	if s.planner == nil || s.dataDir == "" {
		return nil
	}
	return plan.WriteFile(s.planCalibrationPath(), s.planner.Calibration())
}

// planResponse is the GET /v1/plan body.
type planResponse struct {
	Mode        string            `json:"mode"`
	Candidates  []string          `json:"candidates"`
	Summary     plan.Summary      `json:"summary"`
	Calibration *plan.Calibration `json:"calibration"`
}

// handlePlan serves the planner's decision summary and calibration.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if s.planner == nil {
		httpErrorCode(w, http.StatusNotFound, "no_planner",
			"query planner not enabled; start fexserve with -method auto")
		return
	}
	s.mu.Lock()
	sum := s.planner.Summary()
	cal := s.planner.Calibration()
	cands := s.planner.Candidates()
	s.mu.Unlock()
	writeJSON(w, planResponse{Mode: methodAuto, Candidates: cands, Summary: sum, Calibration: cal})
}
