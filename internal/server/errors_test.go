package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/obs"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

// errorBody mirrors the JSON shape of every non-2xx answer.
type errorBody struct {
	Error   string `json:"error"`
	Code    string `json:"code"`
	TraceID string `json:"traceId"`
}

// TestErrorPaths is the table over every client-error mapping: each row
// sends one malformed request and checks the HTTP status, the stable
// machine-readable code, and that the JSON body carries the same trace
// ID as the response header.
func TestErrorPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := vec.NewMatrix(50, 4)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	srv, err := server.NewWithConfig(items, core.Options{SVD: true}, server.Config{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name       string
		method     string
		path       string
		body       string // raw JSON (or garbage)
		header     map[string]string
		wantStatus int
		wantCode   string
		wantSubstr string // substring of the error message
	}{
		{
			name:   "search invalid JSON",
			method: "POST", path: "/v1/search", body: `{"vector": [1,2`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "invalid JSON",
		},
		{
			name:   "search wrong JSON type",
			method: "POST", path: "/v1/above", body: `{"vector": "oops", "threshold": 1}`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "invalid JSON",
		},
		{
			name:   "search dim mismatch",
			method: "POST", path: "/v1/search", body: `{"vector": [1,2,3], "k": 5}`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "3 dims, index has 4",
		},
		{
			name:   "search overflowing literal",
			method: "POST", path: "/v1/search", body: `{"vector": [1e999,0,0,0], "k": 5}`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "invalid JSON",
		},
		{
			name:   "search k zero",
			method: "POST", path: "/v1/search", body: `{"vector": [1,2,3,4], "k": 0}`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "k must be positive",
		},
		{
			name:   "search k negative",
			method: "POST", path: "/v1/search", body: `{"vector": [1,2,3,4], "k": -3}`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "k must be positive",
		},
		{
			name:   "search k above MaxK",
			method: "POST", path: "/v1/search", body: `{"vector": [1,2,3,4], "k": 11}`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "exceeds maximum 10",
		},
		{
			name:   "above missing threshold",
			method: "POST", path: "/v1/above", body: `{"vector": [1,2,3,4]}`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "threshold",
		},
		{
			name:   "above dim mismatch",
			method: "POST", path: "/v1/above", body: `{"vector": [], "threshold": 1.5}`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "0 dims",
		},
		{
			name:   "add invalid JSON",
			method: "POST", path: "/v1/items", body: `not json at all`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "invalid JSON",
		},
		{
			name:   "add dim mismatch",
			method: "POST", path: "/v1/items", body: `{"vector": [1]}`,
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "1 dims, index has 4",
		},
		{
			name:   "delete non-numeric id",
			method: "DELETE", path: "/v1/items/abc", body: "",
			wantStatus: 400, wantCode: "bad_request", wantSubstr: "bad item id",
		},
		{
			name:   "delete unknown id",
			method: "DELETE", path: "/v1/items/99999", body: "",
			wantStatus: 404, wantCode: "not_found",
		},
		{
			name:   "timeout header non-numeric",
			method: "POST", path: "/v1/search", body: `{"vector": [1,2,3,4], "k": 5}`,
			header:     map[string]string{server.TimeoutHeader: "soon"},
			wantStatus: 400, wantCode: "bad_timeout", wantSubstr: "X-Timeout-Ms",
		},
		{
			name:   "timeout header zero",
			method: "POST", path: "/v1/search", body: `{"vector": [1,2,3,4], "k": 5}`,
			header:     map[string]string{server.TimeoutHeader: "0"},
			wantStatus: 400, wantCode: "bad_timeout",
		},
		{
			name:   "timeout header negative",
			method: "POST", path: "/v1/above", body: `{"vector": [1,2,3,4], "threshold": 1}`,
			header:     map[string]string{server.TimeoutHeader: "-20"},
			wantStatus: 400, wantCode: "bad_timeout",
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			for k, v := range tc.header {
				req.Header.Set(k, v)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			var body errorBody
			if err := json.Unmarshal(raw, &body); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, raw)
			}
			if body.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q (body %s)", body.Code, tc.wantCode, raw)
			}
			if body.Error == "" {
				t.Fatal("error message is empty")
			}
			if tc.wantSubstr != "" && !strings.Contains(body.Error, tc.wantSubstr) {
				t.Fatalf("error %q does not contain %q", body.Error, tc.wantSubstr)
			}
			headerTrace := resp.Header.Get(obs.TraceHeader)
			if headerTrace == "" {
				t.Fatal("response has no trace ID header")
			}
			if body.TraceID != headerTrace {
				t.Fatalf("body traceId %q != header %q", body.TraceID, headerTrace)
			}
		})
	}
}

// TestErrorsDoNotPoisonServer: after the full gauntlet of malformed
// requests, a well-formed search still answers 200 exact results.
func TestErrorsDoNotPoisonServer(t *testing.T) {
	ts, _ := newTestServer(t, 60, 4)
	bad := []string{
		`{"vector": [1,2`, `{"vector": [1], "k": 1}`, `{"vector": [1,2,3,4], "k": -1}`,
	}
	for _, b := range bad {
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("malformed request got %d, want 400", resp.StatusCode)
		}
	}
	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": []float64{1, 0, 0, 0}, "k": 3})
	if resp.StatusCode != 200 {
		t.Fatalf("good request after errors got %d", resp.StatusCode)
	}
	out := decode[searchResp](t, resp)
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
}
