package server_test

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/obs"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

// syncBuffer lets the test read slog output written by handler
// goroutines without a data race.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newObsServer(t *testing.T, n, d int, cfg server.Config) *httptest.Server {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	items := vec.NewMatrix(n, d)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	srv, err := server.NewWithConfig(items, core.Options{SVD: true, Int: true, Reduction: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// metricValue extracts one sample value from a Prometheus exposition.
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, sample+" "), 64)
			if err != nil {
				t.Fatalf("bad sample line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %q not found in exposition:\n%s", sample, body)
	return 0
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var b strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// TestMetricsAdvance is the end-to-end acceptance test: /metrics serves
// Prometheus text format with all five per-stage pruning counters and a
// per-variant latency histogram, and the counters strictly increase
// across repeated /v1/search and /v1/items calls.
func TestMetricsAdvance(t *testing.T) {
	ts := newObsServer(t, 400, 8, server.Config{})
	q := []float64{1, -0.5, 0.3, 0.7, -0.2, 0.1, 0.9, -1.1}

	search := func() {
		resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": q, "k": 5})
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search status %d", resp.StatusCode)
		}
	}

	search()
	body1 := scrape(t, ts.URL)

	// All five stage counters must be present under the variant label.
	for _, stage := range obs.Stages {
		sample := `fexipro_pruned_items_total{stage="` + stage + `",variant="F-SIR"}`
		metricValue(t, body1, sample)
	}
	// Latency histogram labeled by variant.
	if !strings.Contains(body1, `fexipro_search_latency_seconds_bucket{variant="F-SIR",le="`) {
		t.Fatalf("no per-variant latency histogram:\n%s", body1)
	}

	search()
	search()
	body2 := scrape(t, ts.URL)

	inc := func(sample string) {
		v1, v2 := metricValue(t, body1, sample), metricValue(t, body2, sample)
		if v2 <= v1 {
			t.Fatalf("%s did not advance: %v → %v", sample, v1, v2)
		}
	}
	inc(`fexipro_searches_total{variant="F-SIR"}`)
	inc(`fexipro_scanned_items_total{variant="F-SIR"}`)
	inc(`fexipro_search_latency_seconds_count{variant="F-SIR"}`)
	inc(`fexserve_http_requests_total{method="POST",route="/v1/search",status="2xx"}`)
	// The int-head bound is the workhorse stage for F-SIR on this data.
	inc(`fexipro_pruned_items_total{stage="int_head",variant="F-SIR"}`)

	// /v1/items advances the mutation counter and the items gauge.
	before := metricValue(t, scrape(t, ts.URL), "fexserve_index_items")
	resp := postJSON(t, ts.URL+"/v1/items", map[string]any{"vector": q})
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	after := scrape(t, ts.URL)
	if got := metricValue(t, after, "fexserve_items_added_total"); got != 1 {
		t.Fatalf("items added = %v, want 1", got)
	}
	if got := metricValue(t, after, "fexserve_index_items"); got != before+1 {
		t.Fatalf("items gauge = %v, want %v", got, before+1)
	}
}

func TestTraceIDHeader(t *testing.T) {
	ts := newObsServer(t, 50, 4, server.Config{})
	// Generated when absent, hex shaped.
	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": []float64{1, 0, 0, 0}, "k": 1})
	defer resp.Body.Close()
	id := resp.Header.Get(obs.TraceHeader)
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(id) {
		t.Fatalf("generated trace id %q", id)
	}
	var body struct {
		TraceID string `json:"traceId"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != id {
		t.Fatalf("response traceId %q != header %q", body.TraceID, id)
	}

	// Propagated when supplied.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/info", nil)
	req.Header.Set(obs.TraceHeader, "caller-supplied-id-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if got := resp2.Header.Get(obs.TraceHeader); got != "caller-supplied-id-42" {
		t.Fatalf("propagated trace id %q", got)
	}

	// Garbage is replaced, not reflected.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/info", nil)
	req.Header.Set(obs.TraceHeader, "bad id with spaces")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp3.Body.Close()
	if got := resp3.Header.Get(obs.TraceHeader); strings.Contains(got, " ") || got == "" {
		t.Fatalf("invalid trace id reflected: %q", got)
	}
}

func TestStructuredRequestLog(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ts := newObsServer(t, 100, 4, server.Config{Logger: logger})

	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": []float64{1, 2, 3, 4}, "k": 3})
	_ = resp.Body.Close()

	line := strings.TrimSpace(buf.String())
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.Split(line, "\n")[0]), &entry); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, line)
	}
	if entry["msg"] != "request" {
		t.Fatalf("msg = %v", entry["msg"])
	}
	for _, key := range []string{"traceId", "method", "path", "status", "tookMicros", "k", "stages"} {
		if _, ok := entry[key]; !ok {
			t.Fatalf("log line missing %q: %v", key, entry)
		}
	}
	stages, ok := entry["stages"].(map[string]any)
	if !ok {
		t.Fatalf("stages not a group: %v", entry["stages"])
	}
	for _, key := range []string{"scanned", "prunedByLength", "prunedByIntHead", "prunedByIntFull",
		"prunedByIncremental", "prunedByMonotone", "fullProducts"} {
		if _, ok := stages[key]; !ok {
			t.Fatalf("stages missing %q: %v", key, stages)
		}
	}
	if entry["method"] != "POST" || entry["path"] != "/v1/search" {
		t.Fatalf("wrong method/path: %v", entry)
	}
}

func TestSearchResponseStageCounters(t *testing.T) {
	ts := newObsServer(t, 300, 8, server.Config{})
	q := []float64{1, -0.5, 0.3, 0.7, -0.2, 0.1, 0.9, -1.1}
	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": q, "k": 5})
	defer resp.Body.Close()
	var body struct {
		Stats obs.StageCounters `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	st := body.Stats
	sum := st.PrunedByLength + st.PrunedByIntHead + st.PrunedByIntFull +
		st.PrunedByIncremental + st.PrunedByMonotone
	if st.Pruned != sum {
		t.Fatalf("pruned %d != stage sum %d (%+v)", st.Pruned, sum, st)
	}
	if st.Scanned == 0 || st.Pruned == 0 {
		t.Fatalf("per-stage counters not populated: %+v", st)
	}
}

func TestPprofMounting(t *testing.T) {
	get := func(ts *httptest.Server) int {
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(newObsServer(t, 20, 4, server.Config{})); code != http.StatusNotFound {
		t.Fatalf("pprof mounted without opt-in: status %d", code)
	}
	if code := get(newObsServer(t, 20, 4, server.Config{EnablePprof: true})); code != http.StatusOK {
		t.Fatalf("pprof opt-in: status %d", code)
	}
}
