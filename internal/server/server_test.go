package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/scan"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

func newTestServer(t *testing.T, n, d int) (*httptest.Server, *vec.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	items := vec.NewMatrix(n, d)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	srv, err := server.New(items, core.Options{SVD: true, Int: true, Reduction: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, items
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

type searchResp struct {
	Results []struct {
		ID    int     `json:"id"`
		Score float64 `json:"score"`
	} `json:"results"`
	TookMicros int64 `json:"tookMicros"`
	Stats      struct {
		Scanned      int `json:"scanned"`
		Pruned       int `json:"pruned"`
		FullProducts int `json:"fullProducts"`
	} `json:"stats"`
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSearchEndpoint(t *testing.T) {
	ts, items := newTestServer(t, 300, 8)
	q := []float64{1, -0.5, 0.3, 0.7, -0.2, 0.1, 0.9, -1.1}
	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": q, "k": 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decode[searchResp](t, resp)
	if len(got.Results) != 5 {
		t.Fatalf("got %d results", len(got.Results))
	}
	want := scan.NewNaive(items).Search(q, 5)
	for i := range want {
		if got.Results[i].ID != want[i].ID {
			t.Fatalf("rank %d: %v vs %v", i, got.Results[i], want[i])
		}
	}
	if got.Stats.Scanned == 0 {
		t.Fatal("stats missing")
	}
}

func TestSearchValidation(t *testing.T) {
	ts, _ := newTestServer(t, 50, 4)
	cases := []struct {
		body any
		want int
	}{
		{map[string]any{"vector": []float64{1, 2}, "k": 3}, http.StatusBadRequest},       // wrong dim
		{map[string]any{"vector": []float64{1, 2, 3, 4}, "k": 0}, http.StatusBadRequest}, // bad k
		{map[string]any{"vector": []float64{1, 2, 3, 4}, "k": 100000}, http.StatusBadRequest},
		{"not json at all", http.StatusBadRequest},
	}
	for i, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/search", c.body)
		_ = resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Fatalf("case %d: status %d, want %d", i, resp.StatusCode, c.want)
		}
	}
	// NaN vector via raw JSON is impossible (JSON has no NaN), but huge
	// values are finite and allowed — just verify it answers.
	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": []float64{1e300, 0, 0, 0}, "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("huge values: status %d", resp.StatusCode)
	}
	_ = resp.Body.Close()
}

func TestAboveEndpoint(t *testing.T) {
	ts, items := newTestServer(t, 300, 8)
	q := make([]float64, 8)
	q[0] = 2
	top := scan.NewNaive(items).Search(q, 10)
	thr := top[9].Score - 1e-9
	resp := postJSON(t, ts.URL+"/v1/above", map[string]any{"vector": q, "threshold": thr})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decode[searchResp](t, resp)
	if len(got.Results) != 10 {
		t.Fatalf("got %d results, want 10", len(got.Results))
	}
	// Missing threshold rejected.
	resp = postJSON(t, ts.URL+"/v1/above", map[string]any{"vector": q})
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing threshold: status %d", resp.StatusCode)
	}
}

func TestItemLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, 100, 4)

	// Add a dominant item.
	resp := postJSON(t, ts.URL+"/v1/items", map[string]any{"vector": []float64{50, 50, 50, 50}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	added := decode[map[string]int](t, resp)
	id := added["id"]
	if id != 100 {
		t.Fatalf("new id %d, want 100", id)
	}

	q := []float64{1, 1, 1, 1}
	search := decode[searchResp](t, postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": q, "k": 1}))
	if search.Results[0].ID != id {
		t.Fatalf("dominant item not top: %v", search.Results)
	}

	// Delete and confirm it is gone.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/items/%d", ts.URL, id), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	search = decode[searchResp](t, postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": q, "k": 1}))
	if search.Results[0].ID == id {
		t.Fatal("deleted item still returned")
	}

	// Double delete → 404.
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status %d", dresp2.StatusCode)
	}

	// Bad id → 400.
	breq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/items/notanumber", nil)
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	_ = bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d", bresp.StatusCode)
	}
}

func TestInfoAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, 42, 4)
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	info := decode[map[string]any](t, resp)
	if info["items"].(float64) != 42 || info["dim"].(float64) != 4 {
		t.Fatalf("info = %v", info)
	}
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hresp.StatusCode)
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts, _ := newTestServer(t, 200, 6)
	done := make(chan error, 10)
	for g := 0; g < 10; g++ {
		go func(g int) {
			q := []float64{float64(g), 1, -1, 0.5, 0, 2}
			for i := 0; i < 20; i++ {
				resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": q, "k": 3})
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("status %d", resp.StatusCode)
					_ = resp.Body.Close()
					return
				}
				_ = resp.Body.Close()
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 10; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
