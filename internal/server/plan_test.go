package server_test

import (
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/plan"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

func testItems(n, d int, seed int64) *vec.Matrix {
	//lint:ignore rngseed every caller passes a constant seed
	rng := rand.New(rand.NewSource(seed))
	items := vec.NewMatrix(n, d)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	return items
}

func newAutoServer(t *testing.T, items *vec.Matrix, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg.Method = "auto"
	srv, err := server.NewWithConfig(items, core.Options{SVD: true, Int: true, Reduction: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

type planResp struct {
	Mode       string   `json:"mode"`
	Candidates []string `json:"candidates"`
	Summary    struct {
		Queries     int64 `json:"queries"`
		Mispredicts int64 `json:"mispredicts"`
		Methods     []struct {
			Method    string           `json:"method"`
			Queries   int64            `json:"queries"`
			Decisions map[string]int64 `json:"decisions"`
		} `json:"methods"`
	} `json:"summary"`
	Calibration struct {
		Schema string `json:"schema"`
	} `json:"calibration"`
}

// TestAutoMethodExactAndObservable is the planner's end-to-end contract:
// `-method auto` answers with results identical to the fixed-method
// server, and every routing decision is visible on /v1/plan and
// /metrics.
func TestAutoMethodExactAndObservable(t *testing.T) {
	items := testItems(300, 8, 7)
	_, auto := newAutoServer(t, items, server.Config{})

	fixed, err := server.New(items.Clone(), core.Options{SVD: true, Int: true, Reduction: true})
	if err != nil {
		t.Fatal(err)
	}
	fixedTS := httptest.NewServer(fixed.Handler())
	defer fixedTS.Close()

	rng := rand.New(rand.NewSource(11))
	const queries = 8
	for i := 0; i < queries; i++ {
		q := make([]float64, 8)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		body := map[string]any{"vector": q, "k": 5}
		got := decode[searchResp](t, postJSON(t, auto.URL+"/v1/search", body))
		want := decode[searchResp](t, postJSON(t, fixedTS.URL+"/v1/search", body))
		if len(got.Results) != len(want.Results) {
			t.Fatalf("query %d: %d results, fixed server returned %d", i, len(got.Results), len(want.Results))
		}
		for r := range got.Results {
			if got.Results[r].ID != want.Results[r].ID ||
				math.Abs(got.Results[r].Score-want.Results[r].Score) > 1e-7 {
				t.Fatalf("query %d result %d: auto %+v, fixed %+v", i, r, got.Results[r], want.Results[r])
			}
		}
	}

	// Every query shows up as a decision on /v1/plan.
	resp, err := http.Get(auto.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	p := decode[planResp](t, resp)
	if p.Mode != "auto" || p.Summary.Queries != queries {
		t.Fatalf("plan mode %q queries %d, want auto/%d", p.Mode, p.Summary.Queries, queries)
	}
	if len(p.Candidates) != 2 || p.Candidates[1] != "Naive" {
		t.Fatalf("candidates %v, want [variant, Naive]", p.Candidates)
	}
	if p.Calibration.Schema != plan.Schema {
		t.Fatalf("calibration schema %q, want %q", p.Calibration.Schema, plan.Schema)
	}
	var decided int64
	for _, m := range p.Summary.Methods {
		for _, c := range m.Decisions {
			decided += c
		}
	}
	if decided != queries {
		t.Fatalf("decision counts sum to %d, want %d", decided, queries)
	}

	// The decision counter and calibration gauges are on /metrics.
	mresp, err := http.Get(auto.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"fexipro_plan_decisions_total{",
		"fexipro_plan_predicted_seconds{",
		"fexipro_plan_observed_seconds{",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestPlanSpanAttrs: traced searches under -method auto carry the
// routing decision as plan.* attributes on the root span.
func TestPlanSpanAttrs(t *testing.T) {
	items := testItems(200, 6, 9)
	_, ts := newAutoServer(t, items, server.Config{Trace: true})

	q := map[string]any{"vector": []float64{1, -0.5, 0, 0.3, 0.1, -1}, "k": 4}
	decode[searchResp](t, postJSON(t, ts.URL+"/v1/search", q))

	_, _, entries := debugQueries(t, ts.URL)
	if len(entries) == 0 {
		t.Fatal("no traced entries recorded")
	}
	attrs := entries[0].Span.Attrs
	m, ok := attrs["plan.method"].(string)
	if !ok || m == "" {
		t.Fatalf("root span missing plan.method: %v", attrs)
	}
	if r, ok := attrs["plan.reason"].(string); !ok ||
		(r != "warmup" && r != "probe" && r != "cost") {
		t.Fatalf("root span plan.reason = %v, want warmup/probe/cost", attrs["plan.reason"])
	}
	if _, ok := attrs["plan.predicted_us"]; !ok {
		t.Fatalf("root span missing plan.predicted_us: %v", attrs)
	}
}

// TestPlanEndpointWithoutPlanner: fixed-method servers 404 /v1/plan.
func TestPlanEndpointWithoutPlanner(t *testing.T) {
	ts, _ := newTestServer(t, 50, 4)
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestUnknownMethodRejected: Config.Method is validated at boot.
func TestUnknownMethodRejected(t *testing.T) {
	_, err := server.NewWithConfig(testItems(10, 4, 1), core.Options{}, server.Config{Method: "LEMP"})
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v, want unknown method", err)
	}
}

// TestPlanCalibrationPersists: a checkpoint writes plan.snap next to the
// index snapshot, and the next boot loads it back into the planner.
func TestPlanCalibrationPersists(t *testing.T) {
	dir := t.TempDir()
	items := testItems(120, 6, 3)
	srv, ts := newAutoServer(t, items, server.Config{DataDir: dir})

	q := map[string]any{"vector": []float64{1, 0, -1, 0.5, 0, 0.2}, "k": 3}
	for i := 0; i < 4; i++ {
		decode[searchResp](t, postJSON(t, ts.URL+"/v1/search", q))
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := srv.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, plan.CalibrationFile)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint left no %s: %v", plan.CalibrationFile, err)
	}
	cal, err := plan.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Methods) != 2 {
		t.Fatalf("calibration covers %d methods, want 2", len(cal.Methods))
	}

	// Reboot from the data dir: searches still answer, and a corrupt
	// calibration file must not brick the boot.
	srv2, ts2 := newAutoServer(t, items, server.Config{DataDir: dir})
	got := decode[searchResp](t, postJSON(t, ts2.URL+"/v1/search", q))
	if len(got.Results) != 3 {
		t.Fatalf("post-reboot search returned %d results", len(got.Results))
	}
	_ = srv2.ClosePersistence()

	raw, _ := os.ReadFile(path)
	raw[len(raw)-10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	srv3, ts3 := newAutoServer(t, items, server.Config{DataDir: dir})
	got = decode[searchResp](t, postJSON(t, ts3.URL+"/v1/search", q))
	if len(got.Results) != 3 {
		t.Fatalf("corrupt-calibration boot search returned %d results", len(got.Results))
	}
	_ = srv3.ClosePersistence()
	_ = srv
}
