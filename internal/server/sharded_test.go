package server_test

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/scan"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

// TestShardedServer pins the serving-side sharding contract: a server
// built with Config.Shards answers /v1/info with the shard count, its
// search results stay exact (equal to the naive scan), and the
// per-shard scan histogram appears in the Prometheus exposition.
func TestShardedServer(t *testing.T) {
	rng := rand.New(rand.NewSource(20260817))
	items := vec.NewMatrix(150, 8)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	srv, err := server.NewWithConfig(items, core.Options{SVD: true, Int: true, Reduction: true},
		server.Config{Shards: 3, SearchWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	info := decode[map[string]any](t, resp)
	if info["shards"].(float64) != 3 {
		t.Fatalf("info = %v, want shards 3", info)
	}

	naive := scan.NewNaive(items)
	for trial := 0; trial < 5; trial++ {
		q := make([]float64, 8)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		sresp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": q, "k": 7})
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("search status %d", sresp.StatusCode)
		}
		got := decode[searchResp](t, sresp)
		want := naive.Search(q, 7)
		if len(got.Results) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got.Results), len(want))
		}
		for i := range want {
			if got.Results[i].ID != want[i].ID {
				t.Fatalf("trial %d rank %d: id %d, want %d", trial, i, got.Results[i].ID, want[i].ID)
			}
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	_ = mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "fexipro_shard_scan_seconds") {
		t.Fatal("metrics exposition is missing fexipro_shard_scan_seconds")
	}
	for _, shard := range []string{`shard="0"`, `shard="1"`, `shard="2"`} {
		if !strings.Contains(string(body), shard) {
			t.Fatalf("metrics exposition is missing label %s", shard)
		}
	}
}
