package server_test

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"fexipro/internal/obs"
	"fexipro/internal/server"
)

// debugQueries fetches and decodes GET /debug/queries.
func debugQueries(t *testing.T, base string) (enabled bool, recorded uint64, entries []struct {
	TraceID    string             `json:"traceId"`
	Method     string             `json:"method"`
	K          int                `json:"k"`
	At         string             `json:"at"`
	TookMicros int64              `json:"tookMicros"`
	Exact      bool               `json:"exact"`
	Stats      *obs.StageCounters `json:"stats"`
	Span       obs.SpanJSON       `json:"span"`
}) {
	t.Helper()
	resp, err := http.Get(base + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/queries status %d", resp.StatusCode)
	}
	var body struct {
		Enabled  bool   `json:"enabled"`
		Recorded uint64 `json:"recorded"`
		Entries  []struct {
			TraceID    string             `json:"traceId"`
			Method     string             `json:"method"`
			K          int                `json:"k"`
			At         string             `json:"at"`
			TookMicros int64              `json:"tookMicros"`
			Exact      bool               `json:"exact"`
			Stats      *obs.StageCounters `json:"stats"`
			Span       obs.SpanJSON       `json:"span"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Enabled, body.Recorded, body.Entries
}

func childByName(sp obs.SpanJSON, name string) (obs.SpanJSON, bool) {
	for _, c := range sp.Children {
		if c.Name == name {
			return c, true
		}
	}
	return obs.SpanJSON{}, false
}

// TestTraceSpanTree is the tentpole acceptance test: with tracing
// enabled, /debug/queries returns complete span trees for sharded
// searches whose per-shard scan spans nest within (and sum to no more
// than) the scan span, and whose stage children account for the root.
func TestTraceSpanTree(t *testing.T) {
	ts := newObsServer(t, 600, 8, server.Config{Trace: true, Shards: 4, SearchWorkers: 2})
	q := []float64{1, -0.5, 0.3, 0.7, -0.2, 0.1, 0.9, -1.1}

	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": q, "k": 5})
	wantTrace := resp.Header.Get(obs.TraceHeader)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}

	enabled, recorded, entries := debugQueries(t, ts.URL)
	if !enabled {
		t.Fatal("enabled = false with Config.Trace set")
	}
	if recorded != 1 || len(entries) != 1 {
		t.Fatalf("recorded %d entries %d, want 1 and 1", recorded, len(entries))
	}
	e := entries[0]
	if e.Method != "search" || e.K != 5 || !e.Exact {
		t.Fatalf("entry = %+v", e)
	}
	if e.TraceID != wantTrace {
		t.Fatalf("entry trace %q != request trace %q", e.TraceID, wantTrace)
	}
	if e.Stats == nil || e.Stats.Scanned == 0 {
		t.Fatalf("entry stats missing: %+v", e.Stats)
	}
	if _, err := time.Parse(time.RFC3339Nano, e.At); err != nil {
		t.Fatalf("entry at %q: %v", e.At, err)
	}

	root := e.Span
	if root.Name != "search" {
		t.Fatalf("root span %q, want search", root.Name)
	}
	var stageSum int64
	for _, name := range []string{"transform", "scan", "merge"} {
		c, ok := childByName(root, name)
		if !ok {
			t.Fatalf("root missing %q child: %+v", name, root)
		}
		stageSum += c.DurationMicros
	}
	// Stage children are disjoint nested intervals of the root, so their
	// rounded-micros sum may exceed the root by at most one microsecond
	// per child.
	if stageSum > root.DurationMicros+3 {
		t.Fatalf("stage sum %dµs exceeds root %dµs", stageSum, root.DurationMicros)
	}

	scan, _ := childByName(root, "scan")
	if got := scan.Attrs["shards"]; got != float64(4) {
		t.Fatalf("scan shards attr = %v", got)
	}
	if len(scan.Children) != 4 {
		t.Fatalf("scan has %d shard children, want 4", len(scan.Children))
	}
	var shardSum int64
	seen := map[float64]bool{}
	for _, sh := range scan.Children {
		if sh.Name != "shard" {
			t.Fatalf("scan child %q, want shard", sh.Name)
		}
		shardSum += sh.DurationMicros
		idx, ok := sh.Attrs["shard"].(float64)
		if !ok || seen[idx] {
			t.Fatalf("shard index attr bad/duplicated: %v", sh.Attrs)
		}
		seen[idx] = true
		for _, key := range []string{"worker", "queueWaitMicros", "scanned", "pruned", "fullProducts"} {
			if _, ok := sh.Attrs[key]; !ok {
				t.Fatalf("shard span missing %q attr: %v", key, sh.Attrs)
			}
		}
	}
	// Two workers over four shards: shard scans overlap in wall time, so
	// their sum may legitimately exceed the scan span — but never by more
	// than the worker-pool parallelism factor.
	if shardSum > 2*scan.DurationMicros+8 {
		t.Fatalf("shard sum %dµs > workers×scan %dµs", shardSum, scan.DurationMicros)
	}

	// Mutations are traced too and the ring is newest-first.
	resp = postJSON(t, ts.URL+"/v1/items", map[string]any{"vector": q})
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	_, recorded, entries = debugQueries(t, ts.URL)
	if recorded != 2 || len(entries) != 2 {
		t.Fatalf("after add: recorded %d entries %d", recorded, len(entries))
	}
	if entries[0].Method != "add" || entries[1].Method != "search" {
		t.Fatalf("ring order: %q then %q, want add then search", entries[0].Method, entries[1].Method)
	}
	if entries[0].Span.Name != "add" {
		t.Fatalf("add root span %q", entries[0].Span.Name)
	}
}

// TestTraceMutationRebuild: on an index small enough that a single add
// crosses the rebuild fraction, the add's span tree carries the
// rebuild child with its fold/drop attributes.
func TestTraceMutationRebuild(t *testing.T) {
	ts := newObsServer(t, 3, 4, server.Config{Trace: true})
	resp := postJSON(t, ts.URL+"/v1/items", map[string]any{"vector": []float64{0.5, -0.5, 1, 0}})
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	_, _, entries := debugQueries(t, ts.URL)
	if len(entries) != 1 || entries[0].Span.Name != "add" {
		t.Fatalf("entries = %+v", entries)
	}
	rb, ok := childByName(entries[0].Span, "rebuild")
	if !ok {
		t.Fatalf("add span has no rebuild child: %+v", entries[0].Span)
	}
	if rb.Attrs["deltaFolded"] != float64(1) || rb.Attrs["items"] != float64(4) {
		t.Fatalf("rebuild attrs = %v", rb.Attrs)
	}

	// A delete below the fraction is traced but performs no rebuild.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/items/0", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp2.StatusCode)
	}
	_, _, entries = debugQueries(t, ts.URL)
	if entries[0].Method != "delete" || entries[0].Span.Name != "delete" {
		t.Fatalf("delete entry = %+v", entries[0])
	}
}

// TestTraceSlowQueryThreshold: with a threshold no test query can
// reach, traced queries still run but never enter the ring.
func TestTraceSlowQueryThreshold(t *testing.T) {
	ts := newObsServer(t, 100, 4, server.Config{Trace: true, SlowQuery: time.Hour})
	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": []float64{1, 0, 0, 0}, "k": 2})
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	enabled, recorded, entries := debugQueries(t, ts.URL)
	if !enabled || recorded != 0 || len(entries) != 0 {
		t.Fatalf("enabled %v recorded %d entries %d, want true 0 0", enabled, recorded, len(entries))
	}
}

// TestTraceDisabled: without Config.Trace the endpoint answers
// enabled:false with an empty list (not 404), and searches carry no
// span work.
func TestTraceDisabled(t *testing.T) {
	ts := newObsServer(t, 100, 4, server.Config{})
	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": []float64{1, 0, 0, 0}, "k": 2})
	_ = resp.Body.Close()
	enabled, recorded, entries := debugQueries(t, ts.URL)
	if enabled || recorded != 0 || len(entries) != 0 {
		t.Fatalf("enabled %v recorded %d entries %d, want false 0 0", enabled, recorded, len(entries))
	}
}

// TestMetricsGolden pins the observability contract of the exposition:
// family ordering is sorted, histograms carry a +Inf bucket, the
// windowed quantile gauges appear with properly quoted labels, and the
// build-info/uptime/SLO series are present.
func TestMetricsGolden(t *testing.T) {
	ts := newObsServer(t, 200, 8, server.Config{Trace: true})
	q := []float64{1, -0.5, 0.3, 0.7, -0.2, 0.1, 0.9, -1.1}
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": q, "k": 5})
		_ = resp.Body.Close()
	}
	body := scrape(t, ts.URL)

	// Families appear in sorted order exactly once.
	var families []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			families = append(families, strings.Fields(line)[2])
		}
	}
	if len(families) == 0 {
		t.Fatal("no HELP lines in exposition")
	}
	for i := 1; i < len(families); i++ {
		if families[i] <= families[i-1] {
			t.Fatalf("families out of order: %q after %q", families[i], families[i-1])
		}
	}

	// Every histogram family ends with a +Inf bucket.
	if !strings.Contains(body, `fexipro_search_latency_seconds_bucket{variant="F-SIR",le="+Inf"}`) {
		t.Fatal("latency histogram missing +Inf bucket")
	}
	if !strings.Contains(body, `le="+Inf"`) {
		t.Fatal("no +Inf buckets at all")
	}

	// Windowed quantile gauges: all four, with the quantile label quoted
	// and the values monotone nondecreasing in q.
	var prev float64 = -1
	for _, qt := range []string{"0.5", "0.95", "0.99", "0.999"} {
		sample := obs.MetricSearchLatencyWindow + `{quantile="` + qt + `"}`
		v := metricValue(t, body, sample)
		if v < prev {
			t.Fatalf("window quantiles not monotone: q=%s is %v < %v", qt, v, prev)
		}
		prev = v
	}
	if prev <= 0 {
		t.Fatal("p999 window quantile is zero after three searches")
	}

	// SLO burn counters for every default objective.
	for _, obj := range server.DefaultSLOs {
		metricValue(t, body, obs.MetricSLOViolations+`{objective="`+obj.String()+`"}`)
	}

	// Build info: constant 1, labels quoted, go_version populated.
	re := regexp.MustCompile(obs.MetricBuildInfo + `\{go_version="(go[^"]+)",version="[^"]*"\} 1`)
	if !re.MatchString(body) {
		t.Fatalf("build info series malformed or missing:\n%s", body)
	}

	// Uptime advances between scrapes.
	up1 := metricValue(t, body, "fexserve_uptime_seconds")
	time.Sleep(5 * time.Millisecond)
	up2 := metricValue(t, scrape(t, ts.URL), "fexserve_uptime_seconds")
	if up2 <= up1 {
		t.Fatalf("uptime did not advance: %v → %v", up1, up2)
	}
}

// TestSpanLogSummary: with tracing on, the request log line carries the
// per-stage span summary group.
func TestSpanLogSummary(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ts := newObsServer(t, 100, 4, server.Config{Trace: true, Logger: logger})
	resp := postJSON(t, ts.URL+"/v1/search", map[string]any{"vector": []float64{1, 2, 3, 4}, "k": 3})
	_ = resp.Body.Close()

	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(buf.String()), "\n")[0]), &entry); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	spans, ok := entry["spans"].(map[string]any)
	if !ok {
		t.Fatalf("log line missing spans group: %v", entry)
	}
	for _, key := range []string{"transformMicros", "scanMicros", "mergeMicros", "rebuildMicros"} {
		if _, ok := spans[key]; !ok {
			t.Fatalf("spans group missing %q: %v", key, spans)
		}
	}
}
