package server

import (
	"net/http"
	"time"

	"fexipro/internal/obs"
)

// This file is the serving side of DESIGN.md §13: per-query span
// collection, the /debug/queries slow-query ring, and the scrape-time
// refresh of the windowed quantile and uptime gauges.

// traceStart opens a root span for a traced request and returns a
// context carrying it. With tracing disabled it returns ctx unchanged
// and a nil span — every downstream span call is then a no-op.
func (s *Server) traceStart(r *http.Request, method string) (*http.Request, *obs.Span) {
	if !s.cfg.Trace {
		return r, nil
	}
	root := obs.NewRoot(method)
	return r.WithContext(obs.ContextWithSpan(r.Context(), root)), root
}

// traceFinish ends the root span, surfaces its stage summary to the
// request log line, and records the completed tree into the
// slow-query ring when the request crossed Config.SlowQuery (0 records
// everything traced). Safe on a nil root (untraced request).
func (s *Server) traceFinish(r *http.Request, root *obs.Span, method string, k int, took time.Duration, exact bool, st *obs.StageCounters) {
	if root == nil {
		return
	}
	root.End()
	if info, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
		info.hasSpans = true
		info.transform = root.ChildDuration("transform")
		info.scan = root.ChildDuration("scan")
		info.merge = root.ChildDuration("merge")
		info.rebuild = root.ChildDuration("rebuild")
	}
	if took < s.cfg.SlowQuery {
		return
	}
	s.ring.Record(obs.TraceEntry{
		TraceID: obs.TraceIDFrom(r.Context()),
		Method:  method,
		K:       k,
		At:      time.Now(),
		Took:    took,
		Exact:   exact,
		Stats:   st,
		Root:    root,
	})
}

// traceEntryJSON is one /debug/queries element: the query's identity
// and outcome plus its complete span tree.
type traceEntryJSON struct {
	TraceID    string             `json:"traceId"`
	Method     string             `json:"method"`
	K          int                `json:"k,omitempty"`
	At         string             `json:"at"`
	TookMicros int64              `json:"tookMicros"`
	Exact      bool               `json:"exact"`
	Stats      *obs.StageCounters `json:"stats,omitempty"`
	Span       obs.SpanJSON       `json:"span"`
}

// debugQueriesResponse is the GET /debug/queries body.
type debugQueriesResponse struct {
	Enabled     bool             `json:"enabled"`
	SlowQueryMs float64          `json:"slowQueryMs"`
	Recorded    uint64           `json:"recorded"`
	Entries     []traceEntryJSON `json:"entries"`
}

// handleDebugQueries serves the slow-query log: the most recent traced
// queries (newest first) as complete span trees. With tracing disabled
// it answers enabled:false and an empty list rather than 404, so
// probers can tell "off" from "no slow queries yet".
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	resp := debugQueriesResponse{
		Enabled:     s.cfg.Trace,
		SlowQueryMs: float64(s.cfg.SlowQuery.Microseconds()) / 1e3,
		Recorded:    s.ring.Total(),
		Entries:     []traceEntryJSON{},
	}
	for _, e := range s.ring.Entries() {
		resp.Entries = append(resp.Entries, traceEntryJSON{
			TraceID:    e.TraceID,
			Method:     e.Method,
			K:          e.K,
			At:         e.At.UTC().Format(time.RFC3339Nano),
			TookMicros: e.Took.Microseconds(),
			Exact:      e.Exact,
			Stats:      e.Stats,
			Span:       e.Root.Snapshot(),
		})
	}
	writeJSON(w, resp)
}

// metricsHandler wraps the registry's Prometheus handler with a
// scrape-time refresh of the gauges whose values are derived rather
// than event-driven: uptime and the sliding-window latency quantiles.
func (s *Server) metricsHandler() http.Handler {
	inner := s.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.refreshDerivedGauges()
		inner.ServeHTTP(w, r)
	})
}

// refreshDerivedGauges recomputes uptime and the window quantile
// gauges from the current sliding-window snapshot.
func (s *Server) refreshDerivedGauges() {
	s.uptime.Set(time.Since(s.start).Seconds())
	snap := s.window.Snapshot()
	for i, q := range obs.WindowQuantiles {
		s.quantiles[i].Set(snap.Quantile(q))
	}
}
