package server

// In-package so the probe goroutine can take s.mu directly: this test
// is the runtime mirror of the //fex:lockorder declarations above the
// Server struct, referenced from that doc comment by name.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/faults"
	"fexipro/internal/vec"
)

// TestAcquisitionOrderUnderConcurrentLoad drives every lock in the
// documented hierarchy at once, under -race: concurrent HTTP mutations
// and searches (Server.mu → WAL.mu → faults.Hook.mu, Span.mu),
// periodic Checkpoint calls, SIGHUP-triggered Reload (fexserve's
// reload path), and a probe goroutine that explicitly walks the
// declared outermost-first chain — Server.mu, then WAL and fault
// registry leaves — exactly as `//fex:lockorder` above the Server
// struct promises. A hierarchy inversion anywhere in these paths shows
// up as a deadlock, so the whole run sits behind a watchdog that dumps
// all stacks instead of letting `go test` hang to its global timeout.
func TestAcquisitionOrderUnderConcurrentLoad(t *testing.T) {
	const dim = 8
	rng := rand.New(rand.NewSource(11))
	items := vec.NewMatrix(120, dim)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	opts := core.Options{SVD: true, Int: true, Reduction: true}
	reg := faults.NewRegistry(11)
	// A small per-append latency at the WAL fault site stretches the
	// window in which Server.mu and WAL.mu are held together, making
	// the interleavings the hierarchy must survive far more likely.
	reg.Enable(faults.SiteWALWrite, faults.Plan{CallLatency: 200 * time.Microsecond})

	s, err := NewWithConfig(items, opts, Config{
		DataDir:         t.TempDir(),
		CheckpointEvery: 16,
		Faults:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// fexserve's SIGHUP wiring: a reload goroutine swaps in a freshly
	// built catalog on each signal. Concurrent mutations may answer 503
	// (ErrReloading) during the build — that is the documented contract,
	// not a failure.
	hup := make(chan os.Signal, 4)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	stop := make(chan struct{})
	var reloads atomic.Int64
	var loadWG, svcWG sync.WaitGroup

	svcWG.Add(1)
	go func() {
		defer svcWG.Done()
		for {
			select {
			case <-hup:
				fresh := vec.NewMatrix(100, dim)
				for i := range fresh.Data {
					fresh.Data[i] = float64(i%7) - 3
				}
				if err := s.Reload(fresh, opts); err == nil {
					reloads.Add(1)
				}
			case <-stop:
				return
			}
		}
	}()

	// Writers: adds and deletes through the real handler stack.
	for w := 0; w < 4; w++ {
		loadWG.Add(1)
		go func(w int) {
			defer loadWG.Done()
			for i := 0; i < 120; i++ {
				v := make([]float64, dim)
				for j := range v {
					v[j] = float64((i+j+w)%5) - 2
				}
				body, _ := json.Marshal(map[string]any{"vector": v})
				resp, err := http.Post(ts.URL+"/v1/items", "application/json", bytes.NewReader(body))
				if err != nil {
					continue // transient during reload teardown is fine
				}
				resp.Body.Close()
				if i%3 == 0 {
					req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/items/%d", ts.URL, i), nil)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						resp.Body.Close()
					}
				}
			}
		}(w)
	}

	// Searchers: the span-recording read path (Server.mu → Span.mu).
	for r := 0; r < 4; r++ {
		loadWG.Add(1)
		go func(r int) {
			defer loadWG.Done()
			q := make([]float64, dim)
			for j := range q {
				q[j] = float64(j%3) - 1
			}
			body, _ := json.Marshal(map[string]any{"vector": q, "k": 5})
			for i := 0; i < 150; i++ {
				resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				resp.Body.Close()
			}
		}(r)
	}

	// Checkpointer: fexserve's SIGTERM/periodic snapshot path, racing
	// the handlers' own CheckpointEvery-triggered checkpoints.
	svcWG.Add(1)
	go func() {
		defer svcWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Checkpoint()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	// Probe: walk the declared chain explicitly — take the outermost
	// lock, then touch each leaf that handlers reach while holding it.
	// If any other goroutine ever acquired these in the reverse order,
	// this loop is one half of the resulting deadlock.
	svcWG.Add(1)
	go func() {
		defer svcWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.mu.Lock()
			if s.wal != nil {
				_ = s.wal.NextSeq() // WAL.mu under Server.mu
			}
			_ = reg.Counts() // faults.Registry.mu under Server.mu
			s.mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	// Fire the reload path a few times mid-load, the way operators do.
	for i := 0; i < 3; i++ {
		time.Sleep(30 * time.Millisecond)
		if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
			t.Fatalf("sending SIGHUP: %v", err)
		}
	}

	// Watchdog: the load must drain, and at least one signal-driven
	// reload must complete while it does. A lock-order violation
	// deadlocks some subset of the goroutines above; fail with full
	// stacks rather than hanging the suite.
	await := func(what string, wg *sync.WaitGroup) {
		t.Helper()
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			buf := make([]byte, 1<<20)
			t.Fatalf("%s still running after 60s — lock-order deadlock candidate:\n%s",
				what, buf[:runtime.Stack(buf, true)])
		}
	}
	await("writers/searchers", &loadWG)
	// The signals are already delivered (buffered channel); give the
	// reloader until the watchdog deadline to finish the last build.
	for deadline := time.Now().Add(60 * time.Second); reloads.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no SIGHUP reload completed; the reload path was not exercised")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	await("checkpoint/probe/reload goroutines", &svcWG)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if err := s.ClosePersistence(); err != nil {
		t.Fatalf("closing persistence: %v", err)
	}
}
