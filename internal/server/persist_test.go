package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/faults"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

// Persistence tests: the server-level counterpart of the core recovery
// property tests. Everything goes through the HTTP handlers, so the
// acknowledged-iff-durable contract is tested at the boundary clients
// actually see.

func persistItems(n, d int, rng *rand.Rand) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func newPersistServer(t *testing.T, initial *vec.Matrix, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.NewWithConfig(initial, core.Options{SVD: true, Int: true, Reduction: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func persistPost(t *testing.T, ts *httptest.Server, path string, payload any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func addItem(t *testing.T, ts *httptest.Server, v []float64) int {
	t.Helper()
	status, body := persistPost(t, ts, "/v1/items", map[string]any{"vector": v})
	if status != http.StatusCreated {
		t.Fatalf("add: status %d: %s", status, body)
	}
	var out struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func deleteItem(t *testing.T, ts *httptest.Server, id int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/items/%d", ts.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete %d: status %d", id, resp.StatusCode)
	}
}

func infoItems(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Items int `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Items
}

func searchIDs(t *testing.T, ts *httptest.Server, q []float64, k int) []resultPair {
	t.Helper()
	status, body := persistPost(t, ts, "/v1/search", map[string]any{"vector": q, "k": k})
	if status != http.StatusOK {
		t.Fatalf("search: status %d: %s", status, body)
	}
	var out struct {
		Results []resultPair `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Results
}

type resultPair struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// metricValue scrapes /metrics for the first sample of the named family
// (any labels) and reports whether it was present.
func persistMetric(t *testing.T, ts *httptest.Server, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // a longer family sharing the prefix
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

// TestPersistRecoverAcrossRestart: acknowledged mutations survive a
// restart through the WAL alone — no checkpoint runs — and the restarted
// server answers queries bit-identically to the pre-restart one.
func TestPersistRecoverAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	initial := persistItems(10, 4, rand.New(rand.NewSource(1)))
	cfg := server.Config{DataDir: dir, Shards: 2}

	srv1, ts1 := newPersistServer(t, initial, cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5; i++ {
		v := make([]float64, 4)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		addItem(t, ts1, v)
	}
	deleteItem(t, ts1, 3)
	deleteItem(t, ts1, 11)

	q := []float64{0.5, -1.0, 0.25, 2.0}
	want := searchIDs(t, ts1, q, 6)
	wantItems := infoItems(t, ts1)
	if v, ok := persistMetric(t, ts1, "fexipro_wal_records_total"); !ok || v != 7 {
		t.Fatalf("fexipro_wal_records_total = %v (present=%v), want 7", v, ok)
	}
	ts1.Close()
	if err := srv1.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newPersistServer(t, initial, cfg)
	if got := infoItems(t, ts2); got != wantItems {
		t.Fatalf("restarted item count %d, want %d", got, wantItems)
	}
	got := searchIDs(t, ts2, q, 6)
	if len(got) != len(want) {
		t.Fatalf("restarted search returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: restarted %+v, original %+v", i, got[i], want[i])
		}
	}
	if v, ok := persistMetric(t, ts2, "fexipro_wal_replays_total"); !ok || v != 7 {
		t.Fatalf("fexipro_wal_replays_total = %v (present=%v), want 7", v, ok)
	}
	if v, ok := persistMetric(t, ts2, "fexipro_snapshot_load_seconds"); !ok || v <= 0 {
		t.Fatalf("fexipro_snapshot_load_seconds = %v (present=%v), want > 0", v, ok)
	}
}

// TestPersistFreshDirInitializes: the first boot on an empty directory
// builds from the initial matrix and immediately checkpoints, so the
// files exist before any mutation and the next boot loads.
func TestPersistFreshDirInitializes(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newPersistServer(t, persistItems(8, 3, rand.New(rand.NewSource(7))), server.Config{DataDir: dir})
	for _, f := range []string{core.SnapshotFile, core.WALFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("first boot did not create %s: %v", f, err)
		}
	}
	if v, ok := persistMetric(t, ts, "fexipro_snapshot_save_seconds"); !ok || v <= 0 {
		t.Fatalf("fexipro_snapshot_save_seconds = %v (present=%v), want > 0 after init checkpoint", v, ok)
	}
	if v, ok := persistMetric(t, ts, "fexipro_snapshot_load_seconds"); !ok || v != 0 {
		t.Fatalf("fexipro_snapshot_load_seconds = %v (present=%v), want 0 on first boot", v, ok)
	}
	ts.Close()
	if err := srv.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistCheckpointEvery: the periodic checkpoint truncates the
// WAL, so a restart replays nothing yet sees every mutation.
func TestPersistCheckpointEvery(t *testing.T) {
	dir := t.TempDir()
	initial := persistItems(6, 3, rand.New(rand.NewSource(11)))
	cfg := server.Config{DataDir: dir, CheckpointEvery: 2}

	srv1, ts1 := newPersistServer(t, initial, cfg)
	for i := 0; i < 4; i++ {
		addItem(t, ts1, []float64{float64(i), 1, -1})
	}
	ts1.Close()
	if err := srv1.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newPersistServer(t, initial, cfg)
	if got := infoItems(t, ts2); got != 10 {
		t.Fatalf("restarted item count %d, want 10", got)
	}
	if v, ok := persistMetric(t, ts2, "fexipro_wal_replays_total"); !ok || v != 0 {
		t.Fatalf("fexipro_wal_replays_total = %v (present=%v), want 0 after periodic checkpoints", v, ok)
	}
}

// TestPersistDimMismatchRejected: pointing the server at a directory
// holding a different dimensionality is a startup error, never a
// silent rebuild over the persisted state.
func TestPersistDimMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newPersistServer(t, persistItems(5, 4, rand.New(rand.NewSource(3))), server.Config{DataDir: dir})
	ts.Close()
	if err := srv.ClosePersistence(); err != nil {
		t.Fatal(err)
	}
	_, err := server.NewWithConfig(persistItems(5, 6, rand.New(rand.NewSource(3))), core.Options{}, server.Config{DataDir: dir})
	if err == nil {
		t.Fatal("dimension mismatch against persisted index was accepted")
	}
}

// TestPersistWALFaultNotAcknowledged is the server-level torn-write
// property: when the WAL append fails (injected at faults.SiteWALWrite,
// leaving a torn half-record on disk), the HTTP response is a 500 — the
// mutation is NOT acknowledged — and a restart recovers exactly the
// acknowledged prefix, torn tail repaired.
func TestPersistWALFaultNotAcknowledged(t *testing.T) {
	dir := t.TempDir()
	initial := persistItems(6, 3, rand.New(rand.NewSource(5)))
	reg := faults.NewRegistry(99)
	reg.Enable(faults.SiteWALWrite, faults.Plan{FailEveryNCalls: 3})

	srv1, ts1 := newPersistServer(t, initial, server.Config{DataDir: dir, Faults: reg})
	acked := 0
	for i := 0; i < 3; i++ {
		status, _ := persistPost(t, ts1, "/v1/items", map[string]any{"vector": []float64{float64(i), 2, 3}})
		switch status {
		case http.StatusCreated:
			acked++
		case http.StatusInternalServerError:
			// Not acknowledged; the WAL is torn and refuses further writes.
		default:
			t.Fatalf("add %d: unexpected status %d", i, status)
		}
	}
	if acked != 2 {
		t.Fatalf("acked %d adds, want 2 (every 3rd WAL append fails)", acked)
	}
	ts1.Close()
	_ = srv1.ClosePersistence() // broken WAL: close is best-effort

	_, ts2 := newPersistServer(t, initial, server.Config{DataDir: dir})
	if got := infoItems(t, ts2); got != 6+acked {
		t.Fatalf("restarted item count %d, want %d (initial + acknowledged only)", got, 6+acked)
	}
}

// TestReloadZeroReadDowntime: searches keep answering while Reload
// builds and swaps a replacement catalog, and the swap is atomic — every
// response comes entirely from one epoch. With a data dir, the reload
// checkpoint makes the new epoch the persisted one.
func TestReloadZeroReadDowntime(t *testing.T) {
	dir := t.TempDir()
	old := persistItems(20, 4, rand.New(rand.NewSource(21)))
	srv, ts := newPersistServer(t, old, server.Config{DataDir: dir})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := []float64{1, 0, -1, 0.5}
		for {
			select {
			case <-stop:
				return
			default:
			}
			res := searchIDs(t, ts, q, 3)
			if len(res) != 3 {
				t.Errorf("search during reload returned %d results", len(res))
				return
			}
		}
	}()

	replacement := persistItems(35, 4, rand.New(rand.NewSource(22)))
	if err := srv.Reload(replacement, core.Options{SVD: true}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if got := infoItems(t, ts); got != 35 {
		t.Fatalf("post-reload item count %d, want 35", got)
	}
	ts.Close()
	if err := srv.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	// The reload epoch is what restarts see.
	_, ts2 := newPersistServer(t, replacement, server.Config{DataDir: dir})
	if got := infoItems(t, ts2); got != 35 {
		t.Fatalf("restarted post-reload item count %d, want 35", got)
	}

	// Dimension changes are rejected.
	if err := srv.Reload(persistItems(10, 5, rand.New(rand.NewSource(23))), core.Options{}); err == nil {
		t.Fatal("reload accepted a matrix with the wrong dimensionality")
	}
}
