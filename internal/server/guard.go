package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"fexipro/internal/obs"
)

// This file is the server's production guard stack. Ordering (outermost
// first) is fixed in Handler():
//
//	observe → recoverPanics → shedLoad → withTimeout → mux
//
// observe stays outermost so every outcome — shed, timeout, panic — is
// traced, logged, and counted. recoverPanics sits above the shed so a
// panicking handler still releases its concurrency slot (the release is
// deferred) and the 500 is observed. shedLoad rejects before withTimeout
// so a shed request never arms a timer or touches the index. The
// deadline itself is enforced cooperatively: scan loops poll the request
// context every search.CheckStride items and return partial results with
// search.ErrDeadline, which the handlers map to 504 (or a 200 flagged
// "exact": false under Config.PartialOnDeadline).

// TimeoutHeader lets a client tighten (or, within Config.MaxTimeout,
// set) the per-request deadline in milliseconds.
const TimeoutHeader = "X-Timeout-Ms"

// guardedPath reports whether the guard stack (shedding, timeouts,
// per-request faults) applies to a path. Health, readiness, metrics,
// and pprof must keep answering even when the serving path is saturated
// — that is the entire point of having them.
func guardedPath(p string) bool {
	return strings.HasPrefix(p, "/v1/") && p != "/v1/healthz"
}

// SetReady flips the readiness gate served at /readyz and mirrored by
// the fexserve_ready gauge. NewWithConfig marks the server ready once
// the index is built; callers flip it back to false to drain before
// shutdown.
func (s *Server) SetReady(ready bool) {
	s.ready.Store(ready)
	if ready {
		s.readyGauge.Set(1)
	} else {
		s.readyGauge.Set(0)
	}
}

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// recoverPanics converts a handler panic into a 500 carrying the trace
// ID, counts it, and logs the stack. The response is only written when
// the handler had not started one (headers already sent cannot be
// unsent).
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			s.guardPanics.Inc()
			s.log.LogAttrs(r.Context(), slog.LevelError, "panic recovered",
				slog.String("traceId", obs.TraceIDFrom(r.Context())),
				slog.String("path", r.URL.Path),
				slog.String("panic", fmt.Sprint(rec)),
				slog.String("stack", string(debug.Stack())),
			)
			if sw, ok := w.(*statusWriter); !ok || sw.status == 0 {
				httpErrorCode(w, http.StatusInternalServerError, "panic",
					"internal error (trace %s)", obs.TraceIDFrom(r.Context()))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// shedLoad is the concurrency limiter: a buffered-channel semaphore of
// Config.MaxConcurrent slots over the guarded routes. A request that
// cannot take a slot immediately is shed with 429 and Retry-After — the
// index mutex serializes search work anyway, so queueing beyond the
// limit only grows tail latency.
func (s *Server) shedLoad(next http.Handler) http.Handler {
	if s.sem == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !guardedPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.sem <- struct{}{}:
			s.inflight.Add(1)
			defer func() {
				s.inflight.Add(-1)
				<-s.sem
			}()
			next.ServeHTTP(w, r)
		default:
			s.guardSheds.Inc()
			w.Header().Set("Retry-After", "1")
			httpErrorCode(w, http.StatusTooManyRequests, "shed",
				"server at concurrency limit %d, retry later", cap(s.sem))
		}
	})
}

// withTimeout arms the per-request deadline on guarded routes: the
// config default, overridden by a positive integer X-Timeout-Ms header,
// clamped to Config.MaxTimeout. A malformed header is a client error
// (400 bad_timeout), not a silent fallback.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !guardedPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		d := s.cfg.RequestTimeout
		if h := r.Header.Get(TimeoutHeader); h != "" {
			ms, err := strconv.ParseInt(h, 10, 64)
			if err != nil || ms <= 0 {
				httpErrorCode(w, http.StatusBadRequest, "bad_timeout",
					"invalid %s header %q: want a positive integer of milliseconds", TimeoutHeader, h)
				return
			}
			d = time.Duration(ms) * time.Millisecond
		}
		if max := s.cfg.MaxTimeout; max > 0 && (d <= 0 || d > max) {
			d = max
		}
		if d > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// onGuardedCall fires the request-level fault hook for the handler's
// site (when a faults registry is configured) and maps an injected
// failure to a 500. It returns false when the handler must stop.
func (s *Server) onGuardedCall(w http.ResponseWriter, r *http.Request, site string) bool {
	hook := s.cfg.Faults.Hook(site)
	if hook == nil {
		return true
	}
	if err := hook.OnCall(); err != nil {
		httpErrorCode(w, http.StatusInternalServerError, "injected",
			"request failed: %v", err)
		return false
	}
	return true
}

// deadlineOK inspects the error from a context-aware scan. It returns
// true when the handler should write results: a clean completion, or a
// cancellation under PartialOnDeadline (counted as a partial answer).
// Otherwise it writes the 504 and returns false. Every cancellation —
// deadline, client disconnect, injected fault — counts as a timeout.
func (s *Server) deadlineOK(w http.ResponseWriter, r *http.Request, err error) bool {
	if err == nil {
		return true
	}
	s.guardTimeouts.Inc()
	if s.cfg.PartialOnDeadline {
		s.guardPartials.Inc()
		return true
	}
	httpErrorCode(w, http.StatusGatewayTimeout, "deadline",
		"scan cancelled before completion: %v", err)
	return false
}
