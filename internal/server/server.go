// Package server exposes a FEXIPRO dynamic index over HTTP with a small
// JSON API — the retrieval phase of Figure 1 as a deployable service:
//
//	POST   /v1/search          {"vector": [...], "k": 10}
//	POST   /v1/above           {"vector": [...], "threshold": 3.5}
//	POST   /v1/items           {"vector": [...]}            → {"id": n}
//	DELETE /v1/items/{id}
//	GET    /v1/info
//	GET    /v1/healthz
//
// The handler serializes index access with a mutex: FEXIPRO retrievers
// are single-goroutine and the dynamic index mutates on writes. For
// read-heavy deployments, run several replicas of the process or shard
// by item range; the index itself is deterministic and rebuildable from
// the factor file.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Server is the HTTP handler set over one dynamic index.
type Server struct {
	mu  sync.Mutex
	idx *core.DynamicIndex
	dim int
	// MaxK caps per-request k to bound response sizes (default 1000).
	MaxK int
}

// New builds a server over an initial item matrix (rows are items; may
// be empty with a positive dimension) using the given FEXIPRO options.
func New(initial *vec.Matrix, opts core.Options) (*Server, error) {
	idx, err := core.NewDynamicIndex(initial, opts, 0)
	if err != nil {
		return nil, err
	}
	return &Server{idx: idx, dim: initial.Cols, MaxK: 1000}, nil
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/above", s.handleAbove)
	mux.HandleFunc("POST /v1/items", s.handleAddItem)
	mux.HandleFunc("DELETE /v1/items/", s.handleDeleteItem)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type searchRequest struct {
	Vector    []float64 `json:"vector"`
	K         int       `json:"k"`
	Threshold *float64  `json:"threshold"`
}

type resultJSON struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

type searchResponse struct {
	Results    []resultJSON `json:"results"`
	TookMicros int64        `json:"tookMicros"`
	Stats      statsJSON    `json:"stats"`
}

type statsJSON struct {
	Scanned      int `json:"scanned"`
	Pruned       int `json:"pruned"`
	FullProducts int `json:"fullProducts"`
}

func toStatsJSON(st search.Stats) statsJSON {
	return statsJSON{
		Scanned: st.Scanned,
		Pruned: st.PrunedByLength + st.PrunedByIntHead + st.PrunedByIntFull +
			st.PrunedByIncremental + st.PrunedByMonotone,
		FullProducts: st.FullProducts,
	}
}

func (s *Server) decodeVector(w http.ResponseWriter, r *http.Request, req *searchRequest) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	if len(req.Vector) != s.dim {
		httpError(w, http.StatusBadRequest, "vector has %d dims, index has %d", len(req.Vector), s.dim)
		return false
	}
	for i, v := range req.Vector {
		if isNaNOrInf(v) {
			httpError(w, http.StatusBadRequest, "vector[%d] is not finite", i)
			return false
		}
	}
	return true
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !s.decodeVector(w, r, &req) {
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	if req.K > s.MaxK {
		httpError(w, http.StatusBadRequest, "k %d exceeds maximum %d", req.K, s.MaxK)
		return
	}
	start := time.Now()
	s.mu.Lock()
	results := s.idx.Search(req.Vector, req.K)
	st := s.idx.Stats()
	s.mu.Unlock()
	writeJSON(w, searchResponse{
		Results:    toResultsJSON(results),
		TookMicros: time.Since(start).Microseconds(),
		Stats:      toStatsJSON(st),
	})
}

func (s *Server) handleAbove(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !s.decodeVector(w, r, &req) {
		return
	}
	if req.Threshold == nil || isNaNOrInf(*req.Threshold) {
		httpError(w, http.StatusBadRequest, "a finite threshold is required")
		return
	}
	start := time.Now()
	s.mu.Lock()
	results := s.idx.SearchAbove(req.Vector, *req.Threshold)
	st := s.idx.Stats()
	s.mu.Unlock()
	if len(results) > s.MaxK {
		results = results[:s.MaxK] // keep responses bounded
	}
	writeJSON(w, searchResponse{
		Results:    toResultsJSON(results),
		TookMicros: time.Since(start).Microseconds(),
		Stats:      toStatsJSON(st),
	})
}

type addItemRequest struct {
	Vector []float64 `json:"vector"`
}

func (s *Server) handleAddItem(w http.ResponseWriter, r *http.Request) {
	var req addItemRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Vector) != s.dim {
		httpError(w, http.StatusBadRequest, "vector has %d dims, index has %d", len(req.Vector), s.dim)
		return
	}
	for i, v := range req.Vector {
		if isNaNOrInf(v) {
			httpError(w, http.StatusBadRequest, "vector[%d] is not finite", i)
			return
		}
	}
	s.mu.Lock()
	id, err := s.idx.Add(req.Vector)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "add failed: %v", err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]int{"id": id})
}

func (s *Server) handleDeleteItem(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/items/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad item id %q", idStr)
		return
	}
	s.mu.Lock()
	err = s.idx.Delete(id)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := s.idx.Len()
	s.mu.Unlock()
	writeJSON(w, map[string]any{"items": n, "dim": s.dim})
}

func toResultsJSON(rs []topk.Result) []resultJSON {
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{ID: r.ID, Score: r.Score}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing recoverable remains.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck
}

func isNaNOrInf(v float64) bool {
	return v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308
}
