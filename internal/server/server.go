// Package server exposes a FEXIPRO dynamic index over HTTP with a small
// JSON API — the retrieval phase of Figure 1 as a deployable service:
//
//	POST   /v1/search          {"vector": [...], "k": 10}
//	POST   /v1/above           {"vector": [...], "threshold": 3.5}
//	POST   /v1/items           {"vector": [...]}            → {"id": n}
//	DELETE /v1/items/{id}
//	GET    /v1/info
//	GET    /v1/plan            query-planner decisions (Config.Method "auto")
//	GET    /v1/healthz
//	GET    /metrics            Prometheus text exposition
//	GET    /debug/pprof/       (opt-in via Config.EnablePprof)
//
// Every request is assigned (or propagates) an X-Trace-Id, is measured
// into the metrics registry, and emits one structured log line carrying
// the trace ID, latency, and — for search requests — k plus the
// per-pruning-stage counters of the paper's Tables 3/7.
//
// The handler serializes index access with a mutex: FEXIPRO retrievers
// are single-goroutine and the dynamic index mutates on writes. For
// read-heavy deployments, run several replicas of the process or shard
// by item range; the index itself is deterministic and rebuildable from
// the factor file.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/faults"
	"fexipro/internal/obs"
	"fexipro/internal/plan"
	"fexipro/internal/search"
	"fexipro/internal/snap"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Config tunes the observability and limits of a Server. The zero value
// is usable: a private metrics registry, a no-op logger, pprof off, no
// timeout, no concurrency limit.
type Config struct {
	// Metrics receives all server and search metrics. Nil allocates a
	// private registry (still served at /metrics).
	Metrics *obs.Registry
	// Logger receives one structured line per request. Nil discards.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// MaxK caps per-request k to bound response sizes (default 1000).
	MaxK int

	// RequestTimeout is the default per-request deadline applied to /v1/
	// routes; 0 disables. Clients may override per request with the
	// X-Timeout-Ms header.
	RequestTimeout time.Duration
	// MaxTimeout caps the effective deadline (default + header); 0 means
	// uncapped. A header value above the cap is clamped, not rejected.
	MaxTimeout time.Duration
	// MaxConcurrent bounds in-flight /v1/ requests; excess requests are
	// shed immediately with 429 and a Retry-After header. 0 disables.
	MaxConcurrent int
	// PartialOnDeadline makes /v1/search and /v1/above answer a deadline
	// expiry with 200 and the best-so-far results flagged "exact": false
	// instead of 504.
	PartialOnDeadline bool
	// Faults, when non-nil, is consulted per request for injected faults
	// at the faults.SiteServerSearch / SiteServerMutate / SiteScan sites.
	// Production servers leave it nil, which costs one nil check.
	//lint:ignore apiparity test-only injection surface, deliberately unreachable from flags
	Faults *faults.Registry

	// Method selects the retrieval strategy for /v1/search. Empty or
	// "fexipro" serves every search from the dynamic FEXIPRO index.
	// "auto" enables the cost-based query planner (DESIGN.md §16): each
	// search is routed to whichever exact candidate — the FEXIPRO index
	// or an exhaustive live-catalog scan — the calibrated cost model
	// predicts cheaper, with decisions exported as
	// fexipro_plan_decisions_total{method,reason} and GET /v1/plan.
	// Results are exact either way; a misprediction is slow, never wrong.
	Method string

	// Shards splits the dynamic index into that many independent catalog
	// shards (DESIGN.md §11): a single Add or Delete only ever rebuilds
	// the one shard owning the item, and each search fans out across the
	// shards through the sharded execution engine before merging into
	// the exact global top-k. Values ≤ 1 keep the monolithic index.
	Shards int
	// SearchWorkers bounds the per-query goroutine pool when Shards > 1
	// (≤ 0 means GOMAXPROCS, clamped to Shards). Ignored for Shards ≤ 1.
	SearchWorkers int

	// DataDir, when non-empty, enables persistence (DESIGN.md §15): boot
	// loads <dir>/current.snap and replays <dir>/dyn.wal instead of
	// rebuilding the index (a fresh directory is initialized from the
	// initial matrix and checkpointed), and every acknowledged mutation
	// is appended to the WAL before the response is sent. When a
	// snapshot exists it is authoritative: its options and shard count
	// win over the flags, and a dimensionality mismatch with the initial
	// matrix is a startup error.
	DataDir string
	// CheckpointEvery writes a fresh snapshot and truncates the WAL
	// after that many acknowledged mutations; 0 checkpoints only on
	// shutdown and reload. Requires DataDir.
	CheckpointEvery int
	// WALSyncEvery fsyncs the WAL on every Nth append (default 1 =
	// every append). Values > 1 batch fsyncs: higher mutation
	// throughput, but a crash may lose up to N-1 acknowledged records.
	WALSyncEvery int

	// Trace enables per-query span collection (DESIGN.md §13): every
	// /v1/ search and mutation gets a span tree — transform, per-shard
	// scans (with queue-wait and steal provenance), merge, rebuilds —
	// recorded into the slow-query ring served at GET /debug/queries
	// and summarized on the request log line. Off, queries pay only a
	// nil context lookup.
	Trace bool
	// SlowQuery is the minimum duration a traced query must take to
	// enter the /debug/queries ring; 0 records every traced query.
	SlowQuery time.Duration
	// TraceRingSize caps how many completed span trees /debug/queries
	// retains (default 128).
	TraceRingSize int
	// SLOs are the latency objectives whose violations are counted by
	// fexserve_slo_violations_total{objective}; a search or above-t
	// request finishing later than an objective burns it. Nil selects
	// DefaultSLOs.
	SLOs []time.Duration
}

// DefaultSLOs are the latency objectives used when Config.SLOs is nil,
// spanning the envelope of Figure 9's per-query latencies: an
// interactive bar, a comfortable bar, and a "something is wrong" bar.
var DefaultSLOs = []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 250 * time.Millisecond}

// Sliding-window shape for the fexipro_search_latency_window_seconds
// quantile gauges: 6 slots of 10s — /metrics answers "how slow are
// searches NOW" over the trailing ~1 minute.
const (
	windowSlots   = 6
	windowSlotDur = 10 * time.Second
)

// Server is the HTTP handler set over one dynamic index.
//
// Lock hierarchy: Server.mu is the outermost lock. While holding it the
// handlers append to the WAL, consult the fault registry, and record
// span attributes — each of which takes its own (leaf) mutex. The
// declarations below are enforced by fexlint's lockorder analyzer and
// mirrored at runtime by TestAcquisitionOrderUnderConcurrentLoad;
// never acquire Server.mu while holding any of these.
//
//fex:lockorder server.Server.mu < snap.WAL.mu
//fex:lockorder server.Server.mu < faults.Registry.mu
//fex:lockorder server.Server.mu < faults.Hook.mu
//fex:lockorder server.Server.mu < obs.Span.mu
type Server struct {
	mu  sync.Mutex
	idx *core.DynamicIndex
	dim int
	// MaxK caps per-request k to bound response sizes (default 1000).
	MaxK int

	cfg      Config
	reg      *obs.Registry
	log      *slog.Logger
	rec      *obs.SearchRecorder
	reqTotal func(method, route, status string) *obs.Counter
	reqDur   func(route string) *obs.Histogram
	adds     *obs.Counter
	deletes  *obs.Counter
	items    *obs.Gauge

	// Tracing + SLO state (DESIGN.md §13).
	start       time.Time
	ring        *obs.TraceRing
	window      *obs.Window
	sloObjs     []time.Duration
	sloCounters []*obs.Counter
	uptime      *obs.Gauge
	quantiles   []*obs.Gauge // one per obs.WindowQuantiles entry

	// Query planner state (Config.Method == "auto"); nil otherwise.
	planner *plan.Planner

	// Persistence state (see persist.go); wal is nil without DataDir.
	wal             *snap.WAL
	dataDir         string
	checkpointEvery int
	sinceCheckpoint int // acknowledged mutations since the last checkpoint (under mu)
	reloading       atomic.Bool
	snapLoad        *obs.Gauge
	snapSave        *obs.Gauge
	walRecords      *obs.Counter
	walReplays      *obs.Counter

	// Guard stack (see guard.go).
	sem           chan struct{} // nil when MaxConcurrent == 0
	ready         atomic.Bool
	guardSheds    *obs.Counter
	guardTimeouts *obs.Counter
	guardPartials *obs.Counter
	guardPanics   *obs.Counter
	inflight      *obs.Gauge
	readyGauge    *obs.Gauge
}

// New builds a server over an initial item matrix (rows are items; may
// be empty with a positive dimension) using the given FEXIPRO options
// and default observability (private registry, discarded logs).
func New(initial *vec.Matrix, opts core.Options) (*Server, error) {
	return NewWithConfig(initial, opts, Config{})
}

// NewWithConfig builds a server with explicit observability wiring.
func NewWithConfig(initial *vec.Matrix, opts core.Options, cfg Config) (*Server, error) {
	methodName, merr := validateMethod(cfg.Method)
	if merr != nil {
		return nil, merr
	}
	cfg.Method = methodName
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	var (
		idx  *core.DynamicIndex
		boot *persistBoot
		err  error
	)
	if cfg.DataDir != "" {
		idx, boot, err = openPersistence(cfg, initial, opts, shards)
	} else {
		idx, err = core.NewDynamicIndexSharded(initial, opts, 0, shards, cfg.SearchWorkers)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 1000
	}
	reg := cfg.Metrics
	s := &Server{
		idx:  idx,
		dim:  idx.Dim(),
		MaxK: cfg.MaxK,
		cfg:  cfg,
		reg:  reg,
		log:  cfg.Logger,
		rec:  obs.NewSearchRecorder(reg, opts.Variant()),
		adds: reg.Counter("fexserve_items_added_total",
			"Items inserted through POST /v1/items."),
		deletes: reg.Counter("fexserve_items_deleted_total",
			"Items retired through DELETE /v1/items/{id}."),
		items: reg.Gauge("fexserve_index_items",
			"Live items currently in the index."),
	}
	s.reqTotal = func(method, route, status string) *obs.Counter {
		return reg.Counter("fexserve_http_requests_total",
			"HTTP requests served, by method, route, and status class.",
			obs.L("method", method), obs.L("route", route), obs.L("status", status))
	}
	s.reqDur = func(route string) *obs.Histogram {
		return reg.Histogram("fexserve_http_request_duration_seconds",
			"End-to-end HTTP request latency in seconds.", nil, obs.L("route", route))
	}
	s.items.Set(float64(idx.Len()))

	// Tracing, windowed quantiles, and SLO burn counters (§13).
	s.start = time.Now()
	obs.RegisterBuildInfo(reg)
	s.uptime = reg.Gauge("fexserve_uptime_seconds",
		"Seconds since the server finished its initial index build (refreshed at scrape).")
	ringSize := cfg.TraceRingSize
	if ringSize <= 0 {
		ringSize = 128
	}
	s.ring = obs.NewTraceRing(ringSize)
	s.window = obs.NewWindow(windowSlots, windowSlotDur, nil)
	for _, q := range obs.WindowQuantiles {
		s.quantiles = append(s.quantiles, reg.Gauge(obs.MetricSearchLatencyWindow,
			"Search latency quantiles over the trailing sliding window (seconds), refreshed at scrape.",
			obs.L("quantile", strconv.FormatFloat(q, 'g', -1, 64))))
	}
	s.sloObjs = cfg.SLOs
	if s.sloObjs == nil {
		s.sloObjs = DefaultSLOs
	}
	for _, obj := range s.sloObjs {
		s.sloCounters = append(s.sloCounters, reg.Counter(obs.MetricSLOViolations,
			"Search requests finishing above a latency objective (SLO burn).",
			obs.L("objective", obj.String())))
	}
	if idx.Shards() > 1 {
		// Per-shard scan wall time (fexipro_shard_scan_seconds), labeled
		// by shard index; the per-shard stage counters already flow into
		// the cumulative SearchRecorder totals via the engine's merge.
		// idx.Shards() rather than cfg.Shards: a recovered snapshot's
		// shard count is authoritative.
		idx.SetShardObserver(obs.ShardScanObserver(reg, opts.Variant()))
	}

	// Persistence wiring (persist.go): WAL handle, checkpoint cadence,
	// and the §15 metrics, primed with what boot already did.
	if boot != nil {
		s.wal = boot.wal
		s.wal.SetFaultHook(cfg.Faults.Hook(faults.SiteWALWrite))
		s.dataDir = cfg.DataDir
		s.checkpointEvery = cfg.CheckpointEvery
		s.snapLoad = reg.Gauge(obs.MetricSnapshotLoad,
			"Wall time of the boot snapshot load + WAL replay (0 when the index was built, not loaded).")
		s.snapSave = reg.Gauge(obs.MetricSnapshotSave,
			"Wall time of the most recent snapshot checkpoint.")
		s.walRecords = reg.Counter(obs.MetricWALRecords,
			"Acknowledged mutations appended to the write-ahead log.")
		s.walReplays = reg.Counter(obs.MetricWALReplays,
			"WAL records replayed into the index during boot recovery.")
		if boot.loaded {
			s.snapLoad.Set(boot.loadDur.Seconds())
		} else {
			s.snapSave.Set(boot.saveDur.Seconds())
		}
		s.walReplays.Add(int64(boot.replayed))
	}

	// Guard stack wiring (middleware in guard.go).
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	s.guardSheds = reg.Counter("fexserve_guard_sheds_total",
		"Requests shed with 429 by the concurrency limiter.")
	s.guardTimeouts = reg.Counter("fexserve_guard_timeouts_total",
		"Search scans cancelled by a deadline or injected fault.")
	s.guardPartials = reg.Counter("fexserve_guard_partials_total",
		"Deadline-expired searches answered 200 with partial (inexact) results.")
	s.guardPanics = reg.Counter("fexserve_guard_panics_total",
		"Handler panics recovered into 500 responses.")
	s.inflight = reg.Gauge("fexserve_inflight_requests",
		"Guarded /v1/ requests currently being served.")
	s.readyGauge = reg.Gauge("fexserve_ready",
		"1 when the index is built and the server accepts traffic, else 0.")

	// Query planner (plan.go): built over the serving index, primed from
	// any checkpointed calibration in the data directory.
	if cfg.Method == methodAuto {
		if err := s.initPlannerLocked(opts); err != nil {
			return nil, err
		}
		s.loadPlanCalibration()
	}
	s.SetReady(true) // the index build above succeeded
	return s, nil
}

// Metrics returns the registry the server reports into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the route multiplexer wrapped with the tracing,
// logging, and metrics middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/above", s.handleAbove)
	mux.HandleFunc("POST /v1/items", s.handleAddItem)
	mux.HandleFunc("DELETE /v1/items/", s.handleDeleteItem)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	mux.Handle("GET /metrics", s.metricsHandler())
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Guard ordering (outermost first): observe assigns the trace ID and
	// records metrics/logs for whatever status the inner layers produce;
	// recoverPanics turns panics into 500s (so they are observed);
	// shedLoad rejects excess concurrency before any work; withTimeout
	// arms the per-request deadline last, so shed requests never consume
	// a timer. See DESIGN.md "Robustness".
	return s.observe(s.recoverPanics(s.shedLoad(s.withTimeout(mux))))
}

// reqInfo is filled in by handlers so the middleware can log
// search-specific fields (k, per-stage counters, span-stage timings)
// without re-plumbing every handler's return path.
type reqInfo struct {
	k        int
	stats    obs.StageCounters
	hasStats bool

	// Span-stage summary (tracing enabled only).
	hasSpans  bool
	transform time.Duration
	scan      time.Duration
	merge     time.Duration
	rebuild   time.Duration
}

type reqInfoKey struct{}

// statusWriter captures the response status for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// observe is the middleware: trace-ID assignment/propagation, request
// metrics, and one structured log line per request.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(traceID) {
			traceID = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, traceID)

		info := &reqInfo{}
		ctx := obs.WithTraceID(r.Context(), traceID)
		ctx = context.WithValue(ctx, reqInfoKey{}, info)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		took := time.Since(start)

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := routeLabel(r)
		s.reqTotal(r.Method, route, statusClass(sw.status)).Inc()
		s.reqDur(route).Observe(took.Seconds())

		attrs := []slog.Attr{
			slog.String("traceId", traceID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int64("tookMicros", took.Microseconds()),
		}
		if info.hasStats {
			st := info.stats
			attrs = append(attrs,
				slog.Int("k", info.k),
				slog.Group("stages",
					slog.Int("scanned", st.Scanned),
					slog.Int("prunedByLength", st.PrunedByLength),
					slog.Int("prunedByIntHead", st.PrunedByIntHead),
					slog.Int("prunedByIntFull", st.PrunedByIntFull),
					slog.Int("prunedByIncremental", st.PrunedByIncremental),
					slog.Int("prunedByMonotone", st.PrunedByMonotone),
					slog.Int("fullProducts", st.FullProducts),
				),
			)
		}
		if info.hasSpans {
			attrs = append(attrs, slog.Group("spans",
				slog.Int64("transformMicros", info.transform.Microseconds()),
				slog.Int64("scanMicros", info.scan.Microseconds()),
				slog.Int64("mergeMicros", info.merge.Microseconds()),
				slog.Int64("rebuildMicros", info.rebuild.Microseconds()),
			))
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}

// routeLabel maps the request onto a bounded label set so metric
// cardinality cannot grow with URL contents.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/search":
		return "/v1/search"
	case p == "/v1/above":
		return "/v1/above"
	case p == "/v1/items":
		return "/v1/items"
	case strings.HasPrefix(p, "/v1/items/"):
		return "/v1/items/{id}"
	case p == "/v1/info":
		return "/v1/info"
	case p == "/v1/plan":
		return "/v1/plan"
	case p == "/v1/healthz" || p == "/healthz":
		return "/healthz"
	case p == "/readyz":
		return "/readyz"
	case p == "/metrics":
		return "/metrics"
	case p == "/debug/queries":
		return "/debug/queries"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	}
	return "other"
}

func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	}
	return "5xx"
}

type searchRequest struct {
	Vector    []float64 `json:"vector"`
	K         int       `json:"k"`
	Threshold *float64  `json:"threshold"`
}

type resultJSON struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

type searchResponse struct {
	Results    []resultJSON      `json:"results"`
	TookMicros int64             `json:"tookMicros"`
	TraceID    string            `json:"traceId,omitempty"`
	Stats      obs.StageCounters `json:"stats"`
	// Exact is true only when the scan ran to completion: a deadline
	// expiry answered with partial results (Config.PartialOnDeadline)
	// reports false, and the result set may be missing items.
	Exact bool `json:"exact"`
}

func (s *Server) decodeVector(w http.ResponseWriter, r *http.Request, req *searchRequest) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	if len(req.Vector) != s.dim {
		httpError(w, http.StatusBadRequest, "vector has %d dims, index has %d", len(req.Vector), s.dim)
		return false
	}
	for i, v := range req.Vector {
		if isNaNOrInf(v) {
			httpError(w, http.StatusBadRequest, "vector[%d] is not finite", i)
			return false
		}
	}
	return true
}

// noteSearch records a completed search into the cumulative metrics,
// the sliding latency window, and the SLO burn counters, and exposes
// its counters to the logging middleware.
func (s *Server) noteSearch(r *http.Request, k int, st search.Stats, took time.Duration) obs.StageCounters {
	sc := obs.StageCountersFrom(st)
	s.rec.RecordSearch(st, took.Seconds())
	s.window.Observe(took.Seconds())
	for i, obj := range s.sloObjs {
		if took > obj {
			s.sloCounters[i].Inc()
		}
	}
	if info, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
		info.k = k
		info.stats = sc
		info.hasStats = true
	}
	return sc
}

// searchLocked serializes index access around fn, releasing the mutex
// even when an injected fault panics mid-scan (the deferred unlock is
// what keeps a recovered panic from deadlocking every later request).
// stats reads the per-query counters of whatever fn drove (the index,
// or the planner's chosen candidate) while still under the lock. The
// scan-site fault hook is re-read per call so tests can Enable or
// Disable it between requests; it covers the planner's live-scan
// candidate too (LiveScan shares the index's hook).
func (s *Server) searchLocked(fn func() ([]topk.Result, error), stats func() search.Stats) ([]topk.Result, search.Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.SetFaultHook(s.cfg.Faults.Hook(faults.SiteScan))
	// fn is always one index scan whose runtime is bounded by the
	// request deadline: the context threaded into it fires ErrDeadline
	// and the scan returns, so the hold time is capped by MaxTimeout.
	//lint:ignore lockhold fn is a deadline-bounded index scan (DESIGN.md §10)
	res, err := fn()
	//lint:ignore lockhold stats copies in-memory counters; no blocking
	return res, stats(), err
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !s.onGuardedCall(w, r, faults.SiteServerSearch) {
		return
	}
	var req searchRequest
	if !s.decodeVector(w, r, &req) {
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, "k must be positive, got %d", req.K)
		return
	}
	if req.K > s.MaxK {
		httpError(w, http.StatusBadRequest, "k %d exceeds maximum %d", req.K, s.MaxK)
		return
	}
	r, root := s.traceStart(r, "search")
	start := time.Now()
	var dec plan.Decision
	results, st, err := s.searchLocked(func() ([]topk.Result, error) {
		if s.planner != nil {
			res, serr := s.planner.SearchContext(r.Context(), req.Vector, req.K)
			dec = s.planner.LastDecision() // still under s.mu: this query's decision
			return res, serr
		}
		return s.idx.SearchContext(r.Context(), req.Vector, req.K)
	}, func() search.Stats {
		if s.planner != nil {
			return s.planner.Stats()
		}
		return s.idx.Stats()
	})
	took := time.Since(start)
	if s.planner != nil {
		root.AttrStr("plan.method", dec.Method)
		root.AttrStr("plan.reason", dec.Reason)
		root.AttrInt("plan.predicted_us", int64(dec.Predicted*1e6))
	}
	sc := s.noteSearch(r, req.K, st, took)
	s.traceFinish(r, root, "search", req.K, took, err == nil, &sc)
	if !s.deadlineOK(w, r, err) {
		return
	}
	writeJSON(w, searchResponse{
		Results:    toResultsJSON(results),
		TookMicros: took.Microseconds(),
		TraceID:    obs.TraceIDFrom(r.Context()),
		Stats:      sc,
		Exact:      err == nil,
	})
}

func (s *Server) handleAbove(w http.ResponseWriter, r *http.Request) {
	if !s.onGuardedCall(w, r, faults.SiteServerSearch) {
		return
	}
	var req searchRequest
	if !s.decodeVector(w, r, &req) {
		return
	}
	if req.Threshold == nil || isNaNOrInf(*req.Threshold) {
		httpError(w, http.StatusBadRequest, "a finite threshold is required")
		return
	}
	r, root := s.traceStart(r, "above")
	start := time.Now()
	// Above-threshold retrieval always uses the index: the planner only
	// arbitrates top-k, where the scan-vs-index tradeoff is per query.
	results, st, err := s.searchLocked(func() ([]topk.Result, error) {
		return s.idx.SearchAboveContext(r.Context(), req.Vector, *req.Threshold)
	}, func() search.Stats { return s.idx.Stats() })
	took := time.Since(start)
	sc := s.noteSearch(r, 0, st, took)
	s.traceFinish(r, root, "above", 0, took, err == nil, &sc)
	if !s.deadlineOK(w, r, err) {
		return
	}
	if len(results) > s.MaxK {
		results = results[:s.MaxK] // keep responses bounded
	}
	writeJSON(w, searchResponse{
		Results:    toResultsJSON(results),
		TookMicros: took.Microseconds(),
		TraceID:    obs.TraceIDFrom(r.Context()),
		Stats:      sc,
		Exact:      err == nil,
	})
}

type addItemRequest struct {
	Vector []float64 `json:"vector"`
}

func (s *Server) handleAddItem(w http.ResponseWriter, r *http.Request) {
	if !s.onGuardedCall(w, r, faults.SiteServerMutate) {
		return
	}
	var req addItemRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Vector) != s.dim {
		httpError(w, http.StatusBadRequest, "vector has %d dims, index has %d", len(req.Vector), s.dim)
		return
	}
	for i, v := range req.Vector {
		if isNaNOrInf(v) {
			httpError(w, http.StatusBadRequest, "vector[%d] is not finite", i)
			return
		}
	}
	if s.reloading.Load() {
		httpErrorCode(w, http.StatusServiceUnavailable, "reloading", "catalog reload in progress; retry shortly")
		return
	}
	r, root := s.traceStart(r, "add")
	start := time.Now()
	s.mu.Lock()
	id, err := s.idx.AddContext(r.Context(), req.Vector)
	var ckptErr error
	if err == nil {
		// Apply-then-log under one lock: the WAL record is written only
		// for mutations that took effect, and the request is acknowledged
		// only after the record is durable (persist.go).
		ckptErr, err = s.logMutationLocked(snap.WALAdd, id, req.Vector)
	}
	n := s.idx.Len()
	s.mu.Unlock()
	if ckptErr != nil {
		s.log.Error("periodic checkpoint failed", "err", ckptErr)
	}
	s.traceFinish(r, root, "add", 0, time.Since(start), err == nil, nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "add failed: %v", err)
		return
	}
	s.adds.Inc()
	s.items.Set(float64(n))
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]int{"id": id})
}

func (s *Server) handleDeleteItem(w http.ResponseWriter, r *http.Request) {
	if !s.onGuardedCall(w, r, faults.SiteServerMutate) {
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/items/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad item id %q", idStr)
		return
	}
	if s.reloading.Load() {
		httpErrorCode(w, http.StatusServiceUnavailable, "reloading", "catalog reload in progress; retry shortly")
		return
	}
	r, root := s.traceStart(r, "delete")
	start := time.Now()
	s.mu.Lock()
	err = s.idx.DeleteContext(r.Context(), id)
	var walErr, ckptErr error
	if err == nil {
		ckptErr, walErr = s.logMutationLocked(snap.WALDelete, id, nil)
	}
	n := s.idx.Len()
	s.mu.Unlock()
	if ckptErr != nil {
		s.log.Error("periodic checkpoint failed", "err", ckptErr)
	}
	s.traceFinish(r, root, "delete", 0, time.Since(start), err == nil && walErr == nil, nil)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	if walErr != nil {
		httpError(w, http.StatusInternalServerError, "delete failed: %v", walErr)
		return
	}
	s.deletes.Inc()
	s.items.Set(float64(n))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := s.idx.Len()
	s.mu.Unlock()
	writeJSON(w, map[string]any{"items": n, "dim": s.dim, "shards": s.idx.Shards(), "method": s.cfg.Method})
}

func toResultsJSON(rs []topk.Result) []resultJSON {
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{ID: r.ID, Score: r.Score}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing recoverable remains.
		return
	}
}

// errorResponse is the JSON body of every non-2xx answer: a
// human-readable message, a stable machine-readable code, and the
// request's trace ID for log correlation.
type errorResponse struct {
	Error   string `json:"error"`
	Code    string `json:"code"`
	TraceID string `json:"traceId,omitempty"`
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	httpErrorCode(w, status, defaultErrorCode(status), format, args...)
}

func httpErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Best-effort: the status code is already on the wire. The trace ID
	// header was set by the observe middleware before any handler ran.
	_ = json.NewEncoder(w).Encode(errorResponse{
		Error:   fmt.Sprintf(format, args...),
		Code:    code,
		TraceID: w.Header().Get(obs.TraceHeader),
	})
}

func defaultErrorCode(status int) string {
	switch {
	case status == http.StatusBadRequest:
		return "bad_request"
	case status == http.StatusNotFound:
		return "not_found"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status == http.StatusGatewayTimeout:
		return "deadline"
	case status >= 500:
		return "internal"
	}
	return "error"
}

func isNaNOrInf(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}
