package server_test

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/faults"
	"fexipro/internal/server"
	"fexipro/internal/vec"
)

// newGuardedServer builds a server with an explicit guard config and a
// fault registry, over a seeded random index.
func newGuardedServer(t *testing.T, n, d int, cfg server.Config) (*httptest.Server, *server.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	items := vec.NewMatrix(n, d)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	srv, err := server.NewWithConfig(items, core.Options{SVD: true, Int: true, Reduction: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func searchBody() string { return `{"vector": [1,0,0,0,0,0,0,0], "k": 5}` }

func doSearch(t *testing.T, url string, headers map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/search", strings.NewReader(searchBody()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	return resp, string(raw)
}

// TestShedLoad: with one concurrency slot and an injected per-call stall
// long enough to pile clients up, the excess is shed with 429, a
// Retry-After header, and code "shed" — and the shed counter matches.
func TestShedLoad(t *testing.T) {
	reg := faults.NewRegistry(1)
	reg.Enable(faults.SiteServerSearch, faults.Plan{CallLatency: 50 * time.Millisecond})
	ts, srv := newGuardedServer(t, 200, 8, server.Config{
		MaxConcurrent: 1,
		Faults:        reg,
	})

	const clients = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := doSearch(t, ts.URL, nil)
			mu.Lock()
			statuses[resp.StatusCode]++
			mu.Unlock()
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
				if !strings.Contains(body, `"code":"shed"`) {
					t.Errorf("429 body missing shed code: %s", body)
				}
			}
		}()
	}
	wg.Wait()

	if statuses[200] == 0 {
		t.Fatalf("no request succeeded: %v", statuses)
	}
	if statuses[429] == 0 {
		t.Fatalf("nothing was shed despite 1 slot and %d clients: %v", clients, statuses)
	}
	if got := srv.Metrics().Snapshot()["fexserve_guard_sheds_total"]; int(got) != statuses[429] {
		t.Fatalf("shed counter %v != observed 429s %d", got, statuses[429])
	}
	// Health stays reachable even while the serving path is saturated.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz = %v, %v", resp, err)
	}
	_ = resp.Body.Close()
}

// TestDeadline504 is the server-level acceptance criterion: a request
// carrying a 1 ms X-Timeout-Ms against an index whose scan is stalled by
// an injected fault answers 504 code "deadline" well under 10 ms of scan
// work, and the timeout counter advances.
func TestDeadline504(t *testing.T) {
	reg := faults.NewRegistry(2)
	// One 2 ms stall at scan item 0: the 1 ms deadline is expired by the
	// very first poll, whatever the machine load.
	reg.Enable(faults.SiteScan, faults.Plan{
		ItemLatency:      2 * time.Millisecond,
		ItemLatencyEvery: 1 << 30,
	})
	ts, srv := newGuardedServer(t, 5000, 8, server.Config{Faults: reg})

	resp, body := doSearch(t, ts.URL, map[string]string{server.TimeoutHeader: "1"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"code":"deadline"`) {
		t.Fatalf("504 body missing deadline code: %s", body)
	}
	if got := srv.Metrics().Snapshot()["fexserve_guard_timeouts_total"]; got < 1 {
		t.Fatalf("timeout counter = %v, want ≥ 1", got)
	}
	// Without deadline pressure the same index answers 200 and exact.
	reg.Disable(faults.SiteScan)
	resp2, body2 := doSearch(t, ts.URL, nil)
	if resp2.StatusCode != 200 || !strings.Contains(body2, `"exact":true`) {
		t.Fatalf("recovered search = %d %s", resp2.StatusCode, body2)
	}
}

// TestPartialOnDeadline: the same expiry under Config.PartialOnDeadline
// answers 200 with "exact": false and counts a partial.
func TestPartialOnDeadline(t *testing.T) {
	reg := faults.NewRegistry(3)
	reg.Enable(faults.SiteScan, faults.Plan{
		ItemLatency:      2 * time.Millisecond,
		ItemLatencyEvery: 1 << 30,
	})
	ts, srv := newGuardedServer(t, 5000, 8, server.Config{
		PartialOnDeadline: true,
		Faults:            reg,
	})

	resp, body := doSearch(t, ts.URL, map[string]string{server.TimeoutHeader: "1"})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"exact":false`) {
		t.Fatalf("partial answer not flagged inexact: %s", body)
	}
	snap := srv.Metrics().Snapshot()
	if snap["fexserve_guard_partials_total"] < 1 || snap["fexserve_guard_timeouts_total"] < 1 {
		t.Fatalf("partial/timeout counters not advanced: %v", snap)
	}
}

// TestPanicRecovery covers both panic sites: a request-level injected
// panic and a scan-level panic raised while the index mutex is held.
// Both must answer 500 code "panic" with a trace ID, advance the panic
// counter, and leave the server serving (the mutex is released by the
// deferred unlock, so a deadlock here would hang the follow-up request).
func TestPanicRecovery(t *testing.T) {
	reg := faults.NewRegistry(4)
	ts, srv := newGuardedServer(t, 200, 8, server.Config{Faults: reg})

	// Site 1: panic in the handler before any index work.
	reg.Enable(faults.SiteServerSearch, faults.Plan{PanicEveryNCalls: 1})
	resp, body := doSearch(t, ts.URL, nil)
	if resp.StatusCode != 500 || !strings.Contains(body, `"code":"panic"`) {
		t.Fatalf("handler panic answered %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("panic response lost the trace ID header")
	}
	reg.Disable(faults.SiteServerSearch)

	// Site 2: panic mid-scan, under the index mutex.
	reg.Enable(faults.SiteScan, faults.Plan{PanicAtItem: 10})
	resp, body = doSearch(t, ts.URL, nil)
	if resp.StatusCode != 500 || !strings.Contains(body, `"code":"panic"`) {
		t.Fatalf("scan panic answered %d %s", resp.StatusCode, body)
	}
	reg.Disable(faults.SiteScan)

	// The server must still answer; a leaked mutex would hang here.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, body := doSearch(t, ts.URL, nil)
		if resp.StatusCode != 200 {
			t.Errorf("post-panic search = %d %s", resp.StatusCode, body)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server deadlocked after recovered panic")
	}
	if got := srv.Metrics().Snapshot()["fexserve_guard_panics_total"]; got != 2 {
		t.Fatalf("panic counter = %v, want 2", got)
	}
}

// TestInjectedCallFailure: FailEveryNCalls surfaces as 500 code
// "injected", distinct from panics and deadlines.
func TestInjectedCallFailure(t *testing.T) {
	reg := faults.NewRegistry(5)
	reg.Enable(faults.SiteServerSearch, faults.Plan{FailEveryNCalls: 1})
	ts, _ := newGuardedServer(t, 100, 8, server.Config{Faults: reg})
	resp, body := doSearch(t, ts.URL, nil)
	if resp.StatusCode != 500 || !strings.Contains(body, `"code":"injected"`) {
		t.Fatalf("injected failure answered %d %s", resp.StatusCode, body)
	}
}

// TestReadyzLifecycle: ready after build, 503 while draining, ready
// again when re-enabled; the gauge mirrors the transitions.
func TestReadyzLifecycle(t *testing.T) {
	ts, srv := newGuardedServer(t, 50, 8, server.Config{})
	get := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := get(); got != 200 {
		t.Fatalf("fresh server readyz = %d", got)
	}
	srv.SetReady(false)
	if got := get(); got != 503 {
		t.Fatalf("draining readyz = %d, want 503", got)
	}
	if v := srv.Metrics().Snapshot()["fexserve_ready"]; v != 0 {
		t.Fatalf("ready gauge = %v while draining", v)
	}
	// Guarded routes keep working while not ready — draining means "stop
	// routing new traffic here", not "drop in-flight work".
	resp, _ := doSearch(t, ts.URL, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("search while draining = %d", resp.StatusCode)
	}
	srv.SetReady(true)
	if got := get(); got != 200 {
		t.Fatalf("re-enabled readyz = %d", got)
	}
}

// TestMaxTimeoutClamp: an absurd client X-Timeout-Ms is clamped to
// Config.MaxTimeout rather than honoured or rejected.
func TestMaxTimeoutClamp(t *testing.T) {
	reg := faults.NewRegistry(6)
	// Stall every item 3 ms: with MaxTimeout 5 ms the clamped deadline
	// expires after a few items even though the client asked for an hour.
	reg.Enable(faults.SiteScan, faults.Plan{
		ItemLatency:      3 * time.Millisecond,
		ItemLatencyEvery: 1,
	})
	ts, _ := newGuardedServer(t, 5000, 8, server.Config{
		MaxTimeout: 5 * time.Millisecond,
		Faults:     reg,
	})
	start := time.Now()
	resp, body := doSearch(t, ts.URL, map[string]string{server.TimeoutHeader: "3600000"})
	took := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if took > 2*time.Second {
		t.Fatalf("clamped request still took %v", took)
	}
}
