package data

import (
	"bytes"
	"math"
	"testing"

	"fexipro/internal/vec"
)

// sameFloatBits reports bit-level equality, treating every NaN payload
// as equal (strconv collapses NaN payloads on the text path).
func sameFloatBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func checkMatrixInvariants(t *testing.T, m *vec.Matrix) {
	t.Helper()
	if m.Rows < 0 || m.Cols < 0 {
		t.Fatalf("negative shape %d×%d", m.Rows, m.Cols)
	}
	if len(m.Data) != m.Rows*m.Cols {
		t.Fatalf("shape %d×%d but %d elements", m.Rows, m.Cols, len(m.Data))
	}
}

// FuzzReadMatrixBinary hammers the FXP1 parser with arbitrary bytes. A
// parse either fails cleanly or yields a structurally sound matrix that
// round-trips bit-for-bit through WriteMatrixBinary. The committed seed
// corpus includes the header-only file that used to trigger a
// multi-gigabyte upfront allocation (rows·cols trusted before any data
// was read).
func FuzzReadMatrixBinary(f *testing.F) {
	var valid bytes.Buffer
	m := vec.FromRows([][]float64{{1.5, -2.25}, {0, math.Inf(1)}})
	if err := WriteMatrixBinary(&valid, m); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("FXP1"))                                     // header truncated
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])               // data truncated
	f.Add([]byte("NOPE\x01\x00\x00\x00\x01\x00\x00\x00"))     // bad magic
	f.Add([]byte("FXP1\xff\xff\xff\xff\xff\xff\xff\xff"))     // implausible shape
	f.Add([]byte("FXP1\xff\xff\xff\x7f\x01\x00\x00\x00"))     // the OOM header
	f.Add([]byte("FXP1\x00\x00\x00\x00\x05\x00\x00\x00"))     // 0×5 empty matrix
	f.Add([]byte("FXP1\x00\x01\x00\x00\x00\x01\x00\x00junk")) // plausible shape, no data

	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadMatrixBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		checkMatrixInvariants(t, got)
		var out bytes.Buffer
		if err := WriteMatrixBinary(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadMatrixBinary(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Rows != got.Rows || again.Cols != got.Cols {
			t.Fatalf("round-trip shape %d×%d != %d×%d", again.Rows, again.Cols, got.Rows, got.Cols)
		}
		for i := range got.Data {
			if math.Float64bits(again.Data[i]) != math.Float64bits(got.Data[i]) {
				t.Fatalf("round-trip element %d: %x != %x",
					i, math.Float64bits(again.Data[i]), math.Float64bits(got.Data[i]))
			}
		}
	})
}

// FuzzReadMatrixCSV feeds arbitrary text to the CSV parser: clean error
// or a structurally sound matrix whose WriteMatrixCSV output parses back
// to the same values (strconv's shortest-form 'g' formatting is exact
// for float64).
func FuzzReadMatrixCSV(f *testing.F) {
	f.Add("1,2,3\n4,5,6\n")
	f.Add("")
	f.Add("\n\n  \n")
	f.Add("1.5e-300,-2.25\n0,NaN\n")
	f.Add("+Inf,-Inf\n1,2\n")
	f.Add("1,2\n3\n")       // ragged rows: must error
	f.Add("a,b\n")          // non-numeric: must error
	f.Add(" 7 , 8 \n")      // whitespace trimming
	f.Add("0x1p-3,1_000\n") // Go-isms ParseFloat accepts/rejects

	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			return // keep the scanner's O(len) work bounded per exec
		}
		got, err := ReadMatrixCSV(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		checkMatrixInvariants(t, got)
		var out bytes.Buffer
		if err := WriteMatrixCSV(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadMatrixCSV(&out)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", out.String(), err)
		}
		// A matrix with zero columns serializes to blank lines, which the
		// parser legitimately skips; shapes only round-trip when there is
		// at least one column.
		if got.Cols == 0 {
			return
		}
		if again.Rows != got.Rows || again.Cols != got.Cols {
			t.Fatalf("round-trip shape %d×%d != %d×%d", again.Rows, again.Cols, got.Rows, got.Cols)
		}
		for i := range got.Data {
			if !sameFloatBits(again.Data[i], got.Data[i]) {
				t.Fatalf("round-trip element %d: %v != %v", i, again.Data[i], got.Data[i])
			}
		}
	})
}
