package data

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"fexipro/internal/vec"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("got %d profiles", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.Items <= 0 || p.Users <= 0 || p.Dim <= 0 || p.BenchItems <= 0 {
			t.Fatalf("profile %q has invalid counts: %+v", p.Name, p)
		}
	}
	for _, want := range []string{"movielens", "yelp", "netflix", "yahoo"} {
		if !names[want] {
			t.Fatalf("missing profile %q", want)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("netflix")
	if err != nil || p.Name != "netflix" {
		t.Fatalf("ProfileByName: %v, %v", p, err)
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	p := MovieLens()
	ds1 := Generate(p, 500, 20, 16)
	ds2 := Generate(p, 500, 20, 16)
	if ds1.Items.Rows != 500 || ds1.Items.Cols != 16 || ds1.Queries.Rows != 20 {
		t.Fatalf("shapes: items %d×%d queries %d", ds1.Items.Rows, ds1.Items.Cols, ds1.Queries.Rows)
	}
	if !ds1.Items.Equal(ds2.Items, 0) || !ds1.Queries.Equal(ds2.Queries, 0) {
		t.Fatal("generation is not deterministic for a fixed profile seed")
	}
	// Defaults kick in for zero arguments.
	ds3 := Generate(Netflix(), 0, 0, 0)
	if ds3.Items.Rows != Netflix().BenchItems || ds3.Items.Cols != 50 {
		t.Fatalf("default generation produced %d×%d", ds3.Items.Rows, ds3.Items.Cols)
	}
}

// Calibration to Figure 3/14: factor values concentrate in [-1, 1].
func TestValueRangeMatchesPaper(t *testing.T) {
	for _, p := range Profiles() {
		ds := Generate(p, 2000, 100, 0)
		inRange := 0
		for _, v := range ds.Items.Data {
			if v >= -1 && v <= 1 {
				inRange++
			}
		}
		frac := float64(inRange) / float64(len(ds.Items.Data))
		if frac < 0.85 {
			t.Errorf("%s: only %.1f%% of item values in [-1,1]", p.Name, 100*frac)
		}
	}
}

// Calibration to Figures 8/9: Netflix must have far less item-norm skew
// than the other profiles.
func TestNetflixNormHomogeneity(t *testing.T) {
	cv := func(p Profile) float64 {
		ds := Generate(p, 3000, 10, 0)
		norms := ds.Items.RowNorms()
		var mean, varSum float64
		for _, n := range norms {
			mean += n
		}
		mean /= float64(len(norms))
		for _, n := range norms {
			varSum += (n - mean) * (n - mean)
		}
		return math.Sqrt(varSum/float64(len(norms))) / mean
	}
	netflix := cv(Netflix())
	for _, p := range []Profile{MovieLens(), Yelp(), Yahoo()} {
		if other := cv(p); other < 1.5*netflix {
			t.Errorf("%s norm CV %.3f not clearly above netflix %.3f", p.Name, other, netflix)
		}
	}
}

// Calibration to Figures 15-17: the prunable profiles must have a
// decaying singular spectrum; netflix a flat one. We check via the
// energy captured by the top quarter of the item covariance eigenvalues,
// approximated by the variance of projections onto the generation axes
// (rotation-invariant check via Gram trace ratios is overkill here; we
// directly measure spectrum decay from squared singular values of the
// matrix using its Gram diagonal after projection-free power iteration).
func TestSpectralDecayOrdering(t *testing.T) {
	topShare := func(p Profile) float64 {
		ds := Generate(p, 2000, 10, 0)
		g := ds.Items.GramLower()
		// Eigenvalue mass via trace and the largest Gershgorin-like
		// estimate: use power iteration for λ₁.
		d := g.Rows
		v := make([]float64, d)
		rng := rand.New(rand.NewSource(1))
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		var lambda float64
		for iter := 0; iter < 200; iter++ {
			nv := g.MulVec(v)
			lambda = vec.Norm(nv)
			if lambda == 0 {
				break
			}
			vec.Scale(nv, 1/lambda)
			v = nv
		}
		var trace float64
		for i := 0; i < d; i++ {
			trace += g.At(i, i)
		}
		return lambda / trace
	}
	nf := topShare(Netflix())
	ml := topShare(MovieLens())
	if ml < 1.3*nf {
		t.Errorf("movielens top-eigenvalue share %.3f not clearly above netflix %.3f", ml, nf)
	}
}

func TestRandomOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 2, 5, 20} {
		m := RandomOrthogonal(d, rng)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				dot := vec.Dot(m.Row(i), m.Row(j))
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-10 {
					t.Fatalf("d=%d: rows %d,%d dot %v, want %v", d, i, j, dot, want)
				}
			}
		}
	}
}

func TestPlantedRatings(t *testing.T) {
	cfg := RatingConfig{Users: 50, Items: 40, Dim: 4, PerUser: 10, Noise: 0.1, Scale: 5, Seed: 3}
	ratings, users, items := PlantedRatings(cfg)
	if users.Rows != 50 || items.Rows != 40 {
		t.Fatalf("factor shapes %d, %d", users.Rows, items.Rows)
	}
	if len(ratings) == 0 {
		t.Fatal("no ratings generated")
	}
	for _, r := range ratings {
		if r.Value < 1 || r.Value > 5 {
			t.Fatalf("rating %v out of [1,5]", r.Value)
		}
		if r.User < 0 || r.User >= 50 || r.Item < 0 || r.Item >= 40 {
			t.Fatalf("rating indices out of range: %+v", r)
		}
	}
	// Roughly PerUser ratings per user on average.
	perUser := float64(len(ratings)) / 50
	if perUser < 5 || perUser > 20 {
		t.Fatalf("average ratings per user %.1f, expected near 10", perUser)
	}
}

func TestSplitRatings(t *testing.T) {
	cfg := RatingConfig{Users: 30, Items: 30, Dim: 3, PerUser: 15, Scale: 5, Seed: 4}
	ratings, _, _ := PlantedRatings(cfg)
	train, test := SplitRatings(ratings, 0.25, 7)
	if len(train)+len(test) != len(ratings) {
		t.Fatal("split lost ratings")
	}
	frac := float64(len(test)) / float64(len(ratings))
	if frac < 0.1 || frac > 0.4 {
		t.Fatalf("test fraction %.2f far from 0.25", frac)
	}
	// Deterministic.
	train2, _ := SplitRatings(ratings, 0.25, 7)
	if len(train2) != len(train) {
		t.Fatal("split not deterministic")
	}
}

func TestMatrixBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := vec.NewMatrix(13, 7)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := WriteMatrixBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestMatrixBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadMatrixBinary(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("expected magic error")
	}
	var buf bytes.Buffer
	m := vec.NewMatrix(2, 2)
	if err := WriteMatrixBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadMatrixBinary(bytes.NewReader(truncated)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestMatrixCSVRoundTrip(t *testing.T) {
	m := vec.FromRows([][]float64{{1.5, -2}, {0, 3.25}})
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("CSV round trip mismatch")
	}
}

func TestMatrixCSVRejectsRagged(t *testing.T) {
	if _, err := ReadMatrixCSV(bytes.NewReader([]byte("1,2\n3\n"))); err == nil {
		t.Fatal("expected ragged-row error")
	}
	if _, err := ReadMatrixCSV(bytes.NewReader([]byte("1,x\n"))); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSaveLoadMatrix(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/factors.fxp"
	m := vec.FromRows([][]float64{{1, 2, 3}})
	if err := SaveMatrix(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("save/load mismatch")
	}
}

// Sorted norms should decay smoothly; guard against degenerate all-equal
// or wildly exploding generations (keeps Figure 18/19 plots meaningful).
func TestNormDistributionSane(t *testing.T) {
	ds := Generate(Yelp(), 2000, 10, 0)
	norms := ds.Items.RowNorms()
	sort.Float64s(norms)
	if norms[0] <= 0 {
		t.Fatal("zero-norm item generated")
	}
	ratio := norms[len(norms)-1] / norms[len(norms)/2]
	if ratio < 1.5 || ratio > 1000 {
		t.Fatalf("max/median norm ratio %.2f outside sane range", ratio)
	}
}
