// Package data generates the synthetic workloads that stand in for the
// four real datasets of the paper's evaluation (MovieLens, Yelp, Netflix,
// Yahoo! Music — Table 2).
//
// The real rating data cannot be bundled, so each dataset is replaced by
// a generative latent-factor model calibrated to the statistics the paper
// publishes about the factorized matrices:
//
//   - factor values concentrate in [-1, 1] (Figure 3 / Figure 14),
//   - item norms are skewed for MovieLens/Yelp/Yahoo (fast k-th-IP decay,
//     Figure 8; cheap queries, Figure 9) but near-homogeneous for Netflix
//     (flat decay, uniform query costs — which is exactly why all pruning
//     methods degrade on Netflix),
//   - the item matrix has a decaying singular spectrum for the prunable
//     datasets and a nearly flat one for Netflix (Figures 15–17).
//
// Item vectors are drawn as  p = s · R·z / ‖z‖, with z ~ N(0, diag(λ)),
// λ_j = exp(-j·SpectralDecay) a decaying spectrum, R a random rotation
// (so the raw coordinate order carries no information, as with real MF
// output), and s log-normal with shape NormSigma. Users follow the same
// covariance so that query/item inner products resemble MF predictions.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"fexipro/internal/vec"
)

// Profile describes one synthetic dataset.
type Profile struct {
	// Name identifies the profile ("movielens", "yelp", "netflix", "yahoo").
	Name string
	// Items and Users are the full-scale counts from Table 2 of the paper.
	Items, Users int
	// BenchItems and BenchQueries are the scaled-down defaults used by the
	// benchmark harness (one machine, minutes not hours).
	BenchItems, BenchQueries int
	// Dim is the factorization rank d (50 in the paper's main experiments).
	Dim int
	// SpectralDecay controls the singular-value skew of the item matrix:
	// λ_j ∝ exp(-j·SpectralDecay). Near 0 ⇒ flat spectrum ⇒ the SVD
	// transformation cannot help (the paper's Netflix behaviour).
	SpectralDecay float64
	// NormSigma is the log-normal shape of item/user vector lengths.
	// Near 0 ⇒ homogeneous norms ⇒ Cauchy–Schwarz pruning is weak.
	NormSigma float64
	// MeanNorm is the log-normal scale: median vector length. Chosen so
	// coordinate values concentrate in [-1, 1] at d=50 and inner products
	// land in a rating-like range.
	MeanNorm float64
	// RatingScale is the maximum rating (5 after the paper's rescaling).
	RatingScale float64
	// Seed gives each profile its own deterministic stream.
	Seed int64
}

// Profiles returns the four evaluation profiles in the paper's order.
func Profiles() []Profile {
	return []Profile{MovieLens(), Yelp(), Netflix(), Yahoo()}
}

// ProfileByName resolves a profile by its lowercase name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("data: unknown profile %q (want movielens|yelp|netflix|yahoo)", name)
}

// MovieLens mirrors the MovieLens latest dataset: moderate size, strong
// popularity skew, very prunable.
func MovieLens() Profile {
	return Profile{
		Name: "movielens", Items: 33670, Users: 247753,
		BenchItems: 33670, BenchQueries: 200,
		Dim: 50, SpectralDecay: 0.10, NormSigma: 0.30, MeanNorm: 1.6,
		RatingScale: 5, Seed: 101,
	}
}

// Yelp mirrors the Yelp challenge dataset: larger item set, the heaviest
// norm skew of the four.
func Yelp() Profile {
	return Profile{
		Name: "yelp", Items: 77079, Users: 552339,
		BenchItems: 77079, BenchQueries: 200,
		Dim: 50, SpectralDecay: 0.085, NormSigma: 0.38, MeanNorm: 1.5,
		RatingScale: 5, Seed: 202,
	}
}

// Netflix mirrors the Netflix Prize dataset: dense ratings produce
// homogeneous item norms and a flat spectrum — the hard case where the
// paper reports only modest speedups for every pruning method.
func Netflix() Profile {
	return Profile{
		Name: "netflix", Items: 17770, Users: 480189,
		BenchItems: 17770, BenchQueries: 200,
		Dim: 50, SpectralDecay: 0.065, NormSigma: 0.17, MeanNorm: 1.7,
		RatingScale: 5, Seed: 303,
	}
}

// Yahoo mirrors Yahoo! Music: by far the largest item set. BenchItems is
// scaled to 100k so the full experiment grid still runs in minutes.
func Yahoo() Profile {
	return Profile{
		Name: "yahoo", Items: 624961, Users: 1000990,
		BenchItems: 100000, BenchQueries: 200,
		Dim: 50, SpectralDecay: 0.07, NormSigma: 0.28, MeanNorm: 1.55,
		RatingScale: 5, Seed: 404,
	}
}

// Dataset is a generated workload: an item matrix and a set of query
// (user) vectors, rows are vectors.
type Dataset struct {
	Profile Profile
	Items   *vec.Matrix
	Queries *vec.Matrix
}

// Generate materializes a dataset with the given item and query counts
// (pass 0 to use the profile's bench defaults) and dimensionality d
// (pass 0 for the profile default).
func Generate(p Profile, numItems, numQueries, d int) *Dataset {
	if numItems <= 0 {
		numItems = p.BenchItems
	}
	if numQueries <= 0 {
		numQueries = p.BenchQueries
	}
	if d <= 0 {
		d = p.Dim
	}
	rng := rand.New(rand.NewSource(p.Seed))

	spectrum := make([]float64, d)
	for j := range spectrum {
		spectrum[j] = math.Exp(-float64(j) * p.SpectralDecay)
	}
	rot := RandomOrthogonal(d, rng)

	items := generateMatrix(numItems, d, spectrum, rot, p.MeanNorm, p.NormSigma, rng)
	queries := generateMatrix(numQueries, d, spectrum, rot, p.MeanNorm, p.NormSigma*0.8, rng)
	return &Dataset{Profile: p, Items: items, Queries: queries}
}

// generateMatrix draws rows = s · R·(z/‖z‖) with z ~ N(0, diag(spectrum²))
// and s ~ LogNormal(ln meanNorm, sigma).
func generateMatrix(rows, d int, spectrum []float64, rot *vec.Matrix, meanNorm, sigma float64, rng *rand.Rand) *vec.Matrix {
	m := vec.NewMatrix(rows, d)
	z := make([]float64, d)
	for i := 0; i < rows; i++ {
		for j := 0; j < d; j++ {
			z[j] = rng.NormFloat64() * spectrum[j]
		}
		nz := vec.Norm(z)
		if nz == 0 {
			nz = 1
		}
		s := meanNorm * math.Exp(sigma*rng.NormFloat64()) / nz
		dst := m.Row(i)
		// dst = s · rot·z  (rot is d×d, rows are output coords)
		for a := 0; a < d; a++ {
			dst[a] = s * vec.Dot(rot.Row(a), z)
		}
	}
	return m
}

// RandomOrthogonal returns a uniformly random d×d orthogonal matrix,
// built by modified Gram–Schmidt on a Gaussian matrix.
func RandomOrthogonal(d int, rng *rand.Rand) *vec.Matrix {
	m := vec.NewMatrix(d, d)
	for {
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		if gramSchmidt(m) {
			return m
		}
		// Degenerate draw (essentially probability zero); redraw.
	}
}

// gramSchmidt orthonormalizes the rows of m in place, reporting success.
func gramSchmidt(m *vec.Matrix) bool {
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := 0; j < i; j++ {
			rj := m.Row(j)
			proj := vec.Dot(ri, rj)
			for k := range ri {
				ri[k] -= proj * rj[k]
			}
		}
		n := vec.Norm(ri)
		if n < 1e-12 {
			return false
		}
		vec.Scale(ri, 1/n)
	}
	return true
}
