package data

import (
	"math"
	"math/rand"

	"fexipro/internal/vec"
)

// Rating is one observed (user, item, value) triple.
type Rating struct {
	User, Item int
	Value      float64
}

// RatingConfig controls synthetic rating generation for the learning-phase
// substrate (internal/mf). Ratings are produced from ground-truth factors
// plus Gaussian noise, then clipped to [1, Scale] — the standard planted
// low-rank model.
type RatingConfig struct {
	Users, Items int
	// Rank of the planted factors.
	Dim int
	// PerUser is the expected number of rated items per user.
	PerUser int
	// Noise is the standard deviation of the additive rating noise.
	Noise float64
	// Scale is the rating ceiling (5 for all paper datasets).
	Scale float64
	Seed  int64
}

// PlantedRatings generates ratings from a random planted low-rank model
// and returns the triples along with the ground-truth user and item
// factor matrices (rows are vectors). The ground truth lets tests check
// that the MF trainer recovers predictive accuracy rather than just
// driving training error down.
func PlantedRatings(cfg RatingConfig) (ratings []Rating, users, items *vec.Matrix) {
	if cfg.Scale <= 0 {
		cfg.Scale = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	center := cfg.Scale / 2
	// Factor scale so that qᵀp spreads around the rating midpoint.
	fs := math.Sqrt(center / float64(cfg.Dim))
	users = gaussianMatrix(cfg.Users, cfg.Dim, fs, rng)
	items = gaussianMatrix(cfg.Items, cfg.Dim, fs, rng)

	ratings = make([]Rating, 0, cfg.Users*cfg.PerUser)
	prob := float64(cfg.PerUser) / float64(cfg.Items)
	for u := 0; u < cfg.Users; u++ {
		urow := users.Row(u)
		for i := 0; i < cfg.Items; i++ {
			if rng.Float64() >= prob {
				continue
			}
			v := center + vec.Dot(urow, items.Row(i)) + cfg.Noise*rng.NormFloat64()
			if v < 1 {
				v = 1
			}
			if v > cfg.Scale {
				v = cfg.Scale
			}
			ratings = append(ratings, Rating{User: u, Item: i, Value: v})
		}
	}
	return ratings, users, items
}

func gaussianMatrix(rows, cols int, scale float64, rng *rand.Rand) *vec.Matrix {
	m := vec.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = scale * rng.NormFloat64()
	}
	return m
}

// SplitRatings partitions ratings into train/test with the given test
// fraction, deterministically for a seed.
func SplitRatings(ratings []Rating, testFrac float64, seed int64) (train, test []Rating) {
	rng := rand.New(rand.NewSource(seed))
	for _, r := range ratings {
		if rng.Float64() < testFrac {
			test = append(test, r)
		} else {
			train = append(train, r)
		}
	}
	return train, test
}
