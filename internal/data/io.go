package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"fexipro/internal/vec"
)

// Binary factor file format ("FXP1"): a tiny self-describing container so
// cmd/fexgen output can be reloaded by cmd/fexquery and cmd/fexbench.
//
//	magic   [4]byte  "FXP1"
//	rows    uint32
//	cols    uint32
//	data    rows*cols float64, little-endian, row-major
const factorMagic = "FXP1"

// WriteMatrixBinary writes m in the FXP1 format.
func WriteMatrixBinary(w io.Writer, m *vec.Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(factorMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(m.Cols))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrixBinary parses an FXP1 matrix.
func ReadMatrixBinary(r io.Reader) (*vec.Matrix, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("data: reading magic: %w", err)
	}
	if string(magic) != factorMagic {
		return nil, fmt.Errorf("data: bad magic %q, want %q", magic, factorMagic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("data: reading header: %w", err)
	}
	rows := int(binary.LittleEndian.Uint32(hdr[0:4]))
	cols := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if rows < 0 || cols < 0 || (cols != 0 && rows > (1<<31)/cols) {
		return nil, fmt.Errorf("data: implausible shape %d×%d", rows, cols)
	}
	// Grow the backing slice as data actually arrives instead of trusting
	// the header: a 12-byte file claiming a 2^31-element matrix must fail
	// with a truncation error, not a multi-gigabyte allocation. (Found by
	// FuzzReadMatrixBinary; testdata/fuzz keeps the regression seed.)
	total := rows * cols
	const chunkElems = 64 << 10
	capHint := total
	if capHint > chunkElems {
		capHint = chunkElems
	}
	data := make([]float64, 0, capHint)
	buf := make([]byte, 8*chunkElems)
	for len(data) < total {
		n := total - len(data)
		if n > chunkElems {
			n = chunkElems
		}
		if _, err := io.ReadFull(br, buf[:8*n]); err != nil {
			return nil, fmt.Errorf("data: reading element %d: %w", len(data), err)
		}
		for k := 0; k < n; k++ {
			data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*k:])))
		}
	}
	return &vec.Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// SaveMatrix writes m to path in FXP1 format.
func SaveMatrix(path string, m *vec.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMatrixBinary(f, m); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// LoadMatrix reads an FXP1 matrix from path.
func LoadMatrix(path string) (*vec.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMatrixBinary(f)
}

// WriteMatrixCSV writes m as comma-separated rows.
func WriteMatrixCSV(w io.Writer, m *vec.Matrix) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrixCSV parses comma-separated rows into a matrix. All rows must
// have the same number of fields; blank lines are skipped.
func ReadMatrixCSV(r io.Reader) (*vec.Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var rows [][]float64
	cols := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("data: line %d has %d fields, want %d", lineNo, len(fields), cols)
		}
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d field %d: %w", lineNo, j+1, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return vec.FromRows(rows), nil
}
