package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for deterministic rotation tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestWindow(slots int, slotDur time.Duration, bounds []float64) (*Window, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	w := NewWindow(slots, slotDur, bounds)
	w.SetClock(clk.now)
	w.slotStart = clk.now()
	return w, clk
}

func TestWindowQuantileInterpolation(t *testing.T) {
	w, _ := newTestWindow(4, time.Second, []float64{0.1, 0.2, 0.4})
	// 10 observations uniformly in (0, 0.1]: all in the first bucket.
	for i := 1; i <= 10; i++ {
		w.Observe(0.01 * float64(i))
	}
	s := w.Snapshot()
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10", s.Count)
	}
	// Interpolated median of a full first bucket [0, 0.1] is 0.05.
	if got := s.Quantile(0.5); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("p50 = %v, want 0.05", got)
	}
	if got := s.Quantile(1); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("p100 = %v, want 0.1", got)
	}
	// An observation beyond every bound lands in +Inf and quantiles
	// floor at the last finite bound.
	w.Observe(9.9)
	if got := w.Snapshot().Quantile(0.999); got != 0.4 {
		t.Fatalf("p999 with +Inf mass = %v, want 0.4", got)
	}
}

func TestWindowEmptyQuantile(t *testing.T) {
	w, _ := newTestWindow(4, time.Second, nil)
	if got := w.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty window quantile = %v, want 0", got)
	}
}

func TestWindowRotationExpiresOldTraffic(t *testing.T) {
	w, clk := newTestWindow(3, time.Second, []float64{1, 2})
	w.Observe(0.5)
	w.Observe(0.5)
	if got := w.Snapshot().Count; got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}

	// One slot forward: old observations still inside the window.
	clk.advance(time.Second)
	w.Observe(1.5)
	if got := w.Snapshot().Count; got != 3 {
		t.Fatalf("after 1 slot: count = %d, want 3", got)
	}

	// Advance past the full window: everything expires.
	clk.advance(5 * time.Second)
	if got := w.Snapshot().Count; got != 0 {
		t.Fatalf("after full window: count = %d, want 0", got)
	}

	// The window keeps working after a full expiry.
	w.Observe(0.25)
	s := w.Snapshot()
	if s.Count != 1 || s.Sum != 0.25 {
		t.Fatalf("post-expiry snapshot = %+v", s)
	}
}

func TestWindowRotationIsGradual(t *testing.T) {
	w, clk := newTestWindow(4, time.Second, []float64{1})
	// One observation per slot for 4 slots.
	for i := 0; i < 4; i++ {
		w.Observe(0.5)
		clk.advance(time.Second)
	}
	// The 4th advance rotated into the slot holding the 1st observation.
	if got := w.Snapshot().Count; got != 3 {
		t.Fatalf("count = %d, want 3 (oldest slot expired)", got)
	}
	clk.advance(time.Second)
	if got := w.Snapshot().Count; got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestWindowSnapshotMerge(t *testing.T) {
	bounds := []float64{1, 2}
	a, _ := newTestWindow(2, time.Second, bounds)
	b, _ := newTestWindow(2, time.Second, bounds)
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(0.5)
	b.Observe(5)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 4 {
		t.Fatalf("merged count = %d, want 4", m.Count)
	}
	want := []uint64{2, 1, 1}
	for i, c := range m.Counts {
		if c != want[i] {
			t.Fatalf("merged counts = %v, want %v", m.Counts, want)
		}
	}
	if math.Abs(m.Sum-7.5) > 1e-12 {
		t.Fatalf("merged sum = %v, want 7.5", m.Sum)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched bounds must panic")
		}
	}()
	c, _ := newTestWindow(2, time.Second, []float64{9})
	_ = m.Merge(c.Snapshot())
}

// TestWindowConcurrentRotation exercises Observe/Snapshot from many
// goroutines with a real clock and a slot duration small enough that
// rotation happens mid-test; run under -race this pins the locking of
// the rotation path.
func TestWindowConcurrentRotation(t *testing.T) {
	w := NewWindow(4, time.Millisecond, []float64{0.001, 0.01, 0.1})
	var wg sync.WaitGroup
	stop := time.Now().Add(50 * time.Millisecond)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				if g%2 == 0 {
					w.Observe(float64(i%100) / 1000)
				} else {
					s := w.Snapshot()
					var sum uint64
					for _, c := range s.Counts {
						sum += c
					}
					if sum != s.Count {
						t.Errorf("snapshot counts %d != total %d", sum, s.Count)
						return
					}
					_ = s.Quantile(0.99)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	RegisterBuildInfo(reg) // idempotent
	snap := reg.Snapshot()
	found := false
	for k, v := range snap {
		if len(k) >= len(MetricBuildInfo) && k[:len(MetricBuildInfo)] == MetricBuildInfo {
			found = true
			if v != 1 {
				t.Fatalf("%s = %v, want 1", k, v)
			}
		}
	}
	if !found {
		t.Fatalf("no %s series in %v", MetricBuildInfo, snap)
	}
}
