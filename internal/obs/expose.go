package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format v0.0.4 with deterministic ordering: families sorted
// by name, series sorted by label key. Suitable for scraping at
// GET /metrics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(names))
	for _, n := range names {
		fams[n] = r.families[n]
	}
	r.mu.RUnlock()
	sort.Strings(names)

	for _, name := range names {
		f := fams[name]
		f.mu.RLock()
		keys := make([]string, len(f.order))
		copy(keys, f.order)
		series := make(map[string]any, len(keys))
		for _, k := range keys {
			series[k] = f.series[k]
		}
		f.mu.RUnlock()
		sort.Strings(keys)
		if len(keys) == 0 {
			continue
		}

		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range keys {
			if err := writeSeries(w, f, series[key]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s any) error {
	switch m := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelBlock(m.labels, nil), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelBlock(m.labels, nil), formatFloat(m.Value()))
		return err
	case *Histogram:
		cum := m.CumulativeBuckets()
		for i, ub := range f.buckets {
			le := Label{Name: "le", Value: formatFloat(ub)}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelBlock(m.labels, &le), cum[i]); err != nil {
				return err
			}
		}
		le := Label{Name: "le", Value: "+Inf"}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelBlock(m.labels, &le), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelBlock(m.labels, nil), formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelBlock(m.labels, nil), m.Count())
		return err
	}
	return nil
}

// labelBlock renders {a="x",b="y"} (empty string when no labels). extra
// is appended last (used for the histogram "le" label).
func labelBlock(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
