package obs

import (
	"runtime"
	"runtime/debug"
)

// MetricBuildInfo is the constant-1 build identity gauge, labeled
// go_version and version (the module's VCS revision when the binary
// was built from a repository, else the module version). Joining any
// other series against it attributes a regression to a build.
const MetricBuildInfo = "fexipro_build_info"

// RegisterBuildInfo registers fexipro_build_info{go_version,version} 1
// in reg. Safe to call more than once (the registry dedupes series).
func RegisterBuildInfo(reg *Registry) {
	reg.Gauge(MetricBuildInfo,
		"Build identity: constant 1, labeled by Go toolchain and build version.",
		L("go_version", runtime.Version()),
		L("version", buildVersion()),
	).Set(1)
}

// buildVersion extracts the most specific version identity the binary
// carries: the vcs.revision setting when built from a checkout,
// otherwise the main module version, otherwise "unknown".
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			rev := s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev
		}
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "devel"
}
