package obs

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("test_total", "help") != c {
		t.Fatal("counter not deduplicated")
	}
	// Different labels are distinct series.
	c2 := r.Counter("test_total", "help", L("x", "1"))
	if c2 == c {
		t.Fatal("labeled counter aliased unlabeled one")
	}

	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lbl_total", "", L("b", "2"), L("a", "1"))
	b := r.Counter("lbl_total", "", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order should not create distinct series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual", "")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid name")
		}
	}()
	r.Counter("9bad-name", "")
}

// TestValidMetricNameEdgeCases exercises the Prometheus metric-name
// grammar boundary cases. ValidMetricName is shared between the runtime
// registry and fexlint's stagecounters analyzer, so these cases pin the
// grammar for both enforcement points.
func TestValidMetricNameEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		valid bool
	}{
		{"", false},                      // empty
		{"9leading", false},              // digit may not lead
		{"_leading_underscore", true},    // underscore may lead
		{":leading_colon", true},         // colon may lead (recording rules)
		{"fexipro:recorded:total", true}, // interior colons
		{"fexipro_queries_total", true},  // canonical form
		{"a9", true},                     // digit after first char
		{"fexipro-dash", false},          // dash is outside the grammar
		{"h\u00e9llo", false},            // non-ASCII rune anywhere
		{"caf\u00e9_total", false},       // non-ASCII rune mid-name
		{"has space", false},             // whitespace
		{"tab\tname", false},             // control character
		{"\u00e9", false},                // single multi-byte rune at position 0
	}
	for _, tc := range cases {
		if got := ValidMetricName(tc.name); got != tc.valid {
			t.Errorf("ValidMetricName(%q) = %v, want %v", tc.name, got, tc.valid)
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2, 5})

	h.Observe(0.5)        // ≤1
	h.Observe(1.0)        // boundary: counted in le=1 (Prometheus ≤ semantics)
	h.Observe(1.5)        // ≤2
	h.Observe(2.0)        // boundary le=2
	h.Observe(5.0)        // boundary le=5
	h.Observe(7.0)        // +Inf only
	h.Observe(math.NaN()) // dropped

	cum := h.CumulativeBuckets()
	want := []int64{2, 4, 5, 6}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (all: %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+5+7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramBadBucketsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing buckets")
		}
	}()
	r.Histogram("bad_seconds", "", []float64{1, 1})
}

// TestConcurrentWriters hammers one registry from many goroutines —
// run under -race. Counters must not lose increments.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Mix registration and increment paths.
				r.Counter("conc_total", "h", L("g", fmt.Sprint(g%4))).Inc()
				r.Gauge("conc_gauge", "h").Set(float64(i))
				r.Histogram("conc_seconds", "h", []float64{0.5, 1}).Observe(float64(i%3) / 2)
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for g := 0; g < 4; g++ {
		total += r.Counter("conc_total", "h", L("g", fmt.Sprint(g))).Value()
	}
	if want := int64(goroutines * perG); total != want {
		t.Fatalf("lost increments: %d, want %d", total, want)
	}
	if got := r.Histogram("conc_seconds", "h", []float64{0.5, 1}).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "", L("a", "x")).Add(3)
	r.Gauge("snap_gauge", "").Set(1.25)
	r.Histogram("snap_seconds", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap[`snap_total{a=x}`] != 3 {
		t.Fatalf("snapshot counter: %v", snap)
	}
	if snap["snap_gauge"] != 1.25 {
		t.Fatalf("snapshot gauge: %v", snap)
	}
	if snap["snap_seconds"] != 1 {
		t.Fatalf("snapshot histogram count: %v", snap)
	}
}

func TestTraceIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 32 {
			t.Fatalf("trace id %q has length %d, want 32", id, len(id))
		}
		if !ValidTraceID(id) {
			t.Fatalf("generated id %q not valid", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
	for _, bad := range []string{"", "has space", "semi;colon", string(make([]byte, 65))} {
		if ValidTraceID(bad) {
			t.Fatalf("ValidTraceID(%q) = true", bad)
		}
	}
}
