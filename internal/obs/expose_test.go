package obs

import (
	"bufio"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("zeta_total", "last family by name", L("variant", "F-SIR")).Add(7)
	r.Counter("alpha_total", "first family", L("b", "2"), L("a", "1")).Add(1)
	r.Gauge("mid_gauge", "a gauge").Set(3.5)
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(2)
	return r
}

func TestPrometheusExposition(t *testing.T) {
	var b strings.Builder
	if err := buildSample().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE alpha_total counter",
		"# HELP alpha_total first family",
		`alpha_total{a="1",b="2"} 1`,
		"# TYPE mid_gauge gauge",
		"mid_gauge 3.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 2.0055",
		"lat_seconds_count 3",
		`zeta_total{variant="F-SIR"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Families appear in sorted order.
	if strings.Index(out, "alpha_total") > strings.Index(out, "zeta_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

// TestExpositionStableAndParseable renders twice and checks both that
// the output is byte-identical (stable ordering) and that every line is
// well-formed text format v0.0.4.
func TestExpositionStableAndParseable(t *testing.T) {
	r := buildSample()
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("exposition not stable:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}

	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)
	comment := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	sc := bufio.NewScanner(strings.NewReader(a.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !comment.MatchString(line) {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("v", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", b.String())
	}
}

func TestMetricsHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	buildSample().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "alpha_total") {
		t.Fatalf("body missing metrics:\n%s", rec.Body.String())
	}
}
