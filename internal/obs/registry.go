// Package obs is the production observability layer: a stdlib-only,
// concurrency-safe metrics registry with Prometheus text exposition,
// the shared per-pruning-stage counter schema used by both the HTTP
// service and the offline benchmark harness, and request trace IDs.
//
// The paper's evaluation (Tables 3/7, Figures 5–9) is built on exactly
// the signals a deployment needs continuously: per-stage pruning
// counts, full inner-product counts, and per-query latency. This
// package makes those signals first-class at runtime instead of
// benchmark-only.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families. All methods are safe for
// concurrent use; hot-path increments are lock-free after the first
// registration of a (name, labels) series.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one metric name with help text and its label-keyed series.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]any // seriesKey → *Counter | *Gauge | *Histogram
	order  []string       // insertion order of keys (sorted at exposition)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v      atomic.Int64
	labels []Label
}

// Add increments the counter by n (n < 0 is ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that may go up and down.
type Gauge struct {
	bits   atomic.Uint64
	labels []Label
}

// Set assigns the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram with a sum and a
// count, in Prometheus semantics: bucket i counts observations
// ≤ buckets[i], plus an implicit +Inf bucket.
type Histogram struct {
	buckets []float64 // upper bounds, strictly increasing
	counts  []atomic.Int64
	inf     atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
	labels  []Label
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound admits v.
	idx := sort.SearchFloat64s(h.buckets, v)
	if idx < len(h.buckets) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// CumulativeBuckets returns the cumulative (Prometheus-style) count per
// upper bound, including the final +Inf bucket.
func (h *Histogram) CumulativeBuckets() []int64 {
	out := make([]int64, len(h.buckets)+1)
	var cum int64
	for i := range h.buckets {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	out[len(h.buckets)] = cum + h.inf.Load()
	return out
}

// Label is one name=value metric dimension.
type Label struct {
	Name, Value string
}

// L is shorthand for building a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefLatencyBuckets are the default latency buckets in seconds,
// spanning 50µs–5s — chosen to resolve both the sub-millisecond
// retrievals of Figure 9 and slow cold-start outliers.
var DefLatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	250e-3, 500e-3, 1, 2.5, 5,
}

func (r *Registry) getFamily(name, help string, kind metricKind, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok = r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]any)}
	r.families[name] = f
	return f
}

// Counter returns (registering on first use) the counter series for the
// given name, help, and labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, kindCounter, nil)
	return f.get(labels, func(ls []Label) any { return &Counter{labels: ls} }).(*Counter)
}

// Gauge returns (registering on first use) the gauge series for the
// given name, help, and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, kindGauge, nil)
	return f.get(labels, func(ls []Label) any { return &Gauge{labels: ls} }).(*Gauge)
}

// Histogram returns (registering on first use) the histogram series for
// the given name, help, buckets, and labels. Buckets must be strictly
// increasing; nil selects DefLatencyBuckets. Buckets are fixed by the
// first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	f := r.getFamily(name, help, kindHistogram, buckets)
	return f.get(labels, func(ls []Label) any {
		return &Histogram{buckets: f.buckets, counts: make([]atomic.Int64, len(f.buckets)), labels: ls}
	}).(*Histogram)
}

// get returns the series for labels, creating it with mk on first use.
// mk runs before the write lock is taken (a losing racer's value is
// discarded), keeping caller-supplied code out of the held region.
func (f *family) get(labels []Label, mk func([]Label) any) any {
	ls := normalizeLabels(labels)
	key := seriesKey(ls)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	created := mk(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	f.series[key] = created
	f.order = append(f.order, key)
	return created
}

// normalizeLabels copies and sorts labels by name for a canonical key.
func normalizeLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func seriesKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// ValidMetricName reports whether name satisfies the Prometheus metric
// naming grammar [a-zA-Z_:][a-zA-Z0-9_:]*. It is the single source of
// truth for metric-name validity: the registry enforces it at runtime
// and fexlint's stagecounters analyzer enforces it at build time on
// every Metric* constant, so the two checks cannot diverge.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Snapshot returns a flat map of every scalar series value keyed as
// name{labels} — counters as their count, gauges as their value,
// histograms as their observation count. Used for final-state logging
// on shutdown and in tests.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.RLock()
		for key, s := range f.series {
			id := f.name
			if key != "" {
				id += "{" + key + "}"
			}
			switch m := s.(type) {
			case *Counter:
				out[id] = float64(m.Value())
			case *Gauge:
				out[id] = m.Value()
			case *Histogram:
				out[id] = float64(m.Count())
			}
		}
		f.mu.RUnlock()
	}
	return out
}

// Default is the process-wide registry used when no explicit registry
// is wired; cmd/fexserve uses its own instance.
var Default = NewRegistry()
