package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	mrand "math/rand"
	"sync"
)

// TraceHeader is the HTTP header carrying the request trace ID, both
// inbound (propagated from callers) and outbound (echoed on responses).
const TraceHeader = "X-Trace-Id"

// NewTraceID returns a 16-byte random trace ID in lowercase hex,
// matching the W3C trace-id shape. It never fails: if the OS entropy
// source errors it falls back to a process-local PRNG.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		fallbackMu.Lock()
		for i := range b {
			b[i] = byte(fallback.Intn(256))
		}
		fallbackMu.Unlock()
	}
	return hex.EncodeToString(b[:])
}

var (
	fallbackMu sync.Mutex
	fallback   = mrand.New(mrand.NewSource(0x5eed))
)

// ValidTraceID reports whether s is a plausible propagated trace ID:
// 1–64 characters from [0-9a-zA-Z_-]. Anything else is replaced with a
// fresh ID rather than reflected into logs.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

type traceKey struct{}

// WithTraceID stores a trace ID in the context.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom returns the trace ID stored in ctx ("" when absent).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
