package obs

import (
	"context"
	"time"

	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// Instrumented wraps any search.Searcher so every Search call feeds the
// cumulative per-stage counters and the latency histogram of a
// SearchRecorder, while remaining a drop-in search.Searcher (Stats
// still reports the last call, as the interface contracts).
//
// Like the searchers it wraps, Instrumented is not safe for concurrent
// Search calls — FEXIPRO retrievers are single-goroutine — but the
// recorder it feeds is, so many Instrumented instances (e.g. one per
// shard or replica goroutine) may share one recorder.
type Instrumented struct {
	inner search.Searcher
	rec   *SearchRecorder
}

// Instrument wraps s so its work is recorded in reg under the given
// variant label.
func Instrument(s search.Searcher, reg *Registry, variant string) *Instrumented {
	return &Instrumented{inner: s, rec: NewSearchRecorder(reg, variant)}
}

// InstrumentWith wraps s with an existing recorder (shared across
// wrappers).
func InstrumentWith(s search.Searcher, rec *SearchRecorder) *Instrumented {
	return &Instrumented{inner: s, rec: rec}
}

// Search answers the query through the wrapped searcher and records its
// counters and latency.
func (w *Instrumented) Search(q []float64, k int) []topk.Result {
	start := time.Now()
	res := w.inner.Search(q, k)
	w.rec.RecordSearch(w.inner.Stats(), time.Since(start).Seconds())
	return res
}

// SearchContext implements search.ContextSearcher, recording counters
// and latency for cancelled scans too (partial work is still work).
func (w *Instrumented) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	start := time.Now()
	res, err := search.WithContext(w.inner).SearchContext(ctx, q, k)
	w.rec.RecordSearch(w.inner.Stats(), time.Since(start).Seconds())
	return res, err
}

// Stats reports the counters of the most recent Search call.
func (w *Instrumented) Stats() search.Stats { return w.inner.Stats() }

// Unwrap returns the wrapped searcher.
func (w *Instrumented) Unwrap() search.Searcher { return w.inner }

var _ search.ContextSearcher = (*Instrumented)(nil)
