package obs

import (
	"testing"

	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// fakeSearcher returns canned stats so the recorder's accumulation can
// be asserted exactly.
type fakeSearcher struct{ st search.Stats }

func (f *fakeSearcher) Search(q []float64, k int) []topk.Result {
	return []topk.Result{{ID: 1, Score: 2}}
}
func (f *fakeSearcher) Stats() search.Stats { return f.st }

func TestInstrumentedAccumulates(t *testing.T) {
	reg := NewRegistry()
	fake := &fakeSearcher{st: search.Stats{
		Scanned:             10,
		PrunedByLength:      1,
		PrunedByIntHead:     2,
		PrunedByIntFull:     3,
		PrunedByIncremental: 4,
		PrunedByMonotone:    5,
		FullProducts:        6,
		NodesVisited:        7,
	}}
	w := Instrument(fake, reg, "F-SIR")
	for i := 0; i < 3; i++ {
		if res := w.Search([]float64{1}, 1); len(res) != 1 {
			t.Fatalf("search result lost: %v", res)
		}
	}

	v := L("variant", "F-SIR")
	if got := reg.Counter(MetricSearches, "", v).Value(); got != 3 {
		t.Fatalf("searches = %d, want 3", got)
	}
	if got := reg.Counter(MetricScanned, "", v).Value(); got != 30 {
		t.Fatalf("scanned = %d, want 30", got)
	}
	wantStages := map[string]int64{
		StageLength: 3, StageIntHead: 6, StageIntFull: 9,
		StageIncremental: 12, StageMonotone: 15,
	}
	for stage, want := range wantStages {
		if got := reg.Counter(MetricPruned, "", v, L("stage", stage)).Value(); got != want {
			t.Fatalf("stage %s = %d, want %d", stage, got, want)
		}
	}
	if got := reg.Counter(MetricFullProducts, "", v).Value(); got != 18 {
		t.Fatalf("full products = %d, want 18", got)
	}
	if got := reg.Counter(MetricNodesVisited, "", v).Value(); got != 21 {
		t.Fatalf("nodes = %d, want 21", got)
	}
	if got := reg.Histogram(MetricSearchLatency, "", nil, v).Count(); got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
	// Stats passthrough preserves the last-call contract.
	if w.Stats() != fake.st {
		t.Fatal("Stats not passed through")
	}
	if w.Unwrap() != fake {
		t.Fatal("Unwrap lost the inner searcher")
	}
}

func TestStageCountersFrom(t *testing.T) {
	st := search.Stats{
		Scanned: 9, PrunedByLength: 1, PrunedByIntHead: 2, PrunedByIntFull: 3,
		PrunedByIncremental: 4, PrunedByMonotone: 5, FullProducts: 6, NodesVisited: 7,
	}
	sc := StageCountersFrom(st)
	if sc.Pruned != 15 {
		t.Fatalf("pruned = %d, want 15", sc.Pruned)
	}
	if sc.Pruned != st.TotalPruned() {
		t.Fatal("StageCountersFrom disagrees with Stats.TotalPruned")
	}
	if sc.Scanned != 9 || sc.FullProducts != 6 || sc.NodesVisited != 7 {
		t.Fatalf("fields dropped: %+v", sc)
	}
}
