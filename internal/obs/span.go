package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of a query's execution: transform, a shard
// scan, the canonical merge, an index rebuild. Spans form a tree (a
// root per query, children per stage), carry small typed attributes,
// and measure monotonic wall time from StartChild to End.
//
// The API is nil-tolerant by design: every method on a nil *Span is a
// no-op, and StartSpan returns nil when the context carries no parent
// span. That nil path IS the tracing-disabled fast path — it costs one
// context value lookup per query and zero allocations, so the hot
// search path pays nothing when tracing is off (BenchmarkSpanOverhead
// pins this below 1%).
//
// Concurrency: StartChild and the Attr setters are safe to call from
// multiple goroutines (the sharded engine starts one child per shard
// from its worker pool). End must be called exactly once per span,
// after every child has ended; reading a tree (Snapshot, Children,
// Duration) is safe only after the root has ended, which is when the
// serving layer hands it to the trace ring.
type Span struct {
	name  string
	start time.Time
	dur   atomic.Int64 // nanoseconds; 0 until End

	mu sync.Mutex
	//fex:guard mu
	attrs    []spanAttr
	children []*Span
}

// spanAttr is one typed key/value attribute. Values are either int64
// or string — the two shapes every span site here needs — so attaching
// an attribute never boxes through an interface.
type spanAttr struct {
	key   string
	num   int64
	str   string
	isNum bool
}

// NewRoot starts a new root span. Callers that want the span to flow
// into downstream stages must put it in the context with
// ContextWithSpan.
func NewRoot(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts a child span under s. On a nil receiver it returns
// nil, so call sites need no enabled-check of their own.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's duration. Ending an already-ended span keeps
// the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur.CompareAndSwap(0, int64(time.Since(s.start)))
}

// AttrInt attaches an integer attribute (no-op on nil).
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key: key, num: v, isNum: true})
	s.mu.Unlock()
}

// AttrStr attaches a string attribute (no-op on nil).
func (s *Span) AttrStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key: key, str: v})
	s.mu.Unlock()
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's monotonic start time (zero on nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the frozen duration (0 before End or on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.dur.Load())
}

// Children returns the child spans in start order (nil on nil).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	s.mu.Unlock()
	return out
}

// ChildDuration sums the durations of every direct child named name —
// the accessor stage-timing consumers (fexbench -statsjson, the
// server's log summaries) use to fold a span tree into per-stage
// totals.
func (s *Span) ChildDuration(name string) time.Duration {
	var total time.Duration
	for _, c := range s.Children() {
		if c.name == name {
			total += c.Duration()
		}
	}
	return total
}

// SpanJSON is the wire shape of one span subtree, served by
// GET /debug/queries and reused by any offline consumer of recorded
// traces.
type SpanJSON struct {
	Name           string         `json:"name"`
	DurationMicros int64          `json:"durationMicros"`
	Attrs          map[string]any `json:"attrs,omitempty"`
	Children       []SpanJSON     `json:"children,omitempty"`
}

// Snapshot renders the span tree into its JSON shape. Call only after
// the root has ended (the trace ring's contract).
func (s *Span) Snapshot() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	attrs := make([]spanAttr, len(s.attrs))
	copy(attrs, s.attrs)
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()

	out := SpanJSON{Name: s.name, DurationMicros: s.Duration().Microseconds()}
	if len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			if a.isNum {
				out.Attrs[a.key] = a.num
			} else {
				out.Attrs[a.key] = a.str
			}
		}
	}
	for _, c := range children {
		out.Children = append(out.Children, c.Snapshot())
	}
	return out
}

type spanKey struct{}

// ContextWithSpan stores a span in the context so downstream stages
// (engine, retriever, rebuilds) attach children to it. Storing nil
// returns ctx unchanged, keeping SpanFrom's nil fast path intact.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span stored in ctx, or nil when tracing is
// disabled for this query. The nil return is what makes every
// downstream StartChild/Attr call a no-op.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's span (nil, and ctx
// unchanged, when the context carries none) and returns a context
// carrying the child. This is the one-call idiom for instrumenting a
// stage:
//
//	ctx, sp := obs.StartSpan(ctx, "rebuild")
//	defer sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

// TraceEntry is one completed, recorded query: its identity, outcome
// metadata, and the ended span tree. Entries are immutable once
// recorded.
type TraceEntry struct {
	TraceID string
	Method  string // "search", "above", "add", "delete"
	K       int
	At      time.Time // wall-clock completion time
	Took    time.Duration
	Exact   bool
	Stats   *StageCounters // searches only
	Root    *Span          // ended root span
}

// TraceRing is the slow-query log: a fixed-size ring of completed
// trace entries. Record is O(1) under one short mutex hold (no
// allocation after the ring fills), so it is cheap enough to sit on
// the serving path of every traced query.
type TraceRing struct {
	mu    sync.Mutex
	buf   []TraceEntry
	next  int
	count int
	total uint64
}

// NewTraceRing returns a ring keeping the most recent n entries
// (n < 1 is clamped to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]TraceEntry, n)}
}

// Record stores one completed entry, evicting the oldest when full.
func (r *TraceRing) Record(e TraceEntry) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Entries returns the recorded entries, newest first.
func (r *TraceRing) Entries() []TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEntry, 0, r.count)
	for i := 1; i <= r.count; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Total returns how many entries have ever been recorded (recorded
// minus len(Entries()) is how many the ring has evicted).
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
