package obs

import (
	"runtime"
	"runtime/debug"
)

// Toolchain reports the Go release the running binary was built with
// and the -gcflags it was compiled under ("" when none were set).
// Perf-trajectory reports (fexbench -statsjson, fexload -slojson)
// embed both so counter and latency diffs against committed baselines
// like BENCH_seed.json are attributable to toolchain changes, not just
// code changes (DESIGN.md §14).
func Toolchain() (goVersion, gcflags string) {
	goVersion = runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return goVersion, ""
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		if s.Key == "-gcflags" {
			gcflags = s.Value
		}
	}
	return goVersion, gcflags
}
