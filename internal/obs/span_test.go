package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	s.End()
	s.AttrInt("k", 1)
	s.AttrStr("method", "search")
	if c := s.StartChild("x"); c != nil {
		t.Fatalf("StartChild on nil span returned %v, want nil", c)
	}
	if s.Name() != "" || s.Duration() != 0 || s.Children() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	if got := s.Snapshot(); got.Name != "" || got.Children != nil {
		t.Fatalf("nil span snapshot = %+v, want zero", got)
	}
}

func TestStartSpanWithoutParentIsDisabled(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "search")
	if sp != nil {
		t.Fatalf("StartSpan without a parent returned %v, want nil", sp)
	}
	if ctx2 != ctx {
		t.Fatal("disabled StartSpan must return the context unchanged")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("background context must carry no span")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	root := NewRoot("search")
	ctx := ContextWithSpan(context.Background(), root)

	ctx2, tr := StartSpan(ctx, "transform")
	if tr == nil {
		t.Fatal("StartSpan under a root must create a child")
	}
	if SpanFrom(ctx2) != tr {
		t.Fatal("StartSpan must store the child in the returned context")
	}
	tr.End()

	scan := root.StartChild("scan")
	for i := 0; i < 3; i++ {
		sh := scan.StartChild("shard")
		sh.AttrInt("shard", int64(i))
		time.Sleep(time.Millisecond)
		sh.End()
	}
	scan.End()
	root.End()

	if got := len(root.Children()); got != 2 {
		t.Fatalf("root has %d children, want 2", got)
	}
	shards := scan.Children()
	if len(shards) != 3 {
		t.Fatalf("scan has %d children, want 3", len(shards))
	}
	// Nested, disjoint child intervals can never exceed the parent.
	var sum time.Duration
	for _, sh := range shards {
		if sh.Duration() <= 0 {
			t.Fatalf("shard span duration %v, want > 0", sh.Duration())
		}
		sum += sh.Duration()
	}
	if sum > scan.Duration() {
		t.Fatalf("shard durations sum to %v > scan span %v", sum, scan.Duration())
	}
	if root.ChildDuration("transform")+root.ChildDuration("scan") > root.Duration() {
		t.Fatal("stage durations exceed the root span")
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	s := NewRoot("q")
	time.Sleep(time.Millisecond)
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatalf("second End changed duration %v → %v", d, s.Duration())
	}
}

func TestSpanSnapshotAttrs(t *testing.T) {
	s := NewRoot("search")
	s.AttrInt("k", 10)
	s.AttrStr("method", "F-SIR")
	c := s.StartChild("scan")
	c.AttrInt("scanned", 123)
	c.End()
	s.End()

	js := s.Snapshot()
	if js.Name != "search" {
		t.Fatalf("name = %q", js.Name)
	}
	if js.Attrs["k"] != int64(10) || js.Attrs["method"] != "F-SIR" {
		t.Fatalf("attrs = %v", js.Attrs)
	}
	if len(js.Children) != 1 || js.Children[0].Attrs["scanned"] != int64(123) {
		t.Fatalf("children = %+v", js.Children)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewRoot("scan")
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.StartChild("shard")
				c.AttrInt("worker", int64(w))
				c.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != workers*50 {
		t.Fatalf("got %d children, want %d", got, workers*50)
	}
}

func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		sp := NewRoot("q")
		sp.End()
		r.Record(TraceEntry{TraceID: fmt.Sprintf("t%d", i), Root: sp})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	got := r.Entries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Newest first.
	for i, want := range []string{"t4", "t3", "t2"} {
		if got[i].TraceID != want {
			t.Fatalf("entry %d = %s, want %s", i, got[i].TraceID, want)
		}
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := NewRoot("q")
				sp.End()
				r.Record(TraceEntry{Root: sp})
				_ = r.Entries()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d, want 800", r.Total())
	}
}
