package obs

import (
	"math"
	"sync"
	"time"
)

// Metric names for the windowed SLO instrumentation (DESIGN.md §13).
const (
	// MetricSearchLatencyWindow is the sliding-window search latency
	// quantile gauge, labeled quantile ∈ {0.5, 0.95, 0.99, 0.999}.
	// Unlike the cumulative fexipro_search_latency_seconds histogram it
	// forgets old traffic, so it answers "how slow are we NOW", not
	// "how slow have we ever been".
	MetricSearchLatencyWindow = "fexipro_search_latency_window_seconds"
	// MetricSLOViolations counts searches that finished above a latency
	// objective, labeled objective (e.g. "25ms"). The rate of this
	// counter is the SLO burn rate.
	MetricSLOViolations = "fexserve_slo_violations_total"
)

// WindowQuantiles are the quantile label values exported for every
// sliding-window latency gauge.
var WindowQuantiles = []float64{0.5, 0.95, 0.99, 0.999}

// Window is a sliding-window histogram: N rotating slots, each a
// fixed-bucket histogram covering slotDur of wall time. Observations
// land in the current slot; slots older than N·slotDur are zeroed as
// the window advances, so a Snapshot covers at most the trailing
// N·slotDur and at least (N−1)·slotDur of traffic.
//
// All methods are safe for concurrent use. An Observe takes one short
// mutex hold and never allocates; rotation is amortized into whichever
// Observe or Snapshot first lands in a new slot.
type Window struct {
	bounds  []float64 // upper bounds, strictly increasing
	slotDur time.Duration
	now     func() time.Time // injectable for tests

	mu        sync.Mutex
	slots     [][]uint64 // per slot: len(bounds)+1 counts (+Inf last)
	sums      []float64  // per slot: sum of observed values
	cur       int
	slotStart time.Time
}

// NewWindow returns a window of `slots` rotating slots of slotDur each
// over the given bucket bounds (nil selects DefLatencyBuckets).
// slots < 2 is clamped to 2 — a single slot would empty the whole
// window at every rotation.
func NewWindow(slots int, slotDur time.Duration, bounds []float64) *Window {
	if slots < 2 {
		slots = 2
	}
	if slotDur <= 0 {
		slotDur = 10 * time.Second
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	w := &Window{
		bounds:  bounds,
		slotDur: slotDur,
		now:     time.Now,
		slots:   make([][]uint64, slots),
		sums:    make([]float64, slots),
	}
	for i := range w.slots {
		w.slots[i] = make([]uint64, len(bounds)+1)
	}
	w.slotStart = w.now()
	return w
}

// SetClock replaces the wall-clock source (tests only; not safe to
// call concurrently with Observe/Snapshot).
func (w *Window) SetClock(now func() time.Time) { w.now = now }

// rotate advances the current slot pointer to cover `now`, zeroing
// every slot it skips over. Called under w.mu.
func (w *Window) rotate(now time.Time) {
	elapsed := now.Sub(w.slotStart)
	if elapsed < w.slotDur {
		return
	}
	steps := int(elapsed / w.slotDur)
	if steps > len(w.slots) {
		steps = len(w.slots) // everything expires; no need to loop further
	}
	for i := 0; i < steps; i++ {
		w.cur = (w.cur + 1) % len(w.slots)
		for j := range w.slots[w.cur] {
			w.slots[w.cur][j] = 0
		}
		w.sums[w.cur] = 0
	}
	// Advance slotStart by whole slot widths so slot boundaries stay
	// aligned to the window's own grid rather than drifting with
	// observation timing.
	w.slotStart = w.slotStart.Add(now.Sub(w.slotStart) / w.slotDur * w.slotDur)
}

// Observe records one value into the current slot.
func (w *Window) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	w.mu.Lock()
	w.rotate(w.now())
	slot := w.slots[w.cur]
	idx := len(w.bounds)
	for i, ub := range w.bounds {
		if v <= ub {
			idx = i
			break
		}
	}
	slot[idx]++
	w.sums[w.cur] += v
	w.mu.Unlock()
}

// Snapshot merges every live slot into one immutable histogram view of
// the trailing window.
func (w *Window) Snapshot() WindowSnapshot {
	w.mu.Lock()
	w.rotate(w.now())
	s := WindowSnapshot{
		Bounds: w.bounds,
		Counts: make([]uint64, len(w.bounds)+1),
	}
	for i := range w.slots {
		for j, c := range w.slots[i] {
			s.Counts[j] += c
			s.Count += c
		}
		s.Sum += w.sums[i]
	}
	w.mu.Unlock()
	return s
}

// WindowSnapshot is a merged, point-in-time view of a Window: one
// count per bucket (the +Inf bucket last), the total count, and the
// sum. Snapshots from windows with identical bounds are mergeable —
// e.g. per-replica windows folded into a fleet view.
type WindowSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; last is +Inf
	Count  uint64
	Sum    float64
}

// Merge folds another snapshot with identical bounds into a new
// snapshot (it panics on a bound mismatch — merging histograms with
// different buckets is meaningless).
func (s WindowSnapshot) Merge(o WindowSnapshot) WindowSnapshot {
	if len(s.Bounds) != len(o.Bounds) {
		panic("obs: merging window snapshots with different bucket bounds")
	}
	for i := range s.Bounds {
		// Bucket bounds are configuration constants copied verbatim, so
		// bitwise identity — not epsilon closeness — is the right test.
		//lint:ignore floatcmp bounds must be bit-identical for counts to be mergeable
		if s.Bounds[i] != o.Bounds[i] {
			panic("obs: merging window snapshots with different bucket bounds")
		}
	}
	out := WindowSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear
// interpolation within the owning bucket, Prometheus
// histogram_quantile style. An empty snapshot returns 0; observations
// in the +Inf bucket resolve to the highest finite bound (a floor, as
// with histogram_quantile).
func (s WindowSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // +Inf bucket: report the last finite bound
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
