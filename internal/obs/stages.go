package obs

import (
	"strconv"

	"fexipro/internal/search"
)

// StageCounters is the shared per-pruning-stage counter schema. It is
// the one JSON shape used by the /v1/search response, the fexbench
// -statsjson dump, and (as metric names) the Prometheus exposition, so
// offline benchmarks and online telemetry stay comparable field by
// field with the paper's Tables 3 and 7.
type StageCounters struct {
	Scanned             int `json:"scanned"`
	PrunedByLength      int `json:"prunedByLength"`
	PrunedByIntHead     int `json:"prunedByIntHead"`
	PrunedByIntFull     int `json:"prunedByIntFull"`
	PrunedByIncremental int `json:"prunedByIncremental"`
	PrunedByMonotone    int `json:"prunedByMonotone"`
	Pruned              int `json:"pruned"` // sum of the five stages
	FullProducts        int `json:"fullProducts"`
	NodesVisited        int `json:"nodesVisited,omitempty"`
}

// StageCountersFrom converts internal search counters into the shared
// schema, deriving the collapsed total via Stats.TotalPruned.
func StageCountersFrom(st search.Stats) StageCounters {
	return StageCounters{
		Scanned:             st.Scanned,
		PrunedByLength:      st.PrunedByLength,
		PrunedByIntHead:     st.PrunedByIntHead,
		PrunedByIntFull:     st.PrunedByIntFull,
		PrunedByIncremental: st.PrunedByIncremental,
		PrunedByMonotone:    st.PrunedByMonotone,
		Pruned:              st.TotalPruned(),
		FullProducts:        st.FullProducts,
		NodesVisited:        st.NodesVisited,
	}
}

// Stage names, in paper order (Table 3's bound cascade). These are the
// values of the "stage" label on fexipro_pruned_items_total.
const (
	StageLength      = "length"
	StageIntHead     = "int_head"
	StageIntFull     = "int_full"
	StageIncremental = "incremental"
	StageMonotone    = "monotone"
)

// Stages lists every pruning stage label value in cascade order.
var Stages = []string{StageLength, StageIntHead, StageIntFull, StageIncremental, StageMonotone}

// Metric names shared by the server, the search instrumentation, and
// the documentation.
const (
	MetricSearchLatency = "fexipro_search_latency_seconds"
	MetricScanned       = "fexipro_scanned_items_total"
	MetricPruned        = "fexipro_pruned_items_total"
	MetricFullProducts  = "fexipro_full_products_total"
	MetricNodesVisited  = "fexipro_tree_nodes_visited_total"
	MetricSearches      = "fexipro_searches_total"
	// MetricShardScan is the per-shard scan wall time of the sharded
	// execution engine, labeled by shard index (DESIGN.md §11). Skew
	// between shard labels reveals partition imbalance.
	MetricShardScan = "fexipro_shard_scan_seconds"
	// Persistence metrics (DESIGN.md §15): snapshot load/save wall time
	// and cumulative WAL record counts. Load is set once at boot; save is
	// refreshed at every checkpoint; records counts acknowledged mutation
	// appends; replays counts records re-applied during recovery.
	MetricSnapshotLoad = "fexipro_snapshot_load_seconds"
	MetricSnapshotSave = "fexipro_snapshot_save_seconds"
	MetricWALRecords   = "fexipro_wal_records_total"
	MetricWALReplays   = "fexipro_wal_replays_total"
	// Query-planner metrics (DESIGN.md §16): decision counts labeled by
	// the chosen method and the reason it was picked (warmup / probe /
	// cost), plus the planner's calibration state — predicted and
	// observed per-query cost EWMAs, labeled by method. Predicted
	// tracking observed means the cost model has converged; a sustained
	// gap shows up as mispredicts.
	MetricPlanDecisions = "fexipro_plan_decisions_total"
	MetricPlanPredicted = "fexipro_plan_predicted_seconds"
	MetricPlanObserved  = "fexipro_plan_observed_seconds"
)

// SearchRecorder accumulates cumulative per-stage counters and search
// latency into a registry for one searcher variant. Construct once per
// (registry, variant) pair; RecordSearch is safe for concurrent use.
type SearchRecorder struct {
	variant  string
	searches *Counter
	scanned  *Counter
	stages   [5]*Counter
	full     *Counter
	nodes    *Counter
	latency  *Histogram
}

// NewSearchRecorder registers (or reuses) the search metric families in
// reg, labeled variant (e.g. "F-SIR").
func NewSearchRecorder(reg *Registry, variant string) *SearchRecorder {
	v := L("variant", variant)
	r := &SearchRecorder{
		variant: variant,
		searches: reg.Counter(MetricSearches,
			"Search calls answered.", v),
		scanned: reg.Counter(MetricScanned,
			"Item vectors reached by the scan before termination.", v),
		full: reg.Counter(MetricFullProducts,
			"Entire q^T p computations (the Tables 3/7 metric).", v),
		nodes: reg.Counter(MetricNodesVisited,
			"Tree nodes expanded (tree methods only).", v),
		latency: reg.Histogram(MetricSearchLatency,
			"Search latency in seconds.", nil, v),
	}
	for i, stage := range Stages {
		r.stages[i] = reg.Counter(MetricPruned,
			"Items pruned without a full inner product, by bound stage.",
			v, L("stage", stage))
	}
	return r
}

// Variant returns the variant label this recorder reports under.
func (r *SearchRecorder) Variant() string { return r.variant }

// ShardScanObserver returns a per-shard scan callback (matching the
// execution engine's Observer signature) that records each shard's wall
// time into the MetricShardScan histogram, labeled variant and shard
// index. The per-shard stage counters are NOT recorded here — the
// engine aggregates them into its query totals, which flow into the
// existing SearchRecorder families, keeping cumulative counters
// identical whether a variant runs sharded or not. Safe for concurrent
// use from engine workers.
func ShardScanObserver(reg *Registry, variant string) func(shard int, seconds float64, st search.Stats) {
	return func(shard int, seconds float64, st search.Stats) {
		reg.Histogram(MetricShardScan,
			"Per-shard scan wall time of the sharded execution engine, in seconds.",
			nil, L("variant", variant), L("shard", strconv.Itoa(shard))).Observe(seconds)
	}
}

// RecordSearch folds one query's counters and wall time into the
// cumulative metrics.
func (r *SearchRecorder) RecordSearch(st search.Stats, seconds float64) {
	r.searches.Inc()
	r.scanned.Add(int64(st.Scanned))
	r.stages[0].Add(int64(st.PrunedByLength))
	r.stages[1].Add(int64(st.PrunedByIntHead))
	r.stages[2].Add(int64(st.PrunedByIntFull))
	r.stages[3].Add(int64(st.PrunedByIncremental))
	r.stages[4].Add(int64(st.PrunedByMonotone))
	r.full.Add(int64(st.FullProducts))
	r.nodes.Add(int64(st.NodesVisited))
	r.latency.Observe(seconds)
}
