package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// dotKernel is a minimal exact kernel over a raw matrix: each shard
// naively dots its contiguous row range. It exercises the engine's
// fan-out, merge, shared-threshold, stats-aggregation, and cancellation
// plumbing without any FEXIPRO transform machinery.
type dotKernel struct {
	items *vec.Matrix
	part  Partition
}

func newDotKernel(items *vec.Matrix, shards int) *dotKernel {
	return &dotKernel{items: items, part: NewPartition(items.Rows, shards)}
}

func (dk *dotKernel) Shards() int { return dk.part.Shards() }

func (dk *dotKernel) Prepare(q []float64) any {
	if len(q) != dk.items.Cols {
		panic("dotKernel: dimension mismatch")
	}
	return q
}

func (dk *dotKernel) Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error) {
	q := pq.([]float64)
	lo, hi := dk.part.Range(shard)
	var st search.Stats
	done := ctx.Done()
	for i := lo; i < hi; i++ {
		local := i - lo
		if hook != nil || (done != nil && local&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, local); err != nil {
				st.Scanned = local
				st.FullProducts = local
				return st, err
			}
		}
		v := vec.Dot(q, dk.items.Row(i))
		t := shared.Floor(c.Threshold())
		if v < t {
			st.PrunedByLength++ // stand-in counter for the toy kernel
			continue
		}
		if c.Push(i, v) && c.Len() == c.K() {
			shared.Publish(c.Threshold())
		}
	}
	st.Scanned = hi - lo
	st.FullProducts = hi - lo
	return st, nil
}

func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestEngineMatchesSingleShard(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	items := randMatrix(rng, 500, 8)
	q := make([]float64, 8)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	base := New(newDotKernel(items, 1), 1)
	want, err := base.SearchContext(context.Background(), q, 10)
	if err != nil {
		t.Fatalf("S=1: %v", err)
	}
	for _, shards := range []int{2, 3, 7} {
		for _, workers := range []int{1, 2, 4} {
			e := New(newDotKernel(items, shards), workers)
			got, err := e.SearchContext(context.Background(), q, 10)
			if err != nil {
				t.Fatalf("S=%d W=%d: %v", shards, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("S=%d W=%d: %d results, want %d", shards, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("S=%d W=%d: result %d = %+v, want %+v", shards, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEngineStatsAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randMatrix(rng, 300, 4)
	q := items.Row(0)
	e := New(newDotKernel(items, 5), 2)
	if _, err := e.SearchContext(context.Background(), q, 3); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Scanned != 300 {
		t.Fatalf("aggregated Scanned = %d, want 300", st.Scanned)
	}
	if st.FullProducts != 300 {
		t.Fatalf("aggregated FullProducts = %d, want 300", st.FullProducts)
	}
}

func TestEngineObserver(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := randMatrix(rng, 120, 4)
	e := New(newDotKernel(items, 4), 1) // sequential: observer calls are ordered
	seen := make([]bool, 4)
	totalScanned := 0
	e.SetObserver(func(shard int, seconds float64, st search.Stats) {
		if shard < 0 || shard >= 4 {
			t.Errorf("observer shard %d out of range", shard)
			return
		}
		if seconds < 0 {
			t.Errorf("negative shard time %v", seconds)
		}
		seen[shard] = true
		totalScanned += st.Scanned
	})
	if _, err := e.SearchContext(context.Background(), items.Row(3), 5); err != nil {
		t.Fatal(err)
	}
	for s, ok := range seen {
		if !ok {
			t.Fatalf("observer never saw shard %d", s)
		}
	}
	if totalScanned != 120 {
		t.Fatalf("observer saw %d scanned items, want 120", totalScanned)
	}
}

func TestEngineCancellationPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randMatrix(rng, 400, 6)
	q := make([]float64, 6)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	for _, workers := range []int{1, 3} {
		e := New(newDotKernel(items, 4), workers)
		reg := faults.NewRegistry(20260806)
		e.SetFaultHook(reg.Enable(faults.SiteScan, faults.Plan{CancelAtItem: 25}))
		res, err := e.SearchContext(context.Background(), q, 10)
		if !errors.Is(err, search.ErrDeadline) {
			t.Fatalf("W=%d: err = %v, want ErrDeadline", workers, err)
		}
		// True-inner-product invariant on partials.
		for _, r := range res {
			if got := vec.Dot(q, items.Row(r.ID)); got != r.Score {
				t.Fatalf("W=%d: partial score for id %d = %v, want true dot %v", workers, r.ID, r.Score, got)
			}
		}
	}
}

func TestEnginePreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	items := randMatrix(rng, 100, 3)
	e := New(newDotKernel(items, 3), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.SearchContext(ctx, items.Row(0), 5)
	if !errors.Is(err, search.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if len(res) != 0 {
		t.Fatalf("pre-cancelled search returned %d results, want 0", len(res))
	}
}

func TestEngineWorkerClamp(t *testing.T) {
	items := randMatrix(rand.New(rand.NewSource(1)), 10, 2)
	if w := New(newDotKernel(items, 2), 64).Workers(); w != 2 {
		t.Fatalf("workers clamped to %d, want 2 (shard count)", w)
	}
	if w := New(newDotKernel(items, 4), 0).Workers(); w < 1 || w > 4 {
		t.Fatalf("workers defaulted to %d, want within [1,4]", w)
	}
}
