// Package engine implements the sharded execution layer: it partitions
// an item collection into S contiguous shards, fans a single query out
// across a bounded worker pool running one ShardKernel scan per shard,
// and merges the per-shard top-k heaps into an exact, deterministically
// tie-broken global top-k. See DESIGN.md §11.
package engine

// Partition describes a balanced split of n rows into contiguous
// shards. Shard s owns the half-open global row range [Range(s)); shard
// sizes differ by at most one (the first n%shards shards get the extra
// row), and the mapping between global row index and (shard, local row)
// is stable and cheap in both directions.
//
// Contiguity is a correctness ingredient, not just a convenience: the
// FEXIPRO kernels scan rows in a build-time norm-sorted order, and a
// contiguous sub-range of a sorted order is itself sorted, so every
// shard's incremental pruning logic sees exactly the prefix structure
// the single-scan algorithm relies on.
type Partition struct {
	n      int
	shards int
	big    int // number of shards holding base+1 rows
	base   int // floor(n / shards)
}

// NewPartition splits n rows into at most shards contiguous ranges.
// shards is clamped to [1, max(n,1)] so no shard is empty unless n==0
// (in which case a single empty shard is returned).
func NewPartition(n, shards int) Partition {
	if n < 0 {
		panic("engine: negative row count")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	if shards < 1 { // n == 0
		shards = 1
	}
	return Partition{n: n, shards: shards, big: n % shards, base: n / shards}
}

// N returns the total number of rows.
func (p Partition) N() int { return p.n }

// Shards returns the number of shards.
func (p Partition) Shards() int { return p.shards }

// Range returns the half-open global row range [lo, hi) owned by shard s.
func (p Partition) Range(s int) (lo, hi int) {
	if s < 0 || s >= p.shards {
		panic("engine: shard out of range")
	}
	if s < p.big {
		lo = s * (p.base + 1)
		return lo, lo + p.base + 1
	}
	lo = p.big*(p.base+1) + (s-p.big)*p.base
	return lo, lo + p.base
}

// ShardOf returns the shard owning global row g.
func (p Partition) ShardOf(g int) int {
	if g < 0 || g >= p.n {
		panic("engine: row out of range")
	}
	bigSpan := p.big * (p.base + 1)
	if g < bigSpan {
		return g / (p.base + 1)
	}
	return p.big + (g-bigSpan)/p.base
}

// Local maps a global row to its (shard, local row) pair.
func (p Partition) Local(g int) (shard, row int) {
	shard = p.ShardOf(g)
	lo, _ := p.Range(shard)
	return shard, g - lo
}

// Global maps a (shard, local row) pair back to the global row index.
func (p Partition) Global(shard, row int) int {
	lo, hi := p.Range(shard)
	g := lo + row
	if row < 0 || g >= hi {
		panic("engine: local row out of range")
	}
	return g
}
