package engine

import "testing"

func TestPartitionBalance(t *testing.T) {
	cases := []struct{ n, shards int }{
		{0, 1}, {0, 5}, {1, 1}, {1, 4}, {7, 3}, {10, 3}, {10, 10},
		{10, 11}, {100, 7}, {1024, 16}, {5, 1},
	}
	for _, tc := range cases {
		p := NewPartition(tc.n, tc.shards)
		if p.N() != tc.n {
			t.Fatalf("n=%d shards=%d: N()=%d", tc.n, tc.shards, p.N())
		}
		if p.Shards() < 1 {
			t.Fatalf("n=%d shards=%d: zero shards", tc.n, tc.shards)
		}
		if tc.n > 0 && p.Shards() > tc.n {
			t.Fatalf("n=%d shards=%d: more shards (%d) than rows", tc.n, tc.shards, p.Shards())
		}
		prevHi := 0
		minSz, maxSz := tc.n+1, -1
		for s := 0; s < p.Shards(); s++ {
			lo, hi := p.Range(s)
			if lo != prevHi {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", tc.n, tc.shards, s, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("n=%d shards=%d: shard %d inverted range [%d,%d)", tc.n, tc.shards, s, lo, hi)
			}
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("n=%d shards=%d: ranges cover [0,%d), want [0,%d)", tc.n, tc.shards, prevHi, tc.n)
		}
		if tc.n > 0 && maxSz-minSz > 1 {
			t.Fatalf("n=%d shards=%d: unbalanced sizes min=%d max=%d", tc.n, tc.shards, minSz, maxSz)
		}
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	p := NewPartition(103, 7)
	for g := 0; g < p.N(); g++ {
		s, r := p.Local(g)
		if s != p.ShardOf(g) {
			t.Fatalf("g=%d: Local shard %d != ShardOf %d", g, s, p.ShardOf(g))
		}
		if back := p.Global(s, r); back != g {
			t.Fatalf("g=%d: round-trip via (%d,%d) gave %d", g, s, r, back)
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	p := NewPartition(10, 3)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative n", func() { NewPartition(-1, 2) })
	mustPanic("shard -1", func() { p.Range(-1) })
	mustPanic("shard too big", func() { p.Range(3) })
	mustPanic("row -1", func() { p.ShardOf(-1) })
	mustPanic("row n", func() { p.ShardOf(10) })
	mustPanic("local row past end", func() { p.Global(0, 99) })
	mustPanic("local row negative", func() { p.Global(0, -1) })
}

// FuzzPartitionRoundTrip is the ISSUE's shard-partitioner fuzz target:
// for arbitrary n and S the contiguous ranges must exactly tile [0, n),
// sizes must differ by at most one, and the global↔(shard,local)
// mapping must round-trip for every row — including rows surviving an
// arbitrary delete pattern (deletes do not perturb the mapping of the
// remaining COMPACTED rows: the partition is recomputed for the new n,
// which is how the dynamic index uses it after a rebuild).
func FuzzPartitionRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint8(1), uint64(0))
	f.Add(uint16(1), uint8(0), uint64(1))
	f.Add(uint16(103), uint8(7), uint64(0xdeadbeef))
	f.Add(uint16(1024), uint8(255), uint64(0xffffffffffffffff))
	f.Fuzz(func(t *testing.T, n16 uint16, s8 uint8, delMask uint64) {
		n := int(n16)
		p := NewPartition(n, int(s8))
		// Tiling + balance.
		prevHi, minSz, maxSz := 0, n+1, -1
		for s := 0; s < p.Shards(); s++ {
			lo, hi := p.Range(s)
			if lo != prevHi || hi < lo {
				t.Fatalf("shard %d range [%d,%d) does not continue at %d", s, lo, hi, prevHi)
			}
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			prevHi = hi
		}
		if prevHi != n {
			t.Fatalf("ranges tile [0,%d), want [0,%d)", prevHi, n)
		}
		if n > 0 && maxSz-minSz > 1 {
			t.Fatalf("unbalanced: min=%d max=%d", minSz, maxSz)
		}
		// Round-trip every row.
		for g := 0; g < n; g++ {
			s, r := p.Local(g)
			if s < 0 || s >= p.Shards() {
				t.Fatalf("g=%d mapped to shard %d of %d", g, s, p.Shards())
			}
			if back := p.Global(s, r); back != g {
				t.Fatalf("g=%d round-trips to %d via (%d,%d)", g, back, s, r)
			}
		}
		// Delete pattern: drop rows whose bit in delMask (mod 64) is
		// set, compact, re-partition the survivors, and round-trip
		// again — the partition over the compacted collection must be
		// just as well-formed.
		survivors := 0
		for g := 0; g < n; g++ {
			if delMask&(1<<(uint(g)%64)) == 0 {
				survivors++
			}
		}
		q := NewPartition(survivors, p.Shards())
		total := 0
		for s := 0; s < q.Shards(); s++ {
			lo, hi := q.Range(s)
			for g := lo; g < hi; g++ {
				s2, r2 := q.Local(g)
				if s2 != s || q.Global(s2, r2) != g {
					t.Fatalf("post-delete g=%d: (%d,%d) shard mismatch (want shard %d)", g, s2, r2, s)
				}
				total++
			}
		}
		if total != survivors {
			t.Fatalf("post-delete partition covers %d rows, want %d", total, survivors)
		}
	})
}
