package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fexipro/internal/faults"
	"fexipro/internal/obs"
	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// Kernel is the per-shard scan contract. A kernel owns a partitioned
// index (built once, read-only at query time) and knows how to scan one
// shard of it. The engine calls Prepare once per query and then Scan
// concurrently for distinct shards, so Scan must not mutate kernel
// state — all per-query scratch lives in the value returned by Prepare
// plus the per-shard collector the engine supplies.
type Kernel interface {
	// Shards returns the number of shards the kernel was built with.
	Shards() int

	// Prepare computes the per-query state shared READ-ONLY by every
	// shard scan (e.g. the SVD-transformed query, its norm, integer
	// floors). It must panic on dimension mismatch, matching the
	// single-scan searchers. The engine passes the returned value to
	// every Scan call for this query, from multiple goroutines, without
	// further synchronization.
	Prepare(q []float64) any

	// Scan runs the shard's part of the query: it offers candidates to
	// c (a collector private to this shard) and may tighten its pruning
	// with shared.Floor / contribute via shared.Publish once c is full.
	// On cancellation it returns an ErrDeadline-wrapping error after
	// leaving c with best-so-far results whose scores are true inner
	// products. hook, when non-nil, is the fault-injection hook to pass
	// to search.Poll with SHARD-LOCAL item indices (so CancelAtItem
	// fires relative to each shard's own scan). The returned Stats
	// count only this shard's work; the engine aggregates.
	Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error)
}

// Observer receives one callback per completed shard scan (successful
// or cancelled) with the shard index, its wall-clock scan time, and its
// per-shard stage counters. The engine invokes it from worker
// goroutines, possibly concurrently; implementations must be
// thread-safe (the obs registry's histograms are).
type Observer func(shard int, seconds float64, st search.Stats)

// Engine fans a single query out across the shards of a Kernel using a
// bounded worker pool, then merges the per-shard heaps into the exact
// canonical global top-k. It implements search.ContextSearcher.
//
// Exactness across shard counts: every kernel in this repository offers
// an S-invariant candidate multiset (each shard's pruning is justified
// against a threshold no larger than the final global k-th score, and
// pruning is strict), and the canonical collector retains a pure
// function of the offered multiset — so S=1 and S>1 return bit-identical
// IDs, scores, and tie order. See DESIGN.md §11.
//
// Engine is not safe for concurrent Search calls on the same instance
// (it keeps per-query stats, like every other searcher here); use one
// Engine per querying goroutine over a shared Kernel.
type Engine struct {
	kern     Kernel
	workers  int
	observer Observer
	hook     *faults.Hook
	stats    search.Stats
}

// New returns an engine over kern answering each query with a pool of
// `workers` goroutines (clamped to the shard count; values < 1 mean
// GOMAXPROCS).
func New(kern Kernel, workers int) *Engine {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if s := kern.Shards(); workers > s {
		workers = s
	}
	return &Engine{kern: kern, workers: workers}
}

// SetObserver installs (or, with nil, removes) the per-shard scan
// observer.
func (e *Engine) SetObserver(o Observer) { e.observer = o }

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook passed to every shard scan. The hook's atomics make it safe to
// share across concurrently scanning shards; CancelAtItem semantics
// are shard-local (the first shard to pass that many items cancels the
// query).
func (e *Engine) SetFaultHook(h *faults.Hook) { e.hook = h }

// Workers returns the effective worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Search implements search.Searcher.
func (e *Engine) Search(q []float64, k int) []topk.Result {
	res, _ := e.SearchContext(context.Background(), q, k)
	return res
}

// shardOut is one shard's contribution, filled in by a worker.
type shardOut struct {
	res  []topk.Result
	st   search.Stats
	err  error
	secs float64
}

// SearchContext implements search.ContextSearcher. On cancellation it
// merges whatever every shard had collected when it stopped and returns
// the canonical best-so-far partial top-k alongside an
// ErrDeadline-wrapping error; all returned scores remain true inner
// products because each kernel maintains that invariant per shard.
//
// When ctx carries an obs span (tracing enabled for this query), the
// engine attaches the query-lifecycle tree under it: one "transform"
// child around Prepare, one "scan" child whose own children are the
// per-shard scans (annotated with shard, worker, queue wait, steal
// provenance, and stage counters), and one "merge" child around the
// canonical merge. With no span in ctx every call below is a nil no-op
// (DESIGN.md §13), so the untraced path costs one context lookup.
func (e *Engine) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	e.stats = search.Stats{}
	sp := obs.SpanFrom(ctx)
	tsp := sp.StartChild("transform")
	pq := e.kern.Prepare(q)
	tsp.End()
	shards := e.kern.Shards()
	outs := make([]shardOut, shards)
	shared := &search.SharedThreshold{}

	scanSp := sp.StartChild("scan")
	if scanSp != nil {
		scanSp.AttrInt("shards", int64(shards))
		scanSp.AttrInt("workers", int64(e.workers))
	}
	if e.workers <= 1 || shards == 1 {
		// Sequential path: no goroutines, no atomic traffic beyond the
		// shared-threshold loads the kernels do anyway. With one shard
		// this is within noise of the pre-sharding scan loop.
		// A cancelled shard means ctx is done; later shards return
		// promptly via their entry Poll, each recording a deterministic
		// (possibly empty) partial, so the loop never breaks early.
		for s := 0; s < shards; s++ {
			e.runShard(ctx, pq, s, k, shared, &outs[s], scanSp, 0)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(e.workers)
		for w := 0; w < e.workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= shards {
						return
					}
					e.runShard(ctx, pq, s, k, shared, &outs[s], scanSp, w)
				}
			}(w)
		}
		wg.Wait()
	}
	scanSp.End()

	// Merge: push every shard's retained results into one canonical
	// collector. The collector's total order (score desc, ID asc) makes
	// the merged set independent of push order, so no cross-shard
	// ordering discipline is needed here.
	msp := sp.StartChild("merge")
	merged := topk.New(k)
	var firstErr error
	candidates := 0
	for s := 0; s < shards; s++ {
		o := &outs[s]
		e.stats.Add(o.st)
		candidates += len(o.res)
		// This push loop is bounded by O(shards·k) retained results, not
		// the catalog size — cancellation already happened inside the
		// shard scans, so a poll here would only delay the merge.
		//lint:ignore ctxpoll bounded merge of ≤ shards·k retained results
		for _, r := range o.res { //fex:hot
			merged.Push(r.ID, r.Score)
		}
		if o.err != nil && firstErr == nil {
			firstErr = o.err // lowest shard's error, deterministic
		}
	}
	if msp != nil {
		msp.AttrInt("candidates", int64(candidates))
		msp.End()
	}
	if firstErr != nil {
		return merged.Results(), search.Canceled(firstErr)
	}
	return merged.Results(), nil
}

// runShard executes one shard scan and records its output, stats,
// error, and wall time into out. When the query is traced (scanSp is
// non-nil) it opens one child span per shard under the scan span: the
// queueWaitMicros attribute is how long the shard sat in the pool's
// queue before a worker picked it up (time since the scan span
// started), and stolen marks shards taken beyond the pool's initial
// distribution (shard index ≥ worker count) — together the "where did
// the microseconds go" signal for partition skew and pool sizing.
func (e *Engine) runShard(ctx context.Context, pq any, s, k int, shared *search.SharedThreshold, out *shardOut, scanSp *obs.Span, worker int) {
	var ssp *obs.Span
	if scanSp != nil {
		wait := time.Since(scanSp.Start())
		ssp = scanSp.StartChild("shard")
		ssp.AttrInt("shard", int64(s))
		ssp.AttrInt("worker", int64(worker))
		ssp.AttrInt("queueWaitMicros", wait.Microseconds())
		if s >= e.workers {
			ssp.AttrInt("stolen", 1)
		}
	}
	c := topk.New(k)
	start := time.Now()
	st, err := e.kern.Scan(ctx, pq, s, c, shared, e.hook)
	secs := time.Since(start).Seconds()
	if ssp != nil {
		ssp.AttrInt("scanned", int64(st.Scanned))
		ssp.AttrInt("pruned", int64(st.TotalPruned()))
		ssp.AttrInt("fullProducts", int64(st.FullProducts))
		if err != nil {
			ssp.AttrStr("error", err.Error())
		}
		ssp.End()
	}
	out.res = c.Results()
	out.st = st
	out.err = err
	out.secs = secs
	if e.observer != nil {
		e.observer(s, secs, st)
	}
}

// Stats implements search.Searcher: the sum of every shard's stage
// counters for the most recent query.
func (e *Engine) Stats() search.Stats { return e.stats }

var _ search.ContextSearcher = (*Engine)(nil)
