package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyCollector(t *testing.T) {
	c := New(3)
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !math.IsInf(c.Threshold(), -1) {
		t.Fatalf("Threshold = %v, want -Inf", c.Threshold())
	}
	if got := c.Results(); len(got) != 0 {
		t.Fatalf("Results = %v", got)
	}
}

func TestZeroK(t *testing.T) {
	c := New(0)
	if c.Push(1, 100) {
		t.Fatal("Push into k=0 collector should report false")
	}
	if !math.IsInf(c.Threshold(), 1) {
		t.Fatalf("Threshold = %v, want +Inf", c.Threshold())
	}
}

func TestNegativeKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestThresholdBecomesKthBest(t *testing.T) {
	c := New(2)
	c.Push(0, 5)
	if !math.IsInf(c.Threshold(), -1) {
		t.Fatal("threshold should stay -Inf until full")
	}
	c.Push(1, 3)
	if c.Threshold() != 3 {
		t.Fatalf("Threshold = %v, want 3", c.Threshold())
	}
	c.Push(2, 4)
	if c.Threshold() != 4 {
		t.Fatalf("Threshold = %v, want 4", c.Threshold())
	}
	got := c.Results()
	if got[0].ID != 0 || got[1].ID != 2 {
		t.Fatalf("Results = %v", got)
	}
}

func TestRejectBelowThreshold(t *testing.T) {
	c := New(1)
	c.Push(0, 10)
	if c.Push(1, 10) {
		t.Fatal("equal score must not displace (ties broken arbitrarily, first wins)")
	}
	if c.Push(2, 9) {
		t.Fatal("lower score must not enter")
	}
	if !c.Push(3, 11) {
		t.Fatal("higher score must enter")
	}
	if got := c.Results(); got[0].ID != 3 {
		t.Fatalf("Results = %v", got)
	}
}

func TestResultsSortedDeterministically(t *testing.T) {
	c := New(4)
	c.Push(7, 1)
	c.Push(3, 2)
	c.Push(5, 2)
	c.Push(1, 0)
	got := c.Results()
	// Descending score; ties by ascending ID.
	want := []Result{{ID: 3, Score: 2}, {ID: 5, Score: 2}, {ID: 7, Score: 1}, {ID: 1, Score: 0}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Results = %v, want %v", got, want)
		}
	}
}

func TestReset(t *testing.T) {
	c := New(2)
	c.Push(0, 1)
	c.Reset()
	if c.Len() != 0 || !math.IsInf(c.Threshold(), -1) {
		t.Fatal("Reset did not clear state")
	}
}

// Property: the collector selects exactly the k largest scores of any
// stream, in any insertion order.
func TestSelectsKLargestProperty(t *testing.T) {
	f := func(scores []float64, kRaw uint8) bool {
		for i, s := range scores {
			if math.IsNaN(s) {
				scores[i] = 0
			}
		}
		k := int(kRaw%16) + 1
		c := New(k)
		for id, s := range scores {
			c.Push(id, s)
		}
		got := c.Results()

		want := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Score != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: insertion order never changes the selected score multiset.
func TestOrderInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(10)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
		}
		c1 := New(k)
		for id, s := range scores {
			c1.Push(id, s)
		}
		perm := rng.Perm(n)
		c2 := New(k)
		for _, id := range perm {
			c2.Push(id, scores[id])
		}
		r1, r2 := c1.Results(), c2.Results()
		if len(r1) != len(r2) {
			t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
		}
		for i := range r1 {
			if r1[i].Score != r2[i].Score {
				t.Fatalf("score mismatch at %d: %v vs %v", i, r1[i], r2[i])
			}
		}
	}
}

func TestKLargerThanStream(t *testing.T) {
	c := New(10)
	c.Push(0, 1)
	c.Push(1, 2)
	got := c.Results()
	if len(got) != 2 || got[0].ID != 1 {
		t.Fatalf("Results = %v", got)
	}
}
