package topk

import (
	"math/rand"
	"testing"
)

// TestCanonicalTieDisplacement: with the heap full, a candidate tying
// the threshold score enters iff its ID is smaller than the retained
// tied item's — the canonical (score desc, ID asc) order.
func TestCanonicalTieDisplacement(t *testing.T) {
	c := New(2)
	c.Push(5, 1.0)
	c.Push(9, 2.0)
	// Tie with the worst retained item (id 5, score 1): higher ID loses…
	if c.Push(7, 1.0) {
		t.Fatal("id 7 tying score 1.0 displaced id 5 — canonical order broken")
	}
	// …lower ID wins.
	if !c.Push(3, 1.0) {
		t.Fatal("id 3 tying score 1.0 should displace id 5")
	}
	got := c.Results()
	want := []Result{{ID: 9, Score: 2.0}, {ID: 3, Score: 1.0}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCanonicalOrderInvariance: the retained set must be a pure
// function of the offered multiset — any push order yields identical
// Results, even with many exact ties.
func TestCanonicalOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	type cand struct {
		id    int
		score float64
	}
	// Scores drawn from a tiny set to force heavy tying.
	base := make([]cand, 40)
	for i := range base {
		base[i] = cand{id: i, score: float64(rng.Intn(4))}
	}
	ref := New(7)
	for _, x := range base {
		ref.Push(x.id, x.score)
	}
	want := ref.Results()
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(base))
		c := New(7)
		for _, p := range perm {
			c.Push(base[p].id, base[p].score)
		}
		got := c.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %+v, want %+v (push order changed the retained set)", trial, i, got[i], want[i])
			}
		}
	}
}

// TestCanonicalShardMerge: merging per-shard top-k collectors into a
// global collector must equal collecting everything in one pass — the
// merge identity the sharded engine relies on.
func TestCanonicalShardMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, k := 200, 9
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(rng.Intn(20)) // ties guaranteed
	}
	single := New(k)
	for i, s := range scores {
		single.Push(i, s)
	}
	want := single.Results()
	for _, shards := range []int{2, 3, 7} {
		merged := New(k)
		per := (n + shards - 1) / shards
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			local := New(k)
			for i := lo; i < hi; i++ {
				local.Push(i, scores[i])
			}
			for _, r := range local.Results() {
				merged.Push(r.ID, r.Score)
			}
		}
		got := merged.Results()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("S=%d: merged result %d = %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}
