// Package topk implements the bounded top-k collector used by every
// retrieval method in this repository (Algorithm 1's priority queue r and
// threshold t).
//
// The collector is a fixed-capacity binary min-heap over scores: the root
// always holds the k-th largest score seen so far, which is exactly the
// pruning threshold t that the scan algorithms compare bounds against.
package topk

import (
	"math"
	"sort"
)

// Result is one retrieved item: its identifier in the original item
// ordering and its (exact) inner-product score.
type Result struct {
	ID    int
	Score float64
}

// Collector accumulates the k largest-scoring items seen so far.
// The zero value is not usable; call New.
//
// The heap is ordered by the CANONICAL total order shared with
// SortResults: higher score wins, exact score ties are won by the
// LOWER ID. This matters for sharded execution (DESIGN.md §11): when S
// shards each collect a local top-k and the engine merges them, the
// retained set at every tie boundary must be independent of scan order
// and shard count. With the canonical order the k retained items are a
// pure function of the offered (id, score) multiset, so S=1 and S>1
// runs are bit-identical even on degenerate inputs (duplicate rows,
// all-zero queries) where many exact ties occur.
type Collector struct {
	k     int
	items []Result // min-heap: root is the canonically worst retained item
	// floor caches the fast-reject cutoff for Push: -Inf while the heap
	// has room (nothing can be rejected), the root score once it is
	// full, +Inf for k == 0. A candidate scoring strictly below floor
	// cannot enter; ties go through pushSlow for the canonical ID
	// comparison.
	floor float64
}

// worse reports whether a ranks strictly below b in the canonical order
// (score descending, ties by ascending ID). The exact float compare is
// deliberate: it defines the deterministic total order, not a tolerance
// test.
func worse(a, b Result) bool {
	if a.Score != b.Score { //lint:ignore floatcmp exact compare defines the deterministic total order
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// New returns a collector retaining the k best results. k must be ≥ 0;
// a collector with k == 0 retains nothing and has threshold +Inf so
// every candidate is pruned immediately.
func New(k int) *Collector {
	if k < 0 {
		panic("topk: negative k")
	}
	return &Collector{k: k, items: make([]Result, 0, k), floor: emptyFloor(k)}
}

// emptyFloor is the fast-reject cutoff of an empty collector: +Inf for
// k == 0 (everything rejected), -Inf otherwise (nothing rejected until
// the heap fills).
func emptyFloor(k int) float64 {
	if k == 0 {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

// K returns the collector's capacity.
func (c *Collector) K() int { return c.k }

// Len returns the number of results currently held.
func (c *Collector) Len() int { return len(c.items) }

// Threshold returns the current pruning threshold t: the smallest score
// in the heap once it is full, -Inf while it is not (so nothing is pruned
// until k candidates have been scored), and +Inf for k == 0. Scan loops
// read it once per item, so it must stay inlinable.
//
//fex:inline
func (c *Collector) Threshold() float64 {
	if c.k == 0 {
		return math.Inf(1)
	}
	if len(c.items) < c.k {
		return math.Inf(-1)
	}
	return c.items[0].Score
}

// Push offers a candidate. It returns true if the candidate entered the
// top-k (displacing the canonically worst retained item if the heap was
// full). When the heap is full, a candidate enters iff it ranks
// strictly above the root in the canonical order — in particular a
// candidate that exactly ties the threshold score displaces the root
// only when its ID is smaller, keeping the retained set scan-order
// independent.
//
// Push itself is only the fast reject — the overwhelmingly common
// outcome once the heap is full mid-scan — and must stay cheap enough
// to inline into the scan kernels; the heap restructuring lives in
// pushSlow.
//
//fex:inline
func (c *Collector) Push(id int, score float64) bool {
	if score < c.floor {
		return false
	}
	return c.pushSlow(id, score)
}

// pushSlow handles every candidate the floor compare could not reject:
// the heap still has room, the candidate beats the floor, or it ties
// the floor score exactly and the canonical ID comparison decides. NaN
// scores land here too and lose to everything under worse.
func (c *Collector) pushSlow(id int, score float64) bool {
	if c.k == 0 {
		return false
	}
	cand := Result{ID: id, Score: score}
	if len(c.items) < c.k {
		c.items = append(c.items, cand)
		c.siftUp(len(c.items) - 1)
		if len(c.items) == c.k {
			c.floor = c.items[0].Score
		}
		return true
	}
	if !worse(c.items[0], cand) {
		return false
	}
	c.items[0] = cand
	c.siftDown(0)
	c.floor = c.items[0].Score
	return true
}

// Results returns the collected items sorted by descending score
// (ties broken by ascending ID for determinism). The collector is not
// modified and remains usable.
func (c *Collector) Results() []Result {
	out := make([]Result, len(c.items))
	copy(out, c.items)
	SortResults(out)
	return out
}

// SortResults orders results by descending score with ties broken by
// ascending ID — the one canonical result ordering shared by every
// retrieval method, so exactness tests can compare outputs verbatim.
// The exact (non-epsilon) score comparison is deliberate: it defines a
// total order for deterministic tie-breaking, not a tolerance test.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score { //lint:ignore floatcmp exact compare defines the deterministic total order
			return rs[i].Score > rs[j].Score
		}
		return rs[i].ID < rs[j].ID
	})
}

// Reset empties the collector, keeping its capacity.
func (c *Collector) Reset() {
	c.items = c.items[:0]
	c.floor = emptyFloor(c.k)
}

func (c *Collector) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(c.items[i], c.items[parent]) {
			return
		}
		c.items[parent], c.items[i] = c.items[i], c.items[parent]
		i = parent
	}
}

func (c *Collector) siftDown(i int) {
	n := len(c.items)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && worse(c.items[l], c.items[worst]) {
			worst = l
		}
		if r < n && worse(c.items[r], c.items[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		c.items[i], c.items[worst] = c.items[worst], c.items[i]
		i = worst
	}
}
