package covertree_test

import (
	"testing"

	"fexipro/internal/covertree"
	"fexipro/internal/engine"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// Small leaves so even the harness's small instances produce real
// multi-level trees in every shard.
func buildSharded(items *vec.Matrix, shards int) *engine.Engine {
	return engine.New(covertree.NewKernel(items, 4, shards), 2)
}

func TestShardedCoverTreeBitExact(t *testing.T) {
	searchtest.CheckSharded(t, func(items *vec.Matrix, shards int) search.ContextSearcher {
		return buildSharded(items, shards)
	}, "covertree")
}

func TestShardedCoverTreeCancellation(t *testing.T) {
	searchtest.CheckShardedCancellation(t, func(items *vec.Matrix, shards int) searchtest.FaultSearcher {
		return buildSharded(items, shards)
	}, "covertree")
}
