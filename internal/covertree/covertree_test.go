package covertree_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/covertree"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestCoverTreeExact(t *testing.T) {
	searchtest.CheckSearcher(t, func(items *vec.Matrix) search.Searcher {
		return covertree.New(items, 0)
	}, "covertree")
	searchtest.CheckSearcherEdgeCases(t, func(items *vec.Matrix) search.Searcher {
		return covertree.New(items, 0)
	}, "covertree")
}

func TestCoverTreeExactVariousLeafSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	items, _ := searchtest.RandomInstance(rng, 400, 10)
	for _, leaf := range []int{1, 10, 50} {
		tree := covertree.New(items, leaf)
		if tree.Size() != 400 {
			t.Fatalf("leaf=%d: Size = %d, want 400", leaf, tree.Size())
		}
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, 10)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			searchtest.CheckTopK(t, items, q, 5, tree.Search(q, 5), "covertree/leaf")
		}
	}
}

func TestCoverTreeDuplicates(t *testing.T) {
	row := []float64{-1, 0.5}
	items := vec.FromRows([][]float64{row, row, row, row, row, row})
	tree := covertree.New(items, 2)
	got := tree.Search([]float64{2, 2}, 4)
	if len(got) != 4 {
		t.Fatalf("got %d results", len(got))
	}
	for _, r := range got {
		if r.Score != -1 {
			t.Fatalf("score %v, want -1", r.Score)
		}
	}
}

func TestCoverTreePrunesInLowDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	items, q := searchtest.RandomInstance(rng, 5000, 3)
	tree := covertree.New(items, 0)
	tree.Search(q, 1)
	st := tree.Stats()
	if st.FullProducts >= 5000 {
		t.Errorf("no pruning at d=3: %d full products", st.FullProducts)
	}
}

func TestCoverTreeEmpty(t *testing.T) {
	tree := covertree.New(vec.NewMatrix(0, 4), 0)
	if got := tree.Search([]float64{1, 2, 3, 4}, 3); len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
	if tree.Size() != 0 {
		t.Fatalf("Size = %d", tree.Size())
	}
}

func TestCoverTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	items, _ := searchtest.RandomInstance(rng, 600, 7)
	tree := covertree.New(items, 8)
	total := tree.CheckInvariants(t.Errorf)
	if total != 600 {
		t.Fatalf("leaves cover %d items, want 600", total)
	}
}
