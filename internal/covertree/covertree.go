// Package covertree implements the FastMKS baseline (Curtin, Ram & Gray):
// exact max-kernel search over a cover-tree-style metric hierarchy, with
// the linear kernel K(q,p) = qᵀp used in the paper's evaluation.
//
// Construction follows the cover-tree spirit — a hierarchy of
// representatives whose covering radii shrink geometrically with the
// paper's base 1.3 — built by greedy farthest-point (k-center) selection,
// which is deterministic and O(n·branching·depth). Search correctness
// does not depend on the cover invariants: every node stores the EXACT
// maximum distance from its representative to any descendant, so the
// FastMKS bound
//
//	max_{p ∈ desc(n)} qᵀp ≤ qᵀx_n + ‖q‖·maxDescDist(n)
//
// always dominates, and branch-and-bound returns exact top-k results.
package covertree

import (
	"context"
	"fmt"
	"math"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Base is the cover-tree expansion constant used in the paper (1.3).
const Base = 1.3

// DefaultLeafSize bounds the number of points enumerated at a leaf.
const DefaultLeafSize = 20

// Tree is an immutable cover-tree max-kernel index.
type Tree struct {
	items    *vec.Matrix
	root     *node
	leafSize int
	hook     *faults.Hook
	stats    search.Stats
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// called once per visited tree node.
func (t *Tree) SetFaultHook(h *faults.Hook) { t.hook = h }

type node struct {
	id          int     // representative item
	maxDescDist float64 // exact max distance from items[id] to any descendant
	children    []*node
	leafIDs     []int // non-nil for leaves: all covered items (incl. id)
	size        int   // number of items in the subtree
}

// New builds the index over items (referenced, not copied). leafSize ≤ 0
// selects DefaultLeafSize.
func New(items *vec.Matrix, leafSize int) *Tree {
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	t := &Tree{items: items, leafSize: leafSize}
	if items.Rows == 0 {
		return t
	}
	ids := make([]int, items.Rows)
	for i := range ids {
		ids[i] = i
	}
	t.root = t.build(ids[0], ids)
	return t
}

// build creates the subtree rooted at representative rep covering ids
// (which includes rep). Children representatives are chosen by greedy
// farthest-point selection until every point lies within the child
// radius, which shrinks by the expansion base per level.
func (t *Tree) build(rep int, ids []int) *node {
	n := &node{id: rep, size: len(ids)}
	repRow := t.items.Row(rep)
	var maxD float64
	for _, id := range ids {
		if d := vec.Dist(repRow, t.items.Row(id)); d > maxD {
			maxD = d
		}
	}
	n.maxDescDist = maxD
	if len(ids) <= t.leafSize || maxD == 0 {
		n.leafIDs = ids
		return n
	}

	// Child radius: shrink the covering radius by the expansion base.
	childRadius := maxD / Base

	// Greedy k-center: representatives start with rep itself; repeatedly
	// promote the point farthest from all current representatives until
	// everything is covered within childRadius.
	reps := []int{rep}
	distToReps := make([]float64, len(ids)) // min distance to chosen reps
	for i, id := range ids {
		distToReps[i] = vec.Dist(repRow, t.items.Row(id))
	}
	for {
		far, farDist := -1, childRadius
		for i := range ids {
			if distToReps[i] > farDist {
				far, farDist = i, distToReps[i]
			}
		}
		if far < 0 {
			break
		}
		newRep := ids[far]
		reps = append(reps, newRep)
		newRow := t.items.Row(newRep)
		for i, id := range ids {
			if d := vec.Dist(newRow, t.items.Row(id)); d < distToReps[i] {
				distToReps[i] = d
			}
		}
	}

	// Assign each point to its nearest representative.
	groups := make(map[int][]int, len(reps))
	for _, id := range ids {
		row := t.items.Row(id)
		best, bestD := reps[0], math.Inf(1)
		for _, r := range reps {
			if d := vec.DistSquared(row, t.items.Row(r)); d < bestD {
				best, bestD = r, d
			}
		}
		groups[best] = append(groups[best], id)
	}
	if len(groups) <= 1 {
		// Could not split (pathological duplicates): finish as a leaf.
		n.leafIDs = ids
		return n
	}
	for _, r := range reps {
		g := groups[r]
		if len(g) == 0 {
			continue
		}
		n.children = append(n.children, t.build(r, g))
	}
	return n
}

// Search implements search.Searcher via best-bound-first branch and bound.
func (t *Tree) Search(q []float64, k int) []topk.Result {
	res, _ := t.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: the descent polls ctx
// every search.CheckStride visited nodes and returns the best-so-far
// partial top-k with an ErrDeadline-wrapping error on cancellation.
func (t *Tree) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	if t.items.Rows > 0 && len(q) != t.items.Cols {
		panic(fmt.Sprintf("covertree: query dim %d != item dim %d", len(q), t.items.Cols))
	}
	t.stats = search.Stats{}
	c := topk.New(k)
	if t.root != nil && k > 0 {
		s := &scanState{t: t, ctx: ctx, q: q, qNorm: vec.Norm(q), c: c, hook: t.hook, stats: &t.stats}
		if err := s.descend(t.root); err != nil {
			return c.Results(), err
		}
	}
	return c.Results(), nil
}

// scanState carries one branch-and-bound descent's per-query inputs and
// outputs, decoupled from the Tree so per-shard trees can be scanned by
// the sharded engine: the collector and stats are externally owned,
// shared is the engine's cross-shard monotone threshold (nil for single
// scans), and offset translates the tree's local row IDs back to global
// item IDs.
type scanState struct {
	t      *Tree
	ctx    context.Context
	q      []float64
	qNorm  float64
	c      *topk.Collector
	shared *search.SharedThreshold
	hook   *faults.Hook
	stats  *search.Stats
	offset int
}

func (s *scanState) descend(n *node) error {
	if done := s.ctx.Done(); s.hook != nil || (done != nil && s.stats.NodesVisited&search.StrideMask == 0) {
		if err := search.Poll(s.ctx, s.hook, s.stats.NodesVisited); err != nil {
			return err
		}
	}
	s.stats.NodesVisited++
	t := s.t
	if n.leafIDs != nil {
		for _, id := range n.leafIDs {
			s.stats.Scanned++
			s.stats.FullProducts++
			if s.c.Push(id+s.offset, vec.Dot(s.q, t.items.Row(id))) && s.c.Len() == s.c.K() {
				s.shared.Publish(s.c.Threshold())
			}
		}
		return nil
	}
	// Order children by decreasing bound; prune STRICTLY (bound < t), so
	// every pruned item's exact score is strictly below the final global
	// k-th score and the retained set is invariant across shard layouts
	// (DESIGN.md §11). The threshold floor is re-read before each child
	// so earlier siblings' pushes — or another shard's published
	// threshold — tighten later prunes.
	type scored struct {
		child *node
		bound float64
	}
	order := make([]scored, 0, len(n.children))
	for _, ch := range n.children {
		b := vec.Dot(s.q, t.items.Row(ch.id)) + s.qNorm*ch.maxDescDist
		order = append(order, scored{ch, b})
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].bound > order[j-1].bound; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, sc := range order {
		if sc.bound < s.shared.Floor(s.c.Threshold()) {
			s.stats.PrunedByLength += sc.child.size
			continue
		}
		if err := s.descend(sc.child); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements search.Searcher.
func (t *Tree) Stats() search.Stats { return t.stats }

// Size returns the number of indexed items.
func (t *Tree) Size() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

var _ search.ContextSearcher = (*Tree)(nil)
