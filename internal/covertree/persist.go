package covertree

import (
	"fmt"
	"io"

	"fexipro/internal/snap"
	"fexipro/internal/vec"
)

// Cover-tree persistence (fexsnap/v1, DESIGN.md §15): the item matrix
// and the finished hierarchy are stored, so Load rebuilds a tree whose
// descent order, bounds, and stats are bit-identical to the saved one —
// no re-running the greedy k-center construction.

const (
	secCTMeta  = "ct.meta"  // leafSize, rows, cols
	secCTItems = "ct.items" // item matrix
	secCTTree  = "ct.tree"  // preorder node encoding
)

// maxTreeDepth caps recursion when decoding a persisted hierarchy: real
// depths are bounded by the geometric radius shrink, so anything deeper
// is corruption, caught before the stack overflows.
const maxTreeDepth = 1 << 14

// Items returns the item matrix the tree searches over (not a copy; do
// not mutate).
func (t *Tree) Items() *vec.Matrix { return t.items }

// LeafSize returns the leaf capacity the tree was built with.
func (t *Tree) LeafSize() int { return t.leafSize }

// NewKernelFromTree wraps an already-built (typically loaded) tree as a
// single-shard engine kernel, so a deserialized tree serves queries
// directly with no rebuild. Multi-shard kernels re-partition the item
// matrix, so they are built with NewKernel(t.Items(), ...).
func NewKernelFromTree(t *Tree) *Kernel {
	return &Kernel{trees: []*Tree{t}, starts: []int{0}, dim: t.items.Cols}
}

// Save writes the tree as a fexsnap/v1 container.
func (t *Tree) Save(w io.Writer) error {
	var b snap.Builder
	b.Section(secCTMeta, func(e *snap.Encoder) {
		e.I64(int64(t.leafSize))
		e.I64(int64(t.items.Rows))
		e.I64(int64(t.items.Cols))
	})
	b.Section(secCTItems, func(e *snap.Encoder) { e.Matrix(t.items) })
	b.Section(secCTTree, func(e *snap.Encoder) { encodeNode(e, t.root) })
	return b.Flush(w)
}

// encodeNode emits a preorder encoding: presence, representative,
// bound, size, then either the leaf IDs or the child list.
func encodeNode(e *snap.Encoder, n *node) {
	e.Bool(n != nil)
	if n == nil {
		return
	}
	e.I64(int64(n.id))
	e.F64(n.maxDescDist)
	e.I64(int64(n.size))
	e.Bool(n.leafIDs != nil)
	if n.leafIDs != nil {
		e.Ints(n.leafIDs)
		return
	}
	e.I64(int64(len(n.children)))
	for _, c := range n.children {
		encodeNode(e, c)
	}
}

// Load reads a tree written by Save. Every error wraps one of the snap
// sentinels.
func Load(r io.Reader) (*Tree, error) {
	f, err := snap.Read(r)
	if err != nil {
		return nil, fmt.Errorf("covertree: reading tree: %w", err)
	}
	payload, ok := f.Section(secCTMeta)
	if !ok {
		return nil, fmt.Errorf("%w: cover-tree snapshot missing section %q", snap.ErrChecksum, secCTMeta)
	}
	d := snap.NewDecoder(payload)
	leafSize := int(d.I64())
	rows := int(d.I64())
	cols := int(d.I64())
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("covertree: meta section: %w", err)
	}
	if leafSize < 1 || rows < 0 || cols < 1 {
		return nil, fmt.Errorf("%w: cover-tree meta leafSize=%d shape %d×%d", snap.ErrChecksum, leafSize, rows, cols)
	}

	payload, ok = f.Section(secCTItems)
	if !ok {
		return nil, fmt.Errorf("%w: cover-tree snapshot missing section %q", snap.ErrChecksum, secCTItems)
	}
	d = snap.NewDecoder(payload)
	items := d.Matrix()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("covertree: items section: %w", err)
	}
	if items == nil || items.Rows != rows || items.Cols != cols {
		return nil, fmt.Errorf("%w: cover-tree item matrix disagrees with meta", snap.ErrChecksum)
	}

	payload, ok = f.Section(secCTTree)
	if !ok {
		return nil, fmt.Errorf("%w: cover-tree snapshot missing section %q", snap.ErrChecksum, secCTTree)
	}
	d = snap.NewDecoder(payload)
	root, err := decodeNode(d, rows, 0)
	if err != nil {
		return nil, fmt.Errorf("covertree: tree section: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("covertree: tree section: %w", err)
	}
	if (root == nil) != (rows == 0) {
		return nil, fmt.Errorf("%w: cover-tree root disagrees with item count", snap.ErrChecksum)
	}
	return &Tree{items: items, root: root, leafSize: leafSize}, nil
}

func decodeNode(d *snap.Decoder, rows, depth int) (*node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("%w: cover tree deeper than %d", snap.ErrChecksum, maxTreeDepth)
	}
	if !d.Bool() {
		return nil, d.Err()
	}
	n := &node{id: int(d.I64()), maxDescDist: d.F64(), size: int(d.I64())}
	isLeaf := d.Bool()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n.id < 0 || n.id >= rows || n.size < 1 || n.size > rows {
		return nil, fmt.Errorf("%w: cover-tree node id=%d size=%d with %d items", snap.ErrChecksum, n.id, n.size, rows)
	}
	if isLeaf {
		n.leafIDs = d.Ints()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(n.leafIDs) == 0 {
			return nil, fmt.Errorf("%w: cover-tree leaf with no items", snap.ErrChecksum)
		}
		for _, id := range n.leafIDs {
			if id < 0 || id >= rows {
				return nil, fmt.Errorf("%w: cover-tree leaf ID %d outside [0, %d)", snap.ErrChecksum, id, rows)
			}
		}
		return n, nil
	}
	nc := int(d.I64())
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Each child costs ≥ 8 encoded bytes, so bounding the count by the
	// bytes still unread keeps corrupt counts from huge allocations.
	if nc < 1 || nc > d.Remaining()/8+1 {
		return nil, fmt.Errorf("%w: cover-tree node with %d children", snap.ErrChecksum, nc)
	}
	n.children = make([]*node, 0, nc)
	for i := 0; i < nc; i++ {
		c, err := decodeNode(d, rows, depth+1)
		if err != nil {
			return nil, err
		}
		if c == nil {
			return nil, fmt.Errorf("%w: cover-tree internal node with nil child", snap.ErrChecksum)
		}
		n.children = append(n.children, c)
	}
	return n, nil
}
