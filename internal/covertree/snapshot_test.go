package covertree_test

import (
	"testing"

	"fexipro/internal/covertree"
	"fexipro/internal/engine"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// TestSnapshotRoundTrip: a saved-and-loaded cover tree must serve
// queries bit-identically to the one that was built. S=1 serves the
// loaded tree directly (no rebuild); multi-shard kernels re-partition
// the persisted item matrix, which is deterministic from the items.
func TestSnapshotRoundTrip(t *testing.T) {
	searchtest.CheckSnapshotRoundTrip(t, searchtest.SnapshotCodec[*covertree.Tree]{
		Build: func(items *vec.Matrix) *covertree.Tree { return covertree.New(items, 4) },
		Save:  (*covertree.Tree).Save,
		Load:  covertree.Load,
		Searcher: func(tr *covertree.Tree, shards int) searchtest.FaultSearcher {
			if shards == 1 {
				return engine.New(covertree.NewKernelFromTree(tr), 2)
			}
			return engine.New(covertree.NewKernel(tr.Items(), tr.LeafSize(), shards), 2)
		},
	}, "covertree")
}
