package covertree

import (
	"context"
	"fmt"

	"fexipro/internal/engine"
	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Kernel adapts the FastMKS cover tree to engine.Kernel by building one
// independent tree per shard over a contiguous row range of the item
// matrix (a zero-copy vec.Matrix.Slice view). Shard trees differ in
// shape from the global tree, but leaf scores are exact inner products
// against the original rows and the descent prunes strictly
// (bound < t), so the merged result is the canonical top-k of the full
// item set for every shard count (DESIGN.md §11).
type Kernel struct {
	trees  []*Tree
	starts []int // starts[s] = global row offset of shard s's tree
	dim    int
}

// ctQuery is the per-query state shared read-only by every shard scan.
type ctQuery struct {
	q     []float64
	qNorm float64
}

// NewKernel partitions items into (at most) shards contiguous row
// ranges and builds one cover tree per range. leafSize ≤ 0 selects
// DefaultLeafSize.
func NewKernel(items *vec.Matrix, leafSize, shards int) *Kernel {
	part := engine.NewPartition(items.Rows, shards)
	k := &Kernel{
		trees:  make([]*Tree, part.Shards()),
		starts: make([]int, part.Shards()),
		dim:    items.Cols,
	}
	for s := 0; s < part.Shards(); s++ {
		lo, hi := part.Range(s)
		k.trees[s] = New(items.Slice(lo, hi), leafSize)
		k.starts[s] = lo
	}
	return k
}

// Shards implements engine.Kernel.
func (k *Kernel) Shards() int { return len(k.trees) }

// Prepare implements engine.Kernel.
func (k *Kernel) Prepare(q []float64) any {
	if len(q) != k.dim {
		panic(fmt.Sprintf("covertree: query dim %d != item dim %d", len(q), k.dim))
	}
	return &ctQuery{q: q, qNorm: vec.Norm(q)}
}

// Scan implements engine.Kernel: one shard tree's best-bound-first
// descent, offsetting leaf IDs back to global row indices. The poll
// index (stats.NodesVisited) is shard-local by construction.
func (k *Kernel) Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error) {
	tr := k.trees[shard]
	qs := pq.(*ctQuery)
	var st search.Stats
	if tr.root == nil || c.K() <= 0 {
		return st, nil
	}
	s := &scanState{
		t:      tr,
		ctx:    ctx,
		q:      qs.q,
		qNorm:  qs.qNorm,
		c:      c,
		shared: shared,
		hook:   hook,
		stats:  &st,
		offset: k.starts[shard],
	}
	err := s.descend(tr.root)
	return st, err
}

var _ engine.Kernel = (*Kernel)(nil)
