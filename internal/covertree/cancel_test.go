package covertree_test

import (
	"testing"

	"fexipro/internal/covertree"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestCoverTreeCancellation(t *testing.T) {
	searchtest.CheckCancellation(t, func(items *vec.Matrix) searchtest.FaultSearcher {
		return covertree.New(items, 16)
	}, "CoverTree")
}
