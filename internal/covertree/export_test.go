package covertree

import "fexipro/internal/vec"

// CheckInvariants validates that every node's maxDescDist really covers
// all its descendants (the property branch-and-bound correctness rests
// on) and that the leaves partition the items. Returns the leaf total.
func (t *Tree) CheckInvariants(fail func(format string, args ...any)) int {
	seen := map[int]bool{}
	var collect func(n *node) []int
	collect = func(n *node) []int {
		if n == nil {
			return nil
		}
		if n.leafIDs != nil {
			for _, id := range n.leafIDs {
				if seen[id] {
					fail("item %d appears in two leaves", id)
				}
				seen[id] = true
			}
			return n.leafIDs
		}
		var all []int
		for _, ch := range collectChildren(n) {
			all = append(all, collect(ch)...)
		}
		rep := t.items.Row(n.id)
		for _, id := range all {
			if d := vec.Dist(rep, t.items.Row(id)); d > n.maxDescDist+1e-9 {
				fail("descendant %d at %v exceeds maxDescDist %v of node %d", id, d, n.maxDescDist, n.id)
			}
		}
		if n.size != len(all) {
			fail("node %d size %d != descendant count %d", n.id, n.size, len(all))
		}
		return all
	}
	return len(collect(t.root))
}

func collectChildren(n *node) []*node { return n.children }
