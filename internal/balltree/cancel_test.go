package balltree_test

import (
	"testing"

	"fexipro/internal/balltree"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// The ball tree polls per visited node rather than per scanned item; the
// shared suite's invariants (never exact when cut short, true partial
// scores, unfired-hook determinism) are index-agnostic.
func TestBallTreeCancellation(t *testing.T) {
	searchtest.CheckCancellation(t, func(items *vec.Matrix) searchtest.FaultSearcher {
		return balltree.New(items, 16)
	}, "BallTree")
}
