package balltree_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/balltree"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestBallTreeExact(t *testing.T) {
	searchtest.CheckSearcher(t, func(items *vec.Matrix) search.Searcher {
		return balltree.New(items, 0)
	}, "balltree")
	searchtest.CheckSearcherEdgeCases(t, func(items *vec.Matrix) search.Searcher {
		return balltree.New(items, 0)
	}, "balltree")
}

func TestBallTreeExactVariousLeafSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	items, _ := searchtest.RandomInstance(rng, 300, 12)
	for _, leaf := range []int{1, 5, 20, 100, 1000} {
		tree := balltree.New(items, leaf)
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, 12)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			searchtest.CheckTopK(t, items, q, 7, tree.Search(q, 7), "balltree/leaf")
		}
	}
}

func TestBallTreePrunesInLowDimensions(t *testing.T) {
	// At low d the bound is effective: the tree must not visit everything.
	rng := rand.New(rand.NewSource(41))
	items, q := searchtest.RandomInstance(rng, 5000, 3)
	tree := balltree.New(items, 0)
	tree.Search(q, 1)
	st := tree.Stats()
	if st.FullProducts >= 5000 {
		t.Errorf("no pruning at d=3: %d full products", st.FullProducts)
	}
	if st.PrunedByLength == 0 {
		t.Error("no subtree was ever pruned")
	}
}

func TestBallTreeAllDuplicates(t *testing.T) {
	row := []float64{1, 2, 3}
	items := vec.FromRows([][]float64{row, row, row, row, row})
	tree := balltree.New(items, 2)
	got := tree.Search([]float64{1, 1, 1}, 3)
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	for _, r := range got {
		if r.Score != 6 {
			t.Fatalf("score %v, want 6", r.Score)
		}
	}
}

func TestBallTreeDepthGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	items, _ := searchtest.RandomInstance(rng, 1000, 8)
	tree := balltree.New(items, 20)
	if tree.Depth() < 3 {
		t.Fatalf("depth %d too shallow for 1000 items with leaf 20", tree.Depth())
	}
}

func TestBallTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	items, _ := searchtest.RandomInstance(rng, 700, 9)
	tree := balltree.New(items, 10)
	total := tree.CheckInvariants(t.Errorf)
	if total != 700 {
		t.Fatalf("leaves cover %d items, want 700", total)
	}
}
