// Package balltree implements the BallTree exact maximum-inner-product
// baseline of Ram & Gray (KDD 2012), as configured in the paper's
// evaluation (leaf capacity 20).
//
// Each node covers a subset of item vectors with a bounding ball
// (centroid c, radius R = max distance from c to a member). For a query
// q, every inner product inside the ball is bounded by
//
//	qᵀp ≤ qᵀc + ‖q‖·R
//
// (qᵀp = qᵀc + qᵀ(p−c) ≤ qᵀc + ‖q‖·‖p−c‖). Branch-and-bound descends
// into the child with the larger bound first and prunes subtrees whose
// bound cannot beat the current k-th best product.
package balltree

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// DefaultLeafSize is the leaf capacity suggested by Ram & Gray and used
// in the paper's experiments.
const DefaultLeafSize = 20

// Tree is an immutable BallTree over an item matrix.
type Tree struct {
	items    *vec.Matrix
	root     *node
	leafSize int
	hook     *faults.Hook
	stats    search.Stats
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// called once per visited tree node.
func (t *Tree) SetFaultHook(h *faults.Hook) { t.hook = h }

type node struct {
	centroid []float64
	radius   float64
	// leaf payload: item IDs
	ids []int
	// internal children
	left, right *node
}

// New builds a BallTree over items (rows are item vectors; the matrix is
// referenced, not copied, and must not be mutated afterwards). leafSize
// ≤ 0 selects DefaultLeafSize.
func New(items *vec.Matrix, leafSize int) *Tree {
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	t := &Tree{items: items, leafSize: leafSize}
	ids := make([]int, items.Rows)
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewSource(1))
	t.root = t.build(ids, rng)
	return t
}

// build recursively splits ids with the classical two-pivot heuristic:
// pick the point A farthest from a random point, then B farthest from A,
// and partition by closer-of-the-two.
func (t *Tree) build(ids []int, rng *rand.Rand) *node {
	if len(ids) == 0 {
		return nil
	}
	n := &node{centroid: t.centroidOf(ids)}
	n.radius = t.maxDist(n.centroid, ids)
	if len(ids) <= t.leafSize {
		n.ids = ids
		return n
	}

	// Two-pivot split.
	seed := t.items.Row(ids[rng.Intn(len(ids))])
	a := t.farthestFrom(seed, ids)
	b := t.farthestFrom(t.items.Row(a), ids)
	if a == b {
		// All points identical: keep as a (possibly oversized) leaf.
		n.ids = ids
		return n
	}
	rowA, rowB := t.items.Row(a), t.items.Row(b)
	var leftIDs, rightIDs []int
	for _, id := range ids {
		row := t.items.Row(id)
		if vec.DistSquared(row, rowA) <= vec.DistSquared(row, rowB) {
			leftIDs = append(leftIDs, id)
		} else {
			rightIDs = append(rightIDs, id)
		}
	}
	if len(leftIDs) == 0 || len(rightIDs) == 0 {
		n.ids = ids
		return n
	}
	n.left = t.build(leftIDs, rng)
	n.right = t.build(rightIDs, rng)
	return n
}

func (t *Tree) centroidOf(ids []int) []float64 {
	c := make([]float64, t.items.Cols)
	for _, id := range ids {
		vec.Add(c, t.items.Row(id))
	}
	vec.Scale(c, 1/float64(len(ids)))
	return c
}

func (t *Tree) maxDist(from []float64, ids []int) float64 {
	var m float64
	for _, id := range ids {
		if d := vec.DistSquared(from, t.items.Row(id)); d > m {
			m = d
		}
	}
	return math.Sqrt(m)
}

func (t *Tree) farthestFrom(from []float64, ids []int) int {
	best, bestDist := ids[0], -1.0
	for _, id := range ids {
		if d := vec.DistSquared(from, t.items.Row(id)); d > bestDist {
			best, bestDist = id, d
		}
	}
	return best
}

// Search implements search.Searcher with depth-first branch-and-bound.
func (t *Tree) Search(q []float64, k int) []topk.Result {
	res, _ := t.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: the descent polls ctx
// every search.CheckStride visited nodes and returns the best-so-far
// partial top-k with an ErrDeadline-wrapping error on cancellation.
func (t *Tree) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	if len(q) != t.items.Cols {
		panic(fmt.Sprintf("balltree: query dim %d != item dim %d", len(q), t.items.Cols))
	}
	t.stats = search.Stats{}
	c := topk.New(k)
	if t.root != nil && k > 0 {
		s := &scanState{t: t, ctx: ctx, q: q, qNorm: vec.Norm(q), c: c, hook: t.hook, stats: &t.stats}
		if err := s.descend(t.root); err != nil {
			return c.Results(), err
		}
	}
	return c.Results(), nil
}

// scanState carries one branch-and-bound descent's per-query inputs and
// outputs, decoupled from the Tree so the same tree (or a per-shard
// slice of trees) can be scanned by the sharded engine: the collector
// and stats are externally owned, shared is the engine's cross-shard
// monotone threshold (nil for single scans), and offset translates the
// tree's local row IDs back to global item IDs.
type scanState struct {
	t      *Tree
	ctx    context.Context
	q      []float64
	qNorm  float64
	c      *topk.Collector
	shared *search.SharedThreshold
	hook   *faults.Hook
	stats  *search.Stats
	offset int
}

func (s *scanState) descend(n *node) error {
	if done := s.ctx.Done(); s.hook != nil || (done != nil && s.stats.NodesVisited&search.StrideMask == 0) {
		if err := search.Poll(s.ctx, s.hook, s.stats.NodesVisited); err != nil {
			return err
		}
	}
	s.stats.NodesVisited++
	t := s.t
	if n.ids != nil {
		for _, id := range n.ids {
			s.stats.Scanned++
			s.stats.FullProducts++
			if s.c.Push(id+s.offset, vec.Dot(s.q, t.items.Row(id))) && s.c.Len() == s.c.K() {
				s.shared.Publish(s.c.Threshold())
			}
		}
		return nil
	}
	lb := t.bound(n.left, s.q, s.qNorm)
	rb := t.bound(n.right, s.q, s.qNorm)
	first, second := n.left, n.right
	fb, sb := lb, rb
	if rb > lb {
		first, second = n.right, n.left
		fb, sb = rb, lb
	}
	// Descend iff bound ≥ threshold: the prune is STRICT (bound < t), so
	// every pruned item's exact score is strictly below the final k-th
	// score and the retained set is invariant across shard layouts
	// (DESIGN.md §11). The floor is re-read before each child so a
	// sibling's pushes (or another shard's published threshold) tighten
	// the second descent.
	if fb >= s.shared.Floor(s.c.Threshold()) {
		if err := s.descend(first); err != nil {
			return err
		}
	} else {
		s.stats.PrunedByLength += countItems(first)
	}
	if sb >= s.shared.Floor(s.c.Threshold()) {
		if err := s.descend(second); err != nil {
			return err
		}
	} else {
		s.stats.PrunedByLength += countItems(second)
	}
	return nil
}

func (t *Tree) bound(n *node, q []float64, qNorm float64) float64 {
	return vec.Dot(q, n.centroid) + qNorm*n.radius
}

func countItems(n *node) int {
	if n == nil {
		return 0
	}
	if n.ids != nil {
		return len(n.ids)
	}
	return countItems(n.left) + countItems(n.right)
}

// Stats implements search.Searcher.
func (t *Tree) Stats() search.Stats { return t.stats }

// Depth returns the height of the tree (leaves have depth 1); used by
// tests and diagnostics.
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.ids != nil {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

var _ search.ContextSearcher = (*Tree)(nil)
