package balltree_test

import (
	"testing"

	"fexipro/internal/balltree"
	"fexipro/internal/engine"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// TestSnapshotRoundTrip: a saved-and-loaded ball tree must serve
// queries bit-identically to the one that was built. S=1 serves the
// loaded tree directly (no rebuild); multi-shard kernels re-partition
// the persisted item matrix, which is deterministic from the items.
func TestSnapshotRoundTrip(t *testing.T) {
	searchtest.CheckSnapshotRoundTrip(t, searchtest.SnapshotCodec[*balltree.Tree]{
		Build: func(items *vec.Matrix) *balltree.Tree { return balltree.New(items, 4) },
		Save:  (*balltree.Tree).Save,
		Load:  balltree.Load,
		Searcher: func(tr *balltree.Tree, shards int) searchtest.FaultSearcher {
			if shards == 1 {
				return engine.New(balltree.NewKernelFromTree(tr), 2)
			}
			return engine.New(balltree.NewKernel(tr.Items(), tr.LeafSize(), shards), 2)
		},
	}, "balltree")
}
