package balltree

import "fexipro/internal/vec"

// CheckInvariants walks the tree validating that every node's bounding
// ball actually covers its members and that leaves partition the item
// set. It returns the total number of items found at leaves.
func (t *Tree) CheckInvariants(fail func(format string, args ...any)) int {
	seen := map[int]bool{}
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.ids != nil {
			for _, id := range n.ids {
				if seen[id] {
					fail("item %d appears in two leaves", id)
				}
				seen[id] = true
				if d := vec.Dist(n.centroid, t.items.Row(id)); d > n.radius+1e-9 {
					fail("item %d at distance %v outside ball radius %v", id, d, n.radius)
				}
			}
			return len(n.ids)
		}
		if n.left == nil || n.right == nil {
			fail("internal node with missing child")
			return 0
		}
		return walk(n.left) + walk(n.right)
	}
	total := walk(t.root)
	// Parent coverage: every item's distance to root centroid ≤ root radius.
	if t.root != nil {
		for id := range seen {
			if d := vec.Dist(t.root.centroid, t.items.Row(id)); d > t.root.radius+1e-9 {
				fail("item %d outside root ball", id)
			}
		}
	}
	return total
}
