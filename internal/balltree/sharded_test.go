package balltree_test

import (
	"testing"

	"fexipro/internal/balltree"
	"fexipro/internal/engine"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// Small leaves so even the harness's small instances produce real
// multi-level trees in every shard.
func buildSharded(items *vec.Matrix, shards int) *engine.Engine {
	return engine.New(balltree.NewKernel(items, 4, shards), 2)
}

func TestShardedBallTreeBitExact(t *testing.T) {
	searchtest.CheckSharded(t, func(items *vec.Matrix, shards int) search.ContextSearcher {
		return buildSharded(items, shards)
	}, "balltree")
}

func TestShardedBallTreeCancellation(t *testing.T) {
	searchtest.CheckShardedCancellation(t, func(items *vec.Matrix, shards int) searchtest.FaultSearcher {
		return buildSharded(items, shards)
	}, "balltree")
}
