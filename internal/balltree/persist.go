package balltree

import (
	"fmt"
	"io"

	"fexipro/internal/snap"
	"fexipro/internal/vec"
)

// BallTree persistence (fexsnap/v1, DESIGN.md §15): the item matrix and
// the finished tree structure are stored, so Load rebuilds a tree whose
// descent order, bounds, and stats are bit-identical to the saved one —
// no re-running the randomized two-pivot splits.

const (
	secBTMeta  = "bt.meta"  // leafSize, rows, cols
	secBTItems = "bt.items" // item matrix
	secBTTree  = "bt.tree"  // preorder node encoding
)

// maxTreeDepth caps recursion when decoding a persisted tree: a real
// tree's depth is bounded by its item count (every split is proper),
// so anything deeper is corruption, caught before the stack overflows.
const maxTreeDepth = 1 << 14

// Items returns the item matrix the tree searches over (not a copy; do
// not mutate).
func (t *Tree) Items() *vec.Matrix { return t.items }

// LeafSize returns the leaf capacity the tree was built with.
func (t *Tree) LeafSize() int { return t.leafSize }

// NewKernelFromTree wraps an already-built (typically loaded) tree as a
// single-shard engine kernel, so a deserialized tree serves queries
// directly with no rebuild. Multi-shard kernels re-partition the item
// matrix, so they are built with NewKernel(t.Items(), ...).
func NewKernelFromTree(t *Tree) *Kernel {
	return &Kernel{trees: []*Tree{t}, starts: []int{0}, dim: t.items.Cols}
}

// Save writes the tree as a fexsnap/v1 container.
func (t *Tree) Save(w io.Writer) error {
	var b snap.Builder
	b.Section(secBTMeta, func(e *snap.Encoder) {
		e.I64(int64(t.leafSize))
		e.I64(int64(t.items.Rows))
		e.I64(int64(t.items.Cols))
	})
	b.Section(secBTItems, func(e *snap.Encoder) { e.Matrix(t.items) })
	b.Section(secBTTree, func(e *snap.Encoder) { encodeNode(e, t.root) })
	return b.Flush(w)
}

// encodeNode emits a preorder encoding: presence, centroid, radius,
// then either the leaf IDs or both children. Leaves are marked by a
// bool, matching build's invariant that internal nodes have both
// children.
func encodeNode(e *snap.Encoder, n *node) {
	e.Bool(n != nil)
	if n == nil {
		return
	}
	e.Floats(n.centroid)
	e.F64(n.radius)
	e.Bool(n.ids != nil)
	if n.ids != nil {
		e.Ints(n.ids)
		return
	}
	encodeNode(e, n.left)
	encodeNode(e, n.right)
}

// Load reads a tree written by Save. Every error wraps one of the snap
// sentinels.
func Load(r io.Reader) (*Tree, error) {
	f, err := snap.Read(r)
	if err != nil {
		return nil, fmt.Errorf("balltree: reading tree: %w", err)
	}
	payload, ok := f.Section(secBTMeta)
	if !ok {
		return nil, fmt.Errorf("%w: BallTree snapshot missing section %q", snap.ErrChecksum, secBTMeta)
	}
	d := snap.NewDecoder(payload)
	leafSize := int(d.I64())
	rows := int(d.I64())
	cols := int(d.I64())
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("balltree: meta section: %w", err)
	}
	if leafSize < 1 || rows < 0 || cols < 1 {
		return nil, fmt.Errorf("%w: BallTree meta leafSize=%d shape %d×%d", snap.ErrChecksum, leafSize, rows, cols)
	}

	payload, ok = f.Section(secBTItems)
	if !ok {
		return nil, fmt.Errorf("%w: BallTree snapshot missing section %q", snap.ErrChecksum, secBTItems)
	}
	d = snap.NewDecoder(payload)
	items := d.Matrix()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("balltree: items section: %w", err)
	}
	if items == nil || items.Rows != rows || items.Cols != cols {
		return nil, fmt.Errorf("%w: BallTree item matrix disagrees with meta", snap.ErrChecksum)
	}

	payload, ok = f.Section(secBTTree)
	if !ok {
		return nil, fmt.Errorf("%w: BallTree snapshot missing section %q", snap.ErrChecksum, secBTTree)
	}
	d = snap.NewDecoder(payload)
	root, err := decodeNode(d, cols, rows, 0)
	if err != nil {
		return nil, fmt.Errorf("balltree: tree section: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("balltree: tree section: %w", err)
	}
	if (root == nil) != (rows == 0) {
		return nil, fmt.Errorf("%w: BallTree root disagrees with item count", snap.ErrChecksum)
	}
	return &Tree{items: items, root: root, leafSize: leafSize}, nil
}

func decodeNode(d *snap.Decoder, dim, rows, depth int) (*node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("%w: BallTree deeper than %d", snap.ErrChecksum, maxTreeDepth)
	}
	if !d.Bool() {
		return nil, d.Err()
	}
	n := &node{centroid: d.Floats(), radius: d.F64()}
	isLeaf := d.Bool()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(n.centroid) != dim {
		return nil, fmt.Errorf("%w: BallTree centroid has %d dims, want %d", snap.ErrChecksum, len(n.centroid), dim)
	}
	if isLeaf {
		n.ids = d.Ints()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(n.ids) == 0 {
			return nil, fmt.Errorf("%w: BallTree leaf with no items", snap.ErrChecksum)
		}
		for _, id := range n.ids {
			if id < 0 || id >= rows {
				return nil, fmt.Errorf("%w: BallTree leaf ID %d outside [0, %d)", snap.ErrChecksum, id, rows)
			}
		}
		return n, nil
	}
	var err error
	if n.left, err = decodeNode(d, dim, rows, depth+1); err != nil {
		return nil, err
	}
	if n.right, err = decodeNode(d, dim, rows, depth+1); err != nil {
		return nil, err
	}
	if n.left == nil || n.right == nil {
		return nil, fmt.Errorf("%w: BallTree internal node missing a child", snap.ErrChecksum)
	}
	return n, nil
}
