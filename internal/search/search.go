// Package search defines the contract shared by every top-k inner-product
// retrieval method in this repository, and the instrumentation counters
// that back the paper's pruning-power tables (Tables 3 and 7) and cost
// distribution figures (Figures 9 and 12).
package search

import "fexipro/internal/topk"

// Searcher answers exact (or, for PCATree, approximate) top-k inner
// product queries against a fixed item matrix.
type Searcher interface {
	// Search returns the k items with the largest inner products with q,
	// sorted by descending score. Fewer than k results are returned only
	// when the index holds fewer than k items.
	Search(q []float64, k int) []topk.Result
	// Stats returns the counters accumulated by the most recent Search
	// call. Implementations that do not track a counter leave it zero.
	Stats() Stats
}

// Stats counts the work done by one Search call.
type Stats struct {
	// Scanned is the number of item vectors reached by the scan (or tree
	// leaves touched) before termination.
	Scanned int
	// PrunedByLength counts items skipped via the Cauchy–Schwarz length
	// bound ‖q‖·‖p‖ ≤ t, including everything cut off by early
	// termination of the sorted scan.
	PrunedByLength int
	// PrunedByIntHead / PrunedByIntFull count prunes by the partial
	// (Eq. 6) and full (Eq. 3) integer upper bounds.
	PrunedByIntHead int
	PrunedByIntFull int
	// PrunedByIncremental counts prunes by the float incremental bound
	// (Eq. 1) after w exact dimensions.
	PrunedByIncremental int
	// PrunedByMonotone counts prunes by the monotonicity-reduction bound
	// (Lemma 1 + Theorem 4).
	PrunedByMonotone int
	// FullProducts is the number of ENTIRE qᵀp computations — the metric
	// of Tables 3 and 7.
	FullProducts int
	// NodesVisited counts tree nodes expanded (tree methods only).
	NodesVisited int
}

// TotalPruned is the collapsed pruning count: every item eliminated by
// any of the five bounds without computing its full inner product. This
// is the one place the five stage counters are summed — callers that
// need a single "pruned" figure (public API, JSON responses, tables)
// must use it rather than re-summing by hand.
func (s Stats) TotalPruned() int {
	return s.PrunedByLength + s.PrunedByIntHead + s.PrunedByIntFull +
		s.PrunedByIncremental + s.PrunedByMonotone
}

// Add accumulates other into s (used when averaging over query batches).
func (s *Stats) Add(other Stats) {
	s.Scanned += other.Scanned
	s.PrunedByLength += other.PrunedByLength
	s.PrunedByIntHead += other.PrunedByIntHead
	s.PrunedByIntFull += other.PrunedByIntFull
	s.PrunedByIncremental += other.PrunedByIncremental
	s.PrunedByMonotone += other.PrunedByMonotone
	s.FullProducts += other.FullProducts
	s.NodesVisited += other.NodesVisited
}
