package search

import (
	"context"
	"errors"
	"fmt"

	"fexipro/internal/faults"
	"fexipro/internal/topk"
)

// ErrDeadline is returned by SearchContext when the query is cancelled
// — by a context deadline, an explicit cancel, or an injected fault —
// before the scan completed. Results returned ALONGSIDE this error are
// the best-so-far partial top-k: every returned score is a true inner
// product, but items not yet reached by the scan may be missing, so
// the set must be treated as inexact. A nil error is the exactness
// flag: only a (results, nil) return is guaranteed to be the exact
// top-k.
var ErrDeadline = errors.New("search: scan cancelled before completion")

// CheckStride is the number of scanned items (or tree nodes) between
// context-cancellation polls. Without a fault hook the guard costs two
// predictable branches per item plus one channel select per stride (the
// Naive scan goes further and runs stride-sized tight chunks with no
// per-item branch at all); at 1024 this amortizes to under 1% of the
// per-item work of even the cheapest scan (d = 1 naive dot products),
// which BenchmarkSearchContextOverhead in bench_test.go verifies on the
// uncancelled hot path.
const CheckStride = 1024

// StrideMask is the bitmask form of CheckStride for i&StrideMask == 0
// poll tests.
const StrideMask = CheckStride - 1

// ContextSearcher is a Searcher with a cancellable entrypoint. Every
// searcher in this repository implements it natively: the scan loops
// poll ctx every CheckStride items and return partial results with an
// ErrDeadline-wrapping error on cancellation.
type ContextSearcher interface {
	Searcher
	// SearchContext behaves like Search but honours ctx: on
	// cancellation it promptly returns the best-so-far results and an
	// error satisfying errors.Is(err, ErrDeadline). A nil error flags
	// the results as exact.
	SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error)
}

// Canceled wraps cause so the result satisfies
// errors.Is(err, ErrDeadline), preserving an already-wrapped error.
func Canceled(cause error) error {
	if cause == nil {
		return ErrDeadline
	}
	if errors.Is(cause, ErrDeadline) {
		return cause
	}
	return fmt.Errorf("%w: %v", ErrDeadline, cause)
}

// Poll is the scan-loop guard slow path. Loops call it only when a
// fault hook is installed, or the context is cancellable AND the item
// index lands on a stride boundary:
//
//	done := ctx.Done()
//	hook := s.hook
//	for i := 0; i < n; i++ {
//		if hook != nil || (done != nil && i&search.StrideMask == 0) {
//			if err := search.Poll(ctx, hook, i); err != nil {
//				return c.Results(), err
//			}
//		}
//		...
//	}
//
// so the uncancelled, un-faulted hot path pays two nil checks per item,
// and a cancellable-but-unexpired scan adds one Poll call (a channel
// select) per CheckStride items rather than per item. The returned
// error always wraps ErrDeadline.
func Poll(ctx context.Context, hook *faults.Hook, i int) error {
	// With a fault hook installed (a test scenario — production servers
	// run hook == nil) the context is checked on every call, not just at
	// stride boundaries: injected per-item latency simulates a
	// pathologically slow scan, and a deadline must cut that scan short
	// even when pruning ends it before the next stride boundary.
	checkCtx := i&StrideMask == 0
	if hook != nil {
		if err := hook.OnItem(i); err != nil {
			return Canceled(err)
		}
		checkCtx = true
	}
	if done := ctx.Done(); done != nil && checkCtx {
		select {
		case <-done:
			return Canceled(ctx.Err())
		default:
		}
	}
	return nil
}

// WithContext returns s as a ContextSearcher: s itself when it
// implements SearchContext natively, otherwise an adapter that checks
// ctx once on entry (a completed scan is exact, so the adapter never
// flags finished results).
func WithContext(s Searcher) ContextSearcher {
	if cs, ok := s.(ContextSearcher); ok {
		return cs
	}
	return ctxAdapter{s}
}

type ctxAdapter struct{ Searcher }

func (a ctxAdapter) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, Canceled(err)
	}
	return a.Search(q, k), nil
}
