package search

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestSharedThresholdZeroAndNil(t *testing.T) {
	var nilS *SharedThreshold
	if got := nilS.Load(); !math.IsInf(got, -1) {
		t.Fatalf("nil Load = %v, want -Inf", got)
	}
	if got := nilS.Floor(2.5); got != 2.5 {
		t.Fatalf("nil Floor(2.5) = %v, want 2.5", got)
	}
	nilS.Publish(3) // must not panic

	var s SharedThreshold
	if got := s.Load(); !math.IsInf(got, -1) {
		t.Fatalf("fresh Load = %v, want -Inf", got)
	}
	if got := s.Floor(-7); got != -7 {
		t.Fatalf("fresh Floor(-7) = %v, want -7", got)
	}
}

func TestSharedThresholdMonotoneMax(t *testing.T) {
	var s SharedThreshold
	seq := []float64{-5, -2.5, -2.5, 3, 1, 3.0001, math.Inf(-1), 0, -0.0, 3.0001}
	max := math.Inf(-1)
	for _, v := range seq {
		s.Publish(v)
		if v > max {
			max = v
		}
		if got := s.Load(); got != max {
			t.Fatalf("after Publish(%v): Load = %v, want %v", v, got, max)
		}
	}
	s.Publish(math.NaN())
	if got := s.Load(); got != max {
		t.Fatalf("NaN publish changed threshold to %v", got)
	}
	if got := s.Floor(100); got != 100 {
		t.Fatalf("Floor(100) = %v, want local 100", got)
	}
	if got := s.Floor(-100); got != max {
		t.Fatalf("Floor(-100) = %v, want shared %v", got, max)
	}
}

func TestSharedThresholdOrderEncoding(t *testing.T) {
	// The order-preserving encoding must agree with float order across
	// sign boundaries, infinities, and subnormals.
	vals := []float64{
		math.Inf(-1), -math.MaxFloat64, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1,
		math.MaxFloat64, math.Inf(1),
	}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			ei, ej := encodeOrdered(vals[i]), encodeOrdered(vals[j])
			if (vals[i] < vals[j]) != (ei < ej) && vals[i] != vals[j] {
				t.Fatalf("encoding order broken: %v vs %v -> %#x vs %#x", vals[i], vals[j], ei, ej)
			}
			if ei == 0 {
				t.Fatalf("encodeOrdered(%v) = 0, collides with the unset sentinel", vals[i])
			}
		}
		if back := decodeOrdered(encodeOrdered(vals[i])); back != vals[i] && !(back == 0 && vals[i] == 0) {
			t.Fatalf("round-trip %v -> %v", vals[i], back)
		}
	}
}

func TestSharedThresholdConcurrentPublish(t *testing.T) {
	var s SharedThreshold
	const goroutines = 8
	const per = 2000
	rng := rand.New(rand.NewSource(20260806))
	inputs := make([][]float64, goroutines)
	max := math.Inf(-1)
	for g := range inputs {
		inputs[g] = make([]float64, per)
		for i := range inputs[g] {
			v := rng.NormFloat64() * 100
			inputs[g][i] = v
			if v > max {
				max = v
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(vs []float64) {
			defer wg.Done()
			for _, v := range vs {
				s.Publish(v)
			}
		}(inputs[g])
	}
	wg.Wait()
	if got := s.Load(); got != max {
		t.Fatalf("after concurrent publishes: Load = %v, want %v", got, max)
	}
}
