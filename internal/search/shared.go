package search

import (
	"math"
	"sync/atomic"
)

// SharedThreshold is a monotonically increasing float64 threshold shared
// across concurrent shard scans of the same query. Each shard keeps a
// private top-k heap; once that heap is full its local threshold (the
// k-th best score seen so far in the shard) is a valid GLOBAL lower
// bound on the final k-th score, so the shard publishes it here and
// every other shard may prune against the maximum of all published
// values. Because only full-heap thresholds are published and consumers
// prune strictly (an item is skipped only when its upper bound is
// STRICTLY below the threshold), pruning against the shared value can
// never discard an item that belongs in the canonical global top-k —
// see DESIGN.md §11 for the proof sketch.
//
// The zero value is ready to use and reads as -Inf (nothing published).
// A nil *SharedThreshold is also valid: Floor degrades to the local
// threshold and Publish is a no-op, so single-shard code paths can pass
// nil with no branches at the call sites.
//
// SharedThreshold must not be copied after first use (it embeds an
// atomic); always pass a pointer.
type SharedThreshold struct {
	// bits holds an order-preserving encoding of the published float64:
	// for f >= 0 the encoding is bits(f) | 1<<63, for f < 0 it is
	// ^bits(f). This maps the total order of non-NaN floats onto the
	// unsigned integer order so "publish the max" is a plain CAS loop on
	// a uint64. The raw value 0 is unreachable for any non-NaN input
	// (bits(-inf) encodes to 0x000...1<<63-1... — see encodeOrdered) and
	// serves as the "nothing published yet" sentinel.
	bits atomic.Uint64
}

// encodeOrdered maps f to a uint64 whose unsigned order matches the
// float order. Non-NaN inputs never map to raw 0: the smallest
// encodable value is encodeOrdered(-Inf) = ^bits(-Inf) = 0x000fffff...
// which is nonzero, so 0 remains free as the unset sentinel.
func encodeOrdered(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) == 0 {
		return b | 1<<63
	}
	return ^b
}

// decodeOrdered inverts encodeOrdered.
func decodeOrdered(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// Load returns the largest threshold published so far, or -Inf when
// nothing has been published (including on a nil receiver).
func (s *SharedThreshold) Load() float64 {
	if s == nil {
		return math.Inf(-1)
	}
	u := s.bits.Load()
	if u == 0 {
		return math.Inf(-1)
	}
	return decodeOrdered(u)
}

// Floor returns the tighter of the caller's local threshold and the
// shared one. Scan loops call this once per pruning decision cluster
// (not per item) so the atomic load stays off the innermost hot path.
// A nil receiver returns local unchanged.
//
//fex:inline
func (s *SharedThreshold) Floor(local float64) float64 {
	if s == nil {
		return local
	}
	u := s.bits.Load()
	if u == 0 {
		return local
	}
	if g := decodeOrdered(u); g > local {
		return g
	}
	return local
}

// Publish raises the shared threshold to t if t is larger than the
// current value. Callers must only publish valid global lower bounds —
// in practice, a shard's collector threshold AFTER the collector is
// full. NaN and a nil receiver are ignored.
func (s *SharedThreshold) Publish(t float64) {
	if s == nil || math.IsNaN(t) {
		return
	}
	enc := encodeOrdered(t)
	for {
		cur := s.bits.Load()
		if cur != 0 && cur >= enc {
			return
		}
		if s.bits.CompareAndSwap(cur, enc) {
			return
		}
	}
}
