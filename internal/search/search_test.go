package search

import "testing"

func TestStatsAdd(t *testing.T) {
	a := Stats{Scanned: 1, PrunedByLength: 2, PrunedByIntHead: 3, PrunedByIntFull: 4,
		PrunedByIncremental: 5, PrunedByMonotone: 6, FullProducts: 7, NodesVisited: 8}
	b := a
	a.Add(b)
	want := Stats{Scanned: 2, PrunedByLength: 4, PrunedByIntHead: 6, PrunedByIntFull: 8,
		PrunedByIncremental: 10, PrunedByMonotone: 12, FullProducts: 14, NodesVisited: 16}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestStatsAddZero(t *testing.T) {
	a := Stats{Scanned: 5}
	a.Add(Stats{})
	if a.Scanned != 5 {
		t.Fatalf("Add zero changed stats: %+v", a)
	}
}
