// Package faults is a deterministic, seeded fault-injection registry
// for the retrieval stack. It exists so the failure behaviour of a
// FEXIPRO deployment — deadline expiry mid-scan, panics inside the
// pruning cascade, injected latency, flaky handlers — can be driven
// from tests exactly and reproducibly, instead of hoping a loaded CI
// machine happens to hit the window.
//
// Two injection sites exist:
//
//   - scan loops: every searcher exposes SetFaultHook(*Hook); the scan
//     loop calls Hook.OnItem(i) once per candidate, behind a nil check
//     that costs nothing in production (hooks are never installed
//     outside tests).
//   - request handlers: the HTTP server calls Hook.OnCall() at the top
//     of guarded handlers, letting tests inject per-request latency,
//     failures, and panics through the full middleware stack.
//
// All faults are deterministic: counted faults (every-nth, at-item-i)
// depend only on call order, and probabilistic faults draw from a
// per-site rand.Rand derived from the registry seed, so a failing run
// replays bit-identically from the same seed.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the cause of every fault-injected cancellation or
// failure. Callers surface it wrapped (scan loops wrap it in
// search.ErrDeadline); match with errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// Canonical site names. A Registry may hold hooks under any string, but
// the server and the test battery agree on these.
const (
	// SiteScan is the per-item hook compiled into searcher scan loops.
	SiteScan = "scan"
	// SiteServerSearch fires at the top of /v1/search and /v1/above.
	SiteServerSearch = "server.search"
	// SiteServerMutate fires at the top of /v1/items mutations.
	SiteServerMutate = "server.mutate"
	// SiteWALWrite fires once per WAL append (snap.WAL.Append): OnItem
	// receives the record's sequence number, then OnCall runs. A failure
	// or panic from either makes the append tear deterministically — half
	// the record reaches disk, the WAL marks itself failed — which is how
	// the crash-recovery battery manufactures torn writes on demand.
	SiteWALWrite = "wal.write"
)

// Plan describes the deterministic faults a Hook injects. The zero
// value injects nothing.
type Plan struct {
	// CancelAtItem makes OnItem return an ErrInjected-wrapping error for
	// every item index ≥ the given value (scan loops translate this into
	// a deadline-style cancellation with partial results). 0 disables.
	CancelAtItem int
	// PanicAtItem makes OnItem panic when the scan reaches exactly this
	// item index. 0 disables.
	PanicAtItem int
	// ItemLatency is slept inside OnItem every ItemLatencyEvery items
	// (default: every item when ItemLatency > 0), slowing a scan so
	// wall-clock deadlines reliably expire mid-scan.
	ItemLatency      time.Duration
	ItemLatencyEvery int

	// CallLatency is slept on every OnCall.
	CallLatency time.Duration
	// FailEveryNCalls makes every nth OnCall (1-based) return an
	// ErrInjected-wrapping error. 0 disables.
	FailEveryNCalls int
	// PanicEveryNCalls makes every nth OnCall (1-based) panic. 0
	// disables.
	PanicEveryNCalls int
	// FailProb makes OnCall fail with the given probability, drawn from
	// the hook's seeded generator (deterministic per seed and call
	// order). 0 disables.
	FailProb float64
}

// Counts is a snapshot of a hook's activity, for asserting that
// injected faults actually fired (and exactly how often).
type Counts struct {
	Items   int64 // OnItem invocations
	Calls   int64 // OnCall invocations
	Cancels int64 // errors returned (items + calls)
	Panics  int64 // panics raised
	Delays  int64 // latency injections performed
}

// Hook is one installed fault site. The plan is immutable after
// Enable; counters are atomic, so a single hook may be shared by any
// number of concurrent scans or handlers.
type Hook struct {
	site string
	plan Plan

	items   atomic.Int64
	calls   atomic.Int64
	cancels atomic.Int64
	panics  atomic.Int64
	delays  atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand // probabilistic faults only; guarded by mu
}

// Site returns the name the hook was registered under.
func (h *Hook) Site() string { return h.site }

// Plan returns the (immutable) fault plan.
func (h *Hook) Plan() Plan { return h.plan }

// Counts returns a snapshot of the hook's activity counters.
func (h *Hook) Counts() Counts {
	return Counts{
		Items:   h.items.Load(),
		Calls:   h.calls.Load(),
		Cancels: h.cancels.Load(),
		Panics:  h.panics.Load(),
		Delays:  h.delays.Load(),
	}
}

// OnItem is the scan-loop injection point: searchers call it once per
// candidate item (behind a nil check). It may sleep, panic, or return
// an error that the scan loop must surface as a cancellation.
func (h *Hook) OnItem(i int) error {
	h.items.Add(1)
	p := &h.plan
	if p.PanicAtItem > 0 && i == p.PanicAtItem {
		h.panics.Add(1)
		panic(fmt.Sprintf("faults: injected panic at item %d (site %q)", i, h.site))
	}
	if p.ItemLatency > 0 {
		every := p.ItemLatencyEvery
		if every <= 0 {
			every = 1
		}
		if i%every == 0 {
			h.delays.Add(1)
			time.Sleep(p.ItemLatency)
		}
	}
	if p.CancelAtItem > 0 && i >= p.CancelAtItem {
		h.cancels.Add(1)
		return fmt.Errorf("%w: forced cancellation at item %d (site %q)", ErrInjected, i, h.site)
	}
	return nil
}

// OnCall is the request-level injection point: handlers call it once
// per guarded request. It may sleep, panic, or return an error the
// handler must map to a failure response.
func (h *Hook) OnCall() error {
	n := h.calls.Add(1)
	p := &h.plan
	if p.CallLatency > 0 {
		h.delays.Add(1)
		time.Sleep(p.CallLatency)
	}
	if p.PanicEveryNCalls > 0 && n%int64(p.PanicEveryNCalls) == 0 {
		h.panics.Add(1)
		panic(fmt.Sprintf("faults: injected panic on call %d (site %q)", n, h.site))
	}
	if p.FailEveryNCalls > 0 && n%int64(p.FailEveryNCalls) == 0 {
		h.cancels.Add(1)
		return fmt.Errorf("%w: forced failure on call %d (site %q)", ErrInjected, n, h.site)
	}
	if p.FailProb > 0 {
		h.mu.Lock()
		v := h.rng.Float64()
		h.mu.Unlock()
		if v < p.FailProb {
			h.cancels.Add(1)
			return fmt.Errorf("%w: probabilistic failure on call %d (site %q)", ErrInjected, n, h.site)
		}
	}
	return nil
}

// Registry maps site names to hooks. All methods are safe for
// concurrent use. The registry seed (plus the site name) seeds each
// hook's generator, so a whole fault campaign replays from one number.
type Registry struct {
	seed  int64
	mu    sync.RWMutex
	sites map[string]*Hook
}

// NewRegistry returns an empty registry whose probabilistic faults
// derive from seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{seed: seed, sites: make(map[string]*Hook)}
}

// Seed returns the registry seed (for failure reports).
func (r *Registry) Seed() int64 { return r.seed }

// Enable installs (replacing any previous hook) a fault plan at site
// and returns the hook.
func (r *Registry) Enable(site string, p Plan) *Hook {
	hash := fnv.New64a()
	_, _ = hash.Write([]byte(site)) // fnv.Write never fails
	h := &Hook{
		site: site,
		plan: p,
		rng:  rand.New(rand.NewSource(r.seed ^ int64(hash.Sum64()))),
	}
	r.mu.Lock()
	r.sites[site] = h
	r.mu.Unlock()
	return h
}

// Disable removes the hook at site, if any.
func (r *Registry) Disable(site string) {
	r.mu.Lock()
	delete(r.sites, site)
	r.mu.Unlock()
}

// Hook returns the hook installed at site, or nil — the nil result is
// what production scan loops see, making the injection free.
func (r *Registry) Hook(site string) *Hook {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.sites[site]
	r.mu.RUnlock()
	return h
}

// Counts returns a snapshot of every installed hook's counters, keyed
// by site.
func (r *Registry) Counts() map[string]Counts {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]Counts, len(r.sites))
	for site, h := range r.sites {
		out[site] = h.Counts()
	}
	return out
}
