package faults

import (
	"errors"
	"testing"
	"time"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	h := NewRegistry(1).Enable(SiteScan, Plan{})
	for i := 0; i < 10_000; i++ {
		if err := h.OnItem(i); err != nil {
			t.Fatalf("zero plan OnItem(%d) = %v", i, err)
		}
	}
	for i := 0; i < 1000; i++ {
		if err := h.OnCall(); err != nil {
			t.Fatalf("zero plan OnCall #%d = %v", i, err)
		}
	}
	c := h.Counts()
	if c.Cancels != 0 || c.Panics != 0 || c.Delays != 0 {
		t.Fatalf("zero plan fired faults: %+v", c)
	}
	if c.Items != 10_000 || c.Calls != 1000 {
		t.Fatalf("activity counters wrong: %+v", c)
	}
}

func TestCancelAtItem(t *testing.T) {
	h := NewRegistry(1).Enable(SiteScan, Plan{CancelAtItem: 100})
	for i := 0; i < 100; i++ {
		if err := h.OnItem(i); err != nil {
			t.Fatalf("OnItem(%d) errored before the cancel point: %v", i, err)
		}
	}
	for i := 100; i < 110; i++ {
		err := h.OnItem(i)
		if err == nil {
			t.Fatalf("OnItem(%d) = nil, want error at/after cancel point", i)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("OnItem(%d) error %v does not wrap ErrInjected", i, err)
		}
	}
	if c := h.Counts(); c.Cancels != 10 {
		t.Fatalf("Cancels = %d, want 10", c.Cancels)
	}
}

func TestPanicAtItem(t *testing.T) {
	h := NewRegistry(1).Enable(SiteScan, Plan{PanicAtItem: 3})
	for i := 0; i < 3; i++ {
		if err := h.OnItem(i); err != nil {
			t.Fatalf("OnItem(%d) = %v", i, err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("OnItem(3) did not panic")
			}
		}()
		_ = h.OnItem(3)
	}()
	if c := h.Counts(); c.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", c.Panics)
	}
	// Item indices other than the exact target never panic.
	if err := h.OnItem(4); err != nil {
		t.Fatalf("OnItem(4) = %v", err)
	}
}

func TestItemLatencyEvery(t *testing.T) {
	h := NewRegistry(1).Enable(SiteScan, Plan{
		ItemLatency:      time.Microsecond,
		ItemLatencyEvery: 50,
	})
	for i := 0; i < 200; i++ {
		if err := h.OnItem(i); err != nil {
			t.Fatalf("OnItem(%d) = %v", i, err)
		}
	}
	// Items 0, 50, 100, 150 sleep.
	if c := h.Counts(); c.Delays != 4 {
		t.Fatalf("Delays = %d, want 4", c.Delays)
	}
}

func TestFailEveryNCalls(t *testing.T) {
	h := NewRegistry(1).Enable(SiteServerSearch, Plan{FailEveryNCalls: 3})
	var failed []int
	for i := 1; i <= 9; i++ {
		if err := h.OnCall(); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d error %v does not wrap ErrInjected", i, err)
			}
			failed = append(failed, i)
		}
	}
	want := []int{3, 6, 9}
	if len(failed) != len(want) {
		t.Fatalf("failed calls %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed calls %v, want %v", failed, want)
		}
	}
}

func TestPanicEveryNCalls(t *testing.T) {
	h := NewRegistry(1).Enable(SiteServerMutate, Plan{PanicEveryNCalls: 2})
	if err := h.OnCall(); err != nil {
		t.Fatalf("call 1 = %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("call 2 did not panic")
			}
		}()
		_ = h.OnCall()
	}()
}

// TestFailProbDeterministic pins the replay contract: the same seed and
// call order produce the exact same fault sequence, and different sites
// (or seeds) draw independently.
func TestFailProbDeterministic(t *testing.T) {
	run := func(seed int64, site string) []bool {
		h := NewRegistry(seed).Enable(site, Plan{FailProb: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = h.OnCall() != nil
		}
		return out
	}
	a := run(42, SiteServerSearch)
	b := run(42, SiteServerSearch)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at call %d", i)
		}
	}
	var fails int
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("FailProb 0.3 produced %d/%d failures; generator looks degenerate", fails, len(a))
	}
	c := run(43, SiteServerSearch)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	var nilReg *Registry
	if h := nilReg.Hook(SiteScan); h != nil {
		t.Fatal("nil registry returned a hook")
	}
	r := NewRegistry(7)
	if r.Seed() != 7 {
		t.Fatalf("Seed() = %d", r.Seed())
	}
	if h := r.Hook(SiteScan); h != nil {
		t.Fatal("empty registry returned a hook")
	}
	h := r.Enable(SiteScan, Plan{CancelAtItem: 1})
	if got := r.Hook(SiteScan); got != h {
		t.Fatal("Hook did not return the enabled hook")
	}
	if h.Site() != SiteScan {
		t.Fatalf("Site() = %q", h.Site())
	}
	if h.Plan().CancelAtItem != 1 {
		t.Fatalf("Plan() = %+v", h.Plan())
	}
	_ = h.OnItem(5) // fires a cancel
	counts := r.Counts()
	if counts[SiteScan].Cancels != 1 {
		t.Fatalf("registry counts = %+v", counts)
	}
	r.Disable(SiteScan)
	if r.Hook(SiteScan) != nil {
		t.Fatal("Disable left the hook installed")
	}
}

func TestHookSharedAcrossGoroutines(t *testing.T) {
	h := NewRegistry(1).Enable(SiteScan, Plan{CancelAtItem: 1})
	const workers = 8
	donech := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < 1000; i++ {
				_ = h.OnItem(i)
			}
			donech <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-donech
	}
	if c := h.Counts(); c.Items != workers*1000 {
		t.Fatalf("Items = %d, want %d", c.Items, workers*1000)
	}
}
