package vec

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatal("Set/At round trip failed")
	}
	if got := m.Row(1); got[2] != 5 {
		t.Fatalf("Row(1) = %v", got)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases source")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows produced %+v", m)
	}
	empty := FromRows(nil)
	if empty.Rows != 0 {
		t.Fatal("FromRows(nil) should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromRows with ragged rows did not panic")
		}
	}()
	FromRows([][]float64{{1}, {1, 2}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %d×%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
	if !m.T().T().Equal(m, 0) {
		t.Fatal("double transpose != identity")
	}
}

func TestMulAndMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul = %+v, want %+v", got.Data, want.Data)
	}
	v := a.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestGramLower(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(17, 5)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	g := m.GramLower()
	want := m.T().Mul(m)
	if !g.Equal(want, 1e-10) {
		t.Fatal("GramLower != mᵀ·m")
	}
	// Symmetry.
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("Gram not symmetric at %d,%d", i, j)
			}
		}
	}
}

func TestRowNormsAndAbsMax(t *testing.T) {
	m := FromRows([][]float64{{3, 4}, {0, -7}})
	norms := m.RowNorms()
	if norms[0] != 5 || norms[1] != 7 {
		t.Fatalf("RowNorms = %v", norms)
	}
	if m.AbsMax() != 7 {
		t.Fatalf("AbsMax = %v", m.AbsMax())
	}
	if m.MinValue() != -7 {
		t.Fatalf("MinValue = %v", m.MinValue())
	}
}

func TestSortRowsByNormDesc(t *testing.T) {
	m := FromRows([][]float64{{1, 0}, {5, 0}, {3, 0}})
	perm := m.SortRowsByNormDesc()
	wantOrder := []float64{5, 3, 1}
	for i, w := range wantOrder {
		if m.At(i, 0) != w {
			t.Fatalf("row %d = %v, want %v", i, m.At(i, 0), w)
		}
	}
	// perm maps new index -> original index.
	wantPerm := []int{1, 2, 0}
	for i := range perm {
		if perm[i] != wantPerm[i] {
			t.Fatalf("perm = %v, want %v", perm, wantPerm)
		}
	}
}

func TestSortRowsByNormDescStableOnTies(t *testing.T) {
	m := FromRows([][]float64{{1, 0}, {0, 1}, {2, 0}})
	perm := m.SortRowsByNormDesc()
	// Rows 0 and 1 tie; stability keeps original relative order.
	if perm[1] != 0 || perm[2] != 1 {
		t.Fatalf("unstable tie handling: perm = %v", perm)
	}
}

func TestSortRowsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMatrix(50, 4)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	orig := m.Clone()
	perm := m.SortRowsByNormDesc()
	norms := m.RowNorms()
	for i := 1; i < m.Rows; i++ {
		if norms[i] > norms[i-1]+1e-12 {
			t.Fatalf("norms not descending at %d: %v > %v", i, norms[i], norms[i-1])
		}
	}
	seen := make(map[int]bool)
	for newIdx, origIdx := range perm {
		if seen[origIdx] {
			t.Fatalf("perm not a permutation: %d repeated", origIdx)
		}
		seen[origIdx] = true
		for j := 0; j < m.Cols; j++ {
			if m.At(newIdx, j) != orig.At(origIdx, j) {
				t.Fatalf("row content mismatch at new=%d orig=%d", newIdx, origIdx)
			}
		}
	}
}

func TestEqualTolerance(t *testing.T) {
	a := FromRows([][]float64{{1}})
	b := FromRows([][]float64{{1 + 1e-12}})
	if !a.Equal(b, 1e-10) {
		t.Fatal("Equal should accept within tolerance")
	}
	if a.Equal(b, 0) {
		t.Fatal("Equal with zero tolerance should reject")
	}
	c := NewMatrix(1, 2)
	if a.Equal(c, math.Inf(1)) {
		t.Fatal("Equal should reject shape mismatch")
	}
}
