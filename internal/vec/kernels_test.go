package vec

import (
	"math"
	"math/rand"
	"testing"
)

// dotReference is the plain sequential loop the unrolled kernels must
// agree with (up to reassociation rounding).
func dotReference(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestDotMatchesReferenceAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for n := 0; n <= 67; n++ {
		a, b := randomSlice(rng, n), randomSlice(rng, n)
		got := Dot(a, b)
		want := dotReference(a, b)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("n=%d: Dot=%v ref=%v", n, got, want)
		}
	}
}

func TestDotRangeMatchesReferenceAllSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	a, b := randomSlice(rng, 41), randomSlice(rng, 41)
	for lo := 0; lo <= 41; lo++ {
		for hi := lo; hi <= 41; hi++ {
			got := DotRange(a, b, lo, hi)
			want := dotReference(a[lo:hi], b[lo:hi])
			if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("[%d,%d): %v vs %v", lo, hi, got, want)
			}
		}
	}
}

func TestDotInt64AllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for n := 0; n <= 19; n++ {
		a := make([]int32, n)
		b := make([]int32, n)
		var want int64
		for i := 0; i < n; i++ {
			a[i] = int32(rng.Intn(2001) - 1000)
			b[i] = int32(rng.Intn(2001) - 1000)
			want += int64(a[i]) * int64(b[i])
		}
		if got := DotInt64(a, b); got != want {
			t.Fatalf("n=%d: %d vs %d", n, got, want)
		}
	}
}

func TestDotInt16AllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for n := 0; n <= 19; n++ {
		a := make([]int16, n)
		b := make([]int16, n)
		var want int64
		for i := 0; i < n; i++ {
			a[i] = int16(rng.Intn(201) - 100)
			b[i] = int16(rng.Intn(201) - 100)
			want += int64(a[i]) * int64(b[i])
		}
		if got := DotInt16(a, b); got != want {
			t.Fatalf("n=%d: %d vs %d", n, got, want)
		}
	}
	// Extremes cannot overflow.
	a := []int16{math.MaxInt16, math.MinInt16}
	want := int64(math.MaxInt16)*int64(math.MaxInt16) + int64(math.MinInt16)*int64(math.MinInt16)
	if got := DotInt16(a, a); got != want {
		t.Fatalf("extremes: %d vs %d", got, want)
	}
}

func TestDotInt16PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DotInt16([]int16{1}, []int16{1, 2})
}

func BenchmarkDot50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randomSlice(rng, 50), randomSlice(rng, 50)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}

func BenchmarkDotInt64_50(b *testing.B) {
	x := make([]int32, 50)
	y := make([]int32, 50)
	for i := range x {
		x[i], y[i] = int32(i*7%199-100), int32(i*13%199-100)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += DotInt64(x, y)
	}
	_ = sink
}

func BenchmarkDotInt16_50(b *testing.B) {
	x := make([]int16, 50)
	y := make([]int16, 50)
	for i := range x {
		x[i], y[i] = int16(i*7%199-100), int16(i*13%199-100)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += DotInt16(x, y)
	}
	_ = sink
}
