package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 2}, []float64{3, -4}, -11},
		{[]float64{0, 0}, []float64{1, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDotRangeMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randomSlice(rng, 20), randomSlice(rng, 20)
	whole := Dot(a, b)
	for _, w := range []int{0, 1, 7, 19, 20} {
		split := DotRange(a, b, 0, w) + DotRange(a, b, w, 20)
		if !almostEqual(split, whole, 1e-12) {
			t.Errorf("w=%d: split dot %v != whole %v", w, split, whole)
		}
	}
}

func TestDotInt64(t *testing.T) {
	a := []int32{1, -2, 3}
	b := []int32{4, 5, -6}
	if got := DotInt64(a, b); got != 4-10-18 {
		t.Errorf("DotInt64 = %d, want %d", got, 4-10-18)
	}
	// No overflow for large int32 values.
	big := []int32{math.MaxInt32, math.MaxInt32}
	want := 2 * int64(math.MaxInt32) * int64(math.MaxInt32)
	if got := DotInt64(big, big); got != want {
		t.Errorf("DotInt64 big = %d, want %d", got, want)
	}
}

func TestNorms(t *testing.T) {
	a := []float64{3, 4}
	if got := Norm(a); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := NormSquared(a); got != 25 {
		t.Errorf("NormSquared = %v, want 25", got)
	}
	if got := NormRange(a, 1, 2); got != 4 {
		t.Errorf("NormRange = %v, want 4", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil) = %v, want 0", got)
	}
}

func TestAbsMaxAndMinMax(t *testing.T) {
	a := []float64{-3, 1, 2.5}
	if got := AbsMax(a); got != 3 {
		t.Errorf("AbsMax = %v, want 3", got)
	}
	if got := AbsMaxRange(a, 1, 3); got != 2.5 {
		t.Errorf("AbsMaxRange = %v, want 2.5", got)
	}
	if got := AbsMaxRange(a, 1, 1); got != 0 {
		t.Errorf("AbsMaxRange empty = %v, want 0", got)
	}
	if got := Min(a); got != -3 {
		t.Errorf("Min = %v, want -3", got)
	}
	if got := Max(a); got != 2.5 {
		t.Errorf("Max = %v, want 2.5", got)
	}
	if got := AbsMax(nil); got != 0 {
		t.Errorf("AbsMax(nil) = %v, want 0", got)
	}
}

func TestScaleAddSubClone(t *testing.T) {
	a := []float64{1, 2}
	Scale(a, 2)
	if a[0] != 2 || a[1] != 4 {
		t.Errorf("Scale got %v", a)
	}
	b := Scaled(a, 0.5)
	if b[0] != 1 || b[1] != 2 {
		t.Errorf("Scaled got %v", b)
	}
	Add(a, b)
	if a[0] != 3 || a[1] != 6 {
		t.Errorf("Add got %v", a)
	}
	Sub(a, b)
	if a[0] != 2 || a[1] != 4 {
		t.Errorf("Sub got %v", a)
	}
	c := Clone(a)
	c[0] = 99
	if a[0] == 99 {
		t.Error("Clone aliases source")
	}
	dst := make([]float64, 2)
	AxpyInto(dst, a, b, 2)
	if dst[0] != 4 || dst[1] != 8 {
		t.Errorf("AxpyInto got %v", dst)
	}
}

func TestDist(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Dist(a, b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := DistSquared(a, b); got != 25 {
		t.Errorf("DistSquared = %v, want 25", got)
	}
}

// Property: Cauchy–Schwarz, |a·b| ≤ ‖a‖·‖b‖, for arbitrary vectors.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := raw[:half], raw[half:2*half]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // avoid overflow artifacts; not the property under test
			}
		}
		dot := math.Abs(Dot(a, b))
		bound := Norm(a) * Norm(b)
		return dot <= bound*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the incremental-pruning decomposition (Eq. 1 of the paper)
// a·b = a^ℓ·b^ℓ + a^h·b^h ≤ a^ℓ·b^ℓ + ‖a^h‖‖b^h‖ holds for any split w.
func TestIncrementalBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		d := 1 + rng.Intn(30)
		a, b := randomSlice(rng, d), randomSlice(rng, d)
		w := rng.Intn(d + 1)
		exact := Dot(a, b)
		bound := DotRange(a, b, 0, w) + NormRange(a, w, d)*NormRange(b, w, d)
		if exact > bound+1e-9 {
			t.Fatalf("d=%d w=%d: exact %v exceeds bound %v", d, w, exact, bound)
		}
	}
}

func randomSlice(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}
