package vec

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is a dense row-major matrix. In this repository rows are vectors:
// the paper's item matrix P (d×n, items as columns) is stored here as an
// n×d Matrix whose i-th row is the factor vector of item i. Row-major
// storage makes the sequential scan at the heart of FEXIPRO walk memory
// in order.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewMatrix with negative dims %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// data. It panics if the rows have inconsistent lengths.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("vec: FromRows row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns row i as a slice aliasing the matrix storage. Scan
// kernels call it once per item, so it must stay inlinable.
//
//fex:inline
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Slice returns a view of rows [lo, hi) sharing the underlying storage.
// Mutating the view mutates m. It panics if the range is out of bounds.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("vec: Slice [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// T returns a newly allocated transpose.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// MulVec returns m · x (treating rows as the output dimension).
// It panics if len(x) != m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: MulVec dim mismatch: %d cols vs %d", m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Mul returns m · other. It panics if m.Cols != other.Rows.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("vec: Mul dim mismatch: %d×%d by %d×%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for kk := 0; kk < m.Cols; kk++ {
			v := mrow[kk]
			if v == 0 {
				continue
			}
			krow := other.Row(kk)
			for j := range orow {
				orow[j] += v * krow[j]
			}
		}
	}
	return out
}

// GramLower returns the Cols×Cols Gram matrix mᵀ·m (the matrix of column
// inner products). Used by the thin SVD: if the rows of m are the item
// vectors (m is Pᵀ in paper terms), mᵀ·m is P·Pᵀ, the small d×d Gram.
func (m *Matrix) GramLower() *Matrix {
	d := m.Cols
	g := NewMatrix(d, d)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a := 0; a < d; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			grow := g.Row(a)
			for b := a; b < d; b++ {
				grow[b] += va * row[b]
			}
		}
	}
	// mirror the upper triangle into the lower one
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			g.Set(b, a, g.At(a, b))
		}
	}
	return g
}

// RowNorms returns the Euclidean norm of every row.
func (m *Matrix) RowNorms() []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = Norm(m.Row(i))
	}
	return out
}

// AbsMax returns the maximum absolute entry of the matrix (0 if empty).
func (m *Matrix) AbsMax() float64 { return AbsMax(m.Data) }

// MinValue returns the minimum entry of the matrix.
// It panics on an empty matrix.
func (m *Matrix) MinValue() float64 { return Min(m.Data) }

// Equal reports whether m and other have identical shape and entries
// within absolute tolerance tol.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// SortRowsByNormDesc reorders rows in place by decreasing Euclidean norm
// and returns perm where perm[newIndex] = originalIndex. The ordering is
// stable for equal norms so results are deterministic.
func (m *Matrix) SortRowsByNormDesc() []int {
	norms := m.RowNorms()
	perm := make([]int, m.Rows)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return norms[perm[a]] > norms[perm[b]]
	})
	old := m.Clone()
	for newIdx, origIdx := range perm {
		copy(m.Row(newIdx), old.Row(origIdx))
	}
	return perm
}
