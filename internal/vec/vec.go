// Package vec provides the dense vector and matrix kernels used by every
// other package in this repository: dot products, norms, partial (prefix
// and suffix) norms, scaling, and a flat row-major matrix type.
//
// The kernels are deliberately simple, allocation-free loops: the FEXIPRO
// framework spends nearly all of its time in short dot products and norm
// lookups, and the Go compiler turns these loops into tight scalar code.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the slices have different lengths.
//
// The loop is unrolled four-way with independent accumulators: the whole
// retrieval stack bottoms out in this kernel, and breaking the
// loop-carried dependency roughly doubles throughput on superscalar
// CPUs. Note the unrolled association changes the floating-point
// rounding relative to a sequential loop by O(d·eps), which is below
// every tolerance used in this repository.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// DotRange returns the inner product of a[lo:hi] and b[lo:hi].
func DotRange(a, b []float64, lo, hi int) float64 {
	var s0, s1, s2, s3 float64
	i := lo
	for ; i+4 <= hi; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < hi; i++ {
		s += a[i] * b[i]
	}
	return s
}

// DotInt64 returns the inner product of two integer vectors, accumulated
// in int64. It panics if the slices have different lengths.
func DotInt64(a, b []int32) int64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: DotInt64 length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1 int64
	i := 0
	for ; i+2 <= len(a); i += 2 {
		s0 += int64(a[i]) * int64(b[i])
		s1 += int64(a[i+1]) * int64(b[i+1])
	}
	s := s0 + s1
	for ; i < len(a); i++ {
		s += int64(a[i]) * int64(b[i])
	}
	return s
}

// DotInt16 returns the inner product of two compact integer vectors —
// the int16 representation the paper's future-work section motivates
// (smaller integers ⇒ better cache behaviour). Accumulation in int64
// cannot overflow: each term is bounded by 2³⁰ and slices are far
// shorter than 2³³.
func DotInt16(a, b []int16) int64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: DotInt16 length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1 int64
	i := 0
	for ; i+2 <= len(a); i += 2 {
		s0 += int64(a[i]) * int64(b[i])
		s1 += int64(a[i+1]) * int64(b[i+1])
	}
	s := s0 + s1
	for ; i < len(a); i++ {
		s += int64(a[i]) * int64(b[i])
	}
	return s
}

// Norm returns the Euclidean norm (length) of a.
func Norm(a []float64) float64 {
	return math.Sqrt(NormSquared(a))
}

// NormSquared returns the squared Euclidean norm of a.
func NormSquared(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return s
}

// NormRange returns the Euclidean norm of a[lo:hi].
func NormRange(a []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += a[i] * a[i]
	}
	return math.Sqrt(s)
}

// AbsMax returns the maximum absolute value in a, or 0 for an empty slice.
func AbsMax(a []float64) float64 {
	var m float64
	for _, v := range a {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// AbsMaxRange returns the maximum absolute value in a[lo:hi], or 0 if the
// range is empty.
func AbsMaxRange(a []float64, lo, hi int) float64 {
	var m float64
	for i := lo; i < hi; i++ {
		v := a[i]
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum value in a. It panics on an empty slice.
func Min(a []float64) float64 {
	if len(a) == 0 {
		panic("vec: Min of empty slice")
	}
	m := a[0]
	for _, v := range a[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum value in a. It panics on an empty slice.
func Max(a []float64) float64 {
	if len(a) == 0 {
		panic("vec: Max of empty slice")
	}
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Scale multiplies every element of a by s, in place.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Scaled returns a new slice holding a scaled by s.
func Scaled(a []float64, s float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v * s
	}
	return out
}

// Add adds b to a element-wise, in place. It panics on length mismatch.
func Add(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Add length mismatch %d != %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Sub subtracts b from a element-wise, in place. It panics on length mismatch.
func Sub(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Sub length mismatch %d != %d", len(a), len(b)))
	}
	for i := range a {
		a[i] -= b[i]
	}
}

// AxpyInto sets dst = a + s*b. All three slices must share a length.
func AxpyInto(dst, a, b []float64, s float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("vec: AxpyInto length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + s*b[i]
	}
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	return math.Sqrt(DistSquared(a, b))
}

// DistSquared returns the squared Euclidean distance between a and b.
// It panics on length mismatch.
func DistSquared(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: DistSquared length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
