// Fixture for the lockorder analyzer: a seeded two-mutex ABBA deadlock
// spanning two packages, plus the satellite diagnostics (undocumented
// nesting, declared-hierarchy contradiction, self re-acquisition, and
// directive validation).
package lockorder

import (
	"sync"

	"fexipro/internal/lint/testdata/src/lockorder/dep"
)

// The declared hierarchy: S.mu may nest Q.mu, and R.mu is declared to
// precede Q.mu (which reverse below contradicts).
//
//fex:lockorder lockorder.S.mu < lockorder.Q.mu
//fex:lockorder lockorder.R.mu < lockorder.Q.mu

// S holds the first lock of the ABBA pair.
type S struct {
	mu sync.Mutex
	d  dep.D
	p  P
	n  int
}

// P is an undocumented nesting target.
type P struct {
	mu sync.Mutex
	n  int
}

// Q and R exercise the declared hierarchy and its contradiction.
type Q struct {
	mu sync.Mutex
	r  R
	n  int
}

type R struct {
	mu sync.Mutex
	n  int
}

// abFirst takes lockorder.S.mu and then, through the cross-package call
// to dep.Bump, dep.D.Mu: the A → B half of the seeded deadlock.
func (s *S) abFirst() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Bump()
}

// baFirst takes dep.D.Mu then lockorder.S.mu: the B → A half. The
// module phase joins the halves into a cycle spanning both packages.
func (s *S) baFirst() {
	s.d.Mu.Lock()
	defer s.d.Mu.Unlock()
	s.mu.Lock() // want `lock-order cycle \(deadlock candidate\): dep\.D\.Mu → lockorder\.S\.mu → dep\.D\.Mu`
	s.n++
	s.mu.Unlock()
}

// nestUndeclared nests P.mu under S.mu with no //fex:lockorder line.
func (s *S) nestUndeclared() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.mu.Lock() // want `lockorder\.P\.mu acquired while holding lockorder\.S\.mu .* undocumented lock order`
	s.p.n++
	s.p.mu.Unlock()
}

// nestDeclared nests Q.mu under S.mu, which the hierarchy above
// declares — no diagnostic.
func (s *S) nestDeclared(q *Q) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
}

// reversed acquires R.mu under Q.mu, contradicting the declared
// lockorder.R.mu < lockorder.Q.mu.
func (q *Q) reversed() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.r.mu.Lock() // want `lockorder\.R\.mu acquired while holding lockorder\.Q\.mu .* contradicts the declared hierarchy`
	q.r.n++
	q.r.mu.Unlock()
}

// bumpLocked acquires S.mu directly.
func (s *S) bumpLocked() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// reenter calls bumpLocked while already holding S.mu: sync mutexes
// are not reentrant, so this self-deadlocks at runtime.
func (s *S) reenter() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked() // want `lockorder\.S\.mu re-acquired while already held .* self-deadlocks`
}

/*fex:lockorder bogus directive*/ // want `malformed //fex:lockorder directive`

/*fex:lockorder lockorder.S.mu < lockorder.Ghost.mu*/ // want `lockorder\.Ghost\.mu, which is never acquired anywhere in the module`
