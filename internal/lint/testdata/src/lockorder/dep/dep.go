// Package dep is the callee side of the cross-package fact join: its
// acquisition facts are exported from this unit and combined with the
// root package's held-call facts in the lockorder module phase.
package dep

import "sync"

// D carries the second lock of the seeded ABBA pair.
type D struct {
	Mu sync.Mutex
	n  int
}

// Bump acquires dep.D.Mu; a caller holding another lock when it calls
// here creates a cross-package lock-order edge onto it.
func (d *D) Bump() {
	d.Mu.Lock()
	d.n++
	d.Mu.Unlock()
}
