// Package kernelcontract is a fexlint golden fixture: a structural
// engine.Kernel (methods Shards, Prepare, context-first Scan) whose
// Scan breaks the strict-comparison and no-mutation contracts. The
// companion sharded_test.go keeps the CheckSharded coverage fact
// satisfied, so no module-phase coverage diagnostic fires here (see the
// kernelcontract_uncovered fixture for that path). SharedThreshold and
// Collector mimic the real types by name.
package kernelcontract

import "context"

// SharedThreshold mimics search.SharedThreshold.
type SharedThreshold struct{ v float64 }

// Floor mimics the monotone-max read.
func (s *SharedThreshold) Floor(local float64) float64 { return s.v }

// Load mimics the raw read.
func (s *SharedThreshold) Load() float64 { return s.v }

// Collector mimics topk.Collector.
type Collector struct{ t float64 }

// Threshold mimics the heap-root read.
func (c *Collector) Threshold() float64 { return c.t }

// Push mimics the collector offer.
func (c *Collector) Push(int, float64) bool { return true }

// Kern structurally implements engine.Kernel.
type Kern struct {
	norms   []float64
	scanned int
}

// Shards implements engine.Kernel.
func (k *Kern) Shards() int { return 1 }

// Prepare implements engine.Kernel.
func (k *Kern) Prepare(q []float64) any { return nil }

// Scan implements engine.Kernel with three contract violations: a
// receiver mutation and two non-conservative threshold comparisons
// (both carry suggested fixes restoring the conservative operator).
func (k *Kern) Scan(ctx context.Context, pq any, shard int, c *Collector, shared *SharedThreshold) error {
	t := shared.Floor(c.Threshold())
	for i, n := range k.norms {
		if err := ctx.Err(); err != nil {
			return err
		}
		k.scanned++ // want `Scan on kernel Kern mutates receiver state`
		if n <= t { // want `threshold comparison "<=" prunes or drops exact ties`
			continue
		}
		if t >= n { // want `threshold comparison ">=" prunes or drops exact ties`
			continue
		}
		if n < t { // strict prune: conservative, no diagnostic
			continue
		}
		if n >= t { // tie-keeping keep: conservative, no diagnostic
			c.Push(i, n)
		}
	}
	return k.helper(t)
}

// helper receives a threshold-derived value through a call argument:
// the fixpoint must carry derivedness across the call and through
// arithmetic.
func (k *Kern) helper(t float64) error {
	limit := t * 0.5
	if 1.0 == limit { // want `threshold comparison "==" prunes or drops exact ties`
		return nil
	}
	if 1.0 < limit { // derived on the right, strict prune: fine
		return nil
	}
	return nil
}
