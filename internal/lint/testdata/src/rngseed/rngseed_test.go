package rngseed

import (
	"math/rand"
	"testing"
	"time"
)

func TestSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(42)) // fixed seed: allowed
	_ = rng.Float64()

	bad := rand.New(rand.NewSource(time.Now().UnixNano())) // want `non-constant expression in a test`
	_ = bad.Float64()

	_ = rand.Float64() // want `draws from the shared global source`
}
