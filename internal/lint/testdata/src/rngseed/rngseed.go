// Package rngseed is a fexlint golden fixture for the rngseed analyzer.
package rngseed

import "math/rand"

func globalDraw() int {
	return rand.Intn(10) // want `draws from the shared global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `draws from the shared global source`
}

// seeded constructs a local generator; a variable seed is fine outside
// tests (e.g. config-driven experiment seeds).
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
