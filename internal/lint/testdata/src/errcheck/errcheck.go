// Package errcheck is a fexlint golden fixture for the errcheck
// analyzer.
package errcheck

import (
	"fmt"
	"os"
	"strings"
)

func write(f *os.File) error {
	_, err := f.Write([]byte("x"))
	return err
}

func bad(path string) {
	os.Remove(path) // want `call discards its error result`
	f, _ := os.Open(path)
	f.Close()       // want `call discards its error result`
	defer write(f)  // want `deferred call discards its error result`
	go write(f)     // want `go statement discards its error result`
	defer f.Close() // defer Close idiom: allowed
	defer f.Sync()  // defer Sync idiom: allowed
}

func good(path string) error {
	_ = os.Remove(path) // explicit discard: allowed
	var b strings.Builder
	b.WriteString("hello")  // in-memory writer: allowed
	fmt.Println(b.String()) // fmt family: allowed
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}
