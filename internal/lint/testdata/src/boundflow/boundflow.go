// Package boundflow is the golden fixture for the boundflow analyzer:
// direction-aware taint from //fex:bound sources through locals and
// function returns (bound-fn facts, cross-package included), the
// sanitizing exact recompute, and the conservative-comparison rule.
package boundflow

import "fexipro/internal/lint/testdata/src/boundflow/bounds"

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// headBound combines a partial sum with a Cauchy–Schwarz tail cap; the
// annotation lets callers inherit the taint through the return value.
//
//fex:bound
func headBound(partial, tailQ, tailP float64) float64 {
	return partial + tailQ*tailP
}

// throughLocals: taint survives locals and bound-preserving arithmetic.
func throughLocals(q, p []float64, qTail, pTail, t float64) bool {
	partial := dot(q, p)
	ub := partial + qTail*pTail //fex:bound
	scaled := ub * 1.25
	shifted := scaled + 0.5
	if shifted <= t { // want `comparison "<=" on a bound-derived value`
		return false
	}
	return shifted >= t // legal: tie-keeping keep
}

// viaReturn: a call to a //fex:bound function taints its result.
func viaReturn(partial, qTail, pTail, t float64) bool {
	b := headBound(partial, qTail, pTail)
	return b > t // want `comparison ">" on a bound-derived value`
}

// crossPkg: the bound-fn fact crosses package boundaries.
func crossPkg(qNorm, pNorm, t float64) bool {
	lb := bounds.LengthBound(qNorm, pNorm)
	if t >= lb { // want `comparison ">=" on a bound-derived value`
		return true
	}
	return lb < t // legal: strict prune
}

// cleanCall: an unannotated callee's result stays clean even when fed
// a bound — the callee is an opaque sanitizer by default.
func cleanCall(qNorm, pNorm, t float64) bool {
	lb := bounds.LengthBound(qNorm, pNorm)
	h := bounds.Halve(lb)
	return h > t // legal: h is not a bound
}

// leak: a bound escaping an unannotated function is reported.
func leak(partial, qTail, pTail float64) float64 {
	ub := partial + qTail*pTail //fex:bound
	return ub                   // want `bound-derived value returned from a function not annotated`
}

// sanitize: reassigning from an exact recompute KILLS the taint — the
// analysis is flow-sensitive, so the later comparison is unrestricted.
func sanitize(q, p []float64, qTail, pTail, t float64) bool {
	v := dot(q, p[:len(q)/2])
	v = v + qTail*pTail //fex:bound
	if v < t {
		return false
	}
	v = dot(q, p) // exact recompute: clean from here on
	return v > t  // legal: no bound reaches this comparison
}

// flip: dividing BY a bound flips the inequality direction and yields
// a conservative per-item threshold (the SS-L theta idiom) — clean.
func flip(qNorm, pNorm, cos, t float64) bool {
	lenBound := qNorm * pNorm //fex:bound
	if lenBound < t {
		return false
	}
	theta := t / lenBound
	return cos > theta // legal: theta is a threshold, not a bound
}

// equality: == / != never keep the equality case correctly.
func equality(partial, qTail, pTail, t float64) bool {
	ub := partial + qTail*pTail //fex:bound
	return ub == t              // want `comparison "==" on a bound-derived value`
}

// rightSide: the mirrored rule when the bound sits on the right.
func rightSide(partial, qTail, pTail, t float64) bool {
	ub := partial + qTail*pTail //fex:bound
	if t < ub {                 // want `comparison "<" on a bound-derived value`
		return true
	}
	return t > ub // legal: threshold strictly above the bound prunes
}
