// Package bounds exports annotated bound combinators for the boundflow
// fixture's cross-package leg: the //fex:bound directive on LengthBound
// becomes a bound-fn fact, so callers in ANY package inherit the taint.
package bounds

// LengthBound is the Cauchy–Schwarz cap ‖q‖‖p‖ >= q·p.
//
//fex:bound
func LengthBound(qNorm, pNorm float64) float64 {
	return qNorm * pNorm
}

// Halve is exact arithmetic, not a bound: results stay clean.
func Halve(x float64) float64 {
	return x * 0.5
}
