// Package lockhold is a fexlint golden fixture for mutex discipline:
// balanced Lock/Unlock, the defer-Lock typo, and blocking operations
// inside held regions.
package lockhold

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

type index struct{}

func (index) SearchContext(ctx context.Context, q []float64, k int) []int { return nil }

// S carries the guarded state.
type S struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	ch     chan int
	idx    index
	logger *slog.Logger
}

func (s *S) deferTypo() {
	defer s.mu.Lock() // want `almost certainly a typo for defer s.mu.Unlock`
}

func (s *S) deferTypoRead() {
	defer s.rw.RLock() // want `almost certainly a typo for defer s.rw.RUnlock`
}

func (s *S) unbalanced() {
	s.mu.Lock() // want `has no matching Unlock in this function`
}

func (s *S) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding s.mu`
	s.mu.Unlock()
}

func (s *S) sendHeld() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.ch <- 1 // want `channel send while holding s.rw`
}

func (s *S) recvHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `channel receive while holding s.mu`
}

func (s *S) selectHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while holding s.mu`
	case v := <-s.ch:
		_ = v
	}
}

func (s *S) scanHeld(ctx context.Context, q []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.SearchContext(ctx, q, 10) // want `SearchContext call .a full scan. while holding s.mu`
}

func (s *S) logHeld() {
	s.mu.Lock()
	s.logger.Info("msg") // want `slog call .Info. while holding s.mu`
	s.mu.Unlock()
}

func (s *S) fnHeld(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn() // want `call through function value fn .unbounded hold time. while holding s.mu`
}

// sleepy blocks directly; relay blocks only transitively. The fixpoint
// summarizes both, and a held-region call to relay names the chain.
func sleepy() { time.Sleep(time.Millisecond) }

func relay() { sleepy() }

func (s *S) transitiveHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	relay() // want `call to relay while holding s.mu reaches a blocking operation .relay → sleepy → time.Sleep.`
}

// lockedHelper takes its own lock but never blocks: mutex operations
// are not part of the callee summary, so calling it under s.mu is fine.
func (s *S) lockedHelper() {
	s.rw.RLock()
	defer s.rw.RUnlock()
}

func pure() {}

func (s *S) cleanHelpersHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockedHelper()
	pure()
}

// afterUnlock: the held region ends at the unlock, so nothing after it
// is flagged.
func (s *S) afterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
	time.Sleep(time.Millisecond)
}

// pollSelect: a select with a default clause is a non-blocking poll.
func (s *S) pollSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

// handoff documents a cross-function lock protocol with an ignore
// directive, which must suppress the unbalanced-lock diagnostic.
func (s *S) handoff() {
	//lint:ignore lockhold released by the caller via releaseHandoff
	s.mu.Lock()
}

func (s *S) releaseHandoff() {
	s.mu.Unlock()
}
