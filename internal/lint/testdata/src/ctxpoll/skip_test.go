package ctxpoll

import "context"

// testScanner lives in a _test.go file: ctxpoll must skip it even
// though SearchContext has an unpolled scan loop (test harnesses replay
// scans deliberately).
type testScanner struct{ items [][]float64 }

func (s *testScanner) SearchContext(ctx context.Context, q []float64, k int) []Result {
	c := &Collector{}
	for i := range s.items {
		c.Push(i, 0)
	}
	return nil
}
