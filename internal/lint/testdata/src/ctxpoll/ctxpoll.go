// Package ctxpoll is a fexlint golden fixture for the cancellation-poll
// contract (DESIGN.md §10). Each `// want` comment asserts one expected
// diagnostic on its line. Collector/Result mimic the real topk types by
// name — ctxpoll matches type names, not import paths — so the fixture
// stays self-contained.
package ctxpoll

import (
	"context"

	"fexipro/internal/lint/testdata/src/ctxpoll/pollee"
)

// Collector mimics topk.Collector.
type Collector struct{ n int }

// Push mimics the collector offer.
func (c *Collector) Push(id int, score float64) bool { c.n++; return true }

// Result mimics topk.Result.
type Result struct {
	ID    int
	Score float64
}

// Poll mimics search.Poll (recognized by name).
func Poll(ctx context.Context, i int) error { return ctx.Err() }

// Scanner is the searcher under test.
type Scanner struct {
	items [][]float64
}

func dot(a, b []float64) float64 {
	var v float64
	for i := range a {
		v += a[i] * b[i]
	}
	return v
}

// SearchContext scans without any poll: the loop must be flagged.
func (s *Scanner) SearchContext(ctx context.Context, q []float64, k int) []Result {
	c := &Collector{}
	for i := range s.items { // want `scan loop reachable from SearchContext cannot be cancelled`
		c.Push(i, dot(q, s.items[i]))
	}
	s.descend(ctx, 0, c)
	return nil
}

// descend polls at function entry, which covers its loop: every node
// visit re-polls (the tree-descent idiom). No diagnostic.
func (s *Scanner) descend(ctx context.Context, node int, c *Collector) error {
	if err := Poll(ctx, node); err != nil {
		return err
	}
	for _, child := range s.kids(node) {
		if s.descend(ctx, child, c) != nil {
			return nil
		}
		c.Push(child, 0)
	}
	return nil
}

func (s *Scanner) kids(int) []int { return nil }

// SearchAboveContext polls inside the loop itself: no diagnostic.
func (s *Scanner) SearchAboveContext(ctx context.Context, q []float64, t float64) ([]Result, error) {
	var out []Result
	for i := range s.items {
		if err := Poll(ctx, i); err != nil {
			return out, err
		}
		if v := dot(q, s.items[i]); v >= t {
			out = append(out, Result{ID: i, Score: v})
		}
	}
	return out, nil
}

// TopKAllContext polls in the enclosing chunk loop (the strided-scan
// idiom); the tight inner loop inherits the cover. Closures are out of
// scope — they run on their own schedule.
func (s *Scanner) TopKAllContext(ctx context.Context, qs [][]float64, k int) [][]Result {
	c := &Collector{}
	for base := 0; base < len(s.items); base += 1024 {
		if err := ctx.Err(); err != nil {
			return nil
		}
		end := base + 1024
		if end > len(s.items) {
			end = len(s.items)
		}
		for i := base; i < end; i++ {
			c.Push(i, 0)
		}
	}
	sel := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.Push(i, 0)
		}
	}
	sel(0, len(s.items))
	return nil
}

// TopKJoinContext demonstrates the guard-free fast path: a loop that
// only runs when ctx.Done() == nil needs no poll, and the cancellable
// path satisfies the contract with a Done-channel select.
func (s *Scanner) TopKJoinContext(ctx context.Context, qs [][]float64, k int) []Result {
	c := &Collector{}
	done := ctx.Done()
	if done == nil {
		for i := range s.items {
			c.Push(i, 0)
		}
		return nil
	}
	for i := range s.items {
		if i&1023 == 0 {
			select {
			case <-done:
				return nil
			default:
			}
		}
		c.Push(i, 0)
	}
	return nil
}

// BatchTopKContext reaches an unpolled scan through a helper: the
// reachability walk must root the diagnostic at the entry point's name.
func (s *Scanner) BatchTopKContext(ctx context.Context, qs [][]float64, k int) []Result {
	c := &Collector{}
	s.scanRange(c)
	return nil
}

func (s *Scanner) scanRange(c *Collector) {
	for i := range s.items { // want `scan loop reachable from BatchTopKContext cannot be cancelled`
		c.Push(i, 0)
	}
}

// Accumulate builds a Result slice without a poll, reached from a
// kernel-shaped Scan entry (context-first method named Scan).
type kern struct{ s *Scanner }

func (k kern) Scan(ctx context.Context, shard int, c *Collector) error {
	var out []Result
	for i := range k.s.items { // want `scan loop reachable from Scan cannot be cancelled`
		out = append(out, Result{ID: i})
	}
	_ = out
	return nil
}

// pollHelper polls at entry; calling it counts as one poll.
func pollHelper(ctx context.Context) error { return ctx.Err() }

// pollChain is an entry poller only transitively: its entry poll is a
// call to pollHelper, resolved by the same-unit fixpoint.
func pollChain(ctx context.Context) error { return pollHelper(ctx) }

// Interproc exercises the interprocedural upgrade: polls may live
// behind same-unit helpers or cross-package callees.
type Interproc struct{ s *Scanner }

func (p *Interproc) SearchContext(ctx context.Context, q []float64, k int) []Result {
	c := &Collector{}
	// Clean: pollHelper is a same-unit entry poller.
	for i := range p.s.items {
		if err := pollHelper(ctx); err != nil {
			return nil
		}
		c.Push(i, 0)
	}
	// Clean: pollChain reaches a poll through another helper.
	for i := range p.s.items {
		if err := pollChain(ctx); err != nil {
			return nil
		}
		c.Push(i, 0)
	}
	// Clean, but only the module phase can tell: pollee.EntryPoll lives
	// in another package, so the unit pass defers via a pending fact and
	// the entrypoll fact exported by pollee resolves it.
	for i := range p.s.items {
		if err := pollee.EntryPoll(ctx, i); err != nil {
			return nil
		}
		c.Push(i, 0)
	}
	// Flagged in the module phase: the only cross-package callee never
	// polls, so the pending loop is condemned with the callee list.
	for i := range p.s.items { // want `scan loop reachable from SearchContext cannot be cancelled.*NoPoll`
		pollee.NoPoll(i)
		c.Push(i, 0)
	}
	return nil
}

// notReachable has an unpolled scan loop but no context entry point
// reaches it: out of scope for ctxpoll.
func (s *Scanner) notReachable(c *Collector) {
	for i := range s.items {
		c.Push(i, 0)
	}
}
