// Package pollee is the cross-package half of the ctxpoll fixture: it
// declares one function that polls cancellation at entry (published as
// an "entrypoll" fact for the module phase) and one that does not.
package pollee

import "context"

// EntryPoll checks cancellation before doing any work — callers may
// treat one call as one poll.
func EntryPoll(ctx context.Context, i int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	use(i)
	return nil
}

// NoPoll never checks cancellation.
func NoPoll(i int) { use(i) }

func use(int) {}
