// Package stagecounters is a fexlint golden fixture for the
// stagecounters analyzer.
package stagecounters

// Stats mirrors the shared per-query counter schema.
type Stats struct {
	Scanned          int
	PrunedByLength   int
	PrunedByMonotone int
}

// TotalPruned deliberately omits PrunedByMonotone.
func (s Stats) TotalPruned() int { // want `TotalPruned omits stage counter\(s\) PrunedByMonotone`
	return s.PrunedByLength
}

// StageCounters mirrors the exported telemetry schema.
type StageCounters struct {
	Scanned        int
	PrunedByLength int
	Pruned         int
}

func convertPartial(st Stats) StageCounters {
	return StageCounters{ // want `StageCounters literal omits field\(s\) Pruned`
		Scanned:        st.Scanned,
		PrunedByLength: st.PrunedByLength,
	}
}

func convertFull(st Stats) StageCounters {
	// Complete keyed literal: allowed.
	return StageCounters{
		Scanned:        st.Scanned,
		PrunedByLength: st.PrunedByLength,
		Pruned:         st.PrunedByLength + st.PrunedByMonotone,
	}
}

const (
	MetricGood    = "fexipro_scanned_items_total"
	MetricColons  = "fexipro:recorded:total" // colons are valid
	MetricLeading = "9leading_digit"         // want `violates the Prometheus naming grammar`
	MetricDash    = "fexipro-dash"           // want `violates the Prometheus naming grammar`
)

type collector struct{ floor float64 }

func (c *collector) Threshold() float64 { return c.floor }

type searcher struct {
	stats Stats
	norms []float64
}

func (s *searcher) searchBad(c *collector) {
	t := c.Threshold()
	for _, n := range s.norms {
		if n <= t { // want `threshold-guarded exit does not increment`
			break
		}
		s.stats.Scanned++
	}
}

func (s *searcher) searchGood(c *collector) {
	t := c.Threshold()
	theta := t * 0.5 // taint propagates through derived values
	for i, n := range s.norms {
		if n <= theta { // counted prune: allowed
			s.stats.PrunedByLength += len(s.norms) - i
			break
		}
		s.stats.Scanned++
	}
}

func (s *searcher) reset(n int) {
	s.stats = Stats{}          // whole-struct reset: allowed
	s.stats.PrunedByLength = n // want `plain assignment to stage counter`
}
