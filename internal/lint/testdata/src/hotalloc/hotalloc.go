// Package hotalloc is a fexlint golden fixture for //fex:hot loops: no
// allocations, interface boxing, closures, per-iteration defers, or
// span starts inside a marked loop. Unmarked loops are unconstrained.
package hotalloc

import (
	"context"

	"fexipro/internal/obs"
)

type pair struct{ a, b float64 }

func sink(v any) {}

func work() {}

func hot(items []float64, out []float64) []float64 {
	//fex:hot
	for _, v := range items {
		out = append(out, v) // want `append inside a //fex:hot loop`
	}

	//fex:hot
	for range items {
		buf := make([]float64, 4) // want `make inside a //fex:hot loop`
		_ = buf
		p := new(pair) // want `new inside a //fex:hot loop`
		_ = p
	}

	sum := 0.0
	//fex:hot
	for _, v := range items {
		f := func() float64 { return v } // want `function literal inside a //fex:hot loop`
		sum += f()
		defer work() // want `defer inside a //fex:hot loop`
		go work()    // want `go statement inside a //fex:hot loop`
	}
	_ = sum

	s := ""
	//fex:hot
	for _, v := range items {
		p := pair{a: v} // want `composite literal inside a //fex:hot loop`
		_ = p
		s = s + "x" // want `string concatenation inside a //fex:hot loop`
		sink(v)     // want `argument boxes float64 into an interface`
	}
	_ = s

	// Unmarked loop: anything goes.
	for _, v := range items {
		out = append(out, v)
		sink(v)
	}
	return out
}

// interfaces passed through are not re-boxed.
func forward(vals []any) {
	//fex:hot
	for _, v := range vals {
		sink(v)
		sink(nil)
	}
}

// Spans are per-query instrumentation: starting one per scanned item
// is flagged, in all three spellings. Attribute/End calls on an
// already-open span are allowed (nil no-ops on the untraced path).
func spans(ctx context.Context, items []float64) {
	parent := obs.SpanFrom(ctx)
	//fex:hot
	for range items {
		s := obs.NewRoot("scan") // want `obs.NewRoot inside a //fex:hot loop starts a span per scanned item`
		_ = s
		_, c := obs.StartSpan(ctx, "item") // want `obs.StartSpan inside a //fex:hot loop starts a span per scanned item`
		_ = c
		g := parent.StartChild("item") // want `obs.StartChild inside a //fex:hot loop starts a span per scanned item`
		_ = g
		parent.AttrInt("scanned", 1) // fine: no span starts here
	}
	// Outside the loop: spans at query granularity are the point.
	sp := parent.StartChild("post")
	sp.End()
}
