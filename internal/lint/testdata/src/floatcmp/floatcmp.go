// Package floatcmp is a fexlint golden fixture. Each `// want` comment
// asserts one expected diagnostic on its line.
package floatcmp

const eps = 1e-9

func bad(a, b float64, c float32) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if a != b { // want `floating-point != comparison`
		return true
	}
	if float64(c) == a { // want `floating-point == comparison`
		return true
	}
	switch a { // want `switch on a floating-point value`
	case 1.5:
		return true
	}
	var x complex128
	return x == complex(a, b) // want `floating-point == comparison`
}

func good(a, b float64) bool {
	if a == 0 { // exact-zero guard: allowed
		return true
	}
	if 0.0 != b { // exact-zero guard, reversed: allowed
		return true
	}
	if a < b || a >= b { // ordered comparisons: allowed
		return true
	}
	const half = 0.5
	if half == 0.5 { // both sides constant: allowed
		return true
	}
	diff := a - b
	if diff < eps && diff > -eps { // the epsilon idiom: allowed
		return true
	}
	//lint:ignore floatcmp suppression mechanism under test
	return a == b
}
