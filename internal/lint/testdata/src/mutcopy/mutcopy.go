// Package mutcopy is a fexlint golden fixture for the mutcopy/atomicmix
// analyzer.
package mutcopy

import (
	"sync"
	"sync/atomic"
)

// counters transitively holds both a lock and an atomic value.
type counters struct {
	mu   sync.Mutex
	hits atomic.Int64
}

type wrapper struct{ inner counters }

func byValue(c counters) {} // want `parameter passes counters by value`

func nested(w wrapper) {} // want `parameter passes wrapper by value`

func (c counters) read() int64 { // want `method receiver passes counters by value`
	return c.hits.Load()
}

func copies() {
	var a counters
	b := a // want `expression copies counters by value`
	_ = b
	p := &a
	d := *p // want `expression copies counters by value`
	_ = d
	arr := make([]counters, 3)
	for _, c := range arr { // want `range copies counters by value`
		_ = c
	}
}

func fine() {
	var a counters
	p := &a // taking the address: allowed
	use(p)
	arr := make([]counters, 3)
	for i := range arr { // index-only range: allowed
		use(&arr[i])
	}
}

func use(*counters) {}

// mixed exercises the atomicmix half: n is updated atomically in inc,
// so every other access must also go through sync/atomic.
type mixed struct{ n int64 }

func (m *mixed) inc() { atomic.AddInt64(&m.n, 1) }

func (m *mixed) racyRead() int64 { return m.n } // want `plain access races`

func (m *mixed) racyWrite() { m.n = 0 } // want `plain access races`
