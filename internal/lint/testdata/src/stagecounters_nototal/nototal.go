// Package nototal is a fexlint golden fixture: a Stats schema that
// declares stage counters but no collapse method.
package nototal

type Stats struct { // want `Stats declares 2 PrunedBy\* counters but no TotalPruned`
	Scanned             int
	PrunedByLength      int
	PrunedByIncremental int
}
