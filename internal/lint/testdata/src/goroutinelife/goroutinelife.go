// Fixture for the goroutinelife analyzer: each accepted join edge
// (WaitGroup, ctx.Done, closed-channel range, bounded body) plus the
// leak shapes it must flag, including a cross-package go site judged
// via the callee's exported body verdict.
package goroutinelife

import (
	"context"
	"sync"

	"fexipro/internal/lint/testdata/src/goroutinelife/dep"
)

func work(int) {}

// joined launches workers with the canonical WaitGroup join edge.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// cancelled loops forever but exits on ctx.Done — the cancel edge.
func cancelled(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case v := <-ch:
				work(v)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// drained ranges over a channel the launcher closes — the drain edge.
func drained(items []int) {
	ch := make(chan int, len(items))
	go func() {
		for v := range ch {
			work(v)
		}
	}()
	for _, v := range items {
		ch <- v
	}
	close(ch)
}

// eventLoop ranges over a channel it never closes, but the loop has an
// explicit exit arm (the signal-loop idiom) — accepted.
func eventLoop(sig chan int) {
	go func() {
		for v := range sig {
			if v == 0 {
				break
			}
			work(v)
		}
	}()
}

// bounded runs to completion on its own.
func bounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work(i)
		}
	}()
}

// spinner leaks: an infinite loop with no cancel edge.
func spinner() {
	go func() { // want `goroutine has no provable termination or join edge: infinite for loop`
		for {
			work(1)
		}
	}()
}

// unclosedRange leaks: the launcher never closes ch and the loop has
// no exit arm, so the goroutine blocks forever once senders stop.
func unclosedRange(ch chan int) {
	go func() { // want `range over a channel the launcher never closes`
		for v := range ch {
			work(v)
		}
	}()
}

// addInside corrupts the WaitGroup: Add races with the launcher's Wait.
func addInside(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want `wg\.Add inside the launched goroutine races with the launcher's Wait`
		defer wg.Done()
		work(1)
	}()
	wg.Wait()
}

// leakyAdd returns between wg.Add and the launch on the error path, so
// the launcher's Wait hangs forever.
func leakyAdd(bad bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	if bad {
		return // want `return between wg\.Add and the goroutine launch leaks the Add`
	}
	go func() {
		defer wg.Done()
		work(1)
	}()
	wg.Wait()
}

// compensated is the same shape with a Done on the error path — fine.
func compensated(bad bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	if bad {
		wg.Done()
		return
	}
	go func() {
		defer wg.Done()
		work(1)
	}()
	wg.Wait()
}

// crossOK launches a bounded callee from another package: dep's body
// verdict travels as a fact and clears it in the module phase.
func crossOK() {
	go dep.Worker(10)
}

// crossLeak launches dep.Spin, whose exported verdict says it never
// terminates — flagged via the cross-package fact join.
func crossLeak() {
	go dep.Spin() // want `go dep\.Spin: infinite for loop without a ctx\.Done select arm`
}

// funcValue launches through a function value — unresolvable callee.
func funcValue(f func()) {
	go f() // want `go statement calls through a function value`
}
