// Package dep is the callee side of the cross-package fact join: its
// body verdicts are exported from this unit and joined against the
// root package's go sites in the goroutinelife module phase.
package dep

// Worker runs to completion on its own: a bounded body, so launching
// it as a goroutine needs no further join edge.
func Worker(n int) {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	_ = total
}

// Spin never terminates and offers no cancel edge — launching it leaks
// a goroutine for the life of the process.
func Spin() {
	n := 0
	for {
		n++
	}
}
