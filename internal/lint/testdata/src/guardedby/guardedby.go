// Fixture for the guardedby analyzer: annotation enforcement (reads
// and writes outside the mutex, writes under RLock), the Locked-suffix
// and local-construction exemptions, directive validation, and the
// inference path that suggests annotations for disciplined fields.
package guardedby

import "sync"

// G exercises annotation enforcement and inference.
type G struct {
	mu sync.RWMutex
	//fex:guard mu
	n    int
	hits int // want `field guardedby\.G\.hits is always written \(2×\) under guardedby\.G\.mu`
	free int
	//fex:guard nosuch
	bad int // want `//fex:guard nosuch on G\.bad names no sync\.Mutex/RWMutex sibling field`
	//fex:guard mu
	mu2 sync.Mutex // want `//fex:guard on G\.mu2, which is itself a mutex`
}

// SetGood writes guarded state under the write lock.
func (g *G) SetGood(v int) {
	g.mu.Lock()
	g.n = v
	g.hits++
	g.mu.Unlock()
}

// GetGood reads guarded state under the read lock.
func (g *G) GetGood() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// SetBad writes the guarded field with no lock held.
func (g *G) SetBad(v int) {
	g.n = v // want `write to guardedby\.G\.n without holding guardedby\.G\.mu`
}

// ReadBad reads the guarded field with no lock held.
func (g *G) ReadBad() int {
	return g.n // want `read of guardedby\.G\.n without holding guardedby\.G\.mu`
}

// WriteUnderRLock holds the wrong lock mode for a write.
func (g *G) WriteUnderRLock(v int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.n = v // want `write to guardedby\.G\.n under RLock of guardedby\.G\.mu`
}

// setNLocked follows the Locked-suffix convention: the caller holds mu,
// so receiver-rooted accesses are exempt.
func (g *G) setNLocked(v int) {
	g.n = v
}

// NewG initializes guarded fields on a freshly constructed object that
// no other goroutine can see yet — exempt.
func NewG(v int) *G {
	g := &G{}
	g.n = v
	return g
}

// bump2 is the second disciplined write of hits, pushing it over the
// inference threshold.
func (g *G) bump2() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hits++
}

// touch writes the undisciplined field; one unlocked write means no
// inference and, unannotated, no enforcement.
func (g *G) touch() {
	g.free = 1
}

var _ = (&G{}).touch

// S is accessed from the dep package: its annotation travels as a fact
// and is joined against dep's access records in the module phase.
type S struct {
	Mu sync.Mutex
	//fex:guard Mu
	N int
}
