// Package dep is the consumer side of the cross-package fact join: the
// //fex:guard annotation lives on guardedby.S, the accesses happen
// here, and the module phase joins the two.
package dep

import root "fexipro/internal/lint/testdata/src/guardedby"

// PokeBad writes the guarded field without its mutex.
func PokeBad(s *root.S) {
	s.N = 1 // want `write to guardedby\.S\.N without holding guardedby\.S\.Mu`
}

// PokeGood holds the lock across the write.
func PokeGood(s *root.S) {
	s.Mu.Lock()
	s.N = 2
	s.Mu.Unlock()
}
