// Package kernuncovered is a fexlint golden fixture: a structural
// engine.Kernel in a package with NO sharded_test.go, so the module
// phase must report the missing searchtest.CheckSharded coverage at the
// Scan declaration.
package kernuncovered

import "context"

// Collector mimics topk.Collector by name.
type Collector struct{}

// Push mimics the collector offer.
func (c *Collector) Push(int, float64) bool { return true }

// Kern structurally implements engine.Kernel.
type Kern struct{}

// Shards implements engine.Kernel.
func (k *Kern) Shards() int { return 1 }

// Prepare implements engine.Kernel.
func (k *Kern) Prepare(q []float64) any { return nil }

// Scan is contract-clean in isolation; only the missing sharded test
// coverage is reported.
func (k *Kern) Scan(ctx context.Context, pq any, c *Collector) error { // want `kernel type Kern has no sharded_test.go`
	return ctx.Err()
}
