// Package badkern is a kernel package with NO sharded_test.go:
// descriptors routing queries here must be flagged.
package badkern

// Kern is the uncovered kernel type.
type Kern struct{}

// Shards implements the fixture Kernel interface.
func (k *Kern) Shards() int { return 1 }

// New builds the uncovered kernel.
func New(shards int) *Kern { return &Kern{} }
