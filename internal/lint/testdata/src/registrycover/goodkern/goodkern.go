// Package goodkern is a kernel package WITH sharded_test.go coverage;
// descriptors routing here are clean.
package goodkern

// Kern is the covered kernel type.
type Kern struct{}

// Shards implements the fixture Kernel interface.
func (k *Kern) Shards() int { return 1 }

// New builds the covered kernel.
func New(shards int) *Kern { return &Kern{} }
