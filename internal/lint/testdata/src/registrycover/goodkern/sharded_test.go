package goodkern

import "testing"

// shardHarness stands in for searchtest: the analyzer matches any
// CheckSharded* selector invoked from a file named sharded_test.go.
type shardHarness struct{}

func (shardHarness) CheckSharded(t *testing.T) {}

func TestSharded(t *testing.T) {
	shardHarness{}.CheckSharded(t)
}
