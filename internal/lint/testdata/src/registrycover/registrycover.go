// Package registrycover is the fexlint golden fixture for the
// registrycover analyzer: a Descriptor routing to a CheckSharded-covered
// kernel package is clean, one routing to an uncovered package is
// flagged at the literal, and a factory whose kernel package cannot be
// resolved is flagged per-unit.
package registrycover

import (
	"fexipro/internal/lint/testdata/src/registrycover/badkern"
	"fexipro/internal/lint/testdata/src/registrycover/goodkern"
	"fexipro/internal/lint/testdata/src/registrycover/method"
)

func opaque(shards int) method.Kernel { return goodkern.New(shards) }

func register() {
	method.Register(method.Descriptor{ // clean: goodkern has sharded_test.go
		Name: "Good",
		NewKernel: func(shards int) (method.Kernel, error) {
			return goodkern.New(shards), nil
		},
	})
	method.Register(method.Descriptor{
		Name: "NoKernel", // clean: nothing routes through the engine
	})
	method.Register(method.Descriptor{ // want `method Bad registers a kernel from .*badkern, which has no sharded_test.go`
		Name: "Bad",
		NewKernel: func(shards int) (method.Kernel, error) {
			return badkern.New(shards), nil
		},
	})
	method.Register(method.Descriptor{
		Name: "Opaque",
		NewKernel: func(shards int) (method.Kernel, error) { // want `method Opaque: cannot resolve the kernel package`
			var k method.Kernel
			if shards > 0 {
				k = opaque(shards)
			}
			return k, nil
		},
	})
}

var _ = register
