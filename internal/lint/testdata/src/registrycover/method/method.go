// Package method is a fexlint golden-fixture stand-in for the real
// method registry: the analyzer matches the Descriptor type by
// (package name, type name), exactly like kernelcontract matches
// SharedThreshold.
package method

// Kernel stands in for engine.Kernel.
type Kernel interface{ Shards() int }

// Descriptor mirrors the registry entry shape registrycover inspects.
type Descriptor struct {
	Name      string
	NewKernel func(shards int) (Kernel, error)
}

// Register is the fixture registration sink.
func Register(d Descriptor) {}
