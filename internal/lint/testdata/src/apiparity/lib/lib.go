// Package lib is a fexlint golden fixture for apiparity: searcher
// method parity within the package, plus Config-to-flag wiring joined
// in the module phase against the cmd/apx unit in the sibling
// directory.
package lib

import "context"

// Finder has Search but no SearchContext: the serving deadline guards
// cannot cancel its scans.
type Finder struct{}

// Search lacks a context-taking counterpart.
func (Finder) Search(q []float64, k int) []int { return nil } // want `Finder.Search has no SearchContext counterpart`

// Above pairs the above-t entry point the same way.
type Above struct{}

// SearchAbove lacks a context-taking counterpart.
func (Above) SearchAbove(q []float64, t float64) []int { return nil } // want `Above.SearchAbove has no SearchAboveContext counterpart`

// Paired exposes both forms: no diagnostic.
type Paired struct{}

// Search is paired with SearchContext below.
func (Paired) Search(q []float64, k int) []int { return nil }

// SearchContext completes the pair.
func (Paired) SearchContext(ctx context.Context, q []float64, k int) ([]int, error) {
	return nil, ctx.Err()
}

// helper is unexported: parity applies to exported searchers only.
type helper struct{}

func (helper) Search(q []float64, k int) []int { return nil }

// NotASearcher has a Search method whose shape is not a retrieval entry
// point (first parameter is not a []float64 query): exempt.
type NotASearcher struct{}

// Search here is a string lookup, not a vector scan.
func (NotASearcher) Search(name string) int { return 0 }

// Config: Wired and Addr are set by cmd/apx (composite literal and
// field assignment); Unwired is reachable from no flag; Exempt
// documents why it stays unwired; private fields are out of scope.
type Config struct {
	Wired   int
	Addr    string
	Unwired int // want `lib.Config.Unwired is not set by any cmd/ package`
	//lint:ignore apiparity fixture: deliberately unwired to pin module-phase suppression
	Exempt  int
	private int
}
