// Command apx is the cmd-side half of the apiparity fixture: it wires
// lib.Config.Wired (composite literal) and lib.Config.Addr (field
// assignment) so the module phase sees them as flag-reachable. All
// `// want` expectations live in the lib package.
package main

import "fexipro/internal/lint/testdata/src/apiparity/lib"

func main() {
	cfg := lib.Config{Wired: 1}
	cfg.Addr = "localhost:0"
	_ = cfg
}
