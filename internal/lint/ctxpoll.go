package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPoll enforces DESIGN.md §10's cancellation contract: every
// item-scan loop reachable from a context-carrying entry point
// (SearchContext, SearchAboveContext, TopK*Context, BatchTopKContext,
// or a kernel-shaped Scan) must poll cancellation on a CheckStride
// boundary. A scan loop is a for/range whose body directly offers
// candidates (Collector.Push), accumulates results (append of
// topk.Result), or recurses (tree descents). The poll may live in the
// loop itself, in an enclosing loop (the chunked-scan idiom), or at
// function entry before any loop (the per-node tree-descent idiom);
// loops that only run when ctx.Done() == nil (the guard-free fast path)
// are exempt. Without a poll, a deadline or client disconnect cannot
// stop the scan — the exact failure mode PR 3's serving guards exist to
// prevent.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "scan loops reachable from SearchContext/Scan must poll cancellation every CheckStride items",
	Run:  runCtxPoll,
}

// ctxEntryNames are the function names that root the reachability walk.
var ctxEntryNames = map[string]bool{
	"SearchContext":      true,
	"SearchAboveContext": true,
	"TopKAllContext":     true,
	"TopKJoinContext":    true,
	"BatchTopKContext":   true,
}

func runCtxPoll(pass *Pass) {
	// Index every function declaration by its *types.Func object so the
	// call-graph walk can resolve same-unit static calls.
	decls := make(map[types.Object]*ast.FuncDecl)
	var entries []*ast.FuncDecl
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue // test harnesses replay scans deliberately
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj != nil {
				decls[obj] = fd
			}
			if ctxEntryNames[fd.Name.Name] || isKernelScanDecl(pass, fd) {
				entries = append(entries, fd)
			}
		}
	}
	if len(entries) == 0 {
		return
	}

	// Reachability: same-unit static call graph from the entry set.
	reachable := make(map[*ast.FuncDecl]string) // decl -> rooting entry name
	var walk func(fd *ast.FuncDecl, root string)
	walk = func(fd *ast.FuncDecl, root string) {
		if _, seen := reachable[fd]; seen {
			return
		}
		reachable[fd] = root
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
			if id == nil {
				return true
			}
			if obj := pass.Info.Uses[id]; obj != nil {
				if callee, ok := decls[obj]; ok {
					walk(callee, root)
				}
			}
			return true
		})
	}
	for _, fd := range entries {
		walk(fd, fd.Name.Name)
	}

	for fd, root := range reachable {
		checkScanLoops(pass, fd, root)
	}
}

// isKernelScanDecl reports whether fd looks like engine.Kernel.Scan: a
// method named Scan whose first parameter is a context.Context.
func isKernelScanDecl(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Scan" || fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	return isContextType(pass.TypeOf(fd.Type.Params.List[0].Type))
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// checkScanLoops flags every unsatisfied scan loop in fd.
func checkScanLoops(pass *Pass, fd *ast.FuncDecl, root string) {
	entryPoll := hasEntryPoll(pass, fd)
	var visit func(n ast.Node, ancestorPolled bool)
	visit = func(n ast.Node, ancestorPolled bool) {
		switch s := n.(type) {
		case *ast.FuncLit:
			return // closures run on their own goroutine/schedule
		case *ast.ForStmt, *ast.RangeStmt:
			body := loopBody(s)
			polled := containsPoll(pass, body)
			if isScanLoop(pass, fd, body) &&
				!polled && !ancestorPolled && !entryPoll && !guardedUncancellable(pass, fd, s) {
				pass.Reportf(n.Pos(),
					"scan loop reachable from %s cannot be cancelled: no search.Poll / ctx.Err / Done-channel check in this loop, an enclosing loop, or at function entry (DESIGN.md §10)",
					root)
			}
			for _, st := range body.List {
				visit(st, ancestorPolled || polled)
			}
			return
		}
		// Generic recursion over child statements.
		children(n, func(c ast.Node) { visit(c, ancestorPolled) })
	}
	for _, st := range fd.Body.List {
		visit(st, false)
	}
}

// loopBody returns the body block of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch s := n.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// children invokes f for the statement-bearing children of n, without
// descending into expressions (loops inside expressions only occur via
// FuncLits, which are out of scope).
func children(n ast.Node, f func(ast.Node)) {
	switch s := n.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			f(st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			f(s.Init)
		}
		f(s.Body)
		if s.Else != nil {
			f(s.Else)
		}
	case *ast.SwitchStmt:
		f(s.Body)
	case *ast.TypeSwitchStmt:
		f(s.Body)
	case *ast.SelectStmt:
		f(s.Body)
	case *ast.CaseClause:
		for _, st := range s.Body {
			f(st)
		}
	case *ast.CommClause:
		for _, st := range s.Body {
			f(st)
		}
	case *ast.LabeledStmt:
		f(s.Stmt)
	}
}

// isScanLoop reports whether body directly (not through a nested loop
// or closure) does per-item work: offers to a Collector, accumulates
// topk.Results, or recurses into the enclosing function.
func isScanLoop(pass *Pass, fd *ast.FuncDecl, body *ast.BlockStmt) bool {
	found := false
	shallowInspect(body, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Push" && isCollectorType(pass.TypeOf(fun.X)) {
				found = true
			}
			if pass.Info.Uses[fun.Sel] != nil && pass.Info.Uses[fun.Sel] == pass.Info.Defs[fd.Name] {
				found = true // recursive method call (tree descent)
			}
		case *ast.Ident:
			if fun.Name == "append" && appendsResult(pass, call) {
				found = true
			}
			if pass.Info.Uses[fun] != nil && pass.Info.Uses[fun] == pass.Info.Defs[fd.Name] {
				found = true // recursive function call
			}
		}
	})
	return found
}

// shallowInspect walks body but does not descend into nested for/range
// loops or function literals.
func shallowInspect(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// isCollectorType reports whether t is (a pointer to) a named type
// called Collector — the top-k collector contract.
func isCollectorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Collector"
}

// appendsResult reports whether an append call grows a slice of a type
// named Result (topk.Result accumulation, the SearchAbove idiom).
func appendsResult(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	t := pass.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem := sl.Elem()
	if p, ok := elem.(*types.Pointer); ok {
		elem = p.Elem()
	}
	named, ok := elem.(*types.Named)
	return ok && named.Obj().Name() == "Result"
}

// containsPoll reports whether block contains a cancellation check at
// any depth, excluding closures: a call to a function named Poll, a
// ctx.Err() call, or a receive from a Done channel (directly or in a
// select).
func containsPoll(pass *Pass, block *ast.BlockStmt) bool {
	if block == nil {
		return false
	}
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPollCall(pass, e) {
				found = true
			}
		case *ast.UnaryExpr:
			if isDoneReceive(pass, e) {
				found = true
			}
		}
		return true
	})
	return found
}

// isPollCall recognizes search.Poll-style calls and ctx.Err().
func isPollCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return id.Name == "Poll"
		}
		return false
	}
	if sel.Sel.Name == "Poll" {
		return true
	}
	if sel.Sel.Name == "Err" && isContextType(pass.TypeOf(sel.X)) {
		return true
	}
	return false
}

// isDoneReceive recognizes `<-done` / `<-ctx.Done()` receives, where
// done is a receive-only struct{} channel (the ctx.Done() shape).
func isDoneReceive(pass *Pass, e *ast.UnaryExpr) bool {
	if e.Op.String() != "<-" {
		return false
	}
	return isDoneChanType(pass.TypeOf(e.X))
}

// isDoneChanType matches <-chan struct{}, the type of ctx.Done().
func isDoneChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() != types.RecvOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// hasEntryPoll reports whether fd polls cancellation outside any loop —
// the per-call poll of recursive tree descents, which covers every loop
// in the function body (each node visit re-polls).
func hasEntryPoll(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if found {
			return
		}
		switch s := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return // polls inside loops/closures do not cover the whole call
		case *ast.IfStmt:
			// Both the condition and the guarded body count: the stride
			// guard idiom wraps the Poll call in an if.
			if exprHasPoll(pass, s.Cond) {
				found = true
				return
			}
			if s.Init != nil {
				visit(s.Init)
			}
			visit(s.Body)
			if s.Else != nil {
				visit(s.Else)
			}
			return
		case *ast.ExprStmt:
			if exprHasPoll(pass, s.X) {
				found = true
			}
			return
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				if exprHasPoll(pass, r) {
					found = true
				}
			}
			return
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if exprHasPoll(pass, r) {
					found = true
				}
			}
			return
		case *ast.SelectStmt:
			ast.Inspect(s, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && isDoneReceive(pass, u) {
					found = true
				}
				return !found
			})
			return
		}
		children(n, visit)
	}
	for _, st := range fd.Body.List {
		visit(st)
		if found {
			return true
		}
	}
	return found
}

// exprHasPoll reports whether expr contains a poll call or Done receive.
func exprHasPoll(pass *Pass, expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPollCall(pass, e) {
				found = true
			}
		case *ast.UnaryExpr:
			if isDoneReceive(pass, e) {
				found = true
			}
		}
		return true
	})
	return found
}

// guardedUncancellable reports whether loop only executes when the
// context is not cancellable: it sits under an if/switch-case whose
// condition requires a Done channel to be nil (`done == nil`), the
// guard-free fast-path idiom of the Naive scan.
func guardedUncancellable(pass *Pass, fd *ast.FuncDecl, loop ast.Node) bool {
	// Collect the conditions of every if/case enclosing the loop.
	var conds []ast.Expr
	var path []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		if n == loop {
			for i, anc := range path {
				switch s := anc.(type) {
				case *ast.IfStmt:
					// Only the then-branch is guarded by the condition.
					if i+1 < len(path) && path[i+1] == s.Body || (i+1 == len(path) && s.Body == loop) {
						conds = append(conds, s.Cond)
					}
				case *ast.CaseClause:
					conds = append(conds, s.List...)
				}
			}
			return false
		}
		path = append(path, n)
		return true
	})
	for _, cond := range conds {
		if condRequiresNilDone(pass, cond) {
			return true
		}
	}
	return false
}

// condRequiresNilDone reports whether cond (possibly an && conjunction)
// includes a `doneChan == nil` test.
func condRequiresNilDone(pass *Pass, cond ast.Expr) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condRequiresNilDone(pass, e.X)
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&":
			return condRequiresNilDone(pass, e.X) || condRequiresNilDone(pass, e.Y)
		case "==":
			if isNilIdent(e.Y) && isDoneChanType(pass.TypeOf(e.X)) {
				return true
			}
			if isNilIdent(e.X) && isDoneChanType(pass.TypeOf(e.Y)) {
				return true
			}
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
