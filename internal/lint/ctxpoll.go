package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"fexipro/internal/lint/flow"
)

// CtxPoll enforces DESIGN.md §10's cancellation contract: every
// item-scan loop reachable from a context-carrying entry point
// (SearchContext, SearchAboveContext, TopK*Context, BatchTopKContext,
// or a kernel-shaped Scan) must poll cancellation on a CheckStride
// boundary. A scan loop is a for/range whose body directly offers
// candidates (Collector.Push), accumulates results (append of
// topk.Result), or recurses (tree descents). The poll may live in the
// loop itself, in an enclosing loop (the chunked-scan idiom), or at
// function entry before any loop (the per-node tree-descent idiom);
// loops that only run when ctx.Done() == nil (the guard-free fast path)
// are exempt. Without a poll, a deadline or client disconnect cannot
// stop the scan — the exact failure mode PR 3's serving guards exist to
// prevent.
//
// The analysis is interprocedural: a function that polls at entry
// (before any loop) is an ENTRY POLLER, and a call to an entry poller
// counts as a poll at the call site — one poll per call, regardless of
// how many items the callee then touches, which is exactly the per-node
// guarantee the tree-descent idiom relies on. Entry-pollerhood is a
// same-unit fixpoint (pollers chain through helpers) and crosses
// package boundaries via "entrypoll" facts: a loop whose only candidate
// polls are calls into OTHER packages is not judged in the unit pass —
// it exports a pending fact that the module phase resolves against the
// full fact set, reporting only if no callee actually polls at entry.
var CtxPoll = &Analyzer{
	Name:      "ctxpoll",
	Doc:       "scan loops reachable from SearchContext/Scan must poll cancellation every CheckStride items",
	Run:       runCtxPoll,
	RunModule: runCtxPollModule,
}

const (
	factEntryPoll   = "entrypoll"
	factPendingPoll = "pendingpoll"
)

// ctxEntryNames are the function names that root the reachability walk.
var ctxEntryNames = map[string]bool{
	"SearchContext":      true,
	"SearchAboveContext": true,
	"TopKAllContext":     true,
	"TopKJoinContext":    true,
	"BatchTopKContext":   true,
}

func runCtxPoll(pass *Pass) {
	// Index every function declaration by its *types.Func object so the
	// call-graph walk can resolve same-unit static calls.
	decls := make(map[types.Object]*ast.FuncDecl)
	var declOrder []types.Object
	var entries []*ast.FuncDecl
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue // test harnesses replay scans deliberately
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj != nil {
				decls[obj] = fd
				declOrder = append(declOrder, obj)
			}
			if ctxEntryNames[fd.Name.Name] || isKernelScanDecl(pass, fd) {
				entries = append(entries, fd)
			}
		}
	}

	// Entry-poller fixpoint: a function polls at entry if it checks
	// cancellation outside any loop, where a call to an already-known
	// entry poller counts as a check. Chains of helpers converge in a
	// few rounds.
	pollers := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		for _, obj := range declOrder {
			if pollers[obj] {
				continue
			}
			if hasEntryPoll(pass, pollers, decls[obj]) {
				pollers[obj] = true
				changed = true
			}
		}
	}
	// Publish entry pollers for other units' pending loops — every unit
	// exports, even ones with no context entry points of their own.
	for _, obj := range declOrder {
		if !pollers[obj] {
			continue
		}
		if fn, ok := obj.(*types.Func); ok {
			pass.ExportFact(decls[obj].Pos(), factEntryPoll, fn.FullName())
		}
	}

	if len(entries) == 0 {
		return
	}

	// Reachability: same-unit static call graph from the entry set.
	reachable := make(map[*ast.FuncDecl]string) // decl -> rooting entry name
	var walk func(fd *ast.FuncDecl, root string)
	walk = func(fd *ast.FuncDecl, root string) {
		if _, seen := reachable[fd]; seen {
			return
		}
		reachable[fd] = root
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
			if id == nil {
				return true
			}
			if obj := pass.Info.Uses[id]; obj != nil {
				if callee, ok := decls[obj]; ok {
					walk(callee, root)
				}
			}
			return true
		})
	}
	for _, fd := range entries {
		walk(fd, fd.Name.Name)
	}

	for fd, root := range reachable {
		checkScanLoops(pass, pollers, fd, root)
	}
}

// runCtxPollModule resolves the pending loops: a loop whose candidate
// polls are cross-package calls is reported only if none of those
// callees is an entry poller anywhere in the module.
func runCtxPollModule(mp *ModulePass) {
	pollers := make(map[string]bool)
	for _, f := range mp.Facts {
		if f.Name == factEntryPoll {
			pollers[f.Value] = true
		}
	}
	for _, f := range mp.Facts {
		if f.Name != factPendingPoll {
			continue
		}
		root, callees, _ := strings.Cut(f.Value, "|")
		resolved := false
		for _, c := range strings.Split(callees, ",") {
			if pollers[c] {
				resolved = true
				break
			}
		}
		if !resolved {
			mp.Reportf(f.Pos,
				"scan loop reachable from %s cannot be cancelled: no search.Poll / ctx.Err / Done-channel check in this loop, an enclosing loop, or at function entry, and none of its cross-package callees (%s) polls at entry (DESIGN.md §10)",
				root, callees)
		}
	}
}

// isKernelScanDecl reports whether fd looks like engine.Kernel.Scan: a
// method named Scan whose first parameter is a context.Context.
func isKernelScanDecl(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Scan" || fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	return isContextType(pass.TypeOf(fd.Type.Params.List[0].Type))
}

// checkScanLoops flags every unsatisfied scan loop in fd. A loop that
// calls into other packages is not condemned locally: its candidate
// callees are exported as a pending fact and judged in the module phase
// against the full entry-poller set.
func checkScanLoops(pass *Pass, pollers map[types.Object]bool, fd *ast.FuncDecl, root string) {
	entryPoll := hasEntryPoll(pass, pollers, fd)
	var visit func(n ast.Node, ancestorPolled bool)
	visit = func(n ast.Node, ancestorPolled bool) {
		switch s := n.(type) {
		case *ast.FuncLit:
			return // closures run on their own goroutine/schedule
		case *ast.ForStmt, *ast.RangeStmt:
			body := loopBody(s)
			polled := containsPoll(pass, pollers, body)
			if isScanLoop(pass, fd, body) &&
				!polled && !ancestorPolled && !entryPoll && !guardedUncancellable(pass, fd, s) {
				if exts := externalCallees(pass, body); len(exts) > 0 {
					pass.ExportFact(n.Pos(), factPendingPoll, root+"|"+strings.Join(exts, ","))
				} else {
					pass.Reportf(n.Pos(),
						"scan loop reachable from %s cannot be cancelled: no search.Poll / ctx.Err / Done-channel check in this loop, an enclosing loop, or at function entry (DESIGN.md §10)",
						root)
				}
			}
			for _, st := range body.List {
				visit(st, ancestorPolled || polled)
			}
			return
		}
		// Generic recursion over child statements.
		children(n, func(c ast.Node) { visit(c, ancestorPolled) })
	}
	for _, st := range fd.Body.List {
		visit(st, false)
	}
}

// externalCallees lists the qualified names of functions from OTHER
// packages called anywhere in body (closures excluded) — the candidate
// entry pollers the module phase resolves.
func externalCallees(pass *Pass, body *ast.BlockStmt) []string {
	var out []string
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := flow.Callee(pass.Info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg() == pass.Pkg {
			return true
		}
		fn, ok := callee.(*types.Func)
		if !ok {
			return true
		}
		if name := fn.FullName(); !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
		return true
	})
	return out
}

// loopBody returns the body block of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch s := n.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// children invokes f for the statement-bearing children of n, without
// descending into expressions (loops inside expressions only occur via
// FuncLits, which are out of scope).
func children(n ast.Node, f func(ast.Node)) {
	switch s := n.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			f(st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			f(s.Init)
		}
		f(s.Body)
		if s.Else != nil {
			f(s.Else)
		}
	case *ast.SwitchStmt:
		f(s.Body)
	case *ast.TypeSwitchStmt:
		f(s.Body)
	case *ast.SelectStmt:
		f(s.Body)
	case *ast.CaseClause:
		for _, st := range s.Body {
			f(st)
		}
	case *ast.CommClause:
		for _, st := range s.Body {
			f(st)
		}
	case *ast.LabeledStmt:
		f(s.Stmt)
	}
}

// isScanLoop reports whether body directly (not through a nested loop
// or closure) does per-item work: offers to a Collector, accumulates
// topk.Results, or recurses into the enclosing function.
func isScanLoop(pass *Pass, fd *ast.FuncDecl, body *ast.BlockStmt) bool {
	found := false
	shallowInspect(body, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Push" && isCollectorType(pass.TypeOf(fun.X)) {
				found = true
			}
			if pass.Info.Uses[fun.Sel] != nil && pass.Info.Uses[fun.Sel] == pass.Info.Defs[fd.Name] {
				found = true // recursive method call (tree descent)
			}
		case *ast.Ident:
			if fun.Name == "append" && appendsResult(pass, call) {
				found = true
			}
			if pass.Info.Uses[fun] != nil && pass.Info.Uses[fun] == pass.Info.Defs[fd.Name] {
				found = true // recursive function call
			}
		}
	})
	return found
}

// shallowInspect walks body but does not descend into nested for/range
// loops or function literals.
func shallowInspect(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// isCollectorType reports whether t is (a pointer to) a named type
// called Collector — the top-k collector contract.
func isCollectorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Collector"
}

// appendsResult reports whether an append call grows a slice of a type
// named Result (topk.Result accumulation, the SearchAbove idiom).
func appendsResult(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	t := pass.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem := sl.Elem()
	if p, ok := elem.(*types.Pointer); ok {
		elem = p.Elem()
	}
	named, ok := elem.(*types.Named)
	return ok && named.Obj().Name() == "Result"
}

// containsPoll reports whether block contains a cancellation check at
// any depth, excluding closures: a call to a function named Poll, a
// ctx.Err() call, a receive from a Done channel (directly or in a
// select), or a call to a same-unit entry poller.
func containsPoll(pass *Pass, pollers map[types.Object]bool, block *ast.BlockStmt) bool {
	if block == nil {
		return false
	}
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPollCall(pass, pollers, e) {
				found = true
			}
		case *ast.UnaryExpr:
			if isDoneReceive(pass, e) {
				found = true
			}
		}
		return true
	})
	return found
}

// isPollCall recognizes search.Poll-style calls, ctx.Err(), and calls
// to same-unit entry pollers (the interprocedural upgrade: one call =
// one guaranteed poll).
func isPollCall(pass *Pass, pollers map[types.Object]bool, call *ast.CallExpr) bool {
	if len(pollers) > 0 {
		if callee := flow.Callee(pass.Info, call); callee != nil && pollers[callee] {
			return true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return id.Name == "Poll"
		}
		return false
	}
	if sel.Sel.Name == "Poll" {
		return true
	}
	if sel.Sel.Name == "Err" && isContextType(pass.TypeOf(sel.X)) {
		return true
	}
	return false
}

// isDoneReceive recognizes `<-done` / `<-ctx.Done()` receives, where
// done is a receive-only struct{} channel (the ctx.Done() shape).
func isDoneReceive(pass *Pass, e *ast.UnaryExpr) bool {
	if e.Op.String() != "<-" {
		return false
	}
	return isDoneChanType(pass.TypeOf(e.X))
}

// isDoneChanType matches <-chan struct{}, the type of ctx.Done().
func isDoneChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() != types.RecvOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// hasEntryPoll reports whether fd polls cancellation outside any loop —
// the per-call poll of recursive tree descents, which covers every loop
// in the function body (each node visit re-polls). Calls to same-unit
// entry pollers count, so pollerhood chains through helpers.
func hasEntryPoll(pass *Pass, pollers map[types.Object]bool, fd *ast.FuncDecl) bool {
	found := false
	stopped := false // a loop was reached: later polls cover nothing
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if found || stopped {
			return
		}
		switch s := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Polls inside loops do not cover the whole call, and a poll
			// AFTER a loop runs too late to cancel it: stop the scan.
			stopped = true
			return
		case *ast.FuncLit:
			return // closures run on their own schedule
		case *ast.IfStmt:
			// Both the condition and the guarded body count: the stride
			// guard idiom wraps the Poll call in an if.
			if exprHasPoll(pass, pollers, s.Cond) {
				found = true
				return
			}
			if s.Init != nil {
				visit(s.Init)
			}
			visit(s.Body)
			if s.Else != nil {
				visit(s.Else)
			}
			return
		case *ast.ExprStmt:
			if exprHasPoll(pass, pollers, s.X) {
				found = true
			}
			return
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				if exprHasPoll(pass, pollers, r) {
					found = true
				}
			}
			return
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if exprHasPoll(pass, pollers, r) {
					found = true
				}
			}
			return
		case *ast.SelectStmt:
			ast.Inspect(s, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && isDoneReceive(pass, u) {
					found = true
				}
				return !found
			})
			return
		}
		children(n, visit)
	}
	for _, st := range fd.Body.List {
		visit(st)
		if found || stopped {
			break
		}
	}
	return found
}

// exprHasPoll reports whether expr contains a poll call or Done receive.
func exprHasPoll(pass *Pass, pollers map[types.Object]bool, expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPollCall(pass, pollers, e) {
				found = true
			}
		case *ast.UnaryExpr:
			if isDoneReceive(pass, e) {
				found = true
			}
		}
		return true
	})
	return found
}

// guardedUncancellable reports whether loop only executes when the
// context is not cancellable: it sits under an if/switch-case whose
// condition requires a Done channel to be nil (`done == nil`), the
// guard-free fast-path idiom of the Naive scan.
func guardedUncancellable(pass *Pass, fd *ast.FuncDecl, loop ast.Node) bool {
	// Collect the conditions of every if/case enclosing the loop.
	var conds []ast.Expr
	var path []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		if n == loop {
			for i, anc := range path {
				switch s := anc.(type) {
				case *ast.IfStmt:
					// Only the then-branch is guarded by the condition.
					if i+1 < len(path) && path[i+1] == s.Body || (i+1 == len(path) && s.Body == loop) {
						conds = append(conds, s.Cond)
					}
				case *ast.CaseClause:
					conds = append(conds, s.List...)
				}
			}
			return false
		}
		path = append(path, n)
		return true
	})
	for _, cond := range conds {
		if condRequiresNilDone(pass, cond) {
			return true
		}
	}
	return false
}

// condRequiresNilDone reports whether cond (possibly an && conjunction)
// includes a `doneChan == nil` test.
func condRequiresNilDone(pass *Pass, cond ast.Expr) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condRequiresNilDone(pass, e.X)
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&":
			return condRequiresNilDone(pass, e.X) || condRequiresNilDone(pass, e.Y)
		case "==":
			if isNilIdent(e.Y) && isDoneChanType(pass.TypeOf(e.X)) {
				return true
			}
			if isNilIdent(e.X) && isDoneChanType(pass.TypeOf(e.Y)) {
				return true
			}
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
