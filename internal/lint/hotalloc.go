package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc guards the per-item cost of loops annotated //fex:hot (the
// innermost scan loops of internal/scan, internal/core, internal/lemp —
// the paths where FEXIPRO's speedups live or die). Inside a marked
// loop's body it flags the operations that allocate or defeat the
// optimizer:
//
//   - append (growth reallocates; accumulate outside or preallocate),
//   - make / new / composite literals (per-item heap traffic),
//   - string concatenation with + (allocates a new string per item),
//   - defer / go statements (defer queues a record per iteration; go
//     spawns per item),
//   - function literals (closure allocation, and captured variables are
//     forced to the heap),
//   - interface boxing: passing a concrete non-pointer value to an
//     interface-typed parameter (fmt-style variadics included) boxes an
//     allocation per call,
//   - span starts (obs.NewRoot / StartSpan / StartChild): a span is
//     per-QUERY instrumentation — starting one per scanned item
//     allocates and locks on the hottest path; attach spans around the
//     loop, never inside it (DESIGN.md §13).
//
// The directive goes on the line immediately above the for/range (or at
// the end of the same line). Nested function literals are flagged as a
// whole and not descended into — they already broke the loop's
// allocation budget.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no allocations, boxing, or closures inside //fex:hot loops",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		hotLines := make(map[int]bool)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == "fex:hot" || strings.HasPrefix(text, "fex:hot ") {
					hotLines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(hotLines) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			body := loopBody(n)
			if body == nil {
				return true
			}
			line := pass.Fset.Position(n.Pos()).Line
			if !hotLines[line] && !hotLines[line-1] {
				return true
			}
			checkHotBody(pass, body)
			return true // nested marked loops get their own check
		})
	}
}

func checkHotBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(s.Pos(), "function literal inside a //fex:hot loop allocates a closure per iteration (and heap-escapes its captures)")
			return false
		case *ast.DeferStmt:
			pass.Reportf(s.Pos(), "defer inside a //fex:hot loop queues a defer record per iteration")
			return false
		case *ast.GoStmt:
			pass.Reportf(s.Pos(), "go statement inside a //fex:hot loop spawns a goroutine per iteration")
			return false
		case *ast.CompositeLit:
			pass.Reportf(s.Pos(), "composite literal inside a //fex:hot loop allocates per iteration; hoist it or write into preallocated scratch")
			return false
		case *ast.BinaryExpr:
			if s.Op == token.ADD && isStringExpr(pass, s.X) {
				pass.Reportf(s.OpPos, "string concatenation inside a //fex:hot loop allocates per iteration")
			}
		case *ast.CallExpr:
			checkHotCall(pass, s)
		}
		return true
	})
}

// spanStartFuncs are the span-creating entry points of internal/obs;
// calling any of them per scanned item turns tracing's per-query cost
// into a per-item one.
var spanStartFuncs = map[string]bool{
	"NewRoot": true, "StartSpan": true, "StartChild": true,
}

// isObsSpanStart reports whether the call creates an obs span: either
// a package-level obs.NewRoot/obs.StartSpan or the StartChild method
// on *obs.Span.
func isObsSpanStart(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !spanStartFuncs[sel.Sel.Name] {
		return "", false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
		return "", false
	}
	return sel.Sel.Name, true
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	if name, ok := isObsSpanStart(pass, call); ok {
		pass.Reportf(call.Pos(), "obs.%s inside a //fex:hot loop starts a span per scanned item; spans are per-query — attach them around the loop (DESIGN.md §13)", name)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "append":
			if pass.Info.Uses[id] == nil || pass.Info.Uses[id].Parent() == types.Universe {
				pass.Reportf(call.Pos(), "append inside a //fex:hot loop reallocates on growth; preallocate capacity outside the loop or use a fixed-size collector")
				return
			}
		case "make", "new":
			if pass.Info.Uses[id] == nil || pass.Info.Uses[id].Parent() == types.Universe {
				pass.Reportf(call.Pos(), "%s inside a //fex:hot loop allocates per iteration; hoist the allocation", id.Name)
				return
			}
		}
	}
	// Interface boxing: a concrete (non-interface, non-pointer-sized-
	// elidable) argument passed to an interface-typed parameter.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue // interface-to-interface, no new box
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into an interface inside a //fex:hot loop (one allocation per iteration)", at.String())
	}
}

// callSignature resolves the static signature of a call, or nil.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
