package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGSeed protects benchmark and test reproducibility (EXPERIMENTS.md):
// every randomized experiment must run from an explicitly seeded,
// locally owned *rand.Rand. It flags
//
//  1. calls to math/rand (and math/rand/v2) package-level functions that
//     draw from the shared global source — anywhere, since the global
//     source is both non-reproducible and a contention point on the
//     serving hot path; and
//  2. rand.NewSource / NewPCG / NewChaCha8 seeded with a non-constant
//     expression inside _test.go files, where a time-derived seed makes
//     failures unreproducible.
var RNGSeed = &Analyzer{
	Name: "rngseed",
	Doc:  "flags math/rand global-source use and non-deterministic seeds in tests",
	Run:  runRNGSeed,
}

// randConstructors are the math/rand functions that do NOT touch the
// global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// randSeedFuncs take a seed whose determinism we check in tests.
var randSeedFuncs = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runRNGSeed(pass *Pass) {
	for _, file := range pass.Files {
		inTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			name := sel.Sel.Name
			if !randConstructors[name] {
				pass.Reportf(call.Pos(),
					"%s.%s draws from the shared global source; use a locally seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
					pkgIdent.Name, name)
				return true
			}
			if inTest && randSeedFuncs[name] && len(call.Args) > 0 {
				allConst := true
				for _, arg := range call.Args {
					if tv, ok := pass.Info.Types[arg]; !ok || tv.Value == nil {
						allConst = false
					}
				}
				if !allConst {
					pass.Reportf(call.Pos(),
						"%s.%s seeded with a non-constant expression in a test; use a fixed seed so failures reproduce",
						pkgIdent.Name, name)
				}
			}
			return true
		})
	}
}
