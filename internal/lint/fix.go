package lint

import (
	"fmt"
	"os"
	"sort"
)

// ownedEdit is a TextEdit plus the analyzer that suggested it, so
// conflict errors can name both sides.
type ownedEdit struct {
	TextEdit
	analyzer string
}

// ApplyFixes applies the first suggested fix of every diagnostic that
// carries one and rewrites the affected files in place. Edits are
// validated against the file length, sorted, and applied back-to-front
// so earlier offsets stay valid. Byte-identical edits (two analyzers
// proposing the same replacement for the same span) are deduplicated
// and applied once; edits that overlap with DIFFERENT replacements are
// a genuine conflict and abort with an error naming both analyzers
// before anything is written. Returns the files rewritten, sorted. Fix
// application is idempotent by construction: a fixed site no longer
// produces the diagnostic, so a second -fix pass sees no edits
// (`make lint-fix-check` asserts exactly this).
func ApplyFixes(diags []Diagnostic) ([]string, error) {
	perFile := make(map[string][]ownedEdit)
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		for _, e := range d.Fixes[0].Edits {
			perFile[e.File] = append(perFile[e.File], ownedEdit{TextEdit: e, analyzer: d.Analyzer})
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)

	// Validate everything before writing anything, so a bad edit in one
	// file cannot leave the tree half-rewritten.
	contents := make(map[string][]byte, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("lint: fix: %w", err)
		}
		edits := perFile[f]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Offset != edits[j].Offset {
				return edits[i].Offset < edits[j].Offset
			}
			if edits[i].End != edits[j].End {
				return edits[i].End < edits[j].End
			}
			return edits[i].NewText < edits[j].NewText
		})
		deduped := edits[:0]
		for _, e := range edits {
			if e.Offset < 0 || e.End < e.Offset || e.End > len(data) {
				return nil, fmt.Errorf("lint: fix: edit [%d,%d) out of range for %s (%d bytes)",
					e.Offset, e.End, f, len(data))
			}
			if n := len(deduped); n > 0 {
				prev := deduped[n-1]
				if e.Offset == prev.Offset && e.End == prev.End && e.NewText == prev.NewText {
					continue // identical suggestion from another diagnostic
				}
				if e.Offset < prev.End || (e.Offset == prev.Offset && e.End == prev.End) {
					return nil, fmt.Errorf(
						"lint: fix: conflicting fixes in %s: %s suggests replacing [%d,%d) with %q but %s suggests replacing [%d,%d) with %q — fix one site by hand, then re-run -fix",
						f, prev.analyzer, prev.Offset, prev.End, prev.NewText,
						e.analyzer, e.Offset, e.End, e.NewText)
				}
			}
			deduped = append(deduped, e)
		}
		out := make([]byte, 0, len(data))
		prev := 0
		for _, e := range deduped {
			out = append(out, data[prev:e.Offset]...)
			out = append(out, e.NewText...)
			prev = e.End
		}
		out = append(out, data[prev:]...)
		contents[f] = out
		perFile[f] = deduped
	}

	var changed []string
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			return nil, fmt.Errorf("lint: fix: %w", err)
		}
		if err := os.WriteFile(f, contents[f], info.Mode().Perm()); err != nil {
			return nil, fmt.Errorf("lint: fix: %w", err)
		}
		changed = append(changed, f)
	}
	return changed, nil
}
