package lint

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies the first suggested fix of every diagnostic that
// carries one and rewrites the affected files in place. Edits are
// validated against the file length, sorted, and applied back-to-front
// so earlier offsets stay valid; overlapping edits (two fixes touching
// the same bytes) abort with an error before anything is written —
// apply, re-lint, and fix again instead. Returns the files rewritten,
// sorted. Fix application is idempotent by construction: a fixed site
// no longer produces the diagnostic, so a second -fix pass sees no
// edits (`make lint-fix-check` asserts exactly this).
func ApplyFixes(diags []Diagnostic) ([]string, error) {
	perFile := make(map[string][]TextEdit)
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		for _, e := range d.Fixes[0].Edits {
			perFile[e.File] = append(perFile[e.File], e)
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)

	// Validate everything before writing anything, so a bad edit in one
	// file cannot leave the tree half-rewritten.
	contents := make(map[string][]byte, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("lint: fix: %w", err)
		}
		edits := perFile[f]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Offset != edits[j].Offset {
				return edits[i].Offset < edits[j].Offset
			}
			return edits[i].End < edits[j].End
		})
		for i, e := range edits {
			if e.Offset < 0 || e.End < e.Offset || e.End > len(data) {
				return nil, fmt.Errorf("lint: fix: edit [%d,%d) out of range for %s (%d bytes)",
					e.Offset, e.End, f, len(data))
			}
			if i > 0 && e.Offset < edits[i-1].End {
				return nil, fmt.Errorf("lint: fix: overlapping edits at %s:%d and %s:%d — apply -fix again after the first pass",
					f, edits[i-1].Offset, f, e.Offset)
			}
		}
		out := make([]byte, 0, len(data))
		prev := 0
		for _, e := range edits {
			out = append(out, data[prev:e.Offset]...)
			out = append(out, e.NewText...)
			prev = e.End
		}
		out = append(out, data[prev:]...)
		contents[f] = out
		perFile[f] = edits
	}

	var changed []string
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			return nil, fmt.Errorf("lint: fix: %w", err)
		}
		if err := os.WriteFile(f, contents[f], info.Mode().Perm()); err != nil {
			return nil, fmt.Errorf("lint: fix: %w", err)
		}
		changed = append(changed, f)
	}
	return changed, nil
}
