package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"sort"
	"strings"

	"fexipro/internal/lint/flow"
)

// LockOrder builds a whole-program lock-order graph and reports
// deadlock candidates (DESIGN.md §12). Every mutex acquisition that
// happens while another mutex is held — directly (nested Lock calls in
// one function) or transitively (a call made under a lock reaches a
// function that locks something else, resolved through the static call
// graph and joined across packages via Facts) — is an ordered edge
// A → B. The analyzer then checks three contracts over the edge set:
//
//   - every edge must be declared with a `//fex:lockorder A < B`
//     annotation (lock names are the canonical pkg.Type.field form, so
//     the hierarchy is reviewable in one grep);
//   - no edge may contradict the declared hierarchy (B acquired under A
//     when A < B is transitively declared the other way);
//   - the combined observed+declared graph must be acyclic — a cycle is
//     a deadlock candidate, reported with the full acquisition chain
//     (e.g. server.Server.mu → snap.WAL.mu → server.Server.mu) and the
//     call path that produces each edge;
//   - a lock re-acquired while already held (A → A) self-deadlocks:
//     sync mutexes are not reentrant.
//
// Function literals are analyzed as their own acquisition contexts
// (they run on their own schedule — usually a goroutine — so their
// nesting still contributes edges), but calls inside them do not extend
// the enclosing function's call-graph summary. Test files are skipped:
// race harnesses take locks in deliberately hostile orders.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "whole-program lock-order graph: undocumented nesting, hierarchy contradictions, deadlock cycles",
	Run:       runLockOrderUnit,
	RunModule: runLockOrderModule,
}

// lockOrderSep joins the fields of a lockorder fact value.
const lockOrderSep = "|"

var lockOrderDirectiveRx = "//fex:lockorder"

func runLockOrderUnit(pass *Pass) {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		exportLockOrderDecls(pass, file)
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			ctx := funcFullName(obj)
			if ctx == "" {
				continue
			}
			emitLockOrderFacts(pass, ctx, fd.Body, true)
			var lits []*ast.FuncLit
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					lits = append(lits, fl)
				}
				return true
			})
			for i, fl := range lits {
				emitLockOrderFacts(pass, fmt.Sprintf("%s$%d", ctx, i+1), fl.Body, false)
			}
		}
	}
}

// exportLockOrderDecls parses `//fex:lockorder A < B` annotations into
// "declare" facts and flags malformed directives.
func exportLockOrderDecls(pass *Pass, file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if after, ok := strings.CutPrefix(text, "/*"); ok {
				text = "//" + strings.TrimSpace(strings.TrimSuffix(after, "*/"))
			}
			rest, ok := strings.CutPrefix(text, lockOrderDirectiveRx)
			if !ok {
				continue
			}
			rest, _, _ = strings.Cut(rest, "//") // trailing rationale comment
			a, b, found := strings.Cut(rest, "<")
			a, b = strings.TrimSpace(a), strings.TrimSpace(b)
			if !found || a == "" || b == "" || strings.ContainsAny(a+b, " <") {
				pass.Reportf(c.Pos(), "malformed //fex:lockorder directive %q — want //fex:lockorder pkg.Type.mu < pkg.Type.mu", strings.TrimSpace(c.Text))
				continue
			}
			pass.ExportFact(c.Pos(), "declare", a+lockOrderSep+b)
		}
	}
}

// emitLockOrderFacts exports the acquisition facts for one body: "acq"
// (ctx directly acquires lock), "edge" (nested acquisition under a held
// lock), "call" (static call made while a lock is held), and — for
// named declarations only — "fcall" (ctx statically calls callee),
// which lets the module phase propagate acquisitions up the call graph.
func emitLockOrderFacts(pass *Pass, ctx string, body *ast.BlockStmt, isDecl bool) {
	events := collectLockEvents(pass, body)
	regions, _, unmatched := pairLockRegions(events, body.End())
	// An unmatched Lock is a cross-function handoff: the lock stays held
	// past everything after it in this body, so treat it as a region
	// running to the body end for ordering purposes.
	for _, ev := range unmatched {
		regions = append(regions, lockRegion{path: ev.path, expr: ev.expr, read: ev.name == "RLock", pos: ev.pos, end: body.End()})
	}

	names := make([]string, len(regions))
	for i, r := range regions {
		names[i] = globalLockName(pass, r.expr)
		if names[i] != "" {
			pass.ExportFact(r.pos, "acq", ctx+lockOrderSep+names[i])
		}
	}
	for i, outer := range regions {
		if names[i] == "" {
			continue
		}
		for j, inner := range regions {
			if i == j || names[j] == "" || !outer.covers(inner.pos) {
				continue
			}
			pass.ExportFact(inner.pos, "edge", names[i]+lockOrderSep+names[j]+lockOrderSep+ctx)
		}
	}

	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := flow.Callee(pass.Info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() == "sync" {
			return true
		}
		cname := funcFullName(callee)
		if cname == "" {
			return true
		}
		if isDecl {
			if v := ctx + lockOrderSep + cname; !seen["f"+v] {
				seen["f"+v] = true
				pass.ExportFact(call.Pos(), "fcall", v)
			}
		}
		for i, r := range regions {
			if names[i] == "" || !r.covers(call.Pos()) {
				continue
			}
			if v := names[i] + lockOrderSep + cname + lockOrderSep + ctx; !seen["c"+v] {
				seen["c"+v] = true
				pass.ExportFact(call.Pos(), "call", v)
			}
		}
		return true
	})
}

// loEdge is one observed lock-order edge with its provenance.
type loEdge struct {
	from, to string
	pos      Fact // representative exporting fact (position + unit)
	via      string
}

func runLockOrderModule(mp *ModulePass) {
	direct := make(map[string]map[string]bool) // fn → locks acquired directly
	calls := make(map[string][]string)         // fn → static callees
	callSeen := make(map[string]bool)
	var heldCalls []Fact // "call" facts, in deterministic order
	var declares []Fact
	edges := make(map[[2]string]loEdge)
	addEdge := func(e loEdge) {
		k := [2]string{e.from, e.to}
		if _, ok := edges[k]; !ok {
			edges[k] = e
		}
	}

	for _, f := range mp.Facts {
		parts := strings.Split(f.Value, lockOrderSep)
		switch f.Name {
		case "acq":
			if direct[parts[0]] == nil {
				direct[parts[0]] = make(map[string]bool)
			}
			direct[parts[0]][parts[1]] = true
		case "edge":
			addEdge(loEdge{from: parts[0], to: parts[1], pos: f, via: prettyFn(parts[2])})
		case "call":
			heldCalls = append(heldCalls, f)
		case "fcall":
			if !callSeen[f.Value] {
				callSeen[f.Value] = true
				calls[parts[0]] = append(calls[parts[0]], parts[1])
			}
		case "declare":
			declares = append(declares, f)
		}
	}

	// Fixpoint: transAcq[fn] = locks fn acquires directly or through any
	// chain of static calls.
	transAcq := make(map[string]map[string]bool)
	fns := make(map[string]bool)
	for fn := range direct {
		fns[fn] = true
	}
	for fn := range calls {
		fns[fn] = true
	}
	order := sortedKeys(fns)
	for _, fn := range order {
		transAcq[fn] = make(map[string]bool)
		for l := range direct[fn] {
			transAcq[fn][l] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			for _, callee := range calls[fn] {
				for l := range transAcq[callee] {
					if !transAcq[fn][l] {
						transAcq[fn][l] = true
						changed = true
					}
				}
			}
		}
	}

	// Expand held calls into edges: a call under lock A reaching a
	// function that (transitively) acquires B is an A → B edge.
	for _, f := range heldCalls {
		parts := strings.Split(f.Value, lockOrderSep)
		held, callee, ctx := parts[0], parts[1], parts[2]
		for _, lock := range sortedKeys(transAcq[callee]) {
			chain := acqPath(calls, direct, callee, lock)
			via := prettyFn(ctx)
			for _, fn := range chain {
				via += " → " + prettyFn(fn)
			}
			addEdge(loEdge{from: held, to: lock, pos: f, via: via})
		}
	}

	knownLocks := make(map[string]bool)
	for _, fn := range order {
		for l := range direct[fn] {
			knownLocks[l] = true
		}
	}

	// Declared hierarchy, with transitive reachability for the
	// documented / contradiction checks.
	declared := make(map[[2]string]Fact)
	declAdj := make(map[string][]string)
	for _, f := range declares {
		a, b, _ := strings.Cut(f.Value, lockOrderSep)
		if a == b {
			mp.Reportf(f.Pos, "//fex:lockorder declares %s < %s — a lock cannot precede itself", a, b)
			continue
		}
		for _, l := range []string{a, b} {
			if !knownLocks[l] {
				mp.Reportf(f.Pos, "//fex:lockorder references %s, which is never acquired anywhere in the module — stale or misspelled declaration", l)
			}
		}
		if _, ok := declared[[2]string{a, b}]; !ok {
			declared[[2]string{a, b}] = f
			declAdj[a] = append(declAdj[a], b)
		}
	}
	declReach := func(a, b string) bool { return graphReaches(declAdj, a, b) }

	var edgeKeys [][2]string
	for k := range edges {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Slice(edgeKeys, func(i, j int) bool {
		if edgeKeys[i][0] != edgeKeys[j][0] {
			return edgeKeys[i][0] < edgeKeys[j][0]
		}
		return edgeKeys[i][1] < edgeKeys[j][1]
	})

	// Classify edges; contradictions and self-loops leave the cycle
	// graph so each defect is reported exactly once.
	adj := make(map[string][]string)
	edgeAt := make(map[[2]string]loEdge)
	var undocumented [][2]string
	for _, k := range edgeKeys {
		e := edges[k]
		switch {
		case e.from == e.to:
			mp.Reportf(e.pos.Pos, "%s re-acquired while already held (%s) — sync mutexes are not reentrant; this self-deadlocks", e.from, e.via)
		case declReach(e.to, e.from):
			mp.Reportf(e.pos.Pos, "%s acquired while holding %s (%s) contradicts the declared hierarchy //fex:lockorder %s < %s", e.to, e.from, e.via, e.to, e.from)
		default:
			adj[e.from] = append(adj[e.from], e.to)
			edgeAt[k] = e
			if !declReach(e.from, e.to) {
				undocumented = append(undocumented, k)
			}
		}
	}
	for k, f := range declared {
		if _, ok := edgeAt[k]; !ok {
			adj[k[0]] = append(adj[k[0]], k[1])
		}
		_ = f
	}

	// Cycles: each SCC with more than one lock is a deadlock candidate.
	sccs := stronglyConnected(adj)
	inCycle := make(map[string]int) // lock → scc id (only multi-node sccs)
	for id, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		for _, l := range scc {
			inCycle[l] = id + 1
		}
		reportLockCycle(mp, scc, adj, edgeAt, declared)
	}

	for _, k := range undocumented {
		e := edgeAt[k]
		if inCycle[e.from] != 0 && inCycle[e.from] == inCycle[e.to] {
			continue // the cycle diagnostic owns this edge
		}
		mp.Reportf(e.pos.Pos, "%s acquired while holding %s (%s) — undocumented lock order; declare `//fex:lockorder %s < %s` if this hierarchy is intentional", e.to, e.from, e.via, e.from, e.to)
	}
}

// reportLockCycle reports one deadlock-candidate cycle for an SCC: the
// shortest cycle through the lexically-first lock, with each edge's
// source position and call chain in the message.
func reportLockCycle(mp *ModulePass, scc []string, adj map[string][]string, edgeAt map[[2]string]loEdge, declared map[[2]string]Fact) {
	sort.Strings(scc)
	inSCC := make(map[string]bool, len(scc))
	for _, l := range scc {
		inSCC[l] = true
	}
	start := scc[0]
	// BFS from start back to start, staying inside the SCC.
	type step struct {
		lock string
		prev int
	}
	steps := []step{{lock: start, prev: -1}}
	seen := map[string]bool{}
	cycleEnd := -1
	for i := 0; i < len(steps) && cycleEnd < 0; i++ {
		for _, next := range adj[steps[i].lock] {
			if next == start && i > 0 {
				steps = append(steps, step{lock: next, prev: i})
				cycleEnd = len(steps) - 1
				break
			}
			if inSCC[next] && !seen[next] {
				seen[next] = true
				steps = append(steps, step{lock: next, prev: i})
			}
		}
	}
	if cycleEnd < 0 {
		return
	}
	var chain []string
	for i := cycleEnd; i >= 0; i = steps[i].prev {
		chain = append([]string{steps[i].lock}, chain...)
	}
	var details []string
	var at *Fact
	for i := 0; i+1 < len(chain); i++ {
		k := [2]string{chain[i], chain[i+1]}
		if e, ok := edgeAt[k]; ok {
			details = append(details, fmt.Sprintf("%s → %s at %s:%d via %s", e.from, e.to, filepath.Base(e.pos.Pos.Filename), e.pos.Pos.Line, e.via))
			if at == nil {
				f := e.pos
				at = &f
			}
		} else if f, ok := declared[k]; ok {
			details = append(details, fmt.Sprintf("%s → %s declared at %s:%d", k[0], k[1], filepath.Base(f.Pos.Filename), f.Pos.Line))
			if at == nil {
				at = &f
			}
		}
	}
	if at == nil {
		return
	}
	mp.Reportf(at.Pos, "lock-order cycle (deadlock candidate): %s [%s] — goroutines taking these locks in opposite orders can deadlock each other",
		strings.Join(chain, " → "), strings.Join(details, "; "))
}

// acqPath returns the shortest static-call chain from fn to a function
// that directly acquires lock (inclusive of fn itself when it does).
func acqPath(calls map[string][]string, direct map[string]map[string]bool, fn, lock string) []string {
	type node struct {
		fn   string
		prev int
	}
	nodes := []node{{fn: fn, prev: -1}}
	seen := map[string]bool{fn: true}
	for i := 0; i < len(nodes); i++ {
		if direct[nodes[i].fn][lock] {
			var path []string
			for j := i; j >= 0; j = nodes[j].prev {
				path = append([]string{nodes[j].fn}, path...)
			}
			return path
		}
		for _, c := range calls[nodes[i].fn] {
			if !seen[c] {
				seen[c] = true
				nodes = append(nodes, node{fn: c, prev: i})
			}
		}
	}
	return nil
}

// graphReaches reports whether b is reachable from a in adj.
func graphReaches(adj map[string][]string, a, b string) bool {
	stack := []string{a}
	seen := map[string]bool{a: true}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if m == b {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// stronglyConnected returns the strongly connected components of adj
// (Tarjan, iterative), in deterministic order.
func stronglyConnected(adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var nodes []string
	nodeSet := make(map[string]bool)
	for n, ms := range adj {
		nodeSet[n] = true
		for _, m := range ms {
			nodeSet[m] = true
		}
	}
	nodes = sortedKeys(nodeSet)

	type frame struct {
		n  string
		ci int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		frames := []frame{{n: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ci < len(adj[f.n]) {
				m := adj[f.n][f.ci]
				f.ci++
				if _, ok := index[m]; !ok {
					index[m], low[m] = next, next
					next++
					stack = append(stack, m)
					onStack[m] = true
					frames = append(frames, frame{n: m})
				} else if onStack[m] && index[m] < low[f.n] {
					low[f.n] = index[m]
				}
				continue
			}
			if low[f.n] == index[f.n] {
				var scc []string
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					scc = append(scc, m)
					if m == f.n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.n] < low[p.n] {
					low[p.n] = low[f.n]
				}
			}
		}
	}
	return sccs
}

// prettyFn compacts a types.Func.FullName for messages:
// "(*fexipro/internal/snap.WAL).Append" → "snap.WAL.Append",
// "fexipro/internal/load.Run" → "load.Run".
func prettyFn(full string) string {
	if strings.HasPrefix(full, "(") {
		end := strings.Index(full, ")")
		if end < 0 {
			return full
		}
		recv := strings.TrimPrefix(full[1:end], "*")
		if i := strings.LastIndex(recv, "/"); i >= 0 {
			recv = recv[i+1:]
		}
		return recv + "." + strings.TrimPrefix(full[end+1:], ".")
	}
	if i := strings.LastIndex(full, "/"); i >= 0 {
		return full[i+1:]
	}
	return full
}

// sortedKeys returns the keys of a string-keyed set in sorted order.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
