package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fexipro/internal/lint/flow"
)

// GoroutineLife requires every `go` statement to carry a statically
// provable termination or join edge (DESIGN.md §12). A goroutine body
// is accepted when any of these holds:
//
//   - join: a top-level `defer wg.Done()` on a sync.WaitGroup — the
//     launcher's Wait is the join edge;
//   - cancel: every infinite (`for {}`) loop contains a select arm
//     receiving from ctx.Done() whose body returns or breaks;
//   - drain: every `for range ch` over a channel either ranges over a
//     channel the launching function closes, or the loop body has an
//     explicit break/return exit arm (the signal-loop idiom);
//   - bounded: the body has no infinite loops or channel ranges at all,
//     so it runs to completion on its own.
//
// Named callees are judged by the same rules against their own bodies;
// the verdicts travel as Facts, so `go pkg.Worker()` is checked across
// package boundaries in the module phase. A callee whose body is
// outside the module (stdlib, interface method, function value) cannot
// be proven and is flagged — wrap it in a closure with an explicit join
// edge.
//
// Two launcher-side hazards are flagged alongside: wg.Add inside the
// launched body (races with Wait), and an early return between wg.Add
// and the `go` launch with no compensating Done — the classic
// leak-on-error path that makes Wait hang.
//
// Test files are skipped (test goroutines are joined by the test
// runner's scope or deliberately hostile).
var GoroutineLife = &Analyzer{
	Name:      "goroutinelife",
	Doc:       "every go statement needs a provable termination/join edge (WaitGroup, ctx.Done, channel close, or bounded body)",
	Run:       runGoroutineLifeUnit,
	RunModule: runGoroutineLifeModule,
}

const glOK = "ok"

func runGoroutineLifeUnit(pass *Pass) {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Export this body's verdict so cross-package go sites can
			// join against it in the module phase.
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				if fn := funcFullName(obj); fn != "" {
					pass.ExportFact(fd.Pos(), "body", fn+lockOrderSep+bodyVerdict(pass, fd.Body, closedChans(pass, fd.Body)))
				}
			}
			glWalkBody(pass, fd.Body)
		}
	}
}

// glWalkBody analyzes one function body (a declaration or a literal):
// it judges every `go` statement launched at this level, checks the
// wg.Add/launch ordering, and recurses into nested function literals as
// their own contexts.
func glWalkBody(pass *Pass, body *ast.BlockStmt) {
	closed := closedChans(pass, body)

	type glEvent struct {
		kind string // add, done, go, ret
		pos  token.Pos
	}
	var events []glEvent
	var lits []*ast.FuncLit

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, s)
			return false
		case *ast.GoStmt:
			events = append(events, glEvent{kind: "go", pos: s.Pos()})
			judgeGoStmt(pass, s, closed)
			// The launched literal is its own context for nested go
			// statements; skip it here and recurse below.
			if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
				lits = append(lits, fl)
				return false
			}
		case *ast.ReturnStmt:
			events = append(events, glEvent{kind: "ret", pos: s.Pos()})
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && isWaitGroupType(pass.TypeOf(sel.X)) {
				switch sel.Sel.Name {
				case "Add":
					events = append(events, glEvent{kind: "add", pos: s.Pos()})
				case "Done":
					events = append(events, glEvent{kind: "done", pos: s.Pos()})
				}
			}
		}
		return true
	})

	// Leak-on-error: a return between wg.Add and the goroutine launch
	// leaves the Add uncompensated, so Wait hangs forever.
	for i, ev := range events {
		if ev.kind != "add" {
			continue
		}
	scan:
		for _, later := range events[i+1:] {
			switch later.kind {
			case "go", "done":
				break scan // launched, or the error path compensates
			case "ret":
				pass.Reportf(later.pos, "return between wg.Add and the goroutine launch leaks the Add — Wait will hang; call Done on this path or move Add after the early returns")
				break scan
			}
		}
	}

	for _, fl := range lits {
		glWalkBody(pass, fl.Body)
	}
}

// judgeGoStmt checks one go statement's termination/join edge.
func judgeGoStmt(pass *Pass, g *ast.GoStmt, closed map[string]bool) {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		if v := bodyVerdict(pass, fun.Body, closed); v != glOK {
			pass.Reportf(g.Pos(), "goroutine has no provable termination or join edge: %s — leak candidate; add a WaitGroup/ctx.Done/channel-close edge or //lint:ignore goroutinelife with the lifetime rationale", v)
		}
		flagAddInsideBody(pass, fun.Body)
	default:
		callee := flow.Callee(pass.Info, g.Call)
		if callee == nil {
			pass.Reportf(g.Pos(), "go statement calls through a function value — termination cannot be proven statically; wrap it in a closure with an explicit join edge")
			return
		}
		fn := funcFullName(callee)
		if fn == "" {
			pass.Reportf(g.Pos(), "go statement launches an unresolvable callee — termination cannot be proven statically")
			return
		}
		pass.ExportFact(g.Pos(), "gosite", fn)
	}
}

// flagAddInsideBody reports wg.Add calls inside a launched goroutine
// body: if the scheduler delays the goroutine past the launcher's Wait,
// the Add is never observed and the wait group is corrupted.
func flagAddInsideBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" && isWaitGroupType(pass.TypeOf(sel.X)) {
			pass.Reportf(call.Pos(), "wg.Add inside the launched goroutine races with the launcher's Wait — Add before the go statement")
		}
		return true
	})
}

// bodyVerdict classifies a goroutine body (or a named callee's body):
// glOK when a termination/join edge is provable, otherwise the reason.
func bodyVerdict(pass *Pass, body *ast.BlockStmt, closed map[string]bool) string {
	for _, st := range body.List {
		ds, ok := st.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if sel, ok := ds.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isWaitGroupType(pass.TypeOf(sel.X)) {
			return glOK // joined via WaitGroup
		}
	}
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if s.Cond == nil && !hasCtxDoneExit(pass, s.Body) {
				reason = "infinite for loop without a ctx.Done select arm that returns or breaks"
			}
		case *ast.RangeStmt:
			t := pass.TypeOf(s.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				if !closed[flattenChain(s.X)] && !hasExitStmt(s.Body) {
					reason = "range over a channel the launcher never closes, with no break/return exit in the loop"
				}
			}
		}
		return true
	})
	if reason != "" {
		return reason
	}
	return glOK
}

// hasCtxDoneExit reports whether body contains a select arm receiving
// from a context.Context's Done() whose arm body returns or breaks.
func hasCtxDoneExit(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		cc, ok := n.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			return true
		}
		recv := commRecvExpr(cc.Comm)
		if recv == nil {
			return true
		}
		call, ok := recv.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || !isContextType(pass.TypeOf(sel.X)) {
			return true
		}
		for _, st := range cc.Body {
			if stmtExits(st) {
				found = true
				break
			}
		}
		return true
	})
	return found
}

// commRecvExpr extracts the received-from expression of a select comm
// clause statement, or nil.
func commRecvExpr(comm ast.Stmt) ast.Expr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

// stmtExits reports whether st (or anything inside it, excluding
// nested function literals) returns or breaks.
func stmtExits(st ast.Stmt) bool {
	exits := false
	ast.Inspect(st, func(n ast.Node) bool {
		if exits {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.BranchStmt:
			exits = true
		}
		return true
	})
	return exits
}

// hasExitStmt reports whether a loop body contains a break or return.
func hasExitStmt(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				found = true
			}
		}
		return true
	})
	return found
}

// closedChans collects the flattened names of channels that body closes
// (including inside deferred literals — `defer close(ch)` and
// `defer func(){ close(ch) }()` both count as the launcher's close).
func closedChans(pass *Pass, body *ast.BlockStmt) map[string]bool {
	closed := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				if name := flattenChain(call.Args[0]); name != "" {
					closed[name] = true
				}
			}
		}
		return true
	})
	return closed
}

func runGoroutineLifeModule(mp *ModulePass) {
	verdicts := make(map[string]string)
	for _, f := range mp.Facts {
		if f.Name != "body" {
			continue
		}
		fn, v, _ := strings.Cut(f.Value, lockOrderSep)
		verdicts[fn] = v
	}
	for _, f := range mp.Facts {
		if f.Name != "gosite" {
			continue
		}
		v, known := verdicts[f.Value]
		switch {
		case !known:
			mp.Reportf(f.Pos, "go %s: callee body is outside the module (stdlib, interface, or unexported elsewhere) — termination cannot be proven; wrap the call in a closure with an explicit join edge", prettyFn(f.Value))
		case v != glOK:
			mp.Reportf(f.Pos, "go %s: %s — leak candidate; add a join edge in the callee or at the launch site", prettyFn(f.Value), v)
		}
	}
}
