package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// conc.go holds the concurrency-model helpers shared by the lockhold,
// lockorder, goroutinelife, and guardedby analyzers: classifying sync
// primitives, flattening receiver chains, pairing Lock/Unlock events
// into lexical held regions, and resolving a mutex expression to its
// canonical whole-program name.

// lockEvent is one Lock/RLock/Unlock/RUnlock call observed in a
// function body, in source order.
type lockEvent struct {
	path    string   // flattened receiver chain, e.g. "s.mu"
	name    string   // Lock, RLock, Unlock, RUnlock
	expr    ast.Expr // the mutex expression (receiver of the call)
	pos     token.Pos
	selPos  token.Pos // position of the method name ident
	defered bool
}

// lockRegion is one lexical held span: from a Lock/RLock to its
// matching release (or to the body end when the release is deferred).
type lockRegion struct {
	path   string   // flattened receiver chain, e.g. "s.mu"
	expr   ast.Expr // the mutex expression at the Lock site
	read   bool     // RLock
	pos    token.Pos
	end    token.Pos
	defers bool // released via defer (region runs to body end)
}

// covers reports whether p falls strictly inside the held span.
func (r lockRegion) covers(p token.Pos) bool {
	return r.pos < p && p < r.end
}

// collectLockEvents walks body for mutex Lock/RLock/Unlock/RUnlock
// calls in source order. Function literals are skipped — they run on
// their own schedule, not inside the enclosing held region.
func collectLockEvents(pass *Pass, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var call *ast.CallExpr
		defered := false
		switch s := n.(type) {
		case *ast.DeferStmt:
			call = s.Call
			defered = true
		case *ast.CallExpr:
			call = s
		default:
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return true
		}
		if !isMutexType(pass.TypeOf(sel.X)) {
			return true
		}
		path := flattenChain(sel.X)
		if path == "" {
			return true
		}
		events = append(events, lockEvent{
			path: path, name: sel.Sel.Name, expr: sel.X,
			pos: call.Pos(), selPos: sel.Sel.Pos(), defered: defered,
		})
		return !defered // a DeferStmt's call was handled; skip re-visiting it
	})
	return events
}

// pairLockRegions matches each Lock/RLock event to its positionally
// next same-path release, producing the lexical held regions plus the
// two shapes lockhold diagnoses: defer-Lock typos and unmatched locks.
func pairLockRegions(events []lockEvent, bodyEnd token.Pos) (regions []lockRegion, deferTypos, unmatched []lockEvent) {
	used := make([]bool, len(events))
	for i, ev := range events {
		switch ev.name {
		case "Lock", "RLock":
			if ev.defered {
				deferTypos = append(deferTypos, ev)
				continue
			}
			region := lockRegion{path: ev.path, expr: ev.expr, read: ev.name == "RLock", pos: ev.pos, end: bodyEnd}
			unlock := "Unlock"
			if ev.name == "RLock" {
				unlock = "RUnlock"
			}
			matched := false
			for j := i + 1; j < len(events); j++ {
				if used[j] || events[j].path != ev.path || events[j].name != unlock {
					continue
				}
				used[j] = true
				matched = true
				if events[j].defered {
					region.defers = true // runs to body end
				} else {
					region.end = events[j].pos
				}
				break
			}
			if !matched {
				unmatched = append(unmatched, ev)
				continue
			}
			regions = append(regions, region)
		case "Unlock", "RUnlock":
			// Matched from the Lock side; stray unlocks (no earlier lock)
			// are cross-function handoffs — out of scope.
		}
	}
	return regions, deferTypos, unmatched
}

// globalLockName resolves a mutex expression to its canonical
// whole-program name: "pkg.Type.field" for struct-field mutexes (the
// shape every shared lock in this tree has) and "pkg.var" for
// package-level mutex variables. Locals, map entries, and call results
// return "" — they cannot participate in a global ordering.
func globalLockName(pass *Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.Info.Uses[x].(*types.Var); ok && !v.IsField() && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if named := namedRecv(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
			return ""
		}
		// Qualified package-level var: pkg.someMu.
		if id, ok := x.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Name() + "." + x.Sel.Name
			}
		}
	}
	return ""
}

// namedRecv peels pointers (and aliases) off a receiver type down to
// its named form, or nil.
func namedRecv(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// isMutexType matches sync.Mutex / sync.RWMutex (or pointers to them);
// named types embedding them are out of scope by design — every shared
// lock in this tree is a plain field.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isWaitGroupType matches sync.WaitGroup (or a pointer to it).
func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// flattenChain renders an ident/selector chain ("s.mu"); returns "" for
// anything more exotic (map index, call result), which the analyzers
// skip rather than misjudge.
func flattenChain(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := flattenChain(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return flattenChain(x.X)
	}
	return ""
}

// funcFullName renders a function or method object in the canonical
// cross-package form go/types uses (e.g.
// "(*fexipro/internal/snap.WAL).Append"), the join key between call
// facts and acquisition facts.
func funcFullName(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}
