package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoIsLintClean runs every analyzer over the whole module and
// requires zero diagnostics. This is the executable form of the
// project's invariant: the tree must stay fexlint-clean, with any
// deliberate exception carrying an inline //lint:ignore justification.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is not a short test")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.Load(filepath.Join(root, "..."))
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("loaded no packages from module root")
	}
	for _, u := range units {
		for _, e := range u.TypeErrors {
			t.Errorf("type error in %s: %v", u.Path, e)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	diags := Run(units, All())
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}
