package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// RegistryCover closes the gap between the method registry and the
// sharded-exactness harness: every method.Descriptor registered with a
// NewKernel factory must route to a kernel whose package is covered by
// a sharded_test.go invoking searchtest.CheckSharded. The kernelcontract
// analyzer pins coverage for types that structurally implement
// engine.Kernel; this one pins it from the other direction — a
// descriptor whose factory returns a kernel from an uncovered package
// is an error even if the kernel type itself slips past structural
// detection (wrapper types, interface-typed constructors). Without it,
// `-method auto` could route production queries through a kernel whose
// S=1 ⇔ S>1 bit-identity no test has ever checked.
//
// Per unit, the pass exports one fact per Descriptor literal carrying a
// NewKernel field: the import path of the package defining the
// factory's returned kernel type (falling back to the constructor's
// package when the return type is interface-typed). sharded_test.go
// files export CheckSharded facts exactly as kernelcontract does. The
// module phase joins the two through the unit table: kernel package
// without coverage ⇒ diagnostic at the Descriptor literal.
var RegistryCover = &Analyzer{
	Name:      "registrycover",
	Doc:       "registered methods must route through CheckSharded-covered kernel packages",
	Run:       runRegistryCover,
	RunModule: runRegistryCoverModule,
}

const factRegisteredKernel = "registered-kernel"

func runRegistryCover(pass *Pass) {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isMethodDescriptorType(pass.TypeOf(lit)) {
				return true
			}
			name, factory := descriptorFields(lit)
			if factory == nil {
				return true // no NewKernel: nothing routes through the engine
			}
			pkg := kernelFactoryPackage(pass, factory)
			if pkg == "" {
				pass.Reportf(factory.Pos(),
					"method %s: cannot resolve the kernel package NewKernel returns; return the concrete kernel constructor directly so registrycover can pair it with its sharded_test.go", name)
				return true
			}
			pass.ExportFact(lit.Pos(), factRegisteredKernel, name+"|"+pkg)
			return true
		})
	}

	// Export CheckSharded invocations for the module-phase join. Facts
	// are analyzer-scoped, so registrycover records its own even though
	// kernelcontract exports the same sites.
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		if filepath.Base(fname) != "sharded_test.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				strings.HasPrefix(sel.Sel.Name, "CheckSharded") {
				pass.ExportFact(call.Pos(), factCheckSharded, sel.Sel.Name)
			}
			return true
		})
	}
}

// runRegistryCoverModule joins registered-kernel facts with CheckSharded
// facts through the unit table's import-path → directory mapping.
func runRegistryCoverModule(mp *ModulePass) {
	dirOf := make(map[string]string, len(mp.Units))
	for _, u := range mp.Units {
		dirOf[strings.TrimSuffix(u.Path, "_test")] = u.Dir
	}
	covered := make(map[string]bool)
	for _, f := range mp.Facts {
		if f.Name == factCheckSharded {
			covered[f.Dir] = true
		}
	}
	for _, f := range mp.Facts {
		if f.Name != factRegisteredKernel {
			continue
		}
		name, pkg, _ := strings.Cut(f.Value, "|")
		dir, loaded := dirOf[pkg]
		if !loaded {
			continue // kernel package outside the analyzed set
		}
		if !covered[dir] {
			mp.Reportf(f.Pos,
				"method %s registers a kernel from %s, which has no sharded_test.go invoking searchtest.CheckSharded — registry methods must route through harness-covered kernels (DESIGN.md §11, §16)",
				name, pkg)
		}
	}
}

// isMethodDescriptorType matches the registry's Descriptor type
// structurally: a named type Descriptor declared in a package named
// method (the same by-name matching kernelcontract uses for
// SharedThreshold, so fixtures can model the registry).
func isMethodDescriptorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Descriptor" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "method"
}

// descriptorFields pulls the Name value (best effort: string literal or
// identifier spelling) and the NewKernel function literal out of a
// Descriptor composite literal.
func descriptorFields(lit *ast.CompositeLit) (name string, factory *ast.FuncLit) {
	name = "<unknown>"
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			switch v := kv.Value.(type) {
			case *ast.BasicLit:
				name = strings.Trim(v.Value, `"`)
			case *ast.Ident:
				name = "<" + v.Name + ">"
			}
		case "NewKernel":
			if fl, ok := kv.Value.(*ast.FuncLit); ok {
				factory = fl
			}
		}
	}
	return name, factory
}

// kernelFactoryPackage resolves the import path of the package defining
// the kernel a NewKernel factory returns. It inspects every return
// statement: the first result's concrete named type wins; when the
// expression is interface-typed (a constructor declared to return
// engine.Kernel), the constructor's own package is used instead.
func kernelFactoryPackage(pass *Pass, factory *ast.FuncLit) string {
	var pkg string
	ast.Inspect(factory.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || pkg != "" || len(ret.Results) == 0 {
			return true
		}
		expr := ret.Results[0]
		if id, ok := expr.(*ast.Ident); ok && id.Name == "nil" {
			return true // error path
		}
		if p := namedTypePackage(pass.TypeOf(expr)); p != "" {
			pkg = p
			return true
		}
		// Interface-typed constructor: attribute to the callee's package.
		if call, ok := expr.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
					pkg = obj.Pkg().Path()
				}
			}
		}
		return true
	})
	return pkg
}

// namedTypePackage returns the defining package path of (a pointer to)
// a named non-interface type, or "".
func namedTypePackage(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return ""
	}
	return named.Obj().Pkg().Path()
}
