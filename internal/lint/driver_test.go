package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runWithFacts executes a single analyzer's unit pass over units and
// returns the diagnostics plus the raw facts it exported — the
// fact-level view that Run folds away into the module phase.
func runWithFacts(a *Analyzer, units []*Unit) ([]Diagnostic, []Fact) {
	var diags []Diagnostic
	var facts []Fact
	for _, u := range units {
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
			PkgPath:  u.Path,
			unit:     u,
			out:      &diags,
			facts:    &facts,
		}
		a.Run(pass)
	}
	return diags, facts
}

// TestFactExport pins the cross-package fact plumbing: the covered
// kernel fixture must export both a kernel fact (from the Scan decl)
// and a checksharded fact (from sharded_test.go), joined by directory.
func TestFactExport(t *testing.T) {
	units := loadFixture(t, "kernelcontract")
	_, facts := runWithFacts(KernelContract, units)

	var kernel, sharded *Fact
	for i := range facts {
		f := &facts[i]
		switch f.Name {
		case factKernel:
			kernel = f
		case factCheckSharded:
			sharded = f
		}
	}
	if kernel == nil {
		t.Fatal("no kernel fact exported for the Kern type")
	}
	if kernel.Value != "Kern" {
		t.Fatalf("kernel fact value = %q, want Kern", kernel.Value)
	}
	if kernel.Analyzer != KernelContract.Name {
		t.Fatalf("kernel fact attributed to %q", kernel.Analyzer)
	}
	if kernel.Pos.Line == 0 || kernel.Pos.Filename == "" {
		t.Fatalf("kernel fact has unresolved position %+v", kernel.Pos)
	}
	if sharded == nil {
		t.Fatal("no checksharded fact exported from sharded_test.go")
	}
	if filepath.Base(sharded.Pos.Filename) != "sharded_test.go" {
		t.Fatalf("checksharded fact from %s, want sharded_test.go", sharded.Pos.Filename)
	}
	if kernel.Dir != sharded.Dir {
		t.Fatalf("fact join key mismatch: kernel dir %s vs checksharded dir %s", kernel.Dir, sharded.Dir)
	}

	// The module phase joins them: covered kernel, so no coverage
	// diagnostic may appear in the full Run either.
	for _, d := range Run(units, []*Analyzer{KernelContract}) {
		if strings.Contains(d.Message, "no sharded_test.go") {
			t.Fatalf("covered kernel still reported uncovered: %s", d)
		}
	}

	// And the uncovered fixture must produce exactly the coverage
	// diagnostic the join exists for.
	units = loadFixture(t, "kernelcontract_uncovered")
	found := false
	for _, d := range Run(units, []*Analyzer{KernelContract}) {
		if strings.Contains(d.Message, "no sharded_test.go") {
			found = true
		}
	}
	if !found {
		t.Fatal("uncovered kernel not reported by the module phase")
	}
}

// fixModule writes a temp module with one fixable kernelcontract
// violation and one fixable lockhold defer typo, returning its dir.
func fixModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixprobe\n\ngo 1.22\n")
	write("kern.go", `package fixprobe

import "context"

type SharedThreshold struct{ v float64 }

func (s *SharedThreshold) Floor(local float64) float64 { return s.v }

type Collector struct{ t float64 }

func (c *Collector) Threshold() float64     { return c.t }
func (c *Collector) Push(int, float64) bool { return true }

type Kern struct{ norms []float64 }

func (k *Kern) Shards() int             { return 1 }
func (k *Kern) Prepare(q []float64) any { return nil }

func (k *Kern) Scan(ctx context.Context, pq any, c *Collector, shared *SharedThreshold) error {
	t := shared.Floor(c.Threshold())
	for i, n := range k.norms {
		if err := ctx.Err(); err != nil {
			return err
		}
		if n <= t {
			continue
		}
		c.Push(i, n)
	}
	return nil
}
`)
	write("locks.go", `package fixprobe

import "sync"

type guard struct{ mu sync.Mutex }

func (g *guard) do() {
	g.mu.Lock()
	defer g.mu.Lock()
}
`)
	return dir
}

// loadModule loads every unit of a standalone module rooted at dir.
func loadModule(t *testing.T, dir string) []*Unit {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.Load(dir + "/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		for _, e := range u.TypeErrors {
			t.Fatalf("type error: %v", e)
		}
	}
	return units
}

// TestFixIdempotency applies suggested fixes and verifies (a) the fixed
// tree re-lints clean of fixable diagnostics, and (b) a second -fix
// pass is a no-op, byte for byte.
func TestFixIdempotency(t *testing.T) {
	dir := fixModule(t)
	analyzers := []*Analyzer{KernelContract, LockHold}

	diags := Run(loadModule(t, dir), analyzers)
	var fixable int
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			fixable++
		}
	}
	if fixable != 2 {
		t.Fatalf("expected 2 fixable diagnostics (threshold op + defer typo), got %d in %v", fixable, diags)
	}
	changed, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 2 {
		t.Fatalf("expected 2 rewritten files, got %v", changed)
	}

	kern, err := os.ReadFile(filepath.Join(dir, "kern.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(kern), "if n < t {") {
		t.Fatalf("threshold fix not applied:\n%s", kern)
	}
	locks, err := os.ReadFile(filepath.Join(dir, "locks.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(locks), "defer g.mu.Unlock()") {
		t.Fatalf("defer-typo fix not applied:\n%s", locks)
	}

	// Second pass: the fixed tree must carry no fixable diagnostics and
	// ApplyFixes must not rewrite anything.
	diags2 := Run(loadModule(t, dir), analyzers)
	for _, d := range diags2 {
		if len(d.Fixes) > 0 {
			t.Fatalf("fixable diagnostic survived -fix: %s", d)
		}
	}
	changed2, err := ApplyFixes(diags2)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed2) != 0 {
		t.Fatalf("second -fix pass rewrote %v", changed2)
	}
	kern2, err := os.ReadFile(filepath.Join(dir, "kern.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(kern2) != string(kern) {
		t.Fatal("kern.go changed between -fix passes")
	}
}

// TestBaselineRoundTrip pins the baseline workflow: write findings,
// reload, suppress exactly those findings, and keep everything new.
func TestBaselineRoundTrip(t *testing.T) {
	units := loadFixture(t, "lockhold")
	diags := Run(units, []*Analyzer{LockHold})
	if len(diags) == 0 {
		t.Fatal("lockhold fixture produced no diagnostics")
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src", "lockhold"))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, root, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) == 0 {
		t.Fatal("baseline round-trip lost all entries")
	}
	for _, e := range b.Entries {
		if filepath.IsAbs(e.File) || strings.Contains(e.File, "\\") {
			t.Fatalf("baseline file key %q is not module-relative slash form", e.File)
		}
	}

	kept, suppressed := b.Filter(root, diags)
	if len(kept) != 0 {
		t.Fatalf("full baseline kept %d diagnostics: %v", len(kept), kept)
	}
	if suppressed != len(diags) {
		t.Fatalf("suppressed %d of %d", suppressed, len(diags))
	}

	// A fresh diagnostic (message outside the baseline) must be kept.
	extra := diags[0]
	extra.Message = "definitely new finding"
	kept, suppressed = b.Filter(root, append(append([]Diagnostic{}, diags...), extra))
	if len(kept) != 1 || kept[0].Message != "definitely new finding" {
		t.Fatalf("baseline failed to keep the new finding: kept=%v", kept)
	}
	if suppressed != len(diags) {
		t.Fatalf("suppressed %d of %d", suppressed, len(diags))
	}

	// Count budgets: one entry absorbs Count findings, no more.
	two := []Diagnostic{diags[0], diags[0]}
	one := &Baseline{Entries: []BaselineEntry{{
		Analyzer: diags[0].Analyzer,
		File:     relPath(root, diags[0].File),
		Message:  diags[0].Message,
		Count:    1,
	}}}
	kept, suppressed = one.Filter(root, two)
	if len(kept) != 1 || suppressed != 1 {
		t.Fatalf("count budget: kept %d suppressed %d, want 1/1", len(kept), suppressed)
	}

	// Missing baseline file behaves as empty.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed = empty.Filter(root, diags)
	if len(kept) != len(diags) || suppressed != 0 {
		t.Fatalf("missing baseline suppressed %d diagnostics", suppressed)
	}
}

// TestBaselineDead exercises rot detection: entries whose findings no
// longer fire surface through Dead with the unused count, and a fully
// live baseline reports none.
func TestBaselineDead(t *testing.T) {
	units := loadFixture(t, "lockhold")
	diags := Run(units, []*Analyzer{LockHold})
	if len(diags) == 0 {
		t.Fatal("lockhold fixture produced no diagnostics")
	}
	root, err := filepath.Abs(filepath.Join("testdata", "src", "lockhold"))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, root, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every entry is backed by a live finding: no rot.
	if dead := b.Dead(root, diags); len(dead) != 0 {
		t.Fatalf("fully live baseline reported dead entries: %v", dead)
	}

	// Drop one finding: exactly its entry (count 1) must go dead.
	dead := b.Dead(root, diags[1:])
	if len(dead) != 1 || dead[0].Count != 1 {
		t.Fatalf("dropping one finding: dead=%v, want one entry with count 1", dead)
	}
	gone := diags[0]
	if dead[0].Analyzer != gone.Analyzer || dead[0].Message != gone.Message ||
		dead[0].File != relPath(root, gone.File) {
		t.Fatalf("dead entry %+v does not match dropped finding %+v", dead[0], gone)
	}

	// An inflated count goes partially dead: only the unused portion.
	inflated := &Baseline{Entries: []BaselineEntry{{
		Analyzer: gone.Analyzer,
		File:     relPath(root, gone.File),
		Message:  gone.Message,
		Count:    3,
	}}}
	dead = inflated.Dead(root, []Diagnostic{gone})
	if len(dead) != 1 || dead[0].Count != 2 {
		t.Fatalf("inflated count: dead=%v, want one entry with count 2", dead)
	}

	// Empty and nil baselines never report rot.
	if dead := (&Baseline{}).Dead(root, nil); dead != nil {
		t.Fatalf("empty baseline reported dead entries: %v", dead)
	}
}

// TestRunTimed checks the -timings data source: one Timing per
// analyzer in registration order, with identical diagnostics to Run.
func TestRunTimed(t *testing.T) {
	units := loadFixture(t, "lockorder")
	analyzers := []*Analyzer{LockHold, LockOrder}
	diags, timings := RunTimed(units, analyzers)
	if len(timings) != len(analyzers) {
		t.Fatalf("got %d timings for %d analyzers", len(timings), len(analyzers))
	}
	for i, a := range analyzers {
		if timings[i].Analyzer != a.Name {
			t.Fatalf("timing %d is %q, want %q (registration order)", i, timings[i].Analyzer, a.Name)
		}
		if timings[i].Unit < 0 || timings[i].Module < 0 {
			t.Fatalf("negative duration in %+v", timings[i])
		}
	}
	// LockOrder has a module phase that did real work on this fixture.
	if timings[1].Module == 0 {
		t.Fatal("lockorder module phase reported zero duration")
	}
	plain := Run(units, analyzers)
	if len(plain) != len(diags) {
		t.Fatalf("Run and RunTimed disagree: %d vs %d diagnostics", len(plain), len(diags))
	}
}

// TestLoaderParallelImports loads the whole lint package tree twice
// through one loader from concurrent goroutines; under -race this
// exercises the single-flight import cache and the serialized stdlib
// importer.
func TestLoaderParallelImports(t *testing.T) {
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := loader.Load(root + "/...")
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestApplyFixesDedupeAndConflict pins the multi-analyzer fix contract:
// byte-identical edits from two analyzers collapse to one application,
// while overlapping edits with different replacements abort naming both
// analyzers and leave the file untouched.
func TestApplyFixesDedupeAndConflict(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	const orig = "hello world"
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	edit := func(off, end int, text string) []SuggestedFix {
		return []SuggestedFix{{Edits: []TextEdit{{File: path, Offset: off, End: end, NewText: text}}}}
	}

	// Two analyzers suggesting the exact same edit: applied once.
	same := []Diagnostic{
		{Analyzer: "alpha", File: path, Fixes: edit(0, 5, "HELLO")},
		{Analyzer: "beta", File: path, Fixes: edit(0, 5, "HELLO")},
	}
	changed, err := ApplyFixes(same)
	if err != nil {
		t.Fatalf("identical edits must dedupe, got: %v", err)
	}
	if len(changed) != 1 {
		t.Fatalf("changed = %v, want just %s", changed, path)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "HELLO world" {
		t.Fatalf("after dedupe apply: %q, want %q", got, "HELLO world")
	}

	// Same span, different replacement: a genuine conflict.
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	conflict := []Diagnostic{
		{Analyzer: "alpha", File: path, Fixes: edit(0, 5, "HELLO")},
		{Analyzer: "beta", File: path, Fixes: edit(0, 5, "goodbye")},
	}
	_, err = ApplyFixes(conflict)
	if err == nil {
		t.Fatal("conflicting fixes did not error")
	}
	for _, want := range []string{"conflicting fixes", "alpha", "beta"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("conflict error %q does not mention %q", err, want)
		}
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != orig {
		t.Fatalf("conflict rewrote the file to %q", got)
	}

	// Overlapping (not identical) spans conflict too.
	overlap := []Diagnostic{
		{Analyzer: "alpha", File: path, Fixes: edit(0, 7, "X")},
		{Analyzer: "beta", File: path, Fixes: edit(5, 9, "Y")},
	}
	if _, err := ApplyFixes(overlap); err == nil || !strings.Contains(err.Error(), "conflicting fixes") {
		t.Fatalf("overlapping edits: got %v, want conflicting-fixes error", err)
	}
}
