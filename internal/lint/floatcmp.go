package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp flags ==/!= comparisons (and switch cases) between
// floating-point expressions in production code. FEXIPRO's exactness
// guarantees (Theorems 1–4) rest on conservative bound arithmetic;
// float equality is the classic way an "exact" pruner goes silently
// wrong. The allowlisted idioms are comparison against an exact
// constant-zero (a well-defined guard: norms, divisors, and sentinel
// checks) and comparisons where both sides are compile-time constants.
//
// _test.go files are exempt: the exactness suite deliberately asserts
// bitwise-identical scores against the naive baseline (Theorem 1 is an
// equality, not an approximation), so exact comparison is the correct
// tool there.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between floating-point expressions (exact-zero compares allowed; tests exempt)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				if node.Op != token.EQL && node.Op != token.NEQ {
					return true
				}
				if !isFloat(pass.TypeOf(node.X)) && !isFloat(pass.TypeOf(node.Y)) {
					return true
				}
				if floatCmpAllowed(pass, node.X, node.Y) {
					return true
				}
				pass.Reportf(node.OpPos,
					"floating-point %s comparison; use an epsilon helper or compare against exact zero", node.Op)
			case *ast.SwitchStmt:
				if node.Tag != nil && isFloat(pass.TypeOf(node.Tag)) {
					pass.Reportf(node.Tag.Pos(),
						"switch on a floating-point value compares cases with ==; use if/else with epsilon bounds")
				}
			}
			return true
		})
	}
}

// floatCmpAllowed reports whether the comparison x <op> y is an
// allowlisted exact comparison.
func floatCmpAllowed(pass *Pass, x, y ast.Expr) bool {
	xv, yv := constValue(pass, x), constValue(pass, y)
	if xv != nil && yv != nil {
		return true // both compile-time constants: exact by definition
	}
	return isZeroConst(xv) || isZeroConst(yv)
}

func constValue(pass *Pass, e ast.Expr) constant.Value {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	return constant.Compare(v, token.EQL, constant.MakeInt64(0))
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat,
		types.Complex64, types.Complex128, types.UntypedComplex:
		return true
	}
	return false
}
