package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureCases maps each analyzer to its golden fixture package(s)
// under testdata/src.
var fixtureCases = []struct {
	analyzer *Analyzer
	fixture  string
}{
	{FloatCmp, "floatcmp"},
	{StageCounters, "stagecounters"},
	{StageCounters, "stagecounters_nototal"},
	{RNGSeed, "rngseed"},
	{ErrCheck, "errcheck"},
	{MutCopy, "mutcopy"},
	{CtxPoll, "ctxpoll"},
	{KernelContract, "kernelcontract"},
	{KernelContract, "kernelcontract_uncovered"},
	{LockHold, "lockhold"},
	{LockOrder, "lockorder"},
	{GoroutineLife, "goroutinelife"},
	{GuardedBy, "guardedby"},
	{HotAlloc, "hotalloc"},
	{APIParity, "apiparity"},
	{BoundFlow, "boundflow"},
	{RegistryCover, "registrycover"},
}

// want is one expectation parsed from a `// want` comment.
type want struct {
	file string // base name
	line int
	rx   *regexp.Regexp
	hit  bool
}

var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// parseWants extracts `// want` expectations from a unit's files.
func parseWants(t *testing.T, u *Unit) []*want {
	t.Helper()
	var wants []*want
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				ms := wantRx.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						rx:   rx,
					})
				}
			}
		}
	}
	return wants
}

// loadFixture type-checks one fixture tree (recursively, so multi-
// package fixtures like apiparity's lib + cmd/apx layout work) and
// fails the test on any load or type error.
func loadFixture(t *testing.T, fixture string) []*Unit {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.Load(dir + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatalf("no units loaded from %s", dir)
	}
	for _, u := range units {
		for _, e := range u.TypeErrors {
			t.Errorf("fixture %s: type error: %v", fixture, e)
		}
	}
	return units
}

// TestGoldenFixtures checks every analyzer against its fixture: each
// `// want` comment must be matched by a diagnostic on that exact
// file:line, and no unexpected diagnostics may appear.
func TestGoldenFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		name := tc.analyzer.Name + "/" + tc.fixture
		t.Run(name, func(t *testing.T) {
			units := loadFixture(t, tc.fixture)
			var wants []*want
			for _, u := range units {
				wants = append(wants, parseWants(t, u)...)
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", tc.fixture)
			}
			diags := Run(units, []*Analyzer{tc.analyzer})
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no diagnostics; fexlint must exit non-zero on it", tc.fixture)
			}
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == filepath.Base(d.File) && w.line == d.Line && w.rx.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("missing diagnostic: %s:%d expected match for %q", w.file, w.line, w.rx)
				}
			}
		})
	}
}

// TestExactDiagnosticPositions pins file:line:col for representative
// diagnostics, so position reporting cannot drift silently.
func TestExactDiagnosticPositions(t *testing.T) {
	units := loadFixture(t, "floatcmp")
	diags := Run(units, []*Analyzer{FloatCmp})
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	d := diags[0]
	if filepath.Base(d.File) != "floatcmp.go" || d.Line != 8 || d.Col != 7 {
		t.Fatalf("first floatcmp diagnostic at %s:%d:%d, want floatcmp.go:8:7", filepath.Base(d.File), d.Line, d.Col)
	}
	if d.Pos.Line != d.Line || d.Pos.Column != d.Col {
		t.Fatalf("Diagnostic.Pos (%d:%d) disagrees with Line/Col (%d:%d)", d.Pos.Line, d.Pos.Column, d.Line, d.Col)
	}
}

// TestSuppression verifies the //lint:ignore mechanism end to end: the
// floatcmp fixture ends with a suppressed equality that must NOT be
// reported, and removing the directive must surface it.
func TestSuppression(t *testing.T) {
	units := loadFixture(t, "floatcmp")
	diags := Run(units, []*Analyzer{FloatCmp})
	// Find the suppressed line: the fixture's final `return a == b`.
	var suppressedLine int
	for _, u := range units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool { return true })
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "lint:ignore floatcmp") {
						suppressedLine = u.Fset.Position(c.Pos()).Line
					}
				}
			}
		}
	}
	if suppressedLine == 0 {
		t.Fatal("fixture lost its lint:ignore directive")
	}
	for _, d := range diags {
		if d.Line == suppressedLine || d.Line == suppressedLine+1 {
			t.Fatalf("suppressed diagnostic still reported: %s", d)
		}
	}
}

// TestAnalyzerRegistry checks All()/ByName round-trips.
func TestAnalyzerRegistry(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("expected 15 analyzers, got %d", len(all))
	}
	names := make([]string, len(all))
	for i, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %d incompletely registered", i)
		}
		names[i] = a.Name
	}
	sel, err := ByName("floatcmp, errcheck")
	if err != nil || len(sel) != 2 {
		t.Fatalf("ByName subset: %v %v", sel, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
	def, err := ByName("")
	if err != nil || len(def) != len(all) {
		t.Fatalf("ByName default: %v %v", def, err)
	}
	_ = fmt.Sprintf("%v", names)
}
