package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// GuardedBy enforces field↔mutex ownership contracts (DESIGN.md §12).
// A struct field annotated `//fex:guard mu` (where mu is a sync.Mutex
// or sync.RWMutex sibling field) may only be read while mu is held (in
// either mode) and written while mu is write-held — the analyzer checks
// every access in the module against the lexical held regions of the
// accessing function, so the contract survives refactors that move
// code out from under the lock.
//
// Accesses are exempt when the receiver convention already encodes the
// contract: methods whose name ends in Locked (the caller holds the
// lock, by this tree's naming convention) and objects still local to
// their constructor (assigned from a composite literal or new() in the
// same function — not yet shared, so not yet racy). Everything else
// needs the lock or a `//lint:ignore guardedby` with the rationale.
//
// Unannotated fields are seeded by inference: a field of a
// mutex-bearing struct whose every write (≥2 of them) happens under
// exactly one sibling mutex, with no unlocked writes anywhere in the
// module, is reported with a SuggestedFix inserting the annotation —
// `fexlint -fix` turns the observed discipline into an enforced one.
//
// Annotations live in the owning package but accesses happen anywhere,
// so field metadata and access records travel as Facts and are joined
// in the module phase. Test files are skipped.
var GuardedBy = &Analyzer{
	Name:      "guardedby",
	Doc:       "//fex:guard mu field contracts: guarded accesses must hold the mutex; disciplined fields get suggested annotations",
	Run:       runGuardedByUnit,
	RunModule: runGuardedByModule,
}

const guardDirective = "//fex:guard"

func runGuardedByUnit(pass *Pass) {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok == token.TYPE {
					for _, spec := range d.Specs {
						exportGuardFields(pass, spec.(*ast.TypeSpec))
					}
				}
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				obj := pass.Info.Defs[d.Name]
				if obj == nil {
					continue
				}
				ctx := funcFullName(obj)
				var recv types.Object
				if fn, ok := obj.(*types.Func); ok {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						recv = sig.Recv()
					}
				}
				lockedFn := strings.HasSuffix(d.Name.Name, "Locked")
				guardWalk(pass, ctx, d.Body, lockedFn, recv)
				var lits []*ast.FuncLit
				ast.Inspect(d.Body, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						lits = append(lits, fl)
					}
					return true
				})
				for i, fl := range lits {
					// Literals run on their own schedule: no inherited
					// held regions and no Locked-convention exemption.
					guardWalk(pass, fmt.Sprintf("%s$%d", ctx, i+1), fl.Body, false, nil)
				}
			}
		}
	}
}

// exportGuardFields validates //fex:guard annotations on one struct
// declaration and exports a "field" fact for every guardable field
// (structs with at least one mutex sibling), carrying the annotation
// state and the insertion point for a suggested one.
func exportGuardFields(pass *Pass, ts *ast.TypeSpec) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	var mutexes []string
	for _, f := range st.Fields.List {
		if isMutexType(pass.TypeOf(f.Type)) {
			for _, n := range f.Names {
				mutexes = append(mutexes, n.Name)
			}
		}
	}
	for _, f := range st.Fields.List {
		guard := parseGuardDirective(f)
		isMutex := isMutexType(pass.TypeOf(f.Type))
		if guard != "" {
			switch {
			case isMutex:
				pass.Reportf(f.Pos(), "//fex:guard on %s.%s, which is itself a mutex — guard data fields, not locks", ts.Name.Name, fieldNames(f))
				continue
			case !slicesContains(mutexes, guard):
				pass.Reportf(f.Pos(), "//fex:guard %s on %s.%s names no sync.Mutex/RWMutex sibling field of %s", guard, ts.Name.Name, fieldNames(f), ts.Name.Name)
				continue
			}
		}
		if len(mutexes) == 0 || isMutex || len(f.Names) == 0 {
			continue // embedded fields and mutex-free structs are out of scope
		}
		p := pass.Fset.Position(f.Pos())
		lineStart := p.Offset - (p.Column - 1)
		if guard == "" {
			guard = "-"
		}
		for _, n := range f.Names {
			key := pass.Pkg.Name() + "." + ts.Name.Name + "." + n.Name
			pass.ExportFact(n.Pos(), "field", strings.Join([]string{
				key, strings.Join(mutexes, ","), guard,
				strconv.Itoa(lineStart), strconv.Itoa(p.Column - 1),
			}, lockOrderSep))
		}
	}
}

// parseGuardDirective returns the guard field named by a //fex:guard
// comment attached to f (doc line or trailing comment), or "".
func parseGuardDirective(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), guardDirective); ok {
				rest, _, _ = strings.Cut(rest, "//")
				return strings.TrimSpace(rest)
			}
		}
	}
	return ""
}

func fieldNames(f *ast.Field) string {
	names := make([]string, len(f.Names))
	for i, n := range f.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ",")
}

// guardWalk records every access to a field of a mutex-bearing struct
// in one function context, together with the held state of each mutex
// sibling at the access point, as "access" facts for the module join.
func guardWalk(pass *Pass, ctx string, body *ast.BlockStmt, lockedFn bool, recv types.Object) {
	events := collectLockEvents(pass, body)
	regions, _, unmatched := pairLockRegions(events, body.End())
	for _, ev := range unmatched {
		regions = append(regions, lockRegion{path: ev.path, expr: ev.expr, read: ev.name == "RLock", pos: ev.pos, end: body.End()})
	}
	local := locallyConstructed(pass, body)

	writes := make(map[ast.Expr]bool)
	markWrite := func(e ast.Expr) { writes[ast.Unparen(e)] = true }
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(s.X)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				markWrite(s.X)
			}
		case *ast.RangeStmt:
			if s.Key != nil {
				markWrite(s.Key)
			}
			if s.Value != nil {
				markWrite(s.Value)
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok || isMutexType(field.Type()) {
			return true
		}
		named := namedRecv(selection.Recv())
		if named == nil || named.Obj().Pkg() == nil {
			return true
		}
		strct, ok := named.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		var mutexes []string
		for i := 0; i < strct.NumFields(); i++ {
			if f := strct.Field(i); isMutexType(f.Type()) {
				mutexes = append(mutexes, f.Name())
			}
		}
		if len(mutexes) == 0 {
			return true
		}
		key := named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + field.Name()
		kind := "r"
		if writes[sel] {
			kind = "w"
		}
		root := rootObject(pass, sel.X)
		if (lockedFn && recv != nil && root == recv) || (root != nil && local[root]) {
			pass.ExportFact(sel.Sel.Pos(), "access", strings.Join([]string{key, "x" + kind, "-", ctx}, lockOrderSep))
			return true
		}
		base := flattenChain(sel.X)
		statuses := make([]string, len(mutexes))
		for i, m := range mutexes {
			status := "none"
			if base != "" {
				target := base + "." + m
				for _, r := range regions {
					if r.path != target || !r.covers(sel.Pos()) {
						continue
					}
					if !r.read {
						status = "w"
						break
					}
					status = "r"
				}
			}
			statuses[i] = m + ":" + status
		}
		pass.ExportFact(sel.Sel.Pos(), "access", strings.Join([]string{key, kind, strings.Join(statuses, ","), ctx}, lockOrderSep))
		return true
	})
}

// locallyConstructed collects objects assigned from a composite literal
// or new() in this body: they are not shared yet, so their guarded
// fields may be initialized without the lock.
func locallyConstructed(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	local := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = ast.Unparen(u.X)
			}
			fresh := false
			switch r := rhs.(type) {
			case *ast.CompositeLit:
				fresh = true
			case *ast.CallExpr:
				if fn, ok := r.Fun.(*ast.Ident); ok && fn.Name == "new" {
					if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); isBuiltin {
						fresh = true
					}
				}
			}
			if fresh {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					local[obj] = true
				}
			}
		}
		return true
	})
	return local
}

// rootObject resolves the base identifier of a selector chain to its
// object, or nil.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.Info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// guardField is the module-phase view of one guardable field.
type guardField struct {
	key       string
	siblings  []string
	guard     string // "-" when unannotated
	pos       Fact
	lineStart int
	indent    int
}

func runGuardedByModule(mp *ModulePass) {
	fields := make(map[string]*guardField)
	type guardAccess struct {
		kind   string
		status map[string]string // sibling → none|r|w
		ctx    string
		fact   Fact
	}
	accesses := make(map[string][]guardAccess)

	for _, f := range mp.Facts {
		parts := strings.Split(f.Value, lockOrderSep)
		switch f.Name {
		case "field":
			lineStart, _ := strconv.Atoi(parts[3])
			indent, _ := strconv.Atoi(parts[4])
			if _, dup := fields[parts[0]]; !dup {
				fields[parts[0]] = &guardField{
					key: parts[0], siblings: strings.Split(parts[1], ","),
					guard: parts[2], pos: f, lineStart: lineStart, indent: indent,
				}
			}
		case "access":
			ga := guardAccess{kind: parts[1], ctx: parts[3], fact: f, status: make(map[string]string)}
			if parts[2] != "-" {
				for _, ent := range strings.Split(parts[2], ",") {
					m, s, _ := strings.Cut(ent, ":")
					ga.status[m] = s
				}
			}
			accesses[parts[0]] = append(accesses[parts[0]], ga)
		}
	}

	var keys []string
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, key := range keys {
		fld := fields[key]
		prefix := key[:strings.LastIndex(key, ".")+1] // "pkg.Type."
		if fld.guard != "-" {
			lockName := prefix + fld.guard
			for _, ga := range accesses[key] {
				switch ga.kind {
				case "w":
					switch ga.status[fld.guard] {
					case "w":
					case "r":
						mp.Reportf(ga.fact.Pos, "write to %s under RLock of %s — guarded writes need the write lock", key, lockName)
					default:
						mp.Reportf(ga.fact.Pos, "write to %s without holding %s (//fex:guard %s) — acquire the lock or document the exception with //lint:ignore guardedby", key, lockName, fld.guard)
					}
				case "r":
					if s := ga.status[fld.guard]; s != "w" && s != "r" {
						mp.Reportf(ga.fact.Pos, "read of %s without holding %s (//fex:guard %s) — acquire the lock or document the exception with //lint:ignore guardedby", key, lockName, fld.guard)
					}
				}
			}
			continue
		}

		// Inference: every write held exactly one sibling mutex.
		totalW := 0
		heldW := make(map[string]int)
		for _, ga := range accesses[key] {
			if ga.kind != "w" {
				continue
			}
			totalW++
			for _, m := range fld.siblings {
				if ga.status[m] == "w" {
					heldW[m]++
				}
			}
		}
		if totalW < 2 {
			continue
		}
		var candidates []string
		for _, m := range fld.siblings {
			if heldW[m] == totalW {
				candidates = append(candidates, m)
			}
		}
		if len(candidates) != 1 {
			continue
		}
		guard := candidates[0]
		mp.ReportFix(fld.pos.Pos, SuggestedFix{
			Message: fmt.Sprintf("annotate %s with //fex:guard %s", key, guard),
			Edits: []TextEdit{{
				File:    fld.pos.Pos.Filename,
				Offset:  fld.lineStart,
				End:     fld.lineStart,
				NewText: strings.Repeat("\t", fld.indent) + guardDirective + " " + guard + "\n",
			}},
		}, "field %s is always written (%d×) under %s and never without it — annotate `//fex:guard %s` so the contract is enforced", key, totalW, prefix+guard, guard)
	}
}

// slicesContains avoids importing slices for one call.
func slicesContains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
