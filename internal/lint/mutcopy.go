package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutCopy guards the lock-free hot-path counters of internal/obs:
//
//  1. mutcopy proper — by-value copies of types that (transitively)
//     hold sync primitives or sync/atomic values: value receivers,
//     non-pointer parameters and results, copying assignments, and
//     by-value range variables. A copied mutex silently stops
//     excluding; a copied atomic counter silently forks its value.
//  2. atomicmix — a field whose address is passed to a sync/atomic
//     function must never also be read or written with plain (non-
//     atomic) accesses in the same package; mixed access is a data race
//     the race detector only finds when both sides execute.
var MutCopy = &Analyzer{
	Name: "mutcopy",
	Doc:  "flags by-value copies of sync/atomic-bearing types and mixed atomic/plain field access",
	Run:  runMutCopy,
}

func runMutCopy(pass *Pass) {
	memo := make(map[types.Type]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkFuncSignature(pass, node, memo)
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					if i < len(node.Lhs) {
						if id, ok := node.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					checkCopyExpr(pass, rhs, memo)
				}
			case *ast.ValueSpec:
				for _, v := range node.Values {
					checkCopyExpr(pass, v, memo)
				}
			case *ast.RangeStmt:
				if node.Value != nil {
					if t := pass.TypeOf(node.Value); holdsSync(t, memo) {
						pass.Reportf(node.Value.Pos(),
							"range copies %s by value; it holds sync/atomic state — range over indices or pointers", typeString(t))
					}
				}
			case *ast.CallExpr:
				for _, arg := range node.Args {
					checkCopyExpr(pass, arg, memo)
				}
			}
			return true
		})
	}
	runAtomicMix(pass)
}

// checkFuncSignature flags by-value receivers, params, and results of
// sync-bearing types.
func checkFuncSignature(pass *Pass, fd *ast.FuncDecl, memo map[types.Type]bool) {
	report := func(field *ast.Field, what string) {
		t := pass.TypeOf(field.Type)
		if holdsSync(t, memo) {
			pass.Reportf(field.Type.Pos(),
				"%s passes %s by value; it holds sync/atomic state — use a pointer", what, typeString(t))
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			report(f, "method receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			report(f, "parameter")
		}
	}
	// Results are deliberately not checked: returning a freshly
	// constructed value (a constructor) is safe; go vet's copylocks
	// covers the hazardous return-of-existing-value cases.
}

// checkCopyExpr flags expressions that copy an existing sync-bearing
// value (reads of variables, fields, dereferences, or elements —
// freshly constructed values are fine).
func checkCopyExpr(pass *Pass, e ast.Expr, memo map[types.Type]bool) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		// Only variable reads copy; type names, package names, nil don't.
		if _, isVar := pass.Info.ObjectOf(id).(*types.Var); !isVar {
			return
		}
	}
	t := pass.TypeOf(e)
	if holdsSync(t, memo) {
		pass.Reportf(e.Pos(),
			"expression copies %s by value; it holds sync/atomic state — use a pointer", typeString(t))
	}
}

func typeString(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// holdsSync reports whether t transitively contains a sync primitive or
// a sync/atomic value type (pointers, slices, and maps break the
// chain: they share, not copy).
func holdsSync(t types.Type, memo map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if v, ok := memo[t]; ok {
		return v
	}
	memo[t] = false // break recursive types
	result := false
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					result = true
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Value", "Pointer":
					result = true
				}
			}
		}
		if !result {
			result = holdsSync(tt.Underlying(), memo)
		}
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if holdsSync(tt.Field(i).Type(), memo) {
				result = true
				break
			}
		}
	case *types.Array:
		result = holdsSync(tt.Elem(), memo)
	}
	memo[t] = result
	return result
}

// --- atomicmix -------------------------------------------------------

// atomicFuncs are the sync/atomic package-level functions that take an
// address as their first argument.
func isAtomicAddrFunc(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// runAtomicMix finds struct fields used with sync/atomic address-based
// functions and flags any plain access to the same field in the unit.
func runAtomicMix(pass *Pass) {
	atomicFields := make(map[types.Object]bool)
	atomicUses := make(map[*ast.SelectorExpr]bool)
	fieldOf := func(e ast.Expr) (*ast.SelectorExpr, types.Object) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		s, ok := pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil, nil
		}
		return sel, s.Obj()
	}

	// Pass 1: collect fields whose address feeds sync/atomic.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicAddrFunc(pass, call) || len(call.Args) == 0 {
				return true
			}
			unary, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			if sel, obj := fieldOf(unary.X); obj != nil {
				atomicFields[obj] = true
				atomicUses[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: flag plain accesses to those fields.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			_, obj := fieldOf(sel)
			if obj == nil || !atomicFields[obj] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s is updated with sync/atomic elsewhere in this package; plain access races with it — use the atomic API everywhere",
				sel.Sel.Name)
			return true
		})
	}
}
