package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// KernelContract enforces the engine.Kernel contract of DESIGN.md §11
// on every type that structurally implements it (methods Shards,
// Prepare, and a context-first Scan):
//
//  1. Threshold comparisons reachable from Scan must be strictly
//     conservative. Values derived from SharedThreshold.Floor/Load or
//     Collector.Threshold may only appear in comparisons whose equality
//     case keeps the candidate: with the threshold on the right, only
//     `<` (strict prune) and `>=` (tie-keeping keep) are legal; on the
//     left, `>` and `<=`. Anything else (`bound <= t`, `bound > t`,
//     `==`, `!=`) prunes or drops exact ties and silently breaks the
//     S-invariance proof. Violations carry a suggested fix restoring
//     the conservative operator.
//  2. Scan must not mutate kernel state: the engine calls Scan from
//     multiple goroutines for distinct shards of the same query, so all
//     per-query scratch must live in Prepare's return value or the
//     engine-supplied collector. Assignments through a pointer receiver
//     are flagged; a documented synchronization scheme needs a
//     //lint:ignore kernelcontract directive citing it.
//  3. Every kernel package must ship a sharded_test.go invoking
//     searchtest.CheckSharded (or CheckShardedCancellation) so the
//     S=1 ⇔ S>1 bit-identity is pinned by a test, not just by review.
//     This is a cross-package contract checked in the module phase via
//     exported facts.
var KernelContract = &Analyzer{
	Name:      "kernelcontract",
	Doc:       "engine.Kernel implementations: strict threshold comparisons, no state mutation in Scan, CheckSharded coverage",
	Run:       runKernelContract,
	RunModule: runKernelContractModule,
}

const (
	factKernel       = "kernel"
	factCheckSharded = "checksharded"
)

func runKernelContract(pass *Pass) {
	// Group methods by receiver type name, non-test files only.
	methods := make(map[string]map[string]*ast.FuncDecl)
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		testFile := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
			if testFile || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := receiverTypeName(fd.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = make(map[string]*ast.FuncDecl)
			}
			methods[recv][fd.Name.Name] = fd
		}
	}

	var kernels []*ast.FuncDecl // the Scan decls of kernel types
	for typeName, ms := range methods {
		scan := ms["Scan"]
		if scan == nil || ms["Shards"] == nil || ms["Prepare"] == nil {
			continue
		}
		if scan.Type.Params == nil || len(scan.Type.Params.List) == 0 ||
			!isContextType(pass.TypeOf(scan.Type.Params.List[0].Type)) {
			continue
		}
		kernels = append(kernels, scan)
		pass.ExportFact(scan.Pos(), factKernel, typeName)
		checkScanMutation(pass, scan, typeName)
	}
	if len(kernels) > 0 {
		checkThresholdComparisons(pass, kernels, decls)
	}

	// Export CheckSharded invocations (test files included — that is
	// where they live) for the module-phase coverage check.
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		if filepath.Base(fname) != "sharded_test.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				strings.HasPrefix(sel.Sel.Name, "CheckSharded") {
				pass.ExportFact(call.Pos(), factCheckSharded, sel.Sel.Name)
			}
			return true
		})
	}
}

// runKernelContractModule pairs kernel facts with CheckSharded facts by
// directory: a kernel package without a sharded_test.go invoking the
// harness is a contract violation.
func runKernelContractModule(mp *ModulePass) {
	covered := make(map[string]bool)
	for _, f := range mp.Facts {
		if f.Name == factCheckSharded {
			covered[f.Dir] = true
		}
	}
	for _, f := range mp.Facts {
		if f.Name != factKernel {
			continue
		}
		if !covered[f.Dir] {
			mp.Reportf(f.Pos,
				"kernel type %s has no sharded_test.go invoking searchtest.CheckSharded in %s — the S-invariance contract (DESIGN.md §11) must be pinned by a test",
				f.Value, filepath.Base(f.Dir))
		}
	}
}

// checkScanMutation flags assignments through Scan's pointer receiver.
func checkScanMutation(pass *Pass, scan *ast.FuncDecl, typeName string) {
	recvField := scan.Recv.List[0]
	if len(recvField.Names) == 0 {
		return // anonymous receiver cannot be referenced
	}
	if _, ok := recvField.Type.(*ast.StarExpr); !ok {
		return // value receiver: mutations stay in the copy
	}
	recvObj := pass.Info.Defs[recvField.Names[0]]
	if recvObj == nil {
		return
	}
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"Scan on kernel %s mutates receiver state (%s): the engine calls Scan concurrently across shards; move per-query scratch into Prepare's return value (DESIGN.md §11)",
			typeName, what)
	}
	ast.Inspect(scan.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if rootedAt(pass, lhs, recvObj) {
					report(lhs.Pos(), exprString(lhs))
				}
			}
		case *ast.IncDecStmt:
			if rootedAt(pass, s.X, recvObj) {
				report(s.X.Pos(), exprString(s.X))
			}
		}
		return true
	})
}

// rootedAt reports whether expr is a selector/index chain whose root
// identifier resolves to obj.
func rootedAt(pass *Pass, expr ast.Expr, obj types.Object) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return pass.Info.Uses[e] == obj
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// exprString renders a selector chain for diagnostics.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "expression"
}

// checkThresholdComparisons runs the strict-comparison discipline over
// every function reachable from a kernel Scan within the unit.
func checkThresholdComparisons(pass *Pass, roots []*ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) {
	// Reachability walk, same-unit static calls.
	reachable := make(map[*ast.FuncDecl]bool)
	var walk func(fd *ast.FuncDecl)
	walk = func(fd *ast.FuncDecl) {
		if reachable[fd] {
			return
		}
		reachable[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeDecl(pass, decls, call); callee != nil {
				walk(callee)
			}
			return true
		})
	}
	for _, r := range roots {
		walk(r)
	}

	// Fixpoint: propagate threshold-derivedness through assignments and
	// same-unit call arguments.
	derived := make(map[types.Object]bool)
	isDerived := func(e ast.Expr) bool { return thresholdDerived(pass, derived, e) }
	for changed := true; changed; {
		changed = false
		for fd := range reachable {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					if len(s.Lhs) != len(s.Rhs) {
						return true
					}
					for i, rhs := range s.Rhs {
						if !isDerived(rhs) {
							continue
						}
						if id, ok := s.Lhs[i].(*ast.Ident); ok {
							obj := pass.Info.Defs[id]
							if obj == nil {
								obj = pass.Info.Uses[id]
							}
							if obj != nil && !derived[obj] {
								derived[obj] = true
								changed = true
							}
						}
					}
				case *ast.CallExpr:
					callee := calleeDecl(pass, decls, s)
					if callee == nil || !reachable[callee] {
						return true
					}
					params := flattenParams(callee)
					for i, arg := range s.Args {
						if i >= len(params) || params[i] == nil {
							continue
						}
						if isDerived(arg) {
							obj := pass.Info.Defs[params[i]]
							if obj != nil && !derived[obj] {
								derived[obj] = true
								changed = true
							}
						}
					}
				}
				return true
			})
		}
	}

	// Enforce comparison discipline.
	for fd := range reachable {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			op := be.Op.String()
			switch op {
			case "<", "<=", ">", ">=", "==", "!=":
			default:
				return true
			}
			if !isFloatExpr(pass, be.X) && !isFloatExpr(pass, be.Y) {
				return true
			}
			left, right := isDerived(be.X), isDerived(be.Y)
			if left == right {
				return true // neither side, or threshold-vs-threshold
			}
			var ok2 bool
			var fixed string
			if right { // threshold on the right: {<, >=} keep ties
				ok2 = op == "<" || op == ">="
				switch op {
				case "<=":
					fixed = "<"
				case ">":
					fixed = ">="
				}
			} else { // threshold on the left: {>, <=}
				ok2 = op == ">" || op == "<="
				switch op {
				case ">=":
					fixed = ">"
				case "<":
					fixed = "<="
				}
			}
			if ok2 {
				return true
			}
			msg := "threshold comparison %q prunes or drops exact ties: values derived from SharedThreshold.Floor/Collector.Threshold must keep the equality case (strict prune `bound < t`, tie-keeping keep `bound >= t`; DESIGN.md §11)"
			if fixed == "" { // == / != have no conservative rewrite
				pass.Reportf(be.OpPos, msg, op)
				return true
			}
			file := pass.Fset.Position(be.OpPos).Filename
			pass.ReportFix(be.OpPos, SuggestedFix{
				Message: "replace " + op + " with " + fixed,
				Edits: []TextEdit{{
					File:    file,
					Offset:  pass.Offset(be.OpPos),
					End:     pass.Offset(be.OpPos) + len(op),
					NewText: fixed,
				}},
			}, msg, op)
			return true
		})
	}
}

// calleeDecl resolves a call to a same-unit function declaration.
func calleeDecl(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.FuncDecl {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return decls[obj]
}

// flattenParams returns one ident per positional parameter (nil for
// unnamed), matching argument positions for non-variadic prefixes.
func flattenParams(fd *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, name)
		}
	}
	return out
}

// thresholdDerived reports whether e computes a value derived from the
// shared/global pruning threshold: a SharedThreshold.Floor/Load or
// Collector.Threshold call, a variable marked derived, or arithmetic
// over a derived value.
func thresholdDerived(pass *Pass, derived map[types.Object]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[x]; obj != nil {
			return derived[obj]
		}
		return false
	case *ast.ParenExpr:
		return thresholdDerived(pass, derived, x.X)
	case *ast.UnaryExpr:
		return x.Op.String() == "-" && thresholdDerived(pass, derived, x.X)
	case *ast.BinaryExpr:
		switch x.Op.String() {
		case "+", "-", "*", "/":
			return thresholdDerived(pass, derived, x.X) || thresholdDerived(pass, derived, x.Y)
		}
		return false
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		switch sel.Sel.Name {
		case "Floor", "Load":
			return isSharedThresholdType(pass.TypeOf(sel.X))
		case "Threshold":
			return isCollectorType(pass.TypeOf(sel.X))
		}
		return false
	}
	return false
}

// isSharedThresholdType matches (a pointer to) a named type called
// SharedThreshold.
func isSharedThresholdType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "SharedThreshold"
}

// isFloatExpr reports whether e has floating-point type.
func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
