// Package lint is fexlint's engine: a stdlib-only static-analysis
// framework (go/ast + go/parser + go/types, no external dependencies)
// with a suite of project-specific analyzers that mechanically enforce
// FEXIPRO's exactness and telemetry invariants:
//
//   - floatcmp:      no ==/!= between floating-point expressions outside
//     the allowlisted exact-zero idiom (Theorems 1–4 demand conservative
//     bounds, and float equality is the classic way "exact" goes wrong);
//   - stagecounters: every threshold-guarded pruning exit increments a
//     StageCounters field, TotalPruned sums every stage, StageCounters
//     literals are complete, and Metric* constants obey the Prometheus
//     naming grammar shared with internal/obs;
//   - rngseed:       no math/rand global-source calls, and no
//     non-deterministic seeds in tests/benchmarks (EXPERIMENTS.md
//     reproducibility);
//   - errcheck:      no silently discarded error results outside the
//     explicit `_ =` and `defer Close` idioms;
//   - mutcopy:       no by-value copies of types holding sync primitives
//     or atomic fields, and no mixed atomic/plain access to a field.
//
// Diagnostics can be suppressed per line with
//
//	//lint:ignore <analyzer> reason
//
// placed on the flagged line or on the line immediately above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in -analyzers and //lint:ignore.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the pass and reports diagnostics via pass.Reportf.
	Run func(pass *Pass)
}

// Pass is one (analyzer, package) execution. It carries the syntax,
// type information, and reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path of the unit being analyzed.
	PkgPath string

	unit *Unit
	out  *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an ignore directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.unit.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil when unknown.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Info.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers []string // empty or "*" entry means all analyzers
}

// parseIgnores extracts //lint:ignore directives from a file.
func parseIgnores(fset *token.FileSet, file *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			fields := strings.Fields(text)
			d := ignoreDirective{line: fset.Position(c.Pos()).Line}
			if len(fields) >= 2 {
				d.analyzers = strings.Split(fields[1], ",")
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressed reports whether an ignore directive in the unit covers the
// given analyzer at the given position (same line, or the directive is
// on the line immediately above).
func (u *Unit) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range u.ignores[pos.Filename] {
		if d.line != pos.Line && d.line != pos.Line-1 {
			continue
		}
		if len(d.analyzers) == 0 {
			return true
		}
		for _, a := range d.analyzers {
			if a == analyzer || a == "*" {
				return true
			}
		}
	}
	return false
}

// Run executes the analyzers over every unit and returns the combined,
// position-sorted diagnostics.
func Run(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, u := range units {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    u.Files,
				Pkg:      u.Pkg,
				Info:     u.Info,
				PkgPath:  u.Path,
				unit:     u,
				out:      &out,
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// All returns every registered analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		StageCounters,
		RNGSeed,
		ErrCheck,
		MutCopy,
	}
}

// ByName resolves a comma-separated analyzer list ("" selects all).
func ByName(csv string) ([]*Analyzer, error) {
	if strings.TrimSpace(csv) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
