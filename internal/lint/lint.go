// Package lint is fexlint's engine: a stdlib-only whole-program
// static-analysis framework (go/ast + go/parser + go/types, no external
// dependencies) with a suite of project-specific analyzers that
// mechanically enforce FEXIPRO's exactness, telemetry, and concurrency
// invariants:
//
//   - floatcmp:      no ==/!= between floating-point expressions outside
//     the allowlisted exact-zero idiom (Theorems 1–4 demand conservative
//     bounds, and float equality is the classic way "exact" goes wrong);
//   - stagecounters: every threshold-guarded pruning exit increments a
//     StageCounters field, TotalPruned sums every stage, StageCounters
//     literals are complete, and Metric* constants obey the Prometheus
//     naming grammar shared with internal/obs;
//   - rngseed:       no math/rand global-source calls, and no
//     non-deterministic seeds in tests/benchmarks (EXPERIMENTS.md
//     reproducibility);
//   - errcheck:      no silently discarded error results outside the
//     explicit `_ =` and `defer Close` idioms;
//   - mutcopy:       no by-value copies of types holding sync primitives
//     or atomic fields, and no mixed atomic/plain access to a field;
//   - ctxpoll:       every item-scan loop reachable from a SearchContext
//     / kernel Scan entry point must poll cancellation on a CheckStride
//     boundary (DESIGN.md §10: scans must stay cancellable);
//   - kernelcontract: engine.Kernel implementations must prune with
//     strictly-conservative threshold comparisons, must not mutate
//     kernel state inside Scan, and must be covered by a sharded_test.go
//     invoking searchtest.CheckSharded (DESIGN.md §11 exactness);
//   - lockhold:      index-mutex discipline — balanced Lock/Unlock,
//     no blocking calls (channel ops, I/O, slog, Search*Context) while
//     holding a mutex;
//   - hotalloc:      no allocations, interface boxing, or closure
//     captures inside loops marked //fex:hot;
//   - apiparity:     exported Search ⇄ SearchContext (and SearchAbove ⇄
//     SearchAboveContext) parity on every searcher, and every
//     server/experiments Config field must be wired to a cmd flag.
//   - boundflow:     dataflow taint over internal/lint/flow CFGs —
//     values from //fex:bound upper-bound computations may only reach
//     strictly-conservative threshold comparisons, with bound-fn facts
//     carrying the taint across package boundaries.
//   - registrycover: every method.Descriptor registered with a NewKernel
//     factory must route to a kernel whose package has a sharded_test.go
//     invoking searchtest.CheckSharded — the planner may only choose
//     among harness-covered methods (DESIGN.md §16).
//   - lockorder:     whole-program lock-order graph over the static call
//     graph: every nested acquisition must be declared with
//     //fex:lockorder A < B, contradictions of the declared hierarchy
//     are flagged, and cycles in the observed∪declared graph are
//     reported as deadlock candidates with the full acquisition chain;
//   - goroutinelife: every go statement needs a statically provable
//     termination/join edge (WaitGroup Done, ctx.Done exit arm,
//     closed-channel range, or bounded body), plus leak-on-error
//     checks around wg.Add;
//   - guardedby:     //fex:guard mu field contracts — guarded fields may
//     only be accessed under their mutex, and fields whose every write
//     already happens under exactly one mutex get the annotation
//     suggested as a machine-applicable fix.
//
// The driver type-checks package directories in parallel, runs each
// analyzer's per-unit pass concurrently across units, then runs an
// optional whole-program module phase over the facts the unit passes
// exported (Pass.ExportFact → Analyzer.RunModule). Analyzers may attach
// machine-applicable suggested fixes to diagnostics; `fexlint -fix`
// applies them. A baseline file supports incremental adoption: known
// findings recorded in the baseline are suppressed (and counted) until
// fixed.
//
// Diagnostics can be suppressed per line with
//
//	//lint:ignore <analyzer> reason
//
// placed on the flagged line or on the line immediately above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// TextEdit is one byte-range replacement in a file. Offsets are byte
// offsets into the file's current content; End is exclusive.
type TextEdit struct {
	File    string `json:"file"`
	Offset  int    `json:"offset"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// SuggestedFix is a machine-applicable repair for a diagnostic,
// applied by `fexlint -fix`.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	// Fixes holds machine-applicable repairs (may be empty).
	Fixes []SuggestedFix `json:"fixes,omitempty"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Fact is one unit of cross-package knowledge exported by a per-unit
// pass and consumed by module-phase analysis (Analyzer.RunModule).
// Facts are deliberately stringly-typed — (Name, Value) pairs at a
// position — which keeps them trivially mergeable and sortable across
// parallel unit passes.
type Fact struct {
	// UnitPath is the import path of the exporting unit.
	UnitPath string
	// Dir is the directory of the exporting unit, the natural join key
	// for "package X must have a test in the same directory" contracts.
	Dir string
	// Analyzer is the exporting analyzer's name; module passes only see
	// their own facts.
	Analyzer string
	// Name classifies the fact (e.g. "kernel", "checksharded",
	// "config-field", "config-field-set").
	Name string
	// Value carries the payload (e.g. a type name or field key).
	Value string
	// Pos is the resolved source position the fact was exported at;
	// module-phase diagnostics report here.
	Pos token.Position
}

// Analyzer is one named check run over a type-checked package, with an
// optional whole-program phase over exported facts.
type Analyzer struct {
	// Name is the identifier used in -analyzers and //lint:ignore.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the pass and reports diagnostics via pass.Reportf.
	Run func(pass *Pass)
	// RunModule, when non-nil, runs once after every unit pass has
	// completed, over the facts this analyzer exported. Cross-package
	// contracts (test-coverage requirements, flag parity) live here.
	RunModule func(mp *ModulePass)
}

// Pass is one (analyzer, unit) execution. It carries the syntax, type
// information, and reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path of the unit being analyzed.
	PkgPath string

	unit  *Unit
	out   *[]Diagnostic
	facts *[]Fact
}

// Reportf records a diagnostic at pos unless an ignore directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportFix records a diagnostic carrying a machine-applicable fix.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.report(pos, []SuggestedFix{fix}, format, args...)
}

func (p *Pass) report(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.unit.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// ExportFact publishes a (name, value) fact at pos for this analyzer's
// module phase.
func (p *Pass) ExportFact(pos token.Pos, name, value string) {
	*p.facts = append(*p.facts, Fact{
		UnitPath: p.unit.Path,
		Dir:      p.unit.Dir,
		Analyzer: p.Analyzer.Name,
		Name:     name,
		Value:    value,
		Pos:      p.Fset.Position(pos),
	})
}

// TypeOf returns the type of expr, or nil when unknown.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Info.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Offset returns the byte offset of pos within its file, for building
// TextEdits.
func (p *Pass) Offset(pos token.Pos) int {
	return p.Fset.Position(pos).Offset
}

// ModulePass is the whole-program phase of one analyzer: it sees the
// facts every unit pass exported (its own only) and all loaded units,
// and reports diagnostics at fact positions with the same //lint:ignore
// suppression semantics as unit passes.
type ModulePass struct {
	Analyzer *Analyzer
	// Units are all loaded units, in deterministic order.
	Units []*Unit
	// Facts are the facts exported by this analyzer's unit passes, in
	// deterministic (unit, export) order.
	Facts []Fact

	byFile map[string]*Unit
	out    *[]Diagnostic
}

// Reportf records a module-phase diagnostic at a resolved position.
func (mp *ModulePass) Reportf(pos token.Position, format string, args ...any) {
	mp.report(pos, nil, format, args...)
}

// ReportFix records a module-phase diagnostic carrying a
// machine-applicable fix.
func (mp *ModulePass) ReportFix(pos token.Position, fix SuggestedFix, format string, args ...any) {
	mp.report(pos, []SuggestedFix{fix}, format, args...)
}

func (mp *ModulePass) report(pos token.Position, fixes []SuggestedFix, format string, args ...any) {
	if u := mp.byFile[pos.Filename]; u != nil && u.suppressed(mp.Analyzer.Name, pos) {
		return
	}
	*mp.out = append(*mp.out, Diagnostic{
		Analyzer: mp.Analyzer.Name,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers []string // empty or "*" entry means all analyzers
}

// parseIgnores extracts //lint:ignore directives from a file.
func parseIgnores(fset *token.FileSet, file *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			fields := strings.Fields(text)
			d := ignoreDirective{line: fset.Position(c.Pos()).Line}
			if len(fields) >= 2 {
				d.analyzers = strings.Split(fields[1], ",")
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressed reports whether an ignore directive in the unit covers the
// given analyzer at the given position (same line, or the directive is
// on the line immediately above).
func (u *Unit) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range u.ignores[pos.Filename] {
		if d.line != pos.Line && d.line != pos.Line-1 {
			continue
		}
		if len(d.analyzers) == 0 {
			return true
		}
		for _, a := range d.analyzers {
			if a == analyzer || a == "*" {
				return true
			}
		}
	}
	return false
}

// Run executes the analyzers over every unit — unit passes in parallel,
// then each analyzer's module phase over the exported facts — and
// returns the combined, position-sorted diagnostics. Output is
// deterministic regardless of scheduling: per-unit results land in
// per-unit slots that are merged in unit order before the final sort.
func Run(units []*Unit, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(units, analyzers)
	return diags
}

// Timing is one analyzer's cost over a RunTimed call. Unit is CPU time
// summed across per-unit passes (they run in parallel, so this exceeds
// the wall-clock share); Module is the single-threaded module phase.
type Timing struct {
	Analyzer string
	Unit     time.Duration
	Module   time.Duration
}

// RunTimed is Run with a per-analyzer cost breakdown, the data behind
// fexlint's -timings flag and the CI latency budget.
func RunTimed(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	type slot struct {
		diags []Diagnostic
		facts []Fact
		durs  []time.Duration
	}
	slots := make([]slot, len(units))

	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, u := range units {
		wg.Add(1)
		go func(i int, u *Unit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := &slots[i]
			s.durs = make([]time.Duration, len(analyzers))
			for ai, a := range analyzers {
				pass := &Pass{
					Analyzer: a,
					Fset:     u.Fset,
					Files:    u.Files,
					Pkg:      u.Pkg,
					Info:     u.Info,
					PkgPath:  u.Path,
					unit:     u,
					out:      &s.diags,
					facts:    &s.facts,
				}
				start := time.Now()
				a.Run(pass)
				s.durs[ai] = time.Since(start)
			}
		}(i, u)
	}
	wg.Wait()

	timings := make([]Timing, len(analyzers))
	for ai, a := range analyzers {
		timings[ai].Analyzer = a.Name
		for i := range slots {
			timings[ai].Unit += slots[i].durs[ai]
		}
	}

	var out []Diagnostic
	factsByAnalyzer := make(map[string][]Fact)
	for i := range slots {
		out = append(out, slots[i].diags...)
		for _, f := range slots[i].facts {
			factsByAnalyzer[f.Analyzer] = append(factsByAnalyzer[f.Analyzer], f)
		}
	}

	byFile := make(map[string]*Unit)
	for _, u := range units {
		for _, f := range u.Files {
			byFile[u.Fset.Position(f.Pos()).Filename] = u
		}
	}
	for ai, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Units:    units,
			Facts:    factsByAnalyzer[a.Name],
			byFile:   byFile,
			out:      &out,
		}
		start := time.Now()
		a.RunModule(mp)
		timings[ai].Module = time.Since(start)
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, timings
}

// All returns every registered analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		StageCounters,
		RNGSeed,
		ErrCheck,
		MutCopy,
		CtxPoll,
		KernelContract,
		LockHold,
		HotAlloc,
		APIParity,
		BoundFlow,
		RegistryCover,
		LockOrder,
		GoroutineLife,
		GuardedBy,
	}
}

// ByName resolves a comma-separated analyzer list ("" selects all).
func ByName(csv string) ([]*Analyzer, error) {
	if strings.TrimSpace(csv) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
