package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Unit is one analyzable, type-checked set of files: a package together
// with its in-package test files, or an external _test package.
type Unit struct {
	// Dir is the directory holding the unit's files.
	Dir string
	// Path is the unit's import path (external test units get the
	// conventional "_test" suffix).
	Path string
	// Fset, Files, Pkg, Info carry syntax and type information.
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker diagnostics (empty on a healthy
	// tree; the driver treats them as load failures).
	TypeErrors []error

	ignores map[string][]ignoreDirective
}

// Loader parses and type-checks packages beneath a Go module without
// invoking `go list`: intra-module imports resolve by path arithmetic
// against the module root, everything else (the standard library) loads
// through the compiler-independent source importer.
//
// The loader is safe for concurrent use: Load type-checks package
// directories in parallel, and module-internal imports are built at
// most once through a single-flight cache. A wait-for graph between
// in-progress builds turns would-be deadlocks on cyclic import graphs
// into "import cycle" errors.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests controls whether _test.go files join the units.
	IncludeTests bool

	moduleRoot string
	modulePath string
	buildCtx   build.Context

	// stdMu serializes the stdlib source importer, which is not
	// documented as safe for concurrent use. Completed *types.Package
	// values ARE safe for concurrent reads, so only the Import call
	// itself is guarded.
	stdMu sync.Mutex
	std   types.Importer

	// mu guards imports: the single-flight cache of module-internal
	// import variants (built from non-test files only).
	mu      sync.Mutex
	imports map[string]*importEntry
	waits   waitGraph
}

// importEntry is one single-flight slot: the first goroutine to request
// a path builds it and closes done; everyone else waits on done.
type importEntry struct {
	done chan struct{}
	pkg  *types.Package
	err  error
}

// waitGraph records which in-progress package build is blocked on which
// import. A cycle in the "X waits for Y" relation is exactly an import
// cycle among packages currently being built, so checking reachability
// before blocking converts deadlocks into errors — on a healthy Go tree
// (acyclic imports) no edge insertion ever fails.
type waitGraph struct {
	mu    sync.Mutex
	edges map[string]map[string]bool
}

// add records that from is blocked on to, or reports an import cycle if
// doing so would close a loop.
func (g *waitGraph) add(from, to string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if from == to || g.reaches(to, from) {
		return fmt.Errorf("lint: import cycle through %q", to)
	}
	if g.edges == nil {
		g.edges = make(map[string]map[string]bool)
	}
	if g.edges[from] == nil {
		g.edges[from] = make(map[string]bool)
	}
	g.edges[from][to] = true
	return nil
}

func (g *waitGraph) remove(from, to string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.edges[from], to)
}

// reaches reports whether dst is reachable from src. Callers hold g.mu.
func (g *waitGraph) reaches(src, dst string) bool {
	if src == dst {
		return true
	}
	seen := map[string]bool{src: true}
	stack := []string{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range g.edges[n] {
			if m == dst {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// NewLoader locates the enclosing module of dir (via go.mod) and returns
// a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	return &Loader{
		Fset:         fset,
		IncludeTests: true,
		moduleRoot:   root,
		modulePath:   modPath,
		buildCtx:     ctx,
		std:          importer.ForCompiler(fset, "source", nil),
		imports:      make(map[string]*importEntry),
	}, nil
}

// ModuleRoot returns the absolute module root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// findModule walks upward from dir until it finds a go.mod and returns
// the directory and declared module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load expands the patterns ("./...", "dir/...", plain directories) into
// package directories and returns one Unit per package variant found.
// Directories are type-checked in parallel (bounded by GOMAXPROCS);
// unit order is deterministic regardless of scheduling.
func (l *Loader) Load(patterns ...string) ([]*Unit, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	type result struct {
		units []*Unit
		err   error
	}
	results := make([]result, len(dirs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			us, err := l.LoadDir(dir)
			results[i] = result{units: us, err: err}
		}(i, dir)
	}
	wg.Wait()
	var units []*Unit
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		units = append(units, r.units...)
	}
	return units, nil
}

// expand resolves CLI patterns to a sorted, deduplicated directory list.
func (l *Loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.moduleRoot, base)
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// dirFiles are the build-constraint-matched files of one directory,
// split the way `go test` splits them.
type dirFiles struct {
	pkgName  string // package name of the non-test (or in-package test) files
	normal   []string
	inTest   []string // _test.go files in the package itself
	extTest  []string // _test.go files in package <name>_test
	extName  string
	fileErrs []error
}

// scanDir classifies the .go files of dir, honoring build constraints
// for the loader's build context.
func (l *Loader) scanDir(dir string) (*dirFiles, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	df := &dirFiles{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		match, err := l.buildCtx.MatchFile(dir, name)
		if err != nil || !match {
			continue
		}
		full := filepath.Join(dir, name)
		pkgName, err := packageName(full)
		if err != nil {
			df.fileErrs = append(df.fileErrs, err)
			continue
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			df.normal = append(df.normal, full)
			df.pkgName = pkgName
		case strings.HasSuffix(pkgName, "_test"):
			df.extTest = append(df.extTest, full)
			df.extName = pkgName
		default:
			df.inTest = append(df.inTest, full)
			if df.pkgName == "" {
				df.pkgName = pkgName
			}
		}
	}
	return df, nil
}

// packageName reads just the package clause of a file.
func packageName(path string) (string, error) {
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	return f.Name.Name, nil
}

// importPathFor maps a module-relative directory to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir type-checks the package in dir and returns its analysis
// units: the package (with in-package test files when IncludeTests),
// plus the external test package when one exists.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	df, err := l.scanDir(abs)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs)
	var units []*Unit

	base := df.normal
	if l.IncludeTests {
		base = append(append([]string{}, df.normal...), df.inTest...)
	}
	var basePkg *types.Package
	if len(base) > 0 {
		u, err := l.check(abs, path, df.pkgName, base, pkgImporter{l: l, from: path})
		if err != nil {
			return nil, err
		}
		u.TypeErrors = append(u.TypeErrors, df.fileErrs...)
		units = append(units, u)
		basePkg = u.Pkg
	}

	if l.IncludeTests && len(df.extTest) > 0 {
		imp := &testImporter{
			inner:    pkgImporter{l: l, from: path + "_test"},
			basePath: path,
			base:     basePkg,
		}
		u, err := l.check(abs, path+"_test", df.extName, df.extTest, imp)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// check parses files and runs the type checker with the given importer.
func (l *Loader) check(dir, path, pkgName string, files []string, imp types.Importer) (*Unit, error) {
	var asts []*ast.File
	var typeErrs []error
	for _, f := range files {
		a, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, a)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, asts, info) // errors collected via conf.Error
	_ = pkgName
	u := &Unit{
		Dir:        dir,
		Path:       path,
		Fset:       l.Fset,
		Files:      asts,
		Pkg:        pkg,
		Info:       info,
		TypeErrors: typeErrs,
		ignores:    make(map[string][]ignoreDirective),
	}
	for _, f := range asts {
		name := l.Fset.Position(f.Pos()).Filename
		u.ignores[name] = parseIgnores(l.Fset, f)
	}
	return u, nil
}

// pkgImporter resolves imports on behalf of the package named from,
// threading the importer identity into the loader's wait-for graph so
// concurrent single-flight builds can detect import cycles.
type pkgImporter struct {
	l    *Loader
	from string
}

func (ci pkgImporter) Import(path string) (*types.Package, error) {
	return ci.l.importFrom(ci.from, path)
}

// Import implements types.Importer for intra-module and stdlib paths.
// Module-internal packages are built from their non-test files, so
// imports never observe test-only declarations.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.importFrom("", path)
}

// importFrom resolves path on behalf of from. Stdlib packages go
// through the (serialized) source importer; module-internal packages go
// through the single-flight cache: the first requester builds, everyone
// else blocks on the entry — after registering a wait-for edge, so a
// cyclic import graph produces an error instead of a deadlock.
func (l *Loader) importFrom(from, path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("lint: cgo is not supported")
	}
	if path != l.modulePath && !strings.HasPrefix(path, l.modulePath+"/") {
		return l.importStd(path)
	}

	l.mu.Lock()
	e, waiter := l.imports[path]
	if e == nil {
		e = &importEntry{done: make(chan struct{})}
		l.imports[path] = e
	}
	l.mu.Unlock()

	if waiter {
		// Someone else owns (or finished) the build.
		select {
		case <-e.done:
			return e.pkg, e.err
		default:
		}
		if err := l.waits.add(from, path); err != nil {
			return nil, err
		}
		defer l.waits.remove(from, path)
		<-e.done
		return e.pkg, e.err
	}

	// We own the build. Record the edge first so builds blocked on us
	// transitively see the chain (and so a recursive self-import in the
	// same goroutine errors out instead of waiting on itself).
	if err := l.waits.add(from, path); err != nil {
		e.err = err
		close(e.done)
		return nil, err
	}
	pkg, err := l.buildImport(path)
	l.waits.remove(from, path)
	e.pkg, e.err = pkg, err
	close(e.done)
	return pkg, err
}

// importStd resolves a non-module (stdlib or vendored-toolchain) path
// through the shared source importer, which is not safe for concurrent
// use and is therefore serialized. Its own package cache makes repeat
// imports cheap; only the first import of each path pays for parsing.
func (l *Loader) importStd(path string) (*types.Package, error) {
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// buildImport type-checks the import variant (non-test files) of a
// module-internal package. Called exactly once per path via the
// single-flight cache.
func (l *Loader) buildImport(path string) (*types.Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
	df, err := l.scanDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: import %q: %w", path, err)
	}
	if len(df.normal) == 0 {
		return nil, fmt.Errorf("lint: import %q: no Go files in %s", path, dir)
	}
	u, err := l.check(dir, path, df.pkgName, df.normal, pkgImporter{l: l, from: path})
	if err != nil {
		return nil, err
	}
	if len(u.TypeErrors) > 0 {
		return nil, fmt.Errorf("lint: import %q: %v", path, u.TypeErrors[0])
	}
	return u.Pkg, nil
}

// testImporter resolves the package under test to its test-augmented
// variant, mirroring how `go test` compiles external test packages
// against the in-package test build (export_test.go et al.).
type testImporter struct {
	inner    types.Importer
	basePath string
	base     *types.Package
}

func (t *testImporter) Import(path string) (*types.Package, error) {
	if path == t.basePath && t.base != nil {
		return t.base, nil
	}
	return t.inner.Import(path)
}
