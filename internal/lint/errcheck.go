package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck is a lite errcheck: an expression statement that calls a
// function returning an error silently drops it. An exact retrieval
// service cannot afford silent I/O failures (a truncated index file is
// a wrong-answers bug, not a style nit). Allowlisted idioms:
//
//   - explicit discards: `_ = f()` (and `x, _ := f()`), which document
//     the decision at the call site;
//   - `defer x.Close()` / Flush / Sync, the conventional best-effort
//     cleanup on read paths;
//   - the fmt package and in-memory writers (strings.Builder,
//     bytes.Buffer), whose errors are unreachable or unactionable.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flags discarded error return values outside `_ =` and `defer Close` idioms",
	Run:  runErrCheck,
}

// deferAllowed are method names whose error may be dropped in a defer.
var deferAllowed = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runErrCheck(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ExprStmt:
				if call, ok := node.X.(*ast.CallExpr); ok {
					checkDiscardedError(pass, call, "call", false)
				}
				return false
			case *ast.DeferStmt:
				checkDiscardedError(pass, node.Call, "deferred call", true)
				return false
			case *ast.GoStmt:
				checkDiscardedError(pass, node.Call, "go statement", false)
				return false
			}
			return true
		})
	}
}

func checkDiscardedError(pass *Pass, call *ast.CallExpr, verb string, deferred bool) {
	t := pass.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return // conversion, builtin, or unresolved
	}
	if !returnsError(sig) {
		return
	}
	if errCheckAllowed(pass, call, deferred) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s discards its error result; handle it or discard explicitly with `_ =`", verb)
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// errCheckAllowed applies the idiom allowlist.
func errCheckAllowed(pass *Pass, call *ast.CallExpr, deferred bool) bool {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if deferred && isSel && deferAllowed[sel.Sel.Name] && len(call.Args) == 0 {
		return true
	}
	// Package-level allowlist: the whole fmt package.
	if isSel {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() == "fmt"
			}
		}
		// Method allowlist: in-memory writers never fail meaningfully.
		if s, ok := pass.Info.Selections[sel]; ok {
			recv := s.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil {
					switch obj.Pkg().Path() + "." + obj.Name() {
					case "strings.Builder", "bytes.Buffer":
						return true
					}
				}
			}
		}
	}
	return false
}
