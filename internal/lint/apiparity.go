package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// APIParity enforces two surface contracts that keep the serving story
// honest:
//
//  1. Search ⇄ SearchContext parity. Every exported searcher type with
//     a Search(q []float64, k int) method must also expose
//     SearchContext (and SearchAbove must pair with
//     SearchAboveContext). PR 3's robustness guarantee — any query can
//     be cancelled — is only real if every entry point has a
//     context-taking form; a context-less method is a scan the server's
//     deadline guards cannot stop.
//  2. Config ⇄ flag parity (module phase, via facts). Every exported
//     field of a struct named Config outside cmd/ must be set somewhere
//     in a cmd/ package (a flag wiring site). A Config field no binary
//     can reach is dead tuning surface: it silently pins its zero value
//     in production while tests exercise the real range.
var APIParity = &Analyzer{
	Name:      "apiparity",
	Doc:       "Search⇄SearchContext method parity; every Config field wired to a cmd flag",
	Run:       runAPIParity,
	RunModule: runAPIParityModule,
}

const (
	factConfigField = "config-field"
	factConfigSet   = "config-field-set"
)

func runAPIParity(pass *Pass) {
	inCmd := strings.Contains("/"+pass.PkgPath+"/", "/cmd/")

	// Method parity: group methods by receiver type name.
	methods := make(map[string]map[string]*ast.FuncDecl)
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := receiverTypeName(fd.Recv.List[0].Type)
			if recv == "" || !ast.IsExported(recv) {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = make(map[string]*ast.FuncDecl)
			}
			methods[recv][fd.Name.Name] = fd
		}
	}
	pairs := [...][2]string{
		{"Search", "SearchContext"},
		{"SearchAbove", "SearchAboveContext"},
		{"TopKAll", "TopKAllContext"},
		{"TopKJoin", "TopKJoinContext"},
		{"BatchTopK", "BatchTopKContext"},
	}
	for typeName, ms := range methods {
		for _, p := range pairs {
			plain, ok := ms[p[0]]
			if !ok || !searcherShaped(pass, plain) {
				continue
			}
			if ms[p[1]] == nil {
				pass.Reportf(plain.Pos(),
					"%s.%s has no %s counterpart: without a context-taking form this scan cannot be cancelled by the serving deadline guards (DESIGN.md §10)",
					typeName, p[0], p[1])
			}
		}
	}

	// Config facts.
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		if !inCmd {
			exportConfigFields(pass, file)
		}
		// Wiring sites can appear anywhere, but only cmd/ wiring counts
		// as "reachable from a flag".
		if inCmd {
			exportConfigSets(pass, file)
		}
	}
}

// searcherShaped keeps the parity requirement to real retrieval entry
// points: the first parameter must be a []float64 query (Search,
// SearchAbove) or a matrix/batch (TopK*, BatchTopK — any type), and the
// method must return something (the result set).
func searcherShaped(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	switch fd.Name.Name {
	case "Search", "SearchAbove":
		t := pass.TypeOf(fd.Type.Params.List[0].Type)
		sl, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().(*types.Basic)
		return ok && b.Kind() == types.Float64
	}
	return true
}

// exportConfigFields publishes every exported field of structs named
// Config declared in this (non-cmd) unit.
func exportConfigFields(pass *Pass, file *ast.File) {
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Config" {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if !ast.IsExported(name.Name) {
						continue
					}
					pass.ExportFact(name.Pos(), factConfigField,
						pass.PkgPath+".Config."+name.Name)
				}
			}
		}
	}
}

// exportConfigSets publishes every Config field this cmd unit sets,
// through composite literals and field assignments.
func exportConfigSets(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CompositeLit:
			pkgPath, ok := configTypePath(pass.TypeOf(s))
			if !ok {
				return true
			}
			for _, elt := range s.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					pass.ExportFact(kv.Pos(), factConfigSet, pkgPath+".Config."+key.Name)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if pkgPath, ok := configTypePath(pass.TypeOf(sel.X)); ok {
					pass.ExportFact(sel.Pos(), factConfigSet, pkgPath+".Config."+sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// configTypePath returns the defining package path when t is (a pointer
// to) a named struct type called Config.
func configTypePath(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Config" || named.Obj().Pkg() == nil {
		return "", false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return "", false
	}
	return named.Obj().Pkg().Path(), true
}

// runAPIParityModule joins field facts against wiring facts.
func runAPIParityModule(mp *ModulePass) {
	wired := make(map[string]bool)
	for _, f := range mp.Facts {
		if f.Name == factConfigSet {
			wired[f.Value] = true
		}
	}
	for _, f := range mp.Facts {
		if f.Name != factConfigField || wired[f.Value] {
			continue
		}
		short := f.Value
		if i := strings.LastIndex(short, "/"); i >= 0 {
			short = short[i+1:]
		}
		mp.Reportf(f.Pos,
			"%s is not set by any cmd/ package: the field is unreachable from every shipped flag, so production silently pins its zero value — wire a flag or document why with //lint:ignore apiparity",
			short)
	}
}
