package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineEntry records known findings for one (analyzer, file, message)
// key. Count bounds how many identical findings the baseline absorbs;
// the line number is deliberately NOT part of the key so unrelated edits
// shifting a file do not invalidate the baseline.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, slash-separated
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is a set of grandfathered findings for incremental adoption:
// `fexlint -write-baseline` records the current findings, and later
// runs with `-baseline` suppress exactly those, so new findings still
// fail the build while old ones are burned down over time. The tree
// ships an EMPTY baseline — the file exists so the workflow is wired,
// and any entry appearing in it is a visible, reviewable debt marker.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// baselineKey joins the identity fields of one entry.
type baselineKey struct {
	analyzer, file, message string
}

// LoadBaseline reads a baseline file. A missing file yields an empty
// baseline and no error, so a repo without one behaves identically to
// one with the empty baseline committed.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if e.Analyzer == "" || e.File == "" || e.Count <= 0 {
			return nil, fmt.Errorf("lint: baseline %s: entry %d is malformed (need analyzer, file, count > 0)", path, i)
		}
	}
	return &b, nil
}

// Filter splits diags into (kept, suppressedCount): each baseline entry
// absorbs up to Count matching diagnostics. Diagnostic file paths are
// relativized against root before matching, mirroring how
// WriteBaseline records them.
func (b *Baseline) Filter(root string, diags []Diagnostic) ([]Diagnostic, int) {
	if b == nil || len(b.Entries) == 0 {
		return diags, 0
	}
	budget := make(map[baselineKey]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	var kept []Diagnostic
	suppressed := 0
	for _, d := range diags {
		k := baselineKey{d.Analyzer, relPath(root, d.File), d.Message}
		if budget[k] > 0 {
			budget[k]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// Dead returns the baseline entries (with Count reduced to the unused
// portion) that no current finding matches: rot that `-write-baseline`
// would prune and `-check-baseline` fails on. A baseline entry is live
// only while the finding it grandfathers still fires.
func (b *Baseline) Dead(root string, diags []Diagnostic) []BaselineEntry {
	if b == nil || len(b.Entries) == 0 {
		return nil
	}
	current := make(map[baselineKey]int)
	for _, d := range diags {
		current[baselineKey{d.Analyzer, relPath(root, d.File), d.Message}]++
	}
	var dead []BaselineEntry
	for _, e := range b.Entries {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if unused := e.Count - current[k]; unused > 0 {
			d := e
			d.Count = unused
			dead = append(dead, d)
		}
		current[k] -= e.Count // later duplicate entries see the remainder
	}
	return dead
}

// WriteBaseline records diags (relativized against root) as a baseline
// file with deterministic ordering, so the file diffs cleanly. The file
// is rebuilt from the current findings alone, so entries whose findings
// no longer fire are pruned — rewriting is also the rot-removal path.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		counts[baselineKey{d.Analyzer, relPath(root, d.File), d.Message}]++
	}
	b := Baseline{Entries: make([]BaselineEntry, 0, len(counts))}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n,
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// relPath maps an absolute diagnostic path to the module-root-relative,
// slash-separated form used inside baseline files.
func relPath(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}
