package perfgate

import (
	"bytes"
	"fmt"
	"os/exec"
	"strings"
)

// skewMarkers identify a toolchain that rejects the debug flags we pass
// — a skip condition, not a build failure.
var skewMarkers = []string{
	"unknown debug key",
	"invalid value",
	"flag provided but not defined",
	"unrecognized debug flag",
}

// Collect runs `go build -gcflags='-m -d=ssa/check_bce' patterns...` at
// root and returns the combined diagnostic output. A build that fails
// because the toolchain rejects the flags returns a skew reason; any
// other failure is a genuine error (the tree does not compile).
func Collect(goTool, root string, patterns []string) (out string, skew string, err error) {
	if goTool == "" {
		goTool = "go"
	}
	args := append([]string{"build", "-gcflags=" + GCFlags}, patterns...)
	cmd := exec.Command(goTool, args...)
	cmd.Dir = root
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	runErr := cmd.Run()
	out = buf.String()
	if runErr != nil {
		for _, marker := range skewMarkers {
			if strings.Contains(out, marker) {
				return "", fmt.Sprintf("toolchain rejected %q: %v", GCFlags, runErr), nil
			}
		}
		return "", "", fmt.Errorf("go build %s: %v\n%s", strings.Join(patterns, " "), runErr, out)
	}
	return out, "", nil
}

// Run executes the whole gate: compile, scan annotations, load the
// manifest, evaluate. A missing manifest is a problem (the gate cannot
// pass vacuously once annotations exist), while toolchain skew is a
// skip.
func Run(goTool, root, manifestPath string, patterns []string) (*Result, error) {
	spans, err := ScanAnnotations(root)
	if err != nil {
		return nil, err
	}
	out, skew, err := Collect(goTool, root, patterns)
	if err != nil {
		return nil, err
	}
	if skew != "" {
		return &Result{SkipReason: skew}, nil
	}
	committed, err := LoadManifest(manifestPath)
	if err != nil {
		if len(spans) == 0 {
			return &Result{}, nil
		}
		return &Result{Problems: []Problem{{
			Msg: fmt.Sprintf("cannot load perf-facts manifest: %v; run fexlint -write-perf-facts", err),
		}}}, nil
	}
	return Evaluate(out, spans, committed), nil
}

// Write regenerates the manifest from the current tree — the
// -write-perf-facts path. Toolchain skew is an error here: facts cannot
// be recorded from output we cannot parse.
func Write(goTool, root, manifestPath string, patterns []string) (*Manifest, error) {
	spans, err := ScanAnnotations(root)
	if err != nil {
		return nil, err
	}
	out, skew, err := Collect(goTool, root, patterns)
	if err != nil {
		return nil, err
	}
	if skew == "" {
		var m *Manifest
		if m, skew = CurrentManifest(out, spans); skew == "" {
			return m, SaveManifest(manifestPath, m)
		}
	}
	return nil, fmt.Errorf("cannot record perf facts: %s", skew)
}
