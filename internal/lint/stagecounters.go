package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fexipro/internal/obs"
)

// StageCounters enforces the telemetry contract between the pruning
// cascade and the StageCounters schema introduced by the observability
// layer:
//
//  1. any threshold-guarded exit (an if whose condition compares a value
//     derived from a Threshold() call, inside a method on a type that
//     carries a Stats field) must increment a PrunedBy* counter before
//     leaving the loop or function — a pruning decision that is not
//     counted silently corrupts Tables 3/7-style telemetry;
//  2. a struct type named Stats that declares PrunedBy* fields must have
//     a TotalPruned method referencing every one of them (the single
//     collapse point for the per-stage counters);
//  3. a keyed composite literal of a struct named StageCounters must set
//     every field, so schema conversions cannot silently drop a stage;
//  4. string constants named Metric* must satisfy the Prometheus metric
//     naming grammar, via the same obs.ValidMetricName the runtime
//     registry enforces — the static and dynamic checks cannot diverge;
//  5. a PrunedBy* field must never be plainly assigned (counters are
//     monotone within a query: use += or ++; reset the whole Stats).
var StageCounters = &Analyzer{
	Name: "stagecounters",
	Doc:  "enforces StageCounters increments on pruning exits, TotalPruned completeness, and Prometheus metric-name grammar",
	Run:  runStageCounters,
}

func runStageCounters(pass *Pass) {
	for _, file := range pass.Files {
		checkMetricConsts(pass, file)
		checkStatsTypes(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Body != nil && hasStatsReceiver(pass, node) {
					checkThresholdExits(pass, node)
				}
			case *ast.CompositeLit:
				checkStageCountersLit(pass, node)
			case *ast.AssignStmt:
				checkPlainCounterAssign(pass, node)
			}
			return true
		})
	}
}

// --- check 4: Metric* constants obey the Prometheus grammar ----------

func checkMetricConsts(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Metric") {
					continue
				}
				c, ok := pass.Info.Defs[name].(*types.Const)
				if !ok || c.Val().Kind() != constant.String {
					continue
				}
				v := constant.StringVal(c.Val())
				if !obs.ValidMetricName(v) {
					pass.Reportf(name.Pos(),
						"metric-name constant %s = %q violates the Prometheus naming grammar [a-zA-Z_:][a-zA-Z0-9_:]*", name.Name, v)
				}
			}
		}
	}
}

// --- check 2: Stats types collapse every PrunedBy* field -------------

func checkStatsTypes(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Stats" {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			var stages []string
			for _, f := range st.Fields.List {
				for _, n := range f.Names {
					if strings.HasPrefix(n.Name, "PrunedBy") {
						stages = append(stages, n.Name)
					}
				}
			}
			if len(stages) == 0 {
				continue
			}
			method := findMethod(pass, ts.Name.Name, "TotalPruned")
			if method == nil {
				pass.Reportf(ts.Name.Pos(),
					"Stats declares %d PrunedBy* counters but no TotalPruned() collapse method", len(stages))
				continue
			}
			used := make(map[string]bool)
			ast.Inspect(method.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					used[sel.Sel.Name] = true
				}
				return true
			})
			var missing []string
			for _, s := range stages {
				if !used[s] {
					missing = append(missing, s)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(method.Name.Pos(),
					"TotalPruned omits stage counter(s) %s; every PrunedBy* field must be summed", strings.Join(missing, ", "))
			}
		}
	}
}

// findMethod locates the method named methodName whose receiver base
// type is typeName, anywhere in the unit.
func findMethod(pass *Pass, typeName, methodName string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != methodName || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if receiverTypeName(fd.Recv.List[0].Type) == typeName {
				return fd
			}
		}
	}
	return nil
}

func receiverTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr:
		return receiverTypeName(t.X)
	}
	return ""
}

// --- check 3: keyed StageCounters literals are complete --------------

func checkStageCountersLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "StageCounters" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || len(lit.Elts) == 0 {
		return
	}
	set := make(map[string]bool)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: the compiler enforces completeness
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			set[id.Name] = true
		}
	}
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		if name := st.Field(i).Name(); !set[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(lit.Pos(),
			"StageCounters literal omits field(s) %s; partial conversions silently drop pruning stages", strings.Join(missing, ", "))
	}
}

// --- check 5: stage counters are monotone --------------------------

func checkPlainCounterAssign(pass *Pass, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN {
		return
	}
	for _, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !strings.HasPrefix(sel.Sel.Name, "PrunedBy") {
			continue
		}
		pass.Reportf(sel.Sel.Pos(),
			"plain assignment to stage counter %s; counters are monotone within a query (use += or ++, reset the whole Stats value)", sel.Sel.Name)
	}
}

// --- check 1: threshold-guarded exits must count the prune -----------

// hasStatsReceiver reports whether fd is a method on a struct that holds
// a field of a named type called Stats (e.g. search.Stats).
func hasStatsReceiver(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if named, ok := ft.(*types.Named); ok && named.Obj().Name() == "Stats" {
			return true
		}
	}
	return false
}

// checkThresholdExits performs a local taint pass: identifiers assigned
// from a Threshold() call (transitively) taint the conditions they
// appear in; any tainted comparison guarding a break/continue/return
// must increment a PrunedBy* counter in that branch.
func checkThresholdExits(pass *Pass, fd *ast.FuncDecl) {
	tainted := make(map[types.Object]bool)
	// Fixpoint over the function's assignments (bodies are short; the
	// bound prevents pathological loops).
	for iter := 0; iter < 8; iter++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) == 0 {
				return true
			}
			dirty := false
			for _, rhs := range as.Rhs {
				if exprTainted(pass, rhs, tainted) {
					dirty = true
				}
			}
			if !dirty {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !condIsThresholdCompare(pass, ifs.Cond, tainted) {
			return true
		}
		for _, branch := range []ast.Stmt{ifs.Body, ifs.Else} {
			block, ok := branch.(*ast.BlockStmt)
			if !ok || !endsInExit(block) {
				continue
			}
			if !incrementsStageCounter(block) {
				pass.Reportf(ifs.If,
					"threshold-guarded exit does not increment a PrunedBy* stage counter; uncounted prunes corrupt the Tables 3/7 telemetry")
			}
		}
		return true
	})
}

// exprTainted reports whether e contains a Threshold() call or a tainted
// identifier.
func exprTainted(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if name == "Threshold" || name == "threshold" {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.Info.ObjectOf(node); obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// condIsThresholdCompare reports whether cond contains an ordered
// comparison with a tainted side.
func condIsThresholdCompare(pass *Pass, cond ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if exprTainted(pass, be.X, tainted) || exprTainted(pass, be.Y, tainted) {
				found = true
			}
		}
		return !found
	})
	return found
}

// endsInExit reports whether the block's last statement leaves the loop
// or function.
func endsInExit(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.CONTINUE
	case *ast.ReturnStmt:
		return true
	}
	return false
}

// incrementsStageCounter reports whether the block (recursively)
// contains a += or ++ on a field named PrunedBy*.
func incrementsStageCounter(block *ast.BlockStmt) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN {
				for _, lhs := range node.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "PrunedBy") {
						found = true
					}
				}
			}
		case *ast.IncDecStmt:
			if node.Tok == token.INC {
				if sel, ok := node.X.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "PrunedBy") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
