package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fexipro/internal/lint/flow"
)

// LockHold enforces index-mutex discipline (DESIGN.md §10/§12): the
// server serializes index access behind a sync.Mutex, and the latency
// budget of every request in the queue includes whatever runs while
// that mutex is held. The analyzer checks, per function:
//
//   - every mu.Lock()/mu.RLock() is balanced by an Unlock — either a
//     `defer mu.Unlock()` or a positionally later mu.Unlock() in the
//     same function (cross-function lock handoff needs a
//     //lint:ignore lockhold directive citing the protocol);
//   - `defer mu.Lock()` — the classic typo for `defer mu.Unlock()` —
//     is flagged with a suggested fix;
//   - no blocking calls while the mutex is held: channel sends/receives
//     and selects, time.Sleep, slog logging (a Handler may write to a
//     blocked pipe), Search*/TopK*Context calls (a whole scan under the
//     lock extends every queued request by a full scan), and calls
//     through function-typed values (the callee is unknown, so the
//     hold-time is unbounded; annotate the call site if the indirection
//     is the documented design, as in server.searchLocked).
//
// The blocking check is interprocedural within a unit: a same-package
// helper whose body (transitively) performs one of the blocking
// operations above is a BLOCKER, and calling it inside a held region is
// reported with the chain of calls that reaches the blocking operation.
// Mutex operations themselves are deliberately NOT treated as blocking
// in callee summaries — lock nesting is the region analysis's job, and
// summarizing Lock as "blocks" would condemn every locked helper.
//
// The held region is the lexical span from the Lock to its matching
// Unlock (or to function end under a defer). Function literals are not
// analyzed as part of the region: they usually run after the function
// returns.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "mutex discipline: balanced Lock/Unlock, no blocking calls while holding a lock",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) {
	decls := make(map[types.Object]*ast.FuncDecl)
	var declOrder []types.Object
	var fds []*ast.FuncDecl
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue // tests block on locks deliberately (race harnesses)
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
				declOrder = append(declOrder, obj)
			}
			fds = append(fds, fd)
		}
	}
	blockers := blockerFixpoint(pass, decls, declOrder)
	for _, fd := range fds {
		checkLocks(pass, blockers, fd)
	}
}

// blockerFixpoint computes which same-unit functions (transitively,
// through same-unit static calls) perform a blocking operation, mapping
// each to the call chain that reaches it (e.g. "relay → time.Sleep").
func blockerFixpoint(pass *Pass, decls map[types.Object]*ast.FuncDecl, declOrder []types.Object) map[types.Object]string {
	blockers := make(map[types.Object]string)
	for changed := true; changed; {
		changed = false
		for _, obj := range declOrder {
			if blockers[obj] != "" {
				continue
			}
			if reason := directBlockReason(pass, blockers, decls[obj].Body); reason != "" {
				blockers[obj] = reason
				changed = true
			}
		}
	}
	return blockers
}

// directBlockReason returns why body blocks (one representative reason),
// or "". Closures are skipped (they run on their own schedule), and a
// select with a default clause exempts its whole subtree, mirroring the
// region analysis.
func directBlockReason(pass *Pass, blockers map[types.Object]string, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			reason = "channel send"
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				reason = "channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) {
				reason = "blocking select"
			}
			return false // comm clauses were judged as a unit
		case *ast.CallExpr:
			if msg := blockingCallMessage(pass, s); msg != "" {
				reason = msg
				return false
			}
			if callee := flow.Callee(pass.Info, s); callee != nil {
				if r := blockers[callee]; r != "" {
					reason = callee.Name() + " → " + r
				}
			}
		}
		return true
	})
	return reason
}

func checkLocks(pass *Pass, blockers map[types.Object]string, fd *ast.FuncDecl) {
	events := collectLockEvents(pass, fd.Body)
	if len(events) == 0 {
		return
	}
	regions, deferTypos, unmatched := pairLockRegions(events, fd.Body.End())

	for _, ev := range deferTypos {
		// defer mu.Lock() is almost certainly a typo for Unlock.
		want := "Unlock"
		if ev.name == "RLock" {
			want = "RUnlock"
		}
		file := pass.Fset.Position(ev.pos).Filename
		off := pass.Offset(ev.selPos)
		pass.ReportFix(ev.pos, SuggestedFix{
			Message: "replace defer " + ev.path + "." + ev.name + " with defer " + ev.path + "." + want,
			Edits: []TextEdit{{
				File:    file,
				Offset:  off,
				End:     off + len(ev.name),
				NewText: want,
			}},
		}, "defer %s.%s() locks at function exit — almost certainly a typo for defer %s.%s()",
			ev.path, ev.name, ev.path, want)
	}
	for _, ev := range unmatched {
		unlock := "Unlock"
		if ev.name == "RLock" {
			unlock = "RUnlock"
		}
		pass.Reportf(ev.pos,
			"%s.%s() has no matching %s in this function — if the lock is handed off across functions, document the protocol with a //lint:ignore lockhold directive",
			ev.path, ev.name, unlock)
	}

	for _, r := range regions {
		flagBlockingInRegion(pass, blockers, fd, r)
	}
}

// flagBlockingInRegion reports blocking operations between the lock and
// its release.
func flagBlockingInRegion(pass *Pass, blockers map[types.Object]string, fd *ast.FuncDecl, r lockRegion) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n.Pos() <= r.pos || n.Pos() >= r.end {
			// Outside the held span. Children may still overlap when the
			// node straddles the region, so keep descending.
			if n.End() <= r.pos || n.Pos() >= r.end {
				return n.End() > r.pos // prune only fully-before subtrees
			}
			return true
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send while holding %s — a full channel stalls every caller queued on the mutex", r.path)
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				pass.Reportf(s.Pos(), "channel receive while holding %s — an empty channel stalls every caller queued on the mutex", r.path)
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) {
				pass.Reportf(s.Pos(), "blocking select while holding %s", r.path)
			}
			return false // comm clauses were judged as a unit
		case *ast.CallExpr:
			if msg := blockingCallMessage(pass, s); msg != "" {
				pass.Reportf(s.Pos(), "%s while holding %s — move it after the unlock or document why with //lint:ignore lockhold", msg, r.path)
			} else if callee := flow.Callee(pass.Info, s); callee != nil {
				if reason := blockers[callee]; reason != "" {
					pass.Reportf(s.Pos(), "call to %s while holding %s reaches a blocking operation (%s → %s) — move it after the unlock or document why with //lint:ignore lockhold",
						callee.Name(), r.path, callee.Name(), reason)
				}
			}
		}
		return true
	})
}

// selectHasDefault reports whether a select has a default clause (a
// non-blocking poll).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCallMessage classifies a call as blocking-while-locked, or
// returns "".
func blockingCallMessage(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// slog logging: handlers may write to a blocked sink.
		if isSlogValue(pass, fun.X) {
			switch name {
			case "Info", "Warn", "Error", "Debug", "Log", "InfoContext", "WarnContext", "ErrorContext", "DebugContext", "LogAttrs":
				return "slog call (" + name + ")"
			}
		}
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "time" && name == "Sleep" {
			return "time.Sleep"
		}
		// A whole scan under the index mutex.
		if isSearchEntryName(name) {
			return name + " call (a full scan)"
		}
	case *ast.Ident:
		// Calls through function-typed values: unknown, unbounded callee.
		obj := pass.Info.Uses[fun]
		if obj == nil {
			return ""
		}
		if _, isVar := obj.(*types.Var); isVar {
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				return "call through function value " + fun.Name + " (unbounded hold time)"
			}
		}
	}
	return ""
}

// isSearchEntryName matches the context-searcher entry points whose
// calls are whole scans.
func isSearchEntryName(name string) bool {
	switch name {
	case "SearchContext", "SearchAboveContext", "TopKAllContext", "TopKJoinContext", "BatchTopKContext":
		return true
	}
	return false
}

// isSlogValue reports whether e is a *slog.Logger or the slog package.
func isSlogValue(pass *Pass, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok {
		if pkg, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			return pkg.Imported().Path() == "log/slog"
		}
	}
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "log/slog" && named.Obj().Name() == "Logger"
}

// isMutexType, flattenChain and the event/region machinery live in
// conc.go, shared with the lockorder, goroutinelife and guardedby
// analyzers.
