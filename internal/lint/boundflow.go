package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fexipro/internal/lint/flow"
)

// BoundFlow enforces the bound-value discipline of PAPER.md §4 with
// real dataflow instead of token matching: a value produced by an
// upper-bound computation (SVD partial-sum bounds, scaled-integer
// bounds, LEMP bucket caps) is TAINTED, and a tainted value may only
// reach strictly-conservative threshold comparisons. Everything else a
// bound can do — feed Stats counters, flow into further bound
// arithmetic, be rescaled into an exact score that is pushed to the
// collector — is legal, because only comparisons decide pruning.
//
// Sources. An assignment (or var declaration) carrying a //fex:bound
// directive on its line or the line above taints its left-hand sides; a
// function whose declaration carries //fex:bound taints its results at
// every call site, across package boundaries (unit passes export
// "bound-fn" facts; the module phase joins them, so the analysis is
// interprocedural where kernelcontract's fixpoint was unit-local).
//
// Propagation is direction-aware over each function's CFG
// (internal/lint/flow): if b is an upper bound of s, then b+x, b-x,
// b*x, b/x and x+b, x*b still dominate the corresponding function of s,
// so taint survives; x-b and x/b flip the inequality's direction, so
// taint DROPS — that is exactly the `theta = t / lenBound` idiom in the
// SS-L and LEMP scans, which turns a bound into a conservative
// per-item threshold. Reassigning a variable from a clean expression
// (the sanitizing exact recompute, `v = vec.Dot(q, p)`) kills its
// taint: the analysis is flow-sensitive, not syntactic.
//
// Sinks. (1) A comparison with a tainted side must keep the equality
// case of the TRUE score: bound on the left admits only `<` (strict
// prune) and `>=` (tie-keeping keep); bound on the right admits `>` and
// `<=`; `==`/`!=` are never legal (Theorems 1–4 give b >= s, nothing
// more). (2) A tainted value returned from a function NOT annotated
// //fex:bound escapes the analysis unlabelled and is reported — either
// the function is a bound combinator (annotate it, and callers inherit
// the taint) or a bound is leaking into a context that will treat it as
// an exact score.
var BoundFlow = &Analyzer{
	Name:      "boundflow",
	Doc:       "bound-derived values (//fex:bound) may only reach strictly-conservative threshold comparisons; interprocedural via facts",
	Run:       runBoundFlow,
	RunModule: runBoundFlowModule,
}

const factBoundFn = "bound-fn"

// runBoundFlow only exports facts: every function declaration annotated
// //fex:bound becomes a "bound-fn" fact keyed by its qualified name.
// All checking happens in the module phase, where the full cross-unit
// fact set is available, so findings never depend on which unit a
// caller lives in.
func runBoundFlow(pass *Pass) {
	for _, file := range pass.Files {
		lines := boundDirectiveLines(pass.Fset, file)
		if len(lines) == 0 {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !annotatedAt(lines, pass.Fset.Position(fd.Pos()).Line) {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				pass.ExportFact(fd.Pos(), factBoundFn, obj.FullName())
			}
		}
	}
}

func runBoundFlowModule(mp *ModulePass) {
	boundFns := make(map[string]bool)
	for _, f := range mp.Facts {
		if f.Name == factBoundFn {
			boundFns[f.Value] = true
		}
	}
	for _, u := range mp.Units {
		checkBoundFlowUnit(mp, u, boundFns)
	}
}

// boundDirectiveLines returns the set of lines in file carrying a
// //fex:bound directive.
func boundDirectiveLines(fset *token.FileSet, file *ast.File) map[int]bool {
	var lines map[int]bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "fex:bound" || strings.HasPrefix(text, "fex:bound ") {
				if lines == nil {
					lines = make(map[int]bool)
				}
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// annotatedAt reports whether a directive sits on line or the line
// above — the same placement rule as //fex:hot and //lint:ignore.
func annotatedAt(lines map[int]bool, line int) bool {
	return lines[line] || lines[line-1]
}

func checkBoundFlowUnit(mp *ModulePass, u *Unit, boundFns map[string]bool) {
	for _, file := range u.Files {
		lines := boundDirectiveLines(u.Fset, file)
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBoundFlowFunc(mp, u, fd, lines, boundFns)
		}
	}
}

// isBoundCall reports whether e is a call whose static callee is a
// //fex:bound function (same unit or any other — the fact set is
// module-wide).
func isBoundCall(info *types.Info, boundFns map[string]bool, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := flow.Callee(info, call)
	if callee == nil {
		return false
	}
	fn, ok := callee.(*types.Func)
	return ok && boundFns[fn.FullName()]
}

func checkBoundFlowFunc(mp *ModulePass, u *Unit, fd *ast.FuncDecl, lines map[int]bool, boundFns map[string]bool) {
	// Prefilter: the function must contain at least one taint source —
	// an annotated statement line within its span, or a call to a
	// bound function — before the CFG is worth building.
	startLine := u.Fset.Position(fd.Body.Pos()).Line
	endLine := u.Fset.Position(fd.Body.End()).Line
	hasSource := false
	for line := range lines {
		if line >= startLine && line <= endLine {
			hasSource = true
			break
		}
	}
	if !hasSource && len(boundFns) > 0 {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if hasSource {
				return false
			}
			if e, ok := n.(ast.Expr); ok && isBoundCall(u.Info, boundFns, e) {
				hasSource = true
				return false
			}
			return true
		})
	}
	if !hasSource {
		return
	}

	g := flow.New(fd.Body)
	res := flow.Solve(g, flow.TaintSpec{
		Info: u.Info,
		Source: func(e ast.Expr) bool {
			return isBoundCall(u.Info, boundFns, e)
		},
		SourceStmt: func(stmt ast.Node) bool {
			return annotatedAt(lines, u.Fset.Position(stmt.Pos()).Line)
		},
		Binary: boundBinaryRule,
	})

	fnIsBound := annotatedAt(lines, u.Fset.Position(fd.Pos()).Line)
	for _, blk := range g.Blocks {
		for _, node := range blk.Nodes {
			checkBoundFlowNode(mp, u, res, node, fnIsBound)
		}
	}
}

// boundBinaryRule is the direction-aware propagation: an upper bound
// survives +, * on either side and -, / on the LEFT; subtracting a
// bound or dividing by one flips the inequality direction and yields a
// conservative threshold instead, so taint drops. Comparisons and
// logical operators produce booleans, never bounds.
func boundBinaryRule(op token.Token, x, y ast.Expr, xt, yt bool) bool {
	switch op {
	case token.ADD, token.MUL:
		return xt || yt
	case token.SUB, token.QUO:
		return xt
	case token.REM, token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
		return xt || yt
	}
	return false
}

// checkBoundFlowNode inspects one CFG node's expressions for illegal
// uses of tainted values.
func checkBoundFlowNode(mp *ModulePass, u *Unit, res *flow.TaintResult, node ast.Node, fnIsBound bool) {
	// Unwrap the flow package's synthetic node kinds into inspectable
	// expressions; go/ast.Inspect panics on non-standard nodes.
	var roots []ast.Node
	switch n := node.(type) {
	case flow.Cond:
		roots = []ast.Node{n.Expr}
	case *flow.RangeAssign:
		roots = []ast.Node{n.X}
	default:
		roots = []ast.Node{node}
	}

	for _, root := range roots {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // literals run on their own schedule; out of scope
			}
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkBoundComparison(mp, u, res, node, e)
			case *ast.ReturnStmt:
				if fnIsBound {
					return true
				}
				for _, r := range e.Results {
					if res.Tainted(node, r) {
						mp.Reportf(u.Fset.Position(r.Pos()),
							"bound-derived value returned from a function not annotated //fex:bound: callers will treat the result as exact; annotate the function (making callers inherit the taint) or recompute the exact value before returning (PAPER.md §4)")
					}
				}
			}
			return true
		})
	}
}

func checkBoundComparison(mp *ModulePass, u *Unit, res *flow.TaintResult, node ast.Node, be *ast.BinaryExpr) {
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	xt := res.Tainted(node, be.X)
	yt := res.Tainted(node, be.Y)
	if xt == yt {
		// Neither side, or bound-vs-bound arithmetic (e.g. comparing two
		// bounds to pick the tighter) — no pruning decision to audit.
		return
	}
	op := be.Op.String()
	var legal bool
	var fixed string
	if xt { // bound on the left: prune `b < t`, keep `b >= t`
		legal = be.Op == token.LSS || be.Op == token.GEQ
		switch be.Op {
		case token.LEQ:
			fixed = "<"
		case token.GTR:
			fixed = ">="
		}
	} else { // bound on the right: `t > b` prune, `t <= b` keep
		legal = be.Op == token.GTR || be.Op == token.LEQ
		switch be.Op {
		case token.GEQ:
			fixed = ">"
		case token.LSS:
			fixed = "<="
		}
	}
	if legal {
		return
	}
	msg := "comparison %q on a bound-derived value prunes or drops exact ties: an upper bound b >= score admits only strict prune (b < t) and tie-keeping keep (b >= t)"
	if fixed != "" {
		msg += "; use " + fixed
	}
	mp.Reportf(u.Fset.Position(be.OpPos), msg, op)
}
