package flow

import (
	"go/ast"
	"go/types"
)

// Def is one definition site: obj was assigned at node. A nil Node
// marks an entry definition (parameter, named result, closed-over
// variable) live on function entry.
type Def struct {
	Obj  types.Object
	Node ast.Node
}

// ReachingDefs holds the classic reaching-definitions solution: for
// each CFG node, which definitions of each variable may be the one in
// force when the node executes.
type ReachingDefs struct {
	// before maps each CFG node to the definitions reaching its entry,
	// keyed by variable.
	before map[ast.Node]map[types.Object][]Def
}

// Defs returns the definitions of obj that may reach node. An empty
// result for a variable used at node means obj is defined outside the
// analyzed body (package-level, or entry defs weren't seeded).
func (r *ReachingDefs) Defs(node ast.Node, obj types.Object) []Def {
	return r.before[node][obj]
}

// SoleDef returns the unique definition of obj reaching node, or a zero
// Def and false when zero or multiple definitions reach — the sparse
// "look through this local" query boundflow uses to walk from a
// comparison operand back to the expression that produced it.
func (r *ReachingDefs) SoleDef(node ast.Node, obj types.Object) (Def, bool) {
	defs := r.before[node][obj]
	if len(defs) == 1 {
		return defs[0], true
	}
	return Def{}, false
}

// SolveReaching runs reaching definitions over g. entryObjs seeds
// entry definitions (typically the function's parameters and receiver).
func SolveReaching(g *Graph, info *types.Info, entryObjs []types.Object) *ReachingDefs {
	entry := make([]map[types.Object][]Def, len(g.Blocks))
	for i := range entry {
		entry[i] = make(map[types.Object][]Def)
	}
	for _, obj := range entryObjs {
		if obj != nil {
			entry[g.Entry.Index][obj] = []Def{{Obj: obj}}
		}
	}

	work := []*Block{g.Entry}
	inWork := make([]bool, len(g.Blocks))
	visited := make([]bool, len(g.Blocks))
	inWork[g.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false
		visited[blk.Index] = true
		state := cloneDefs(entry[blk.Index])
		for _, n := range blk.Nodes {
			transferDefs(info, state, n)
		}
		for _, succ := range blk.Succs {
			changed := mergeDefs(entry[succ.Index], state)
			if (changed || !visited[succ.Index]) && !inWork[succ.Index] {
				inWork[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	res := &ReachingDefs{before: make(map[ast.Node]map[types.Object][]Def)}
	for _, blk := range g.Blocks {
		state := cloneDefs(entry[blk.Index])
		for _, n := range blk.Nodes {
			res.before[n] = cloneDefs(state)
			transferDefs(info, state, n)
		}
	}
	return res
}

func cloneDefs(m map[types.Object][]Def) map[types.Object][]Def {
	out := make(map[types.Object][]Def, len(m))
	for k, v := range m {
		out[k] = append([]Def(nil), v...)
	}
	return out
}

// mergeDefs unions src into dst, reporting change. Definition identity
// is (Obj, Node).
func mergeDefs(dst, src map[types.Object][]Def) bool {
	changed := false
	for obj, defs := range src {
		for _, d := range defs {
			if !hasDef(dst[obj], d) {
				dst[obj] = append(dst[obj], d)
				changed = true
			}
		}
	}
	return changed
}

func hasDef(defs []Def, d Def) bool {
	for _, e := range defs {
		if e.Node == d.Node && e.Obj == d.Obj {
			return true
		}
	}
	return false
}

// transferDefs applies one node's gen/kill effect: a definition of obj
// at n kills every other definition of obj.
func transferDefs(info *types.Info, state map[types.Object][]Def, n ast.Node) {
	define := func(obj types.Object) {
		if obj != nil {
			state[obj] = []Def{{Obj: obj, Node: n}}
		}
	}
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			define(lhsObj(lhs))
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						define(info.Defs[name])
					}
				}
			}
		}
	case *ast.IncDecStmt:
		define(lhsObj(s.X))
	case *RangeAssign:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e != nil {
				define(lhsObj(e))
			}
		}
	}
}
