package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// objset is the lattice element: the set of variables currently tainted.
type objset map[types.Object]bool

func (s objset) clone() objset {
	out := make(objset, len(s))
	for k, v := range s {
		if v {
			out[k] = true
		}
	}
	return out
}

// union merges src into dst, reporting whether dst changed.
func (s objset) union(src objset) bool {
	changed := false
	for k, v := range src {
		if v && !s[k] {
			s[k] = true
			changed = true
		}
	}
	return changed
}

// TaintSpec configures one taint analysis over a Graph.
type TaintSpec struct {
	Info *types.Info

	// Source reports whether expr introduces taint by itself (a call to
	// a bound-producing function, an annotated definition site, ...).
	// It is consulted at every sub-expression.
	Source func(expr ast.Expr) bool

	// Binary decides whether taint propagates through `x op y` given
	// each operand's taint. Nil means "either operand taints" — the
	// classic may-taint rule. boundflow installs a direction-aware rule
	// (an upper bound stays an upper bound under + and *, but dividing
	// BY a bound, or subtracting a bound, flips the direction and drops
	// the taint).
	Binary func(op token.Token, x, y ast.Expr, xTainted, yTainted bool) bool

	// SourceStmt reports whether an entire assignment/declaration
	// statement is an annotated source: its left-hand sides become
	// tainted regardless of the right-hand expression (the //fex:bound
	// directive on a definition line).
	SourceStmt func(stmt ast.Node) bool
}

// TaintResult answers flow-sensitive taint queries after Solve.
type TaintResult struct {
	spec TaintSpec
	// before holds the tainted-variable set in force immediately before
	// each CFG node executes.
	before map[ast.Node]objset
}

// Solve runs the taint analysis to fixpoint over g and returns the
// per-node solution. The analysis is a forward may-analysis with strong
// updates on plain `x = ...` assignments (reassigning a variable from
// an untainted expression KILLS its taint — the sanitizing
// exact-recompute idiom) and weak updates through fields and indices.
func Solve(g *Graph, spec TaintSpec) *TaintResult {
	entry := make([]objset, len(g.Blocks))
	for i := range entry {
		entry[i] = objset{}
	}

	// Worklist to fixpoint. A successor is (re)queued when its entry
	// state changes OR it has never been processed — without the
	// first-visit rule, blocks whose entry stays the bottom element
	// would never run their transfer functions at all.
	work := []*Block{g.Entry}
	inWork := make([]bool, len(g.Blocks))
	visited := make([]bool, len(g.Blocks))
	inWork[g.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false
		visited[blk.Index] = true
		state := entry[blk.Index].clone()
		for _, n := range blk.Nodes {
			transfer(spec, state, n)
		}
		for _, succ := range blk.Succs {
			changed := entry[succ.Index].union(state)
			if (changed || !visited[succ.Index]) && !inWork[succ.Index] {
				inWork[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	// One more deterministic pass to record the state before each node.
	res := &TaintResult{spec: spec, before: make(map[ast.Node]objset)}
	for _, blk := range g.Blocks {
		state := entry[blk.Index].clone()
		for _, n := range blk.Nodes {
			res.before[n] = state.clone()
			transfer(spec, state, n)
		}
	}
	return res
}

// Tainted reports whether expr is tainted at the program point just
// before node executes. node must be a CFG node of the solved graph;
// unknown nodes answer with the empty state (nothing tainted).
func (t *TaintResult) Tainted(node ast.Node, expr ast.Expr) bool {
	return exprTaint(t.spec, t.before[node], expr)
}

// TaintedObj reports whether the variable obj is tainted just before
// node executes.
func (t *TaintResult) TaintedObj(node ast.Node, obj types.Object) bool {
	return t.before[node][obj]
}

// transfer applies one CFG node's effect to state in place.
func transfer(spec TaintSpec, state objset, n ast.Node) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		annotated := spec.SourceStmt != nil && spec.SourceStmt(s)
		// Evaluate RHS taint against the pre-state, then update.
		taints := make([]bool, len(s.Lhs))
		switch {
		case len(s.Lhs) == len(s.Rhs):
			for i, rhs := range s.Rhs {
				tv := exprTaint(spec, state, rhs)
				if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
					// Compound assignment x op= y behaves like x = x op y.
					op := compoundOp(s.Tok)
					xt := exprTaint(spec, state, s.Lhs[i])
					tv = combine(spec, op, s.Lhs[i], rhs, xt, tv)
				}
				taints[i] = tv || annotated
			}
		case len(s.Rhs) == 1:
			// Tuple assignment: the call/comma-ok result taints every
			// left-hand side if the source expression is tainted.
			tv := exprTaint(spec, state, s.Rhs[0]) || annotated
			for i := range taints {
				taints[i] = tv
			}
		}
		for i, lhs := range s.Lhs {
			assign(spec, state, lhs, taints[i])
		}

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		annotated := spec.SourceStmt != nil && spec.SourceStmt(s)
		for _, sp := range gd.Specs {
			vs, ok := sp.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				tv := annotated
				if i < len(vs.Values) {
					tv = tv || exprTaint(spec, state, vs.Values[i])
				} else if len(vs.Values) == 1 {
					tv = tv || exprTaint(spec, state, vs.Values[0])
				}
				if obj := spec.Info.Defs[name]; obj != nil {
					setTaint(state, obj, tv)
				}
			}
		}

	case *ast.IncDecStmt:
		// x++ / x-- keep x's taint: an upper bound shifted by a constant
		// is still an upper bound of the shifted quantity.

	case *RangeAssign:
		tv := exprTaint(spec, state, s.X)
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e == nil {
				continue
			}
			assign(spec, state, e, tv)
		}
	}
}

// assign updates state for one left-hand side receiving a value whose
// taint is tv. Plain identifiers get a strong update (set or KILL);
// fields, indices, and dereferences taint their root object weakly
// (never killed — other fields may still hold tainted values).
func assign(spec TaintSpec, state objset, lhs ast.Expr, tv bool) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := spec.Info.Defs[l]
		if obj == nil {
			obj = spec.Info.Uses[l]
		}
		if obj != nil {
			setTaint(state, obj, tv)
		}
	case *ast.ParenExpr:
		assign(spec, state, l.X, tv)
	default:
		if !tv {
			return // weak update: cannot clear through a field/index
		}
		if root := rootIdent(lhs); root != nil {
			obj := spec.Info.Uses[root]
			if obj == nil {
				obj = spec.Info.Defs[root]
			}
			if obj != nil {
				state[obj] = true
			}
		}
	}
}

func setTaint(state objset, obj types.Object, tv bool) {
	if tv {
		state[obj] = true
	} else {
		delete(state, obj)
	}
}

// exprTaint evaluates the taint of an expression against state.
func exprTaint(spec TaintSpec, state objset, e ast.Expr) bool {
	if e == nil || state == nil {
		return false
	}
	if spec.Source != nil && spec.Source(e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := spec.Info.Uses[x]; obj != nil {
			return state[obj]
		}
		if obj := spec.Info.Defs[x]; obj != nil {
			return state[obj]
		}
	case *ast.ParenExpr:
		return exprTaint(spec, state, x.X)
	case *ast.UnaryExpr:
		// -bound is a lower bound (direction flips), but the default
		// stance keeps taint: the value is still bound-DERIVED, and the
		// comparison rule accounts for sides. &x and +x pass through.
		return exprTaint(spec, state, x.X)
	case *ast.StarExpr:
		return exprTaint(spec, state, x.X)
	case *ast.BinaryExpr:
		xt := exprTaint(spec, state, x.X)
		yt := exprTaint(spec, state, x.Y)
		return combine(spec, x.Op, x.X, x.Y, xt, yt)
	case *ast.CallExpr:
		// Type conversions are transparent: float64(boundInt) is still a
		// bound. Other calls are opaque (untainted) unless Source says
		// otherwise — an exact recompute through vec.Dot SANITIZES.
		if tv, ok := spec.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return exprTaint(spec, state, x.Args[0])
		}
	case *ast.SelectorExpr:
		// Field read: tainted iff the root variable is tainted (the
		// weak-update counterpart of assign).
		if root := rootIdent(x); root != nil {
			if obj := spec.Info.Uses[root]; obj != nil {
				return state[obj]
			}
		}
	case *ast.IndexExpr:
		return exprTaint(spec, state, x.X)
	case *ast.SliceExpr:
		return exprTaint(spec, state, x.X)
	}
	return false
}

// combine applies the binary propagation rule.
func combine(spec TaintSpec, op token.Token, x, y ast.Expr, xt, yt bool) bool {
	if spec.Binary != nil {
		return spec.Binary(op, x, y, xt, yt)
	}
	return xt || yt
}

// compoundOp maps an op= token to its underlying operator.
func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return tok
}

// rootIdent returns the base identifier of a selector/index/star/paren
// chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
