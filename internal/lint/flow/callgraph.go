package flow

import (
	"go/ast"
	"go/types"
)

// CallGraph is the static call graph of one compilation unit: which
// function declarations call which, resolved through go/types (methods
// included, function values and interface calls excluded — a may-call
// analysis that only records edges it can prove).
type CallGraph struct {
	// Decls maps each function/method object declared in the unit to its
	// declaration.
	Decls map[types.Object]*ast.FuncDecl
	// Callees maps a declared function to the set of objects it calls
	// directly (same unit or imported — callers filter by Decls
	// membership when they need a body to descend into).
	Callees map[types.Object][]types.Object
	// Sites maps a declared function to its call expressions paired with
	// the resolved callee, for diagnostics at the call site.
	Sites map[types.Object][]CallSite
}

// CallSite is one resolved static call inside a function body.
type CallSite struct {
	Call   *ast.CallExpr
	Callee types.Object
}

// BuildCallGraph walks every function declaration in files and resolves
// direct calls via info. Calls inside function literals are attributed
// to the enclosing declaration (the literal runs with the function's
// resources in the patterns we lint — defers, goroutine bodies).
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	cg := &CallGraph{
		Decls:   make(map[types.Object]*ast.FuncDecl),
		Callees: make(map[types.Object][]types.Object),
		Sites:   make(map[types.Object][]CallSite),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			cg.Decls[obj] = fd
			seen := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := Callee(info, call)
				if callee == nil {
					return true
				}
				cg.Sites[obj] = append(cg.Sites[obj], CallSite{Call: call, Callee: callee})
				if !seen[callee] {
					seen[callee] = true
					cg.Callees[obj] = append(cg.Callees[obj], callee)
				}
				return true
			})
		}
	}
	return cg
}

// Callee resolves the static callee object of call, or nil for dynamic
// calls (function values, interface methods resolve to the interface
// method object — still useful for naming) and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Func); !ok {
		return nil // variable of function type, or a type conversion
	}
	return obj
}

// Reachable computes the set of declared functions reachable in cg from
// the given roots, following only edges whose target is declared in the
// same unit.
func (cg *CallGraph) Reachable(roots []types.Object) map[types.Object]bool {
	seen := make(map[types.Object]bool)
	stack := append([]types.Object(nil), roots...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		for _, callee := range cg.Callees[fn] {
			if _, declared := cg.Decls[callee]; declared && !seen[callee] {
				stack = append(stack, callee)
			}
		}
	}
	return seen
}
