package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheck parses src (a full file) and returns the first FuncDecl
// named name plus the populated types.Info.
func typecheck(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	if _, err := conf.Check("t", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info, []*ast.File{f}
		}
	}
	t.Fatalf("no func %s", name)
	return nil, nil, nil
}

func paramObjs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				out = append(out, info.Defs[n])
			}
		}
	}
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			out = append(out, info.Defs[n])
		}
	}
	return out
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"straightline", `x := 1; y := x + 1; _ = y`},
		{"if", `x := 1; if x > 0 { x = 2 } else { x = 3 }; _ = x`},
		{"ifNoElse", `x := 1; if x > 0 { x = 2 }; _ = x`},
		{"for", `s := 0; for i := 0; i < 10; i++ { s += i }; _ = s`},
		{"forInfinite", `for { if true { break }; continue }`},
		{"rangeLoop", `s := 0; for _, v := range []int{1, 2} { s += v }; _ = s`},
		{"switch", `x := 1; switch x { case 1: x = 2; case 2: x = 3; fallthrough; default: x = 4 }; _ = x`},
		{"typeSwitch", `var v interface{} = 1; switch v.(type) { case int: case string: }`},
		{"sel", `ch := make(chan int, 1); select { case v := <-ch: _ = v; default: }`},
		{"labels", `L: for i := 0; i < 3; i++ { for { continue L } }; goto M; M: return`},
		{"gotoFwd", `x := 0; if x > 0 { goto done }; x = 1; done: _ = x`},
		{"deadCode", `return; x := 1; _ = x`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package t\nfunc f() {\n" + tc.body + "\n}\n"
			fd, _, _ := typecheck(t, src, "f")
			g := New(fd.Body)
			if g.Entry == nil || g.Exit == nil {
				t.Fatal("missing entry/exit")
			}
			if len(g.Exit.Nodes) != 0 {
				t.Fatalf("exit block holds nodes: %v", g.Exit.Nodes)
			}
			// Every block's successors must be registered blocks, and the
			// exit must be reachable from the entry.
			idx := make(map[*Block]bool, len(g.Blocks))
			for _, b := range g.Blocks {
				idx[b] = true
			}
			seen := map[*Block]bool{}
			stack := []*Block{g.Entry}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[b] {
					continue
				}
				seen[b] = true
				for _, s := range b.Succs {
					if !idx[s] {
						t.Fatalf("edge to unregistered block %d", s.Index)
					}
					stack = append(stack, s)
				}
			}
			if !seen[g.Exit] {
				t.Fatal("exit unreachable from entry")
			}
		})
	}
}

// findNode returns the first CFG node whose source text contains want.
func findNode(t *testing.T, g *Graph, fset *token.FileSet, src, want string) ast.Node {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() == token.NoPos {
				continue
			}
			// crude but robust: slice the original source
			start, end := int(n.Pos())-1, int(n.End())-1
			if start >= 0 && end <= len(src) && strings.Contains(src[start:end], want) {
				return n
			}
		}
	}
	t.Fatalf("no CFG node containing %q", want)
	return nil
}

const taintSrc = `package t

func bound() float64 { return 2.0 }

func f(t float64) bool {
	b := bound()       // tainted by Source
	c := b * 1.5       // stays tainted through *
	d := t / b         // direction flip: / by bound drops taint
	b = 0.0            // strong update kills b
	after := b + 1     // ...so after is clean
	_ = after
	return c < t && d < t
}

func loop(t float64) float64 {
	acc := 0.0
	for i := 0; i < 4; i++ {
		acc = acc + bound() // taint enters on iteration 1, must reach header
	}
	sink := acc
	return sink
}
`

func taintSpecFor(info *types.Info) TaintSpec {
	return TaintSpec{
		Info: info,
		Source: func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "bound"
		},
		Binary: func(op token.Token, x, y ast.Expr, xt, yt bool) bool {
			// direction-aware: bound survives +,*,- (left), / (left);
			// x-bound and x/bound flip direction → drop.
			switch op {
			case token.SUB, token.QUO:
				return xt
			default:
				return xt || yt
			}
		},
	}
}

func TestTaintPropagation(t *testing.T) {
	fd, info, _ := typecheck(t, taintSrc, "f")
	g := New(fd.Body)
	res := Solve(g, taintSpecFor(info))

	ret := findNode(t, g, nil, taintSrc, "return c < t")
	bin := ret.(*ast.ReturnStmt).Results[0].(*ast.BinaryExpr)
	left := bin.X.(*ast.BinaryExpr)  // c < t
	right := bin.Y.(*ast.BinaryExpr) // d < t

	if !res.Tainted(ret, left.X) {
		t.Error("c should be tainted (bound * 1.5)")
	}
	if res.Tainted(ret, right.X) {
		t.Error("d should be clean (t / bound flips direction)")
	}
	if res.Tainted(ret, left.Y) {
		t.Error("t should never be tainted")
	}

	afterStmt := findNode(t, g, nil, taintSrc, "after := b + 1")
	as := afterStmt.(*ast.AssignStmt)
	if res.Tainted(afterStmt, as.Rhs[0]) {
		t.Error("b reassigned to 0.0 must kill taint before `after`")
	}
}

func TestTaintThroughLoop(t *testing.T) {
	fd, info, _ := typecheck(t, taintSrc, "loop")
	g := New(fd.Body)
	res := Solve(g, taintSpecFor(info))

	sinkStmt := findNode(t, g, nil, taintSrc, "sink := acc")
	as := sinkStmt.(*ast.AssignStmt)
	if !res.Tainted(sinkStmt, as.Rhs[0]) {
		t.Error("acc tainted inside the loop must still be tainted after it")
	}
}

const reachSrc = `package t

func g(p int) int {
	x := 1
	if p > 0 {
		x = 2
	}
	y := x
	x = 3
	z := x
	return y + z
}
`

func TestReachingDefs(t *testing.T) {
	fd, info, _ := typecheck(t, reachSrc, "g")
	g := New(fd.Body)
	rd := SolveReaching(g, info, paramObjs(info, fd))

	var xObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "x" {
			xObj = obj
		}
	}
	if xObj == nil {
		t.Fatal("no x object")
	}

	yStmt := findNode(t, g, nil, reachSrc, "y := x")
	if defs := rd.Defs(yStmt, xObj); len(defs) != 2 {
		t.Fatalf("y := x should see 2 reaching defs of x (x:=1 and x=2), got %d", len(defs))
	}
	if _, ok := rd.SoleDef(yStmt, xObj); ok {
		t.Fatal("SoleDef must fail when two defs reach")
	}

	zStmt := findNode(t, g, nil, reachSrc, "z := x")
	def, ok := rd.SoleDef(zStmt, xObj)
	if !ok {
		t.Fatal("z := x should see exactly one def (x = 3)")
	}
	as, ok := def.Node.(*ast.AssignStmt)
	if !ok {
		t.Fatalf("def node is %T, want *ast.AssignStmt", def.Node)
	}
	if lit, ok := as.Rhs[0].(*ast.BasicLit); !ok || lit.Value != "3" {
		t.Fatalf("sole def should be x = 3, got %v", as.Rhs[0])
	}

	// Parameter p reaches everywhere with its entry def.
	var pObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "p" {
			pObj = obj
		}
	}
	if defs := rd.Defs(yStmt, pObj); len(defs) != 1 || defs[0].Node != nil {
		t.Fatalf("param p should have the entry def, got %v", defs)
	}
}

const cgSrc = `package t

type T struct{}

func (t *T) m() { helper() }
func helper()  { leaf() }
func leaf()    {}
func top()     { (&T{}).m() }
func dyn(f func()) { f() }
`

func TestCallGraph(t *testing.T) {
	_, info, files := typecheck(t, cgSrc, "top")
	cg := BuildCallGraph(files, info)

	objByName := func(name string) types.Object {
		for obj := range cg.Decls {
			if obj.Name() == name {
				return obj
			}
		}
		t.Fatalf("no decl %s", name)
		return nil
	}

	topObj := objByName("top")
	reach := cg.Reachable([]types.Object{topObj})
	for _, want := range []string{"top", "m", "helper", "leaf"} {
		if !reach[objByName(want)] {
			t.Errorf("%s should be reachable from top", want)
		}
	}
	if reach[objByName("dyn")] {
		t.Error("dyn is not called by top")
	}

	// Dynamic call f() resolves to no callee.
	dynObj := objByName("dyn")
	if n := len(cg.Callees[dynObj]); n != 0 {
		t.Errorf("dyn should have 0 resolved callees, got %d", n)
	}
}
