// Package flow is fexlint's stdlib-only dataflow layer: per-function
// control-flow graphs over go/ast, a generic worklist solver with
// reaching definitions and a configurable taint lattice on top, and a
// per-unit static call graph. It exists so analyzers can reason about
// VALUES (where a bound-derived float can flow) and CALLS (whether a
// callee polls cancellation or blocks) instead of pattern-matching
// tokens — the upgrade that turns fexlint's hot-path contracts from
// syntactic checks into semantic ones (DESIGN.md §14).
//
// The graphs are statement-granular: every statement, loop condition,
// and range operand is one node of a basic block, in execution order.
// Function literals are deliberately NOT part of the enclosing
// function's graph — they run on their own schedule; analyzers build a
// separate graph per literal when they care.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line run of statement
// nodes with edges to its possible successors.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, dense).
	Index int
	// Nodes holds statements and control expressions (if/for/switch
	// conditions, range operands) in execution order.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to after this one.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is executed first; Exit is the unique sink every return and
	// fall-off-the-end path reaches. Exit holds no nodes.
	Entry, Exit *Block
	// Blocks lists every block, Entry first. Unreachable blocks (dead
	// code after return, empty labels) may appear; solvers iterate from
	// Entry so they simply never contribute.
	Blocks []*Block
}

// cond wraps a control expression so CFG nodes are always ast.Node and
// solvers can tell a condition from an expression statement if needed.
// Transfer functions usually treat it like any other expression read.
type Cond struct {
	ast.Expr
}

// RangeAssign marks the implicit per-iteration assignment of a range
// loop: Key/Value (either may be nil) are assigned from X on every
// iteration. Define reports whether the loop uses := .
type RangeAssign struct {
	Key, Value ast.Expr
	X          ast.Expr
	Define     bool
	pos        token.Pos
}

// Pos implements ast.Node.
func (r *RangeAssign) Pos() token.Pos { return r.pos }

// End implements ast.Node.
func (r *RangeAssign) End() token.Pos { return r.pos }

// builder accumulates blocks while walking one function body.
type builder struct {
	g *Graph
	// cur is the block currently being appended to; nil after a
	// terminator (return/branch) until the next label or join point.
	cur *Block
	// break/continue targets of the enclosing loop/switch/select stack.
	breaks    []*Block
	continues []*Block
	// labels maps label names to their blocks (goto/labelled break).
	labels map[string]*labelInfo
}

type labelInfo struct {
	block *Block // target of goto label / the labelled statement
	// brk/cont are the break/continue targets when the labelled
	// statement is a loop or switch.
	brk, cont *Block
	pending   []*Block // gotos seen before the label definition
}

// New builds the control-flow graph of body. The body may be any block
// statement (a function body, or a function literal's).
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock()
	g.Exit = &Block{}
	b.cur = g.Entry
	b.stmtList(body.List)
	// Fall off the end: implicit return.
	b.jump(g.Exit)
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add appends a node to the current block, opening a fresh block if the
// previous one was terminated.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code still gets a block
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump terminates the current block with an edge to dst.
func (b *builder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// startAfter opens and returns a new block that the current block flows
// into (a join point or loop header).
func (b *builder) startAfter() *Block {
	blk := b.newBlock()
	b.jump(blk)
	b.cur = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(Cond{s.Cond})
		condBlk := b.cur
		join := &Block{}

		thenBlk := b.newBlock()
		condBlk.Succs = append(condBlk.Succs, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.jump(join)

		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.Succs = append(condBlk.Succs, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.jump(join)
		} else {
			condBlk.Succs = append(condBlk.Succs, join)
		}
		join.Index = len(b.g.Blocks)
		b.g.Blocks = append(b.g.Blocks, join)
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.startAfter()
		if s.Cond != nil {
			b.add(Cond{s.Cond})
		}
		condBlk := b.cur
		after := &Block{}
		post := &Block{}

		bodyBlk := b.newBlock()
		condBlk.Succs = append(condBlk.Succs, bodyBlk)
		if s.Cond != nil {
			condBlk.Succs = append(condBlk.Succs, after)
		}
		b.pushLoop(after, post)
		b.cur = bodyBlk
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(post)
		post.Index = len(b.g.Blocks)
		b.g.Blocks = append(b.g.Blocks, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.jump(header)
		after.Index = len(b.g.Blocks)
		b.g.Blocks = append(b.g.Blocks, after)
		b.cur = after

	case *ast.RangeStmt:
		header := b.startAfter()
		b.add(&RangeAssign{Key: s.Key, Value: s.Value, X: s.X, Define: s.Tok == token.DEFINE, pos: s.Pos()})
		headEnd := b.cur
		after := &Block{}
		bodyBlk := b.newBlock()
		headEnd.Succs = append(headEnd.Succs, bodyBlk, after)
		b.pushLoop(after, header)
		b.cur = bodyBlk
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(header)
		after.Index = len(b.g.Blocks)
		b.g.Blocks = append(b.g.Blocks, after)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(Cond{s.Tag})
		}
		b.caseClauses(s.Body.List, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, true)

	case *ast.SelectStmt:
		b.caseClauses(s.Body.List, false)

	case *ast.LabeledStmt:
		blk := b.startAfter()
		info := b.labels[s.Label.Name]
		if info == nil {
			info = &labelInfo{}
			b.labels[s.Label.Name] = info
		}
		info.block = blk
		for _, p := range info.pending {
			p.Succs = append(p.Succs, blk)
		}
		info.pending = nil
		// Labelled loops: break/continue LABEL resolve through the loop
		// statement itself; record targets while building it.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			after := &Block{}
			info.brk = after
			if _, isLoop := inner.(*ast.ForStmt); isLoop {
				info.cont = nil // filled by the loop build via pushLoop
			}
			b.stmt(s.Stmt)
			// The inner statement's natural "after" block is b.cur; route
			// labelled breaks there too.
			if b.cur != nil {
				after.Succs = append(after.Succs, b.cur)
			}
			after.Index = len(b.g.Blocks)
			b.g.Blocks = append(b.g.Blocks, after)
		default:
			b.stmt(s.Stmt)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if info := b.labels[s.Label.Name]; info != nil && info.brk != nil {
					b.jump(info.brk)
					return
				}
			}
			if n := len(b.breaks); n > 0 {
				b.jump(b.breaks[n-1])
				return
			}
			b.cur = nil
		case token.CONTINUE:
			if s.Label != nil {
				if info := b.labels[s.Label.Name]; info != nil && info.cont != nil {
					b.jump(info.cont)
					return
				}
			}
			if n := len(b.continues); n > 0 {
				b.jump(b.continues[n-1])
				return
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil {
				info := b.labels[s.Label.Name]
				if info == nil {
					info = &labelInfo{}
					b.labels[s.Label.Name] = info
				}
				if info.block != nil {
					b.jump(info.block)
				} else if b.cur != nil {
					info.pending = append(info.pending, b.cur)
					b.cur = nil
				}
				return
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by caseClauses; treat as block end.
			b.cur = nil
		}

	default:
		// Plain statements: assignments, declarations, expression
		// statements, sends, inc/dec, defer, go, empty.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// pushLoop records break/continue targets for a loop body.
func (b *builder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	// Labelled loops: wire the innermost pending label to these targets.
	for _, info := range b.labels {
		if info.brk != nil && info.cont == nil && cont != nil {
			info.cont = cont
		}
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// caseClauses builds switch/select bodies: every clause is an
// alternative successor of the current block; all clauses join after.
// loop==true adds a break target (switches break, selects too).
func (b *builder) caseClauses(clauses []ast.Stmt, isSwitch bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	join := &Block{}
	b.breaks = append(b.breaks, join)
	hasDefault := false
	var prevEnd *Block // end of a clause that falls through
	for _, c := range clauses {
		var bodyStmts []ast.Stmt
		var guard ast.Node
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			if len(cc.List) > 0 {
				guard = Cond{cc.List[0]} // representative; reads only
			}
			bodyStmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				guard = cc.Comm
			}
			bodyStmts = cc.Body
		default:
			continue
		}
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if guard != nil {
			if st, ok := guard.(ast.Stmt); ok {
				b.stmt(st)
			} else {
				b.add(guard)
			}
		}
		// fallthrough from the previous clause lands at this clause body.
		if prevEnd != nil {
			prevEnd.Succs = append(prevEnd.Succs, blk)
			prevEnd = nil
		}
		fallsThrough := false
		if n := len(bodyStmts); n > 0 {
			if br, ok := bodyStmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(bodyStmts)
		if fallsThrough && b.cur != nil {
			prevEnd = b.cur
			b.cur = nil
		} else {
			b.jump(join)
		}
	}
	if prevEnd != nil { // trailing fallthrough (illegal Go, but be safe)
		prevEnd.Succs = append(prevEnd.Succs, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault || isSwitch {
		// A switch without default (or any switch: the no-match path)
		// may skip every clause.
		head.Succs = append(head.Succs, join)
	}
	join.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, join)
	b.cur = join
}
