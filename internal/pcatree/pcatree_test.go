package pcatree_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/pcatree"
	"fexipro/internal/scan"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func randomQueries(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// PCATree is approximate, but its answers must still be VALID: scores
// must be true inner products of real items, sorted descending.
func TestPCATreeReturnsValidScores(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	items, _ := searchtest.RandomInstance(rng, 500, 12)
	tree := pcatree.New(items, pcatree.Options{LeafSize: 32})
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, 12)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		got := tree.Search(q, 5)
		if len(got) == 0 {
			t.Fatal("no results")
		}
		for i, r := range got {
			actual := vec.Dot(q, items.Row(r.ID))
			if diff := actual - r.Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("score %v != true product %v", r.Score, actual)
			}
			if i > 0 && got[i-1].Score < r.Score {
				t.Fatal("results not sorted")
			}
		}
	}
}

// Defeatist descent visits a small fraction of the items.
func TestPCATreeIsSelective(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	items, q := searchtest.RandomInstance(rng, 4000, 16)
	tree := pcatree.New(items, pcatree.Options{LeafSize: 64})
	tree.Search(q, 5)
	if st := tree.Stats(); st.Scanned > 500 {
		t.Fatalf("defeatist search scanned %d of 4000 items", st.Scanned)
	}
}

// Recall must improve (RMSE@k must not grow) as spill widens the search.
func TestPCATreeSpillImprovesQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	items, _ := searchtest.RandomInstance(rng, 2000, 10)
	queries := randomQueries(rng, 30, 10)
	exact := scan.NewNaive(items)

	narrow := pcatree.New(items, pcatree.Options{LeafSize: 32})
	wide := pcatree.New(items, pcatree.Options{LeafSize: 32, SpillFraction: 0.15})
	rmseNarrow := pcatree.RMSEAtK(narrow, exact, queries, 5)
	rmseWide := pcatree.RMSEAtK(wide, exact, queries, 5)
	if rmseWide > rmseNarrow+1e-12 {
		t.Fatalf("spill worsened RMSE@5: %v -> %v", rmseNarrow, rmseWide)
	}
	if rmseNarrow == 0 {
		t.Log("note: defeatist search happened to be exact on this instance")
	}
}

// With the whole dataset in one leaf the tree degenerates to Naive and
// must be exact.
func TestPCATreeHugeLeafIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	items, _ := searchtest.RandomInstance(rng, 200, 8)
	tree := pcatree.New(items, pcatree.Options{LeafSize: 10000})
	for trial := 0; trial < 5; trial++ {
		q := make([]float64, 8)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		searchtest.CheckTopK(t, items, q, 6, tree.Search(q, 6), "pcatree/one-leaf")
	}
}

func TestPCATreeRMSEMeasuresApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	items, _ := searchtest.RandomInstance(rng, 3000, 20)
	queries := randomQueries(rng, 50, 20)
	tree := pcatree.New(items, pcatree.Options{LeafSize: 32})
	exact := scan.NewNaive(items)
	rmse := pcatree.RMSEAtK(tree, exact, queries, 10)
	if rmse < 0 {
		t.Fatalf("negative RMSE %v", rmse)
	}
	// A 32-item leaf over 3000 items cannot be exact for 50 random
	// queries at k=10 with overwhelming probability.
	if rmse == 0 {
		t.Error("RMSE@10 is exactly zero — approximation path likely not exercised")
	}
}

func TestPCATreeEmptyAndZeroK(t *testing.T) {
	empty := pcatree.New(vec.NewMatrix(0, 4), pcatree.Options{})
	if got := empty.Search([]float64{1, 2, 3, 4}, 3); len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
	rng := rand.New(rand.NewSource(65))
	items, q := searchtest.RandomInstance(rng, 50, 4)
	tree := pcatree.New(items, pcatree.Options{})
	if got := tree.Search(q, 0); len(got) != 0 {
		t.Fatalf("k=0 returned %v", got)
	}
}
