package pcatree_test

import (
	"testing"

	"fexipro/internal/engine"
	"fexipro/internal/pcatree"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// Small leaves so the harness's small instances produce multi-level
// trees whose leaf candidate sets straddle shard boundaries.
func buildSharded(items *vec.Matrix, opts pcatree.Options, shards int) *engine.Engine {
	return engine.New(pcatree.NewKernel(pcatree.New(items, opts), shards), 2)
}

// PCATree is approximate, but its defeatist descent is
// threshold-independent, so the sharded engine must return
// bit-identical (approximate) results for every shard count — the full
// CheckSharded harness applies because the S=1 engine is the reference.
func TestShardedPCATreeBitExact(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts pcatree.Options
	}{
		{"defeatist", pcatree.Options{LeafSize: 8}},
		{"spill", pcatree.Options{LeafSize: 8, SpillFraction: 0.3}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			searchtest.CheckSharded(t, func(items *vec.Matrix, shards int) search.ContextSearcher {
				return buildSharded(items, cfg.opts, shards)
			}, "pcatree-"+cfg.name)
		})
	}
}

func TestShardedPCATreeCancellation(t *testing.T) {
	searchtest.CheckShardedCancellationApprox(t, func(items *vec.Matrix, shards int) searchtest.FaultSearcher {
		return buildSharded(items, pcatree.Options{LeafSize: 8}, shards)
	}, "pcatree")
}
