// Package pcatree implements the approximate baseline of Bachrach et al.
// (RecSys 2014), compared against in Appendix B of the paper.
//
// Top-k inner product retrieval is first reduced to Euclidean k-NN by the
// order-preserving transformation of Theorem 3: each item p becomes
//
//	p̃ = (√(b²−‖p‖²), p₁, …, p_d),  b = max‖p‖,
//
// and a query becomes q̃ = (0, q₁, …, q_d), after which all p̃ share norm
// b and argmin‖q̃−p̃‖ = argmax qᵀp. A PCA tree then recursively splits the
// transformed items at the median of their projection onto the local top
// principal component. Search is "defeatist" with optional spill: the
// query descends to its leaf (following SpillNodes extra children near
// the split boundary) and only the visited candidates are ranked by true
// inner product — fast but approximate, which is exactly what Figure 13
// quantifies via RMSE@k.
package pcatree

import (
	"context"
	"fmt"
	"math"
	"sort"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/svd"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Options configures the PCA tree.
type Options struct {
	// LeafSize is the maximum candidates per leaf (default 64).
	LeafSize int
	// SpillNodes explores both sides of a split when the query projects
	// within this fraction of the projection spread from the median
	// (default 0 — pure defeatist descent).
	SpillFraction float64
}

// Tree is an approximate inner-product index.
type Tree struct {
	items *vec.Matrix // original items, for exact re-ranking
	ext   *vec.Matrix // (d+1)-dimensional transformed items
	root  *pnode
	opts  Options
	hook  *faults.Hook
	stats search.Stats
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// called once per visited tree node.
func (t *Tree) SetFaultHook(h *faults.Hook) { t.hook = h }

type pnode struct {
	// internal
	direction []float64
	threshold float64 // median projection
	spread    float64 // projection spread, for spill decisions
	left      *pnode  // projections ≤ threshold
	right     *pnode
	// leaf
	ids []int
}

// New builds the index over items (rows are item vectors; not copied for
// the exact re-ranking view, so the caller must not mutate them).
func New(items *vec.Matrix, opts Options) *Tree {
	if opts.LeafSize <= 0 {
		opts.LeafSize = 64
	}
	t := &Tree{items: items, opts: opts}
	n, d := items.Rows, items.Cols
	if n == 0 {
		return t
	}

	// Theorem 3 reduction to Euclidean space.
	var b2 float64
	for i := 0; i < n; i++ {
		if ns := vec.NormSquared(items.Row(i)); ns > b2 {
			b2 = ns
		}
	}
	t.ext = vec.NewMatrix(n, d+1)
	for i := 0; i < n; i++ {
		src := items.Row(i)
		dst := t.ext.Row(i)
		dst[0] = math.Sqrt(math.Max(0, b2-vec.NormSquared(src)))
		copy(dst[1:], src)
	}

	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	t.root = t.build(ids, 0)
	return t
}

const maxPCADepth = 40

func (t *Tree) build(ids []int, depth int) *pnode {
	if len(ids) <= t.opts.LeafSize || depth >= maxPCADepth {
		return &pnode{ids: ids}
	}
	dir := t.topComponent(ids)
	if dir == nil {
		return &pnode{ids: ids}
	}
	proj := make([]float64, len(ids))
	for i, id := range ids {
		proj[i] = vec.Dot(dir, t.ext.Row(id))
	}
	sorted := append([]float64(nil), proj...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	spread := sorted[len(sorted)-1] - sorted[0]
	var left, right []int
	for i, id := range ids {
		if proj[i] <= median {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &pnode{ids: ids}
	}
	return &pnode{
		direction: dir,
		threshold: median,
		spread:    spread,
		left:      t.build(left, depth+1),
		right:     t.build(right, depth+1),
	}
}

// topComponent returns the dominant principal direction of the centered
// transformed vectors in ids, via the thin-SVD machinery (power-method
// free and deterministic). Returns nil when the subset has no variance.
func (t *Tree) topComponent(ids []int) []float64 {
	d := t.ext.Cols
	mean := make([]float64, d)
	for _, id := range ids {
		vec.Add(mean, t.ext.Row(id))
	}
	vec.Scale(mean, 1/float64(len(ids)))
	centered := vec.NewMatrix(len(ids), d)
	for i, id := range ids {
		row := centered.Row(i)
		copy(row, t.ext.Row(id))
		vec.Sub(row, mean)
	}
	thin, err := svd.Decompose(centered, 0)
	if err != nil || thin.Sigma[0] == 0 {
		return nil
	}
	dir := make([]float64, d)
	for r := 0; r < d; r++ {
		dir[r] = thin.U.At(r, 0)
	}
	return dir
}

// Search implements search.Searcher, approximately: only candidates in
// the visited leaves are considered.
func (t *Tree) Search(q []float64, k int) []topk.Result {
	res, _ := t.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: the descent polls ctx
// every search.CheckStride visited nodes and returns the best-so-far
// partial (and, as always for PCATree, approximate) top-k with an
// ErrDeadline-wrapping error on cancellation.
func (t *Tree) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	if t.items.Rows > 0 && len(q) != t.items.Cols {
		panic(fmt.Sprintf("pcatree: query dim %d != item dim %d", len(q), t.items.Cols))
	}
	t.stats = search.Stats{}
	c := topk.New(k)
	if t.root == nil || k == 0 {
		return c.Results(), nil
	}
	ext := make([]float64, t.items.Cols+1)
	copy(ext[1:], q)
	s := &scanState{t: t, ctx: ctx, ext: ext, q: q, c: c, hook: t.hook, stats: &t.stats, loID: 0, hiID: t.items.Rows}
	if err := s.descend(t.root); err != nil {
		return c.Results(), err
	}
	return c.Results(), nil
}

// scanState carries one defeatist descent's per-query inputs and
// outputs, decoupled from the Tree for the sharded engine. Unlike the
// exact trees, PCATree shards share ONE global tree: the descent path
// is threshold-independent (it depends only on the transformed query
// and the spill option), so every shard walks the same nodes and offers
// only the visited candidates whose IDs fall in its [loID, hiID) range.
// The union of offered candidates is therefore identical for every
// shard count, which keeps even this approximate method bit-identical
// across shard layouts (DESIGN.md §11).
type scanState struct {
	t          *Tree
	ctx        context.Context
	ext, q     []float64
	c          *topk.Collector
	shared     *search.SharedThreshold
	hook       *faults.Hook
	stats      *search.Stats
	loID, hiID int
}

func (s *scanState) descend(n *pnode) error {
	if done := s.ctx.Done(); s.hook != nil || (done != nil && s.stats.NodesVisited&search.StrideMask == 0) {
		if err := search.Poll(s.ctx, s.hook, s.stats.NodesVisited); err != nil {
			return err
		}
	}
	s.stats.NodesVisited++
	if n.ids != nil {
		for _, id := range n.ids {
			if id < s.loID || id >= s.hiID {
				continue // another shard's candidate
			}
			s.stats.Scanned++
			s.stats.FullProducts++
			if s.c.Push(id, vec.Dot(s.q, s.t.items.Row(id))) && s.c.Len() == s.c.K() {
				s.shared.Publish(s.c.Threshold())
			}
		}
		return nil
	}
	proj := vec.Dot(n.direction, s.ext)
	primary, secondary := n.left, n.right
	if proj > n.threshold {
		primary, secondary = n.right, n.left
	}
	if err := s.descend(primary); err != nil {
		return err
	}
	if s.t.opts.SpillFraction > 0 && n.spread > 0 &&
		math.Abs(proj-n.threshold) <= s.t.opts.SpillFraction*n.spread {
		if err := s.descend(secondary); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements search.Searcher.
func (t *Tree) Stats() search.Stats { return t.stats }

// RMSEAtK computes the paper's RMSE@k quality metric for this tree
// against exact results: the root-mean-square difference between the
// scores of the approximate and the optimal recommendation lists
// (Appendix B, Comparison with PCATree).
func RMSEAtK(t *Tree, exact search.Searcher, queries *vec.Matrix, k int) float64 {
	if queries.Rows == 0 || k == 0 {
		return 0
	}
	var se float64
	var count int
	for i := 0; i < queries.Rows; i++ {
		q := queries.Row(i)
		approx := t.Search(q, k)
		opt := exact.Search(q, k)
		for s := 0; s < len(opt); s++ {
			var a float64
			if s < len(approx) {
				a = approx[s].Score
			}
			dv := a - opt[s].Score
			se += dv * dv
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Sqrt(se / float64(count))
}

var _ search.ContextSearcher = (*Tree)(nil)
