package pcatree

import (
	"fmt"
	"io"

	"fexipro/internal/snap"
	"fexipro/internal/vec"
)

// PCA-tree persistence (fexsnap/v1, DESIGN.md §15): construction runs a
// thin SVD per internal node, by far the most expensive build in the
// repository relative to its size, so the finished split directions and
// thresholds are stored verbatim. Load restores the original items, the
// Theorem 3 lift, and the tree, so a loaded tree descends and re-ranks
// bit-identically to the saved one.

const (
	secPCMeta  = "pc.meta"  // options, rows, cols
	secPCItems = "pc.items" // original item matrix
	secPCExt   = "pc.ext"   // (d+1)-dimensional lifted matrix
	secPCTree  = "pc.tree"  // preorder node encoding
)

// Save writes the tree as a fexsnap/v1 container.
func (t *Tree) Save(w io.Writer) error {
	var b snap.Builder
	b.Section(secPCMeta, func(e *snap.Encoder) {
		e.I64(int64(t.opts.LeafSize))
		e.F64(t.opts.SpillFraction)
		e.I64(int64(t.items.Rows))
		e.I64(int64(t.items.Cols))
	})
	b.Section(secPCItems, func(e *snap.Encoder) { e.Matrix(t.items) })
	b.Section(secPCExt, func(e *snap.Encoder) { e.Matrix(t.ext) })
	b.Section(secPCTree, func(e *snap.Encoder) { encodeNode(e, t.root) })
	return b.Flush(w)
}

// encodeNode emits a preorder encoding: presence, then either the leaf
// IDs or the split (direction, threshold, spread) and both children.
func encodeNode(e *snap.Encoder, n *pnode) {
	e.Bool(n != nil)
	if n == nil {
		return
	}
	e.Bool(n.ids != nil)
	if n.ids != nil {
		e.Ints(n.ids)
		return
	}
	e.Floats(n.direction)
	e.F64(n.threshold)
	e.F64(n.spread)
	encodeNode(e, n.left)
	encodeNode(e, n.right)
}

// Load reads a tree written by Save. Every error wraps one of the snap
// sentinels.
func Load(r io.Reader) (*Tree, error) {
	f, err := snap.Read(r)
	if err != nil {
		return nil, fmt.Errorf("pcatree: reading tree: %w", err)
	}
	payload, ok := f.Section(secPCMeta)
	if !ok {
		return nil, fmt.Errorf("%w: PCA-tree snapshot missing section %q", snap.ErrChecksum, secPCMeta)
	}
	d := snap.NewDecoder(payload)
	t := &Tree{}
	t.opts.LeafSize = int(d.I64())
	t.opts.SpillFraction = d.F64()
	rows := int(d.I64())
	cols := int(d.I64())
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("pcatree: meta section: %w", err)
	}
	if t.opts.LeafSize < 1 || rows < 0 || cols < 1 {
		return nil, fmt.Errorf("%w: PCA-tree meta leafSize=%d shape %d×%d", snap.ErrChecksum, t.opts.LeafSize, rows, cols)
	}

	for _, s := range []struct {
		tag  string
		dst  **vec.Matrix
		cols int
	}{
		{secPCItems, &t.items, cols},
		{secPCExt, &t.ext, cols + 1},
	} {
		payload, ok := f.Section(s.tag)
		if !ok {
			return nil, fmt.Errorf("%w: PCA-tree snapshot missing section %q", snap.ErrChecksum, s.tag)
		}
		d := snap.NewDecoder(payload)
		m := d.Matrix()
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("pcatree: section %q: %w", s.tag, err)
		}
		if s.tag == secPCItems {
			if m == nil || m.Rows != rows || m.Cols != s.cols {
				return nil, fmt.Errorf("%w: PCA-tree matrix %q disagrees with meta", snap.ErrChecksum, s.tag)
			}
		} else if rows > 0 && (m == nil || m.Rows != rows || m.Cols != s.cols) {
			// The lift is only materialized for non-empty trees.
			return nil, fmt.Errorf("%w: PCA-tree matrix %q disagrees with meta", snap.ErrChecksum, s.tag)
		}
		*s.dst = m
	}

	payload, ok = f.Section(secPCTree)
	if !ok {
		return nil, fmt.Errorf("%w: PCA-tree snapshot missing section %q", snap.ErrChecksum, secPCTree)
	}
	d = snap.NewDecoder(payload)
	root, err := decodeNode(d, cols+1, rows, 0)
	if err != nil {
		return nil, fmt.Errorf("pcatree: tree section: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("pcatree: tree section: %w", err)
	}
	if (root == nil) != (rows == 0) {
		return nil, fmt.Errorf("%w: PCA-tree root disagrees with item count", snap.ErrChecksum)
	}
	t.root = root
	return t, nil
}

func decodeNode(d *snap.Decoder, extDim, rows, depth int) (*pnode, error) {
	// Builds stop at maxPCADepth, so any deeper encoding is corrupt.
	if depth > maxPCADepth {
		return nil, fmt.Errorf("%w: PCA tree deeper than %d", snap.ErrChecksum, maxPCADepth)
	}
	if !d.Bool() {
		return nil, d.Err()
	}
	n := &pnode{}
	isLeaf := d.Bool()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if isLeaf {
		n.ids = d.Ints()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(n.ids) == 0 {
			return nil, fmt.Errorf("%w: PCA-tree leaf with no items", snap.ErrChecksum)
		}
		for _, id := range n.ids {
			if id < 0 || id >= rows {
				return nil, fmt.Errorf("%w: PCA-tree leaf ID %d outside [0, %d)", snap.ErrChecksum, id, rows)
			}
		}
		return n, nil
	}
	n.direction = d.Floats()
	n.threshold = d.F64()
	n.spread = d.F64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(n.direction) != extDim {
		return nil, fmt.Errorf("%w: PCA-tree split direction has %d dims, want %d", snap.ErrChecksum, len(n.direction), extDim)
	}
	var err error
	if n.left, err = decodeNode(d, extDim, rows, depth+1); err != nil {
		return nil, err
	}
	if n.right, err = decodeNode(d, extDim, rows, depth+1); err != nil {
		return nil, err
	}
	if n.left == nil || n.right == nil {
		return nil, fmt.Errorf("%w: PCA-tree internal node missing a child", snap.ErrChecksum)
	}
	return n, nil
}
