package pcatree

import (
	"context"
	"fmt"

	"fexipro/internal/engine"
	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// Kernel adapts PCATree to engine.Kernel. All shards share ONE global
// tree (the defeatist descent is threshold-independent, so per-shard
// trees would change which candidates are even considered); each shard
// repeats the cheap descent and offers only the visited candidates
// whose IDs fall in its contiguous [lo, hi) range. The union of offered
// candidates — and hence the merged approximate top-k — is identical
// for every shard count (DESIGN.md §11).
type Kernel struct {
	t    *Tree
	part engine.Partition
}

// pcQuery is the per-query state shared read-only by every shard scan.
type pcQuery struct {
	ext, q []float64
}

// NewKernel partitions t's item IDs into (at most) shards contiguous
// ranges over the shared tree.
func NewKernel(t *Tree, shards int) *Kernel {
	return &Kernel{t: t, part: engine.NewPartition(t.items.Rows, shards)}
}

// Shards implements engine.Kernel.
func (k *Kernel) Shards() int { return k.part.Shards() }

// Prepare implements engine.Kernel: the Theorem 3 query lift
// q̃ = (0, q₁, …, q_d), computed once.
func (k *Kernel) Prepare(q []float64) any {
	if k.t.items.Rows > 0 && len(q) != k.t.items.Cols {
		panic(fmt.Sprintf("pcatree: query dim %d != item dim %d", len(q), k.t.items.Cols))
	}
	ext := make([]float64, len(q)+1)
	copy(ext[1:], q)
	return &pcQuery{ext: ext, q: q}
}

// Scan implements engine.Kernel: a full defeatist descent of the shared
// tree, filtered to the shard's ID range. Node-visit counts are
// shard-local, so Poll/fault indices start at zero per shard.
func (k *Kernel) Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error) {
	qs := pq.(*pcQuery)
	var st search.Stats
	if k.t.root == nil || c.K() <= 0 {
		return st, nil
	}
	lo, hi := k.part.Range(shard)
	s := &scanState{
		t:      k.t,
		ctx:    ctx,
		ext:    qs.ext,
		q:      qs.q,
		c:      c,
		shared: shared,
		hook:   hook,
		stats:  &st,
		loID:   lo,
		hiID:   hi,
	}
	err := s.descend(k.t.root)
	return st, err
}

var _ engine.Kernel = (*Kernel)(nil)
