package pcatree_test

import (
	"testing"

	"fexipro/internal/engine"
	"fexipro/internal/pcatree"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// TestSnapshotRoundTrip: a saved-and-loaded PCA tree must serve queries
// bit-identically to the one that was built — the persisted split
// directions and thresholds, not a re-run of the per-node SVDs, decide
// the descent. PCATree is approximate, so the cancellation suite skips
// the Naive baseline (Approx) but the loaded-vs-built comparison is
// still exact.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts pcatree.Options
	}{
		{"defeatist", pcatree.Options{LeafSize: 8}},
		{"spill", pcatree.Options{LeafSize: 8, SpillFraction: 0.3}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			searchtest.CheckSnapshotRoundTrip(t, searchtest.SnapshotCodec[*pcatree.Tree]{
				Build: func(items *vec.Matrix) *pcatree.Tree { return pcatree.New(items, cfg.opts) },
				Save:  (*pcatree.Tree).Save,
				Load:  pcatree.Load,
				Searcher: func(tr *pcatree.Tree, shards int) searchtest.FaultSearcher {
					return engine.New(pcatree.NewKernel(tr, shards), 2)
				},
				Approx: true,
			}, "pcatree-"+cfg.name)
		})
	}
}
