package pcatree_test

import (
	"testing"

	"fexipro/internal/pcatree"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// PCA-Tree is approximate, so the suite skips the Naive baseline
// comparison — but a cancelled descent must still never claim a clean
// completion, and partial scores must be true inner products.
func TestPCATreeCancellation(t *testing.T) {
	searchtest.CheckCancellationApprox(t, func(items *vec.Matrix) searchtest.FaultSearcher {
		return pcatree.New(items, pcatree.Options{LeafSize: 16})
	}, "PCATree")
}
