// Package metrics implements the standard top-k recommendation quality
// measures (Precision@k, Recall@k, NDCG@k, and the paper's RMSE@k) used
// to evaluate the end-to-end system: the learning phase fixes WHAT the
// scores are, the retrieval phase must surface the items with the
// highest scores, and these metrics quantify both.
package metrics

import (
	"fmt"
	"math"

	"fexipro/internal/topk"
)

// PrecisionAtK returns |recommended ∩ relevant| / k. Fewer than k
// recommendations are treated as a list padded with misses, matching
// the standard definition.
func PrecisionAtK(recommended []topk.Result, relevant map[int]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	for i, r := range recommended {
		if i >= k {
			break
		}
		if relevant[r.ID] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK returns |recommended ∩ relevant| / |relevant| (0 when there
// are no relevant items).
func RecallAtK(recommended []topk.Result, relevant map[int]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	for i, r := range recommended {
		if i >= k {
			break
		}
		if relevant[r.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// NDCGAtK returns the normalized discounted cumulative gain of the
// recommendation list against binary relevance.
func NDCGAtK(recommended []topk.Result, relevant map[int]bool, k int) float64 {
	if k <= 0 || len(relevant) == 0 {
		return 0
	}
	var dcg float64
	for i, r := range recommended {
		if i >= k {
			break
		}
		if relevant[r.ID] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := len(relevant)
	if ideal > k {
		ideal = k
	}
	var idcg float64
	for i := 0; i < ideal; i++ {
		idcg += 1 / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// RMSEAtK is the paper's Appendix-B list-quality metric: the
// root-mean-square difference between the scores of a recommended list
// and the optimal list, averaged over queries. Both list slices must be
// indexed per query; shorter recommended lists are padded with score 0.
func RMSEAtK(recommended, optimal [][]topk.Result, k int) (float64, error) {
	if len(recommended) != len(optimal) {
		return 0, fmt.Errorf("metrics: %d recommended lists vs %d optimal", len(recommended), len(optimal))
	}
	var se float64
	var count int
	for qi := range optimal {
		opt := optimal[qi]
		if len(opt) > k {
			opt = opt[:k]
		}
		for i, o := range opt {
			var got float64
			if i < len(recommended[qi]) {
				got = recommended[qi][i].Score
			}
			d := got - o.Score
			se += d * d
			count++
		}
	}
	if count == 0 {
		return 0, nil
	}
	return math.Sqrt(se / float64(count)), nil
}

// MeanAveragePrecision returns MAP@k over a batch of queries with
// per-query relevance sets.
func MeanAveragePrecision(recommended [][]topk.Result, relevant []map[int]bool, k int) (float64, error) {
	if len(recommended) != len(relevant) {
		return 0, fmt.Errorf("metrics: %d lists vs %d relevance sets", len(recommended), len(relevant))
	}
	if len(recommended) == 0 {
		return 0, nil
	}
	var total float64
	for qi := range recommended {
		total += averagePrecision(recommended[qi], relevant[qi], k)
	}
	return total / float64(len(recommended)), nil
}

func averagePrecision(recommended []topk.Result, relevant map[int]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	var hits int
	var sum float64
	for i, r := range recommended {
		if i >= k {
			break
		}
		if relevant[r.ID] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	denom := len(relevant)
	if denom > k {
		denom = k
	}
	return sum / float64(denom)
}
