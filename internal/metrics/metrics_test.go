package metrics

import (
	"math"
	"testing"

	"fexipro/internal/topk"
)

func list(ids ...int) []topk.Result {
	out := make([]topk.Result, len(ids))
	for i, id := range ids {
		out[i] = topk.Result{ID: id, Score: float64(len(ids) - i)}
	}
	return out
}

func relevance(ids ...int) map[int]bool {
	m := map[int]bool{}
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestPrecisionAtK(t *testing.T) {
	rec := list(1, 2, 3, 4)
	rel := relevance(2, 4, 9)
	if got := PrecisionAtK(rec, rel, 2); got != 0.5 {
		t.Fatalf("P@2 = %v, want 0.5", got)
	}
	if got := PrecisionAtK(rec, rel, 4); got != 0.5 {
		t.Fatalf("P@4 = %v, want 0.5", got)
	}
	if got := PrecisionAtK(rec, rel, 0); got != 0 {
		t.Fatalf("P@0 = %v", got)
	}
	// Short list counts misses against k.
	if got := PrecisionAtK(list(2), rel, 4); got != 0.25 {
		t.Fatalf("P@4 short = %v, want 0.25", got)
	}
}

func TestRecallAtK(t *testing.T) {
	rec := list(1, 2, 3, 4)
	rel := relevance(2, 4, 9)
	if got := RecallAtK(rec, rel, 4); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("R@4 = %v, want 2/3", got)
	}
	if got := RecallAtK(rec, nil, 4); got != 0 {
		t.Fatalf("R@4 empty relevance = %v", got)
	}
}

func TestNDCGAtK(t *testing.T) {
	// Perfect ranking → NDCG = 1.
	if got := NDCGAtK(list(1, 2), relevance(1, 2), 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", got)
	}
	// Relevant item at rank 2 only: DCG = 1/log2(3), IDCG = 1.
	got := NDCGAtK(list(9, 1), relevance(1), 2)
	want := 1 / math.Log2(3)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("NDCG = %v, want %v", got, want)
	}
	if got := NDCGAtK(nil, relevance(1), 2); got != 0 {
		t.Fatalf("empty list NDCG = %v", got)
	}
}

func TestRMSEAtK(t *testing.T) {
	opt := [][]topk.Result{{{ID: 1, Score: 3}, {ID: 2, Score: 2}}}
	same := [][]topk.Result{{{ID: 1, Score: 3}, {ID: 2, Score: 2}}}
	got, err := RMSEAtK(same, opt, 2)
	if err != nil || got != 0 {
		t.Fatalf("identical lists RMSE = %v, %v", got, err)
	}
	off := [][]topk.Result{{{ID: 9, Score: 2}, {ID: 8, Score: 1}}}
	got, err = RMSEAtK(off, opt, 2)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("off-by-one RMSE = %v, want 1", got)
	}
	if _, err := RMSEAtK(nil, opt, 2); err == nil {
		t.Fatal("expected length mismatch error")
	}
	// Short recommended list pads with zero scores.
	short := [][]topk.Result{{{ID: 1, Score: 3}}}
	got, _ = RMSEAtK(short, opt, 2)
	if math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("short-list RMSE = %v, want √2", got)
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	rec := [][]topk.Result{list(1, 9, 2), list(7)}
	rel := []map[int]bool{relevance(1, 2), relevance(5)}
	got, err := MeanAveragePrecision(rec, rel, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Query 1: hits at ranks 1 and 3 → AP = (1/1 + 2/3)/2 = 5/6.
	// Query 2: no hits → 0. MAP = 5/12.
	if math.Abs(got-5.0/12) > 1e-12 {
		t.Fatalf("MAP = %v, want 5/12", got)
	}
	if _, err := MeanAveragePrecision(rec, rel[:1], 3); err == nil {
		t.Fatal("expected mismatch error")
	}
	empty, err := MeanAveragePrecision(nil, nil, 3)
	if err != nil || empty != 0 {
		t.Fatalf("empty MAP = %v, %v", empty, err)
	}
}
