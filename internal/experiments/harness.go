// Package experiments is the reproduction harness for the paper's
// evaluation (Section 7 and Appendix B): it builds each retrieval method
// over the calibrated synthetic datasets, times preprocessing and
// retrieval, collects pruning counters, and formats results as the
// paper's tables and figures. It is shared by cmd/fexbench and the
// repository's testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"time"

	"fexipro/internal/balltree"
	"fexipro/internal/core"
	"fexipro/internal/covertree"
	"fexipro/internal/data"
	"fexipro/internal/engine"
	"fexipro/internal/lemp"
	"fexipro/internal/obs"
	"fexipro/internal/scan"
	"fexipro/internal/search"
	"fexipro/internal/vec"
)

// Config controls workload sizes. Zero values select per-profile bench
// defaults (Table 2 sizes, except Yahoo which is scaled to 100k items).
type Config struct {
	// Profiles to evaluate; nil = all four in paper order.
	Profiles []string
	// Items, Queries, Dim override the profile defaults when > 0.
	Items, Queries, Dim int
	// Shards > 1 partitions every method's index into that many shards
	// answered per query through the sharded execution engine (DESIGN.md
	// §11) with a pool of SearchWorkers goroutines (≤ 0 = GOMAXPROCS,
	// clamped to Shards). Results are bit-identical to the sequential
	// scan for every exact method.
	Shards, SearchWorkers int
}

func (c Config) profiles() []data.Profile {
	if len(c.Profiles) == 0 {
		return data.Profiles()
	}
	out := make([]data.Profile, 0, len(c.Profiles))
	for _, name := range c.Profiles {
		p, err := data.ProfileByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// Load generates the dataset for one profile under this config.
func (c Config) Load(p data.Profile) *data.Dataset {
	return data.Generate(p, c.Items, c.Queries, c.Dim)
}

// Methods in the order of Table 4.
var MethodNames = []string{"Naive", "BallTree", "FastMKS", "SS-L", "F-S", "F-I", "F-SI", "F-SR", "F-SIR"}

// Built couples a constructed searcher with its preprocessing time.
type Built struct {
	Name       string
	Searcher   search.Searcher
	Preprocess time.Duration
}

// tuningSamples is how many sample queries the LEMP-style w tuning uses;
// LEMP's preprocessing works with "a small number of sample queries".
const tuningSamples = 5

// Build constructs the named method over the items. SS-L and LEMP use
// (the first few) sampleQueries for w tuning when provided.
func Build(name string, items *vec.Matrix, sampleQueries *vec.Matrix) (Built, error) {
	sampleQueries = firstRows(sampleQueries, tuningSamples)
	start := time.Now()
	var s search.Searcher
	switch name {
	case "Naive":
		s = scan.NewNaive(items)
	case "SS":
		s = scan.NewSS(items, 0)
	case "SS-L":
		s = scan.NewSSL(items, scan.SSLOptions{SampleQueries: sampleQueries})
	case "BallTree":
		s = balltree.New(items, 0)
	case "FastMKS":
		s = covertree.New(items, 0)
	case "LEMP":
		s = lemp.New(items, lemp.Options{SampleQueries: sampleQueries})
	default:
		opts, err := core.OptionsForVariant(name)
		if err != nil {
			return Built{}, fmt.Errorf("experiments: unknown method %q", name)
		}
		idx, err := core.NewIndex(items, opts)
		if err != nil {
			return Built{}, err
		}
		s = core.NewRetriever(idx)
	}
	return Built{Name: name, Searcher: s, Preprocess: time.Since(start)}, nil
}

// BuildSharded constructs the named method with its index partitioned
// into `shards` scanned per query by a pool of `workers` goroutines
// through the sharded execution engine (DESIGN.md §11). shards ≤ 1
// falls back to the sequential Build. Preprocess includes the shard
// partitioning (and, for tree methods, the per-shard tree builds).
func BuildSharded(name string, items, sampleQueries *vec.Matrix, shards, workers int) (Built, error) {
	if shards <= 1 {
		return Build(name, items, sampleQueries)
	}
	sampleQueries = firstRows(sampleQueries, tuningSamples)
	start := time.Now()
	var kern engine.Kernel
	switch name {
	case "Naive":
		kern = scan.NewNaiveKernel(scan.NewNaive(items), shards)
	case "SS":
		kern = scan.NewSSKernel(scan.NewSS(items, 0), shards)
	case "SS-L":
		kern = scan.NewSSLKernel(scan.NewSSL(items, scan.SSLOptions{SampleQueries: sampleQueries}), shards)
	case "BallTree":
		kern = balltree.NewKernel(items, 0, shards)
	case "FastMKS":
		kern = covertree.NewKernel(items, 0, shards)
	case "LEMP":
		kern = lemp.NewKernel(lemp.New(items, lemp.Options{SampleQueries: sampleQueries}), shards)
	default:
		opts, err := core.OptionsForVariant(name)
		if err != nil {
			return Built{}, fmt.Errorf("experiments: unknown method %q", name)
		}
		idx, err := core.NewIndex(items, opts)
		if err != nil {
			return Built{}, err
		}
		kern = core.NewSharded(idx, shards)
	}
	return Built{Name: name, Searcher: engine.New(kern, workers), Preprocess: time.Since(start)}, nil
}

// QueryCost records one query's work for the distribution figures.
type QueryCost struct {
	Duration     time.Duration
	FullProducts int
}

// RunResult aggregates one method over one workload.
type RunResult struct {
	Method       string
	Dataset      string
	K            int
	Preprocess   time.Duration
	Retrieve     time.Duration
	AvgFullIP    float64 // Tables 3 and 7
	Stats        search.Stats
	PerQuery     []QueryCost
	QueriesCount int

	// StagesTimed is true when the method answered traced queries, so
	// the per-stage wall times below are populated: the cumulative span
	// durations of the query transform, the (per-shard) scan, and — for
	// sharded methods — the canonical merge (DESIGN.md §13). Retrieve
	// remains the outer end-to-end time; the stages nest inside it.
	StagesTimed bool
	Transform   time.Duration
	Scan        time.Duration
	Merge       time.Duration
}

// Run executes every query of the dataset at k against a built method.
// Methods that implement search.ContextSearcher run each query under a
// span, so the result also carries per-stage (transform/scan/merge)
// wall times; the span attach is a few hundred nanoseconds per query,
// invisible next to a catalog scan.
func Run(b Built, ds *data.Dataset, k int, collectPerQuery bool) RunResult {
	r := RunResult{
		Method:       b.Name,
		Dataset:      ds.Profile.Name,
		K:            k,
		Preprocess:   b.Preprocess,
		QueriesCount: ds.Queries.Rows,
	}
	if collectPerQuery {
		r.PerQuery = make([]QueryCost, 0, ds.Queries.Rows)
	}
	cs, traced := b.Searcher.(search.ContextSearcher)
	r.StagesTimed = traced
	var totalFull int
	start := time.Now()
	for i := 0; i < ds.Queries.Rows; i++ {
		qStart := time.Now()
		if traced {
			root := obs.NewRoot("search")
			_, _ = cs.SearchContext(obs.ContextWithSpan(context.Background(), root), ds.Queries.Row(i), k)
			root.End()
			r.Transform += root.ChildDuration("transform")
			r.Scan += root.ChildDuration("scan")
			r.Merge += root.ChildDuration("merge")
		} else {
			b.Searcher.Search(ds.Queries.Row(i), k)
		}
		st := b.Searcher.Stats()
		totalFull += st.FullProducts
		r.Stats.Add(st)
		if collectPerQuery {
			r.PerQuery = append(r.PerQuery, QueryCost{
				Duration:     time.Since(qStart),
				FullProducts: st.FullProducts,
			})
		}
	}
	r.Retrieve = time.Since(start)
	if ds.Queries.Rows > 0 {
		r.AvgFullIP = float64(totalFull) / float64(ds.Queries.Rows)
	}
	return r
}

// firstRows returns a view of at most n leading rows of m (nil-safe).
func firstRows(m *vec.Matrix, n int) *vec.Matrix {
	if m == nil || m.Rows <= n {
		return m
	}
	return &vec.Matrix{Rows: n, Cols: m.Cols, Data: m.Data[:n*m.Cols]}
}

// RunMethod builds and runs a method over a dataset in one call.
func RunMethod(name string, ds *data.Dataset, k int, collectPerQuery bool) (RunResult, error) {
	b, err := Build(name, ds.Items, ds.Queries)
	if err != nil {
		return RunResult{}, err
	}
	return Run(b, ds, k, collectPerQuery), nil
}

// RunMethodSharded is RunMethod through BuildSharded.
func RunMethodSharded(name string, ds *data.Dataset, k int, collectPerQuery bool, shards, workers int) (RunResult, error) {
	b, err := BuildSharded(name, ds.Items, ds.Queries, shards, workers)
	if err != nil {
		return RunResult{}, err
	}
	return Run(b, ds, k, collectPerQuery), nil
}
