// Package experiments is the reproduction harness for the paper's
// evaluation (Section 7 and Appendix B): it builds each retrieval method
// over the calibrated synthetic datasets, times preprocessing and
// retrieval, collects pruning counters, and formats results as the
// paper's tables and figures. It is shared by cmd/fexbench and the
// repository's testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fexipro/internal/data"
	"fexipro/internal/engine"
	"fexipro/internal/method"
	"fexipro/internal/obs"
	"fexipro/internal/plan"
	"fexipro/internal/search"
	"fexipro/internal/vec"
)

// Config controls workload sizes. Zero values select per-profile bench
// defaults (Table 2 sizes, except Yahoo which is scaled to 100k items).
type Config struct {
	// Profiles to evaluate; nil = all four in paper order.
	Profiles []string
	// Items, Queries, Dim override the profile defaults when > 0.
	Items, Queries, Dim int
	// Shards > 1 partitions every method's index into that many shards
	// answered per query through the sharded execution engine (DESIGN.md
	// §11) with a pool of SearchWorkers goroutines (≤ 0 = GOMAXPROCS,
	// clamped to Shards). Results are bit-identical to the sequential
	// scan for every exact method.
	Shards, SearchWorkers int
}

func (c Config) profiles() []data.Profile {
	if len(c.Profiles) == 0 {
		return data.Profiles()
	}
	out := make([]data.Profile, 0, len(c.Profiles))
	for _, name := range c.Profiles {
		p, err := data.ProfileByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// Load generates the dataset for one profile under this config.
func (c Config) Load(p data.Profile) *data.Dataset {
	return data.Generate(p, c.Items, c.Queries, c.Dim)
}

// MethodNames are the methods of the paper's Table 4, in table order —
// derived from the internal/method registry, the single source of
// method names in this repository.
var MethodNames = method.TableNames()

// AutoMethod is the pseudo-method name that builds the cost-based
// query planner (internal/plan) over the registry's default candidate
// pool instead of one fixed method.
const AutoMethod = "auto"

// Built couples a constructed searcher with its preprocessing time.
type Built struct {
	Name       string
	Searcher   search.Searcher
	Preprocess time.Duration
}

// tuningSamples is how many sample queries the LEMP-style w tuning uses;
// LEMP's preprocessing works with "a small number of sample queries".
const tuningSamples = 5

// Build constructs the named method over the items by resolving the
// internal/method registry (names and aliases, case-insensitive). SS-L
// and LEMP use (the first few) sampleQueries for w tuning when
// provided. The name "auto" builds the cost-based planner over the
// registry's default candidate pool.
func Build(name string, items *vec.Matrix, sampleQueries *vec.Matrix) (Built, error) {
	return BuildSharded(name, items, sampleQueries, 1, 1)
}

// BuildSharded constructs the named method with its index partitioned
// into `shards` scanned per query by a pool of `workers` goroutines
// through the sharded execution engine (DESIGN.md §11). shards ≤ 1
// builds the sequential searcher. Preprocess includes the shard
// partitioning (and, for tree methods, the per-shard tree builds).
func BuildSharded(name string, items, sampleQueries *vec.Matrix, shards, workers int) (Built, error) {
	if strings.EqualFold(name, AutoMethod) {
		return buildAuto(items, sampleQueries, shards, workers)
	}
	d, err := method.Get(name)
	if err != nil {
		return Built{}, fmt.Errorf("experiments: %w", err)
	}
	o := method.BuildOptions{SampleQueries: firstRows(sampleQueries, tuningSamples)}
	start := time.Now()
	var s search.Searcher
	if shards <= 1 {
		s, err = d.Build(items, o)
	} else {
		var kern engine.Kernel
		kern, err = d.NewKernel(items, o, shards)
		if err == nil {
			s = engine.New(kern, workers)
		}
	}
	if err != nil {
		return Built{}, err
	}
	return Built{Name: d.Name, Searcher: s, Preprocess: time.Since(start)}, nil
}

// buildAuto constructs one candidate per registry AutoCandidate method
// and wires them into a plan.Planner, so the harness measures the
// planner exactly like any fixed method — its Run results additionally
// carry a plan Summary (decisions, mispredict rate).
func buildAuto(items, sampleQueries *vec.Matrix, shards, workers int) (Built, error) {
	start := time.Now()
	var cands []plan.Candidate
	for _, name := range method.AutoNames() {
		b, err := BuildSharded(name, items, sampleQueries, shards, workers)
		if err != nil {
			return Built{}, fmt.Errorf("experiments: auto candidate %s: %w", name, err)
		}
		d, _ := method.Lookup(name)
		cands = append(cands, plan.Candidate{
			Name:     d.Name,
			Searcher: search.WithContext(b.Searcher),
			Cost:     d.Cost,
			Exact:    d.Exact,
		})
	}
	p, err := plan.New(cands, plan.Options{
		N: items.Rows, D: items.Cols, Shards: shards, Workers: workers,
	})
	if err != nil {
		return Built{}, err
	}
	return Built{Name: AutoMethod, Searcher: p, Preprocess: time.Since(start)}, nil
}

// QueryCost records one query's work for the distribution figures.
type QueryCost struct {
	Duration     time.Duration
	FullProducts int
}

// RunResult aggregates one method over one workload.
type RunResult struct {
	Method       string
	Dataset      string
	K            int
	Preprocess   time.Duration
	Retrieve     time.Duration
	AvgFullIP    float64 // Tables 3 and 7
	Stats        search.Stats
	PerQuery     []QueryCost
	QueriesCount int

	// StagesTimed is true when the method answered traced queries, so
	// the per-stage wall times below are populated: the cumulative span
	// durations of the query transform, the (per-shard) scan, and — for
	// sharded methods — the canonical merge (DESIGN.md §13). Retrieve
	// remains the outer end-to-end time; the stages nest inside it.
	StagesTimed bool
	Transform   time.Duration
	Scan        time.Duration
	Merge       time.Duration

	// Plan is the planner's decision summary, present only for the
	// "auto" pseudo-method.
	Plan *plan.Summary
}

// Run executes every query of the dataset at k against a built method.
// Methods that implement search.ContextSearcher run each query under a
// span, so the result also carries per-stage (transform/scan/merge)
// wall times; the span attach is a few hundred nanoseconds per query,
// invisible next to a catalog scan.
func Run(b Built, ds *data.Dataset, k int, collectPerQuery bool) RunResult {
	r := RunResult{
		Method:       b.Name,
		Dataset:      ds.Profile.Name,
		K:            k,
		Preprocess:   b.Preprocess,
		QueriesCount: ds.Queries.Rows,
	}
	if collectPerQuery {
		r.PerQuery = make([]QueryCost, 0, ds.Queries.Rows)
	}
	cs, traced := b.Searcher.(search.ContextSearcher)
	r.StagesTimed = traced
	var totalFull int
	start := time.Now()
	for i := 0; i < ds.Queries.Rows; i++ {
		qStart := time.Now()
		if traced {
			root := obs.NewRoot("search")
			_, _ = cs.SearchContext(obs.ContextWithSpan(context.Background(), root), ds.Queries.Row(i), k)
			root.End()
			r.Transform += root.ChildDuration("transform")
			r.Scan += root.ChildDuration("scan")
			r.Merge += root.ChildDuration("merge")
		} else {
			b.Searcher.Search(ds.Queries.Row(i), k)
		}
		st := b.Searcher.Stats()
		totalFull += st.FullProducts
		r.Stats.Add(st)
		if collectPerQuery {
			r.PerQuery = append(r.PerQuery, QueryCost{
				Duration:     time.Since(qStart),
				FullProducts: st.FullProducts,
			})
		}
	}
	r.Retrieve = time.Since(start)
	if ds.Queries.Rows > 0 {
		r.AvgFullIP = float64(totalFull) / float64(ds.Queries.Rows)
	}
	if p, ok := b.Searcher.(interface{ Summary() plan.Summary }); ok {
		s := p.Summary()
		r.Plan = &s
	}
	return r
}

// firstRows returns a view of at most n leading rows of m (nil-safe).
func firstRows(m *vec.Matrix, n int) *vec.Matrix {
	if m == nil || m.Rows <= n {
		return m
	}
	return &vec.Matrix{Rows: n, Cols: m.Cols, Data: m.Data[:n*m.Cols]}
}

// RunMethod builds and runs a method over a dataset in one call.
func RunMethod(name string, ds *data.Dataset, k int, collectPerQuery bool) (RunResult, error) {
	b, err := Build(name, ds.Items, ds.Queries)
	if err != nil {
		return RunResult{}, err
	}
	return Run(b, ds, k, collectPerQuery), nil
}

// RunMethodSharded is RunMethod through BuildSharded.
func RunMethodSharded(name string, ds *data.Dataset, k int, collectPerQuery bool, shards, workers int) (RunResult, error) {
	b, err := BuildSharded(name, ds.Items, ds.Queries, shards, workers)
	if err != nil {
		return RunResult{}, err
	}
	return Run(b, ds, k, collectPerQuery), nil
}
