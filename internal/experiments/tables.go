package experiments

import (
	"fmt"
	"time"

	"fexipro/internal/batch"
	"fexipro/internal/lemp"
	"fexipro/internal/method"
)

// pruningMethods are the columns of Tables 3 and 7 — the registry's
// Pruning-flagged methods in table order.
var pruningMethods = method.PruningNames()

// Grid runs the given methods over every configured profile at one k and
// returns results indexed by [method][dataset].
func Grid(cfg Config, methods []string, k int) (map[string]map[string]RunResult, error) {
	out := make(map[string]map[string]RunResult, len(methods))
	for _, m := range methods {
		out[m] = make(map[string]RunResult)
	}
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		for _, m := range methods {
			res, err := RunMethod(m, ds, k, false)
			if err != nil {
				return nil, err
			}
			out[m][p.Name] = res
		}
	}
	return out, nil
}

// Table3 reproduces "Average Number of Entire qᵀp Computations (k=1)".
func Table3(cfg Config) (string, error) {
	grid, err := Grid(cfg, pruningMethods, 1)
	if err != nil {
		return "", err
	}
	return renderPruningTable("Table 3: Average Number of Entire qTp Computations (k=1)", cfg, grid), nil
}

// Table7 reproduces the same metric for k ∈ {2,5,10,50}.
func Table7(cfg Config) (string, error) {
	out := ""
	for _, k := range []int{2, 5, 10, 50} {
		grid, err := Grid(cfg, pruningMethods, k)
		if err != nil {
			return "", err
		}
		out += renderPruningTable(fmt.Sprintf("Table 7 (k=%d): Average Number of Entire qTp Computations", k), cfg, grid)
		out += "\n"
	}
	return out, nil
}

func renderPruningTable(title string, cfg Config, grid map[string]map[string]RunResult) string {
	t := NewTable(title, append([]string{"Dataset"}, pruningMethods...)...)
	for _, p := range cfg.profiles() {
		row := []string{p.Name}
		for _, m := range pruningMethods {
			row = append(row, fmt.Sprintf("%.2f", grid[m][p.Name].AvgFullIP))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Table4 reproduces "Total Retrieval and Preprocessing Times for All
// Top-1 IP Queries".
func Table4(cfg Config) (string, error) {
	return timesTable("Table 4", cfg, 1)
}

// Table8 reproduces the retrieval/preprocessing times for k ∈ {2,5,10,50}.
func Table8(cfg Config) (string, error) {
	out := ""
	for _, k := range []int{2, 5, 10, 50} {
		s, err := timesTable("Table 8", cfg, k)
		if err != nil {
			return "", err
		}
		out += s + "\n"
	}
	return out, nil
}

func timesTable(label string, cfg Config, k int) (string, error) {
	grid, err := Grid(cfg, MethodNames, k)
	if err != nil {
		return "", err
	}
	header := []string{"Method"}
	for _, p := range cfg.profiles() {
		header = append(header, p.Name+" retrieve", p.Name+" (preproc)")
	}
	t := NewTable(fmt.Sprintf("%s (k=%d): Total Retrieval and Preprocessing Times (seconds)", label, k), header...)
	for _, m := range MethodNames {
		row := []string{m}
		for _, p := range cfg.profiles() {
			r := grid[m][p.Name]
			row = append(row, Seconds(r.Retrieve), "("+Seconds(r.Preprocess)+")")
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// Figure6 reports the speedup of F-SIR over every other method in total
// time (k=1) — the content of Figure 6. The paper's totals cover the
// entire user matrix Q (hundreds of thousands of queries), which makes
// preprocessing negligible; since the harness samples a few hundred
// queries, retrieval time is extrapolated to the profile's full user
// count before adding the (un-amortized) preprocessing time.
func Figure6(cfg Config) (string, error) {
	grid, err := Grid(cfg, MethodNames, 1)
	if err != nil {
		return "", err
	}
	header := []string{"Method"}
	for _, p := range cfg.profiles() {
		header = append(header, p.Name)
	}
	t := NewTable("Figure 6: Speedup of F-SIR over each method, total time extrapolated to all users (k=1)", header...)
	for _, m := range MethodNames {
		if m == "F-SIR" {
			continue
		}
		row := []string{m}
		for _, p := range cfg.profiles() {
			base := grid["F-SIR"][p.Name]
			other := grid[m][p.Name]
			row = append(row, fmt.Sprintf("%.1fx", extrapolatedTotal(other, p.Users)/extrapolatedTotal(base, p.Users)))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// extrapolatedTotal scales measured retrieval time from the sampled
// query count up to the full user count and adds preprocessing.
func extrapolatedTotal(r RunResult, users int) float64 {
	perQuery := r.Retrieve.Seconds() / float64(r.QueriesCount)
	return r.Preprocess.Seconds() + perQuery*float64(users)
}

// Table5 reproduces "MiniBatch Using Intel MKL": blocked-GEMM batch
// retrieval at batch sizes 1/100/10000, single- and multi-threaded.
func Table5(cfg Config) (string, error) {
	batchSizes := []int{1, 100, 10000}
	t := NewTable("Table 5 (k=1): MiniBatch blocked GEMM (seconds)",
		"Dataset", "bs=1 1thr", "bs=1 multi", "bs=100 1thr", "bs=100 multi", "bs=10000 1thr", "bs=10000 multi")
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		row := []string{p.Name}
		for _, bs := range batchSizes {
			for _, workers := range []int{1, 0} {
				mb := batch.New(ds.Items, batch.Options{BatchSize: bs, Workers: workers})
				start := time.Now()
				mb.TopKAll(ds.Queries, 1)
				row = append(row, Seconds(time.Since(start)))
			}
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// Table6 reproduces "Batch Query Processing by LEMP" for k ∈
// {1,2,5,10,50}.
func Table6(cfg Config) (string, error) {
	ks := []int{1, 2, 5, 10, 50}
	header := []string{"Dataset"}
	for _, k := range ks {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	t := NewTable("Table 6: Batch Query Processing by LEMP (seconds)", header...)
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		idx := lemp.New(ds.Items, lemp.Options{SampleQueries: firstRows(ds.Queries, tuningSamples)})
		row := []string{p.Name}
		for _, k := range ks {
			start := time.Now()
			idx.TopKJoin(ds.Queries, k)
			row = append(row, Seconds(time.Since(start)))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}
