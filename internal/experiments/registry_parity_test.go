package experiments

import (
	"strings"
	"testing"

	"fexipro/internal/data"
	"fexipro/internal/method"
)

// TestRegistryRoundTripsThroughRunMethodSharded is the registry/harness
// parity check: every method the registry knows — plus the "auto"
// planner — must build and answer through RunMethodSharded at both the
// sequential and the sharded execution paths, returning the canonical
// registry name and a full result set. This replaces the old implicit
// parity between three hand-maintained name tables.
func TestRegistryRoundTripsThroughRunMethodSharded(t *testing.T) {
	p, err := data.ProfileByName("movielens")
	if err != nil {
		t.Fatal(err)
	}
	ds := data.Generate(p, 250, 3, 10)
	const k = 4
	names := append(method.Names(), AutoMethod)
	for _, name := range names {
		for _, shards := range []int{1, 2} {
			r, err := RunMethodSharded(name, ds, k, false, shards, 2)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			wantName := name
			if d, ok := method.Lookup(name); ok {
				wantName = d.Name
			}
			if r.Method != wantName {
				t.Errorf("%s: result method %q, want canonical %q", name, r.Method, wantName)
			}
			if r.QueriesCount != ds.Queries.Rows {
				t.Errorf("%s shards=%d: ran %d queries, want %d", name, shards, r.QueriesCount, ds.Queries.Rows)
			}
			if name == AutoMethod {
				if r.Plan == nil || r.Plan.Queries != int64(ds.Queries.Rows) {
					t.Errorf("auto shards=%d: plan summary %+v, want %d planned queries", shards, r.Plan, ds.Queries.Rows)
				}
			} else if r.Plan != nil {
				t.Errorf("%s: unexpected plan summary on a fixed method", name)
			}
		}
	}

	// Aliases resolve to the same canonical runs.
	r, err := RunMethodSharded("ssl", ds, k, false, 1, 1)
	if err != nil || r.Method != "SS-L" {
		t.Fatalf("alias ssl: method %q err %v, want SS-L", r.Method, err)
	}

	// Unknown names fail with a helpful error.
	if _, err := RunMethodSharded("nope", ds, k, false, 1, 1); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("unknown method error = %v", err)
	}
}
