package experiments

import (
	"fmt"
	"sort"
)

// Experiment is a runnable table/figure reproduction.
type Experiment struct {
	ID          string
	Description string
	Run         func(Config) (string, error)
}

// Registry returns every experiment, keyed by the paper's table/figure id.
func Registry() map[string]Experiment {
	exps := []Experiment{
		{"table3", "Average number of entire qTp computations (k=1)", Table3},
		{"table4", "Total retrieval and preprocessing times, all methods (k=1)", Table4},
		{"table5", "MiniBatch blocked-GEMM batch processing", Table5},
		{"table6", "LEMP batch top-k join for k in {1,2,5,10,50}", Table6},
		{"table7", "Entire-computation counts for k in {2,5,10,50}", Table7},
		{"table8", "Retrieval/preprocessing times for k in {2,5,10,50}", Table8},
		{"fig6", "Speedup of F-SIR over every other method (k=1)", Figure6},
		{"fig7", "Retrieval time vs k for SS-L and F-SIR", Figure7},
		{"fig8", "Average k-th inner product vs k", Figure8},
		{"fig9", "Distribution of per-query costs (F-SIR, k=1)", Figure9},
		{"fig10", "Retrieval time and w vs rho", Figure10},
		{"fig11", "Retrieval time vs integer scaling e", Figure11},
		{"fig12", "Distribution of entire-qTp counts (F-SIR, k=1)", Figure12},
		{"fig13", "PCATree timing and RMSE@k", Figure13},
		{"fig14", "Distribution of factor values (also fig3)", Figure14},
		{"fig15", "Cumulative IP share per dimension, Naive vs F-S", Figure15},
		{"fig16", "Avg |scalar| per dimension before/after SVD (also fig17)", Figure16And17},
		{"fig18", "Mean sorted-|value| profile of original vectors (also fig19)", Figure18And19},
		{"fig20", "Retrieval time vs dimensionality d", Figure20},
	}
	out := make(map[string]Experiment, len(exps))
	for _, e := range exps {
		out[e.ID] = e
	}
	return out
}

// IDs returns the experiment ids in stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunByID executes one experiment.
func RunByID(id string, cfg Config) (string, error) {
	exp, ok := Registry()[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return exp.Run(cfg)
}
