package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"fexipro/internal/core"
	"fexipro/internal/data"
	"fexipro/internal/pcatree"
	"fexipro/internal/scan"
	"fexipro/internal/svd"
	"fexipro/internal/vec"
)

// Figure7 plots total retrieval time versus k for SS-L and F-SIR.
func Figure7(cfg Config) (string, error) {
	ks := []int{1, 2, 5, 10, 50}
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		ssl, err := Build("SS-L", ds.Items, ds.Queries)
		if err != nil {
			return "", err
		}
		fsir, err := Build("F-SIR", ds.Items, ds.Queries)
		if err != nil {
			return "", err
		}
		x := make([]float64, len(ks))
		ys := [][]float64{make([]float64, len(ks)), make([]float64, len(ks))}
		for i, k := range ks {
			x[i] = float64(k)
			ys[0][i] = Run(ssl, ds, k, false).Retrieve.Seconds()
			ys[1][i] = Run(fsir, ds, k, false).Retrieve.Seconds()
		}
		out += Series(fmt.Sprintf("Figure 7 [%s]: retrieval time (s) vs k", p.Name),
			"k", x, []string{"SS-L", "F-SIR"}, ys)
		out += "\n"
	}
	return out, nil
}

// Figure8 plots the average k-th largest inner product per query as a
// function of k (1..50) — the data behind the paper's pruning-difficulty
// analysis.
func Figure8(cfg Config) (string, error) {
	const maxK = 50
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		b, err := Build("F-SIR", ds.Items, ds.Queries)
		if err != nil {
			return "", err
		}
		sums := make([]float64, maxK)
		for i := 0; i < ds.Queries.Rows; i++ {
			res := b.Searcher.Search(ds.Queries.Row(i), maxK)
			for k := 0; k < maxK && k < len(res); k++ {
				sums[k] += res[k].Score
			}
		}
		x := make([]float64, maxK)
		y := make([]float64, maxK)
		for k := 0; k < maxK; k++ {
			x[k] = float64(k + 1)
			y[k] = sums[k] / float64(ds.Queries.Rows)
		}
		out += Series(fmt.Sprintf("Figure 8 [%s]: average k-th inner product", p.Name),
			"k", x, []string{"avg IP"}, [][]float64{y})
		out += "\n"
	}
	return out, nil
}

// Figure9 renders the distribution of per-query retrieval costs for
// F-SIR at k=1.
func Figure9(cfg Config) (string, error) {
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		res, err := RunMethod("F-SIR", ds, 1, true)
		if err != nil {
			return "", err
		}
		micros := make([]float64, len(res.PerQuery))
		for i, qc := range res.PerQuery {
			micros[i] = float64(qc.Duration.Microseconds())
		}
		out += Histogram(fmt.Sprintf("Figure 9 [%s]: per-query cost (µs), F-SIR k=1", p.Name), micros, 20)
		out += "\n"
	}
	return out, nil
}

// Figure12 renders the distribution of entire-qᵀp counts per query for
// F-SIR at k=1.
func Figure12(cfg Config) (string, error) {
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		res, err := RunMethod("F-SIR", ds, 1, true)
		if err != nil {
			return "", err
		}
		counts := make([]float64, len(res.PerQuery))
		for i, qc := range res.PerQuery {
			counts[i] = float64(qc.FullProducts)
		}
		out += Histogram(fmt.Sprintf("Figure 12 [%s]: entire qTp computations per query, F-SIR k=1", p.Name), counts, 20)
		out += "\n"
	}
	return out, nil
}

// Figure10 sweeps ρ (and reports the induced w) for F-S and F-SIR
// against the SS-L constant.
func Figure10(cfg Config) (string, error) {
	rhos := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		sslRes, err := RunMethod("SS-L", ds, 1, false)
		if err != nil {
			return "", err
		}
		t := NewTable(fmt.Sprintf("Figure 10 [%s]: retrieval time vs rho (k=1); SS-L = %s s",
			p.Name, Seconds(sslRes.Retrieve)),
			"rho", "w", "F-S (s)", "F-SIR (s)")
		for _, rho := range rhos {
			var wUsed int
			var row []string
			row = append(row, fmt.Sprintf("%.1f", rho))
			times := map[string]time.Duration{}
			for _, variant := range []string{"F-S", "F-SIR"} {
				opts, err := core.OptionsForVariant(variant)
				if err != nil {
					return "", err
				}
				opts.Rho = rho
				idx, err := core.NewIndex(ds.Items, opts)
				if err != nil {
					return "", err
				}
				wUsed = idx.W()
				b := Built{Name: variant, Searcher: core.NewRetriever(idx)}
				times[variant] = Run(b, ds, 1, false).Retrieve
			}
			row = append(row, fmt.Sprintf("%d", wUsed), Seconds(times["F-S"]), Seconds(times["F-SIR"]))
			t.AddRow(row...)
		}
		out += t.String() + "\n"
	}
	return out, nil
}

// Figure11 sweeps the integer scaling parameter e for F-SIR.
func Figure11(cfg Config) (string, error) {
	es := []float64{10, 50, 100, 500, 1000}
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		x := make([]float64, len(es))
		y := make([]float64, len(es))
		for i, e := range es {
			idx, err := core.NewIndex(ds.Items, core.Options{SVD: true, Int: true, Reduction: true, E: e})
			if err != nil {
				return "", err
			}
			b := Built{Name: "F-SIR", Searcher: core.NewRetriever(idx)}
			x[i] = e
			y[i] = Run(b, ds, 1, false).Retrieve.Seconds()
		}
		out += Series(fmt.Sprintf("Figure 11 [%s]: retrieval time (s) vs e (k=1)", p.Name),
			"e", x, []string{"F-SIR"}, [][]float64{y})
		out += "\n"
	}
	return out, nil
}

// Figure13 measures the PCATree baseline: retrieval time and RMSE@k.
func Figure13(cfg Config) (string, error) {
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		start := time.Now()
		tree := pcatree.New(ds.Items, pcatree.Options{LeafSize: 64})
		prep := time.Since(start)

		start = time.Now()
		for i := 0; i < ds.Queries.Rows; i++ {
			tree.Search(ds.Queries.Row(i), 1)
		}
		retr := time.Since(start)

		exact := scan.NewNaive(ds.Items)
		ks := []int{1, 2, 5, 10}
		x := make([]float64, len(ks))
		y := make([]float64, len(ks))
		for i, k := range ks {
			x[i] = float64(k)
			y[i] = pcatree.RMSEAtK(tree, exact, firstRows(ds.Queries, 50), k)
		}
		out += fmt.Sprintf("PCATree [%s]: retrieve %s s (preprocess %s s)\n", p.Name, Seconds(retr), Seconds(prep))
		out += Series(fmt.Sprintf("Figure 13 [%s]: PCATree RMSE@k", p.Name),
			"k", x, []string{"RMSE@k"}, [][]float64{y})
		out += "\n"
	}
	return out, nil
}

// Figure14 renders the distribution of factor values (Figures 3 and 14).
func Figure14(cfg Config) (string, error) {
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		vals := append([]float64(nil), ds.Items.Data...)
		vals = append(vals, ds.Queries.Data...)
		out += Histogram(fmt.Sprintf("Figure 14 [%s]: distribution of factor values", p.Name), vals, 24)
		out += "\n"
	}
	return out, nil
}

// Figure15 shows the average cumulative share of the inner product after
// each dimension, before (original order) and after the SVD
// transformation.
func Figure15(cfg Config) (string, error) {
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		d := ds.Items.Cols
		thin, err := svd.Decompose(ds.Items, 0)
		if err != nil {
			return "", err
		}
		nq := ds.Queries.Rows
		if nq > 20 {
			nq = 20
		}
		before := make([]float64, d)
		after := make([]float64, d)
		var samples int
		for qi := 0; qi < nq; qi++ {
			q := ds.Queries.Row(qi)
			qbar := thin.TransformQuery(q)
			for i := 0; i < ds.Items.Rows; i += 97 { // stride-sample items
				row := ds.Items.Row(i)
				brow := thin.V1.Row(i)
				total := vec.Dot(q, row)
				if math.Abs(total) < 1e-9 {
					continue
				}
				samples++
				var cb, ca float64
				for s := 0; s < d; s++ {
					cb += q[s] * row[s]
					ca += qbar[s] * brow[s]
					before[s] += cb / total
					after[s] += ca / total
				}
			}
		}
		if samples == 0 {
			continue
		}
		x := make([]float64, d)
		for s := 0; s < d; s++ {
			x[s] = float64(s + 1)
			before[s] /= float64(samples)
			after[s] /= float64(samples)
		}
		out += Series(fmt.Sprintf("Figure 15 [%s]: avg cumulative IP share per dimension", p.Name),
			"dim", x, []string{"Naive", "F-S"}, [][]float64{before, after})
		out += "\n"
	}
	return out, nil
}

// Figure16And17 shows the average absolute scalar per dimension for
// query and item vectors, before and after the SVD transformation.
func Figure16And17(cfg Config) (string, error) {
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		d := ds.Items.Cols
		thin, err := svd.Decompose(ds.Items, 0)
		if err != nil {
			return "", err
		}
		qBefore, qAfter := make([]float64, d), make([]float64, d)
		for i := 0; i < ds.Queries.Rows; i++ {
			q := ds.Queries.Row(i)
			qbar := thin.TransformQuery(q)
			for s := 0; s < d; s++ {
				qBefore[s] += math.Abs(q[s])
				qAfter[s] += math.Abs(qbar[s])
			}
		}
		pBefore, pAfter := make([]float64, d), make([]float64, d)
		for i := 0; i < ds.Items.Rows; i++ {
			row := ds.Items.Row(i)
			brow := thin.V1.Row(i)
			for s := 0; s < d; s++ {
				pBefore[s] += math.Abs(row[s])
				pAfter[s] += math.Abs(brow[s])
			}
		}
		x := make([]float64, d)
		for s := 0; s < d; s++ {
			x[s] = float64(s + 1)
			qBefore[s] /= float64(ds.Queries.Rows)
			qAfter[s] /= float64(ds.Queries.Rows)
			pBefore[s] /= float64(ds.Items.Rows)
			pAfter[s] /= float64(ds.Items.Rows)
		}
		out += Series(fmt.Sprintf("Figures 16/17 [%s]: avg |scalar| per dimension", p.Name),
			"dim", x, []string{"q before", "q after", "p before", "p after"},
			[][]float64{qBefore, qAfter, pBefore, pAfter})
		out += "\n"
	}
	return out, nil
}

// Figure18And19 shows the mean profile of the original vectors after
// sorting each vector's absolute values in decreasing order — the best
// per-vector reordering incremental pruning could hope for without SVD.
func Figure18And19(cfg Config) (string, error) {
	out := ""
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		d := ds.Items.Cols
		profile := func(m *vec.Matrix) []float64 {
			acc := make([]float64, d)
			tmp := make([]float64, d)
			for i := 0; i < m.Rows; i++ {
				row := m.Row(i)
				for s, v := range row {
					tmp[s] = math.Abs(v)
				}
				sort.Sort(sort.Reverse(sort.Float64Slice(tmp)))
				for s := range tmp {
					acc[s] += tmp[s]
				}
			}
			for s := range acc {
				acc[s] /= float64(m.Rows)
			}
			return acc
		}
		x := make([]float64, d)
		for s := range x {
			x[s] = float64(s + 1)
		}
		out += Series(fmt.Sprintf("Figures 18/19 [%s]: mean sorted |value| profile", p.Name),
			"rank", x, []string{"q", "p"}, [][]float64{profile(ds.Queries), profile(ds.Items)})
		out += "\n"
	}
	return out, nil
}

// Figure20 sweeps the factorization rank d for SS-L versus F-SIR.
func Figure20(cfg Config) (string, error) {
	dims := []int{10, 50, 80, 100}
	out := ""
	for _, p := range cfg.profiles() {
		x := make([]float64, len(dims))
		ys := [][]float64{make([]float64, len(dims)), make([]float64, len(dims))}
		for i, d := range dims {
			ds := data.Generate(p, cfg.Items, cfg.Queries, d)
			sslRes, err := RunMethod("SS-L", ds, 1, false)
			if err != nil {
				return "", err
			}
			fsirRes, err := RunMethod("F-SIR", ds, 1, false)
			if err != nil {
				return "", err
			}
			x[i] = float64(d)
			ys[0][i] = sslRes.Retrieve.Seconds()
			ys[1][i] = fsirRes.Retrieve.Seconds()
		}
		out += Series(fmt.Sprintf("Figure 20 [%s]: retrieval time (s) vs d (k=1)", p.Name),
			"d", x, []string{"SS-L", "F-SIR"}, ys)
		out += "\n"
	}
	return out, nil
}
