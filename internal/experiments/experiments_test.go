package experiments

import (
	"strings"
	"testing"
)

// tinyConfig keeps unit-test runtimes in milliseconds.
func tinyConfig() Config {
	return Config{Profiles: []string{"movielens", "netflix"}, Items: 600, Queries: 10, Dim: 16}
}

func TestBuildAllMethods(t *testing.T) {
	cfg := tinyConfig()
	ds := cfg.Load(cfg.profiles()[0])
	for _, m := range append([]string{"SS", "LEMP"}, MethodNames...) {
		b, err := Build(m, ds.Items, ds.Queries)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		res := b.Searcher.Search(ds.Queries.Row(0), 3)
		if len(res) != 3 {
			t.Fatalf("%s returned %d results", m, len(res))
		}
	}
	if _, err := Build("nope", ds.Items, nil); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestRunCollectsStats(t *testing.T) {
	cfg := tinyConfig()
	ds := cfg.Load(cfg.profiles()[0])
	res, err := RunMethod("F-SIR", ds, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesCount != 10 || len(res.PerQuery) != 10 {
		t.Fatalf("per-query data missing: %+v", res)
	}
	if res.AvgFullIP <= 0 {
		t.Fatalf("AvgFullIP = %v", res.AvgFullIP)
	}
	if res.Retrieve <= 0 {
		t.Fatal("no retrieval time recorded")
	}
}

func TestGridShape(t *testing.T) {
	cfg := tinyConfig()
	grid, err := Grid(cfg, []string{"Naive", "F-SIR"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid["Naive"]) != 2 {
		t.Fatalf("grid shape wrong: %v", grid)
	}
	// F-SIR must never compute more full products than Naive.
	for _, p := range cfg.profiles() {
		if grid["F-SIR"][p.Name].AvgFullIP > grid["Naive"][p.Name].AvgFullIP {
			t.Fatalf("%s: F-SIR computed more products than Naive", p.Name)
		}
	}
}

// Every registered experiment must run end-to-end on a tiny config and
// produce non-empty output mentioning its table/figure.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is seconds-long; skipped in -short")
	}
	cfg := Config{Profiles: []string{"movielens"}, Items: 400, Queries: 8, Dim: 12}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := RunByID(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) == 0 {
				t.Fatal("empty output")
			}
		})
	}
	if _, err := RunByID("bogus", cfg); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Title", "A", "BB")
	tb.AddRow("x", "y")
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "BB") || !strings.Contains(out, "x") {
		t.Fatalf("table output malformed:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("H", []float64{1, 2, 2, 3, 10}, 3)
	if !strings.Contains(out, "H") || !strings.Contains(out, "#") {
		t.Fatalf("histogram malformed:\n%s", out)
	}
	if got := Histogram("E", nil, 3); !strings.Contains(got, "no data") {
		t.Fatalf("empty histogram: %s", got)
	}
	if got := Histogram("C", []float64{5, 5}, 3); !strings.Contains(got, "equal") {
		t.Fatalf("constant histogram: %s", got)
	}
}

func TestSeries(t *testing.T) {
	out := Series("S", "x", []float64{1, 2}, []string{"y"}, [][]float64{{3, 4}})
	if !strings.Contains(out, "S") || !strings.Contains(out, "4") {
		t.Fatalf("series malformed:\n%s", out)
	}
}

func TestFirstRows(t *testing.T) {
	cfg := tinyConfig()
	ds := cfg.Load(cfg.profiles()[0])
	sub := firstRows(ds.Queries, 3)
	if sub.Rows != 3 || sub.Cols != ds.Queries.Cols {
		t.Fatalf("firstRows shape %d×%d", sub.Rows, sub.Cols)
	}
	if firstRows(nil, 3) != nil {
		t.Fatal("firstRows(nil) should be nil")
	}
	same := firstRows(sub, 100)
	if same.Rows != 3 {
		t.Fatal("firstRows should not grow")
	}
}
