package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple text-aligned table builder used to mirror the
// paper's tables on stdout.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(t.header) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Seconds formats a duration as seconds with sensible precision.
func Seconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}

// Histogram bins values into n equal-width buckets and renders an ASCII
// bar chart (the stand-in for the paper's distribution figures).
func Histogram(title string, values []float64, bins int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(values) == 0 || bins <= 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	//lint:ignore floatcmp exact equality detects the zero-width degenerate range
	if hi == lo {
		fmt.Fprintf(&b, "all %d values equal %.4g\n", len(values), lo)
		return b.String()
	}
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, v := range values {
		i := int((v - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range counts {
		barLen := 0
		if maxCount > 0 {
			barLen = c * 50 / maxCount
		}
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %6d %s\n",
			lo+float64(i)*width, lo+float64(i+1)*width, c, strings.Repeat("#", barLen))
	}
	return b.String()
}

// Series renders aligned (x, y...) columns — the textual form of the
// paper's line plots.
func Series(title string, xLabel string, x []float64, yLabels []string, ys [][]float64) string {
	t := NewTable(title, append([]string{xLabel}, yLabels...)...)
	for i, xv := range x {
		row := []string{fmt.Sprintf("%g", xv)}
		for _, y := range ys {
			row = append(row, fmt.Sprintf("%.6g", y[i]))
		}
		t.AddRow(row...)
	}
	return t.String()
}
