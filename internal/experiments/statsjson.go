package experiments

import (
	"encoding/json"
	"fmt"

	"fexipro/internal/obs"
	"fexipro/internal/plan"
)

// StatsReport is one (dataset, method, k) cell of the offline
// counterpart to the service's /metrics: the cumulative per-stage
// pruning counters over every query of the workload, in the exact
// schema (obs.StageCounters) that fexserve reports online. This keeps
// benchmark dumps and production telemetry diffable field by field.
type StatsReport struct {
	// GoVersion and GCFlags identify the toolchain that produced these
	// numbers (obs.Toolchain), so diffs against BENCH_seed.json can
	// separate compiler upgrades from code changes.
	GoVersion string `json:"goVersion"`
	GCFlags   string `json:"gcflags,omitempty"`

	Dataset         string            `json:"dataset"`
	Method          string            `json:"method"`
	K               int               `json:"k"`
	Queries         int               `json:"queries"`
	Items           int               `json:"items"`
	Dim             int               `json:"dim"`
	Shards          int               `json:"shards,omitempty"`
	SearchWorkers   int               `json:"searchWorkers,omitempty"`
	PreprocessMs    float64           `json:"preprocessMs"`
	RetrieveMs      float64           `json:"retrieveMs"`
	AvgFullProducts float64           `json:"avgFullProducts"`
	Stages          obs.StageCounters `json:"stages"`

	// Per-stage wall times fed by the query span tree (DESIGN.md §13),
	// present for methods that answer traced queries. TransformMs is
	// the cumulative query transform (SVD projection, integer floors),
	// ScanMs the (per-shard) candidate scan, and MergeMs the canonical
	// cross-shard merge (0 for single-scan methods). They nest inside
	// RetrieveMs rather than partitioning it exactly: the gap is
	// harness bookkeeping.
	TransformMs float64 `json:"transformMs,omitempty"`
	ScanMs      float64 `json:"scanMs,omitempty"`
	MergeMs     float64 `json:"mergeMs,omitempty"`

	// Plan is the query planner's decision summary (per-method decision
	// counts, predicted-vs-observed EWMAs, mispredict rate), present
	// only for the "auto" pseudo-method, so BENCH diffs can attribute a
	// latency shift to a plan change.
	Plan *plan.Summary `json:"plan,omitempty"`
}

// CollectStats runs each named method over each configured profile at k
// and returns one StatsReport per (dataset, method) pair.
func CollectStats(cfg Config, methods []string, k int) ([]StatsReport, error) {
	if len(methods) == 0 {
		methods = MethodNames
	}
	if k <= 0 {
		k = 1
	}
	goVersion, gcflags := obs.Toolchain()
	var out []StatsReport
	for _, p := range cfg.profiles() {
		ds := cfg.Load(p)
		for _, name := range methods {
			r, err := RunMethodSharded(name, ds, k, false, cfg.Shards, cfg.SearchWorkers)
			if err != nil {
				return nil, fmt.Errorf("experiments: stats for %s/%s: %w", p.Name, name, err)
			}
			shards, workers := cfg.Shards, cfg.SearchWorkers
			if shards <= 1 {
				shards, workers = 0, 0 // omitted: sequential scan
			}
			rep := StatsReport{
				GoVersion:       goVersion,
				GCFlags:         gcflags,
				Dataset:         r.Dataset,
				Method:          r.Method,
				K:               r.K,
				Queries:         r.QueriesCount,
				Items:           ds.Items.Rows,
				Dim:             ds.Items.Cols,
				Shards:          shards,
				SearchWorkers:   workers,
				PreprocessMs:    float64(r.Preprocess.Microseconds()) / 1e3,
				RetrieveMs:      float64(r.Retrieve.Microseconds()) / 1e3,
				AvgFullProducts: r.AvgFullIP,
				Stages:          obs.StageCountersFrom(r.Stats),
			}
			if r.StagesTimed {
				rep.TransformMs = float64(r.Transform.Microseconds()) / 1e3
				rep.ScanMs = float64(r.Scan.Microseconds()) / 1e3
				rep.MergeMs = float64(r.Merge.Microseconds()) / 1e3
			}
			rep.Plan = r.Plan
			out = append(out, rep)
		}
	}
	return out, nil
}

// StatsJSON renders CollectStats output as an indented JSON array.
func StatsJSON(cfg Config, methods []string, k int) (string, error) {
	reports, err := CollectStats(cfg, methods, k)
	if err != nil {
		return "", err
	}
	raw, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return "", err
	}
	return string(raw) + "\n", nil
}
