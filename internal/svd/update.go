package svd

import (
	"fmt"
	"math"

	"fexipro/internal/vec"
)

// AppendItem performs Brand's fast rank-one thin-SVD update (Brand 2006,
// "Fast low-rank modifications of the thin singular value
// decomposition" — the paper's citation [11]) for one new item vector:
// given Items = V₁·Σ·Uᵀ it returns the thin SVD of Items with row x
// appended, in O((n+d)·d²) time instead of a full O(n·d²)+O(d³)
// recomputation — the win is that no pass over the original item data is
// needed, only over the existing factors.
//
// In the paper's orientation this appends a column to P = U·Σ·V₁ᵀ:
//
//	m = Uᵀx, p = x − U·m, ρ = ‖p‖
//	K = [[Σ, m], [0, ρ]]   (r+1)×(r+1)
//	K = A·Ŝ·Bᵀ  ⇒  U ← [U | p/ρ]·A,  V ← [[V,0],[0,1]]·B
//
// with the trailing singular value truncated when the new item is inside
// the current column space (ρ ≈ 0) or the rank already equals d.
func (t *Thin) AppendItem(x []float64) (*Thin, error) {
	d := t.U.Rows
	if len(x) != d {
		return nil, fmt.Errorf("svd: AppendItem dim %d != %d", len(x), d)
	}
	n := t.V1.Rows
	r := d // stored thin rank (columns of U/V1)

	// m = Uᵀx and residual p = x − U·m.
	m := make([]float64, r)
	for i := 0; i < d; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		urow := t.U.Row(i)
		for j := 0; j < r; j++ {
			m[j] += urow[j] * xi
		}
	}
	p := append([]float64(nil), x...)
	for i := 0; i < d; i++ {
		urow := t.U.Row(i)
		for j := 0; j < r; j++ {
			p[i] -= urow[j] * m[j]
		}
	}
	rho := vec.Norm(p)
	// With r == d the residual is always ~0 (U spans ℝ^d); treat tiny
	// residuals as zero to avoid amplifying rounding noise.
	scaleRef := t.Sigma[0] + vec.Norm(x)
	grow := rho > 1e-10*(1+scaleRef)
	kdim := r
	if grow {
		kdim = r + 1
		vec.Scale(p, 1/rho)
	}

	// K = [[Σ, m],[0, ρ]] (or r×r+... collapsed when not growing:
	// K = [Σ | m] padded — we keep the square (r+1) form and truncate).
	K := vec.NewMatrix(kdim, kdim)
	for i := 0; i < r && i < kdim; i++ {
		K.Set(i, i, t.Sigma[i])
	}
	if grow {
		for i := 0; i < r; i++ {
			K.Set(i, kdim-1, m[i])
		}
		K.Set(kdim-1, kdim-1, rho)
	} else {
		// Not growing: fold m into the last column of the square r×r
		// system K = [[Σ]] + m·e_rᵀ is wrong; instead use the exact
		// (r+1)-column form via the Gram trick below on [Σ | m].
		return t.appendInSpan(x, m)
	}

	A, shat, B, err := smallSVD(K)
	if err != nil {
		return nil, err
	}

	// New U = [U | p]·A  (d×kdim), keep the strongest d columns.
	keep := min(kdim, d)
	newU := vec.NewMatrix(d, keep)
	for i := 0; i < d; i++ {
		urow := t.U.Row(i)
		for j := 0; j < keep; j++ {
			var s float64
			for l := 0; l < r; l++ {
				s += urow[l] * A.At(l, j)
			}
			if grow {
				s += p[i] * A.At(kdim-1, j)
			}
			newU.Set(i, j, s)
		}
	}
	// New V = [[V,0],[0,1]]·B  ((n+1)×kdim) — keep columns.
	newV := vec.NewMatrix(n+1, keep)
	for i := 0; i < n; i++ {
		vrow := t.V1.Row(i)
		for j := 0; j < keep; j++ {
			var s float64
			for l := 0; l < r; l++ {
				s += vrow[l] * B.At(l, j)
			}
			newV.Set(i, j, s)
		}
	}
	for j := 0; j < keep; j++ {
		newV.Set(n, j, B.At(kdim-1, j))
	}

	out := &Thin{U: padSquare(newU, d), Sigma: padSigma(shat[:keep], d), V1: padCols(newV, d)}
	return out, nil
}

// appendInSpan handles the common full-rank case (the new item lies in
// the span of U): the update reduces to the SVD of the square system
// K = [Σ·Vᵀ-ish]: concretely Items' = [V·Σ; mᵀ]·Uᵀ, so we re-factor the
// tall-thin inner matrix via its d×d Gram.
func (t *Thin) appendInSpan(x, m []float64) (*Thin, error) {
	d := t.U.Rows
	n := t.V1.Rows

	// G = Σ² + m·mᵀ is the Gram of [V·Σ; mᵀ] because VᵀV = I.
	G := vec.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			v := m[i] * m[j]
			if i == j {
				v += t.Sigma[i] * t.Sigma[i]
			}
			G.Set(i, j, v)
		}
	}
	lambda, W, err := SymEigen(G)
	if err != nil {
		return nil, err
	}
	newSigma := make([]float64, d)
	inv := make([]float64, d)
	for j := 0; j < d; j++ {
		if lambda[j] < 0 {
			lambda[j] = 0
		}
		newSigma[j] = math.Sqrt(lambda[j])
		if newSigma[j] > 0 {
			inv[j] = 1 / newSigma[j]
		}
	}

	// New V rows: old row i becomes (V[i]·Σ)·W·Σ'⁻¹; the appended row is
	// mᵀ·W·Σ'⁻¹. New U = U·W.
	newV := vec.NewMatrix(n+1, d)
	for i := 0; i < n; i++ {
		vrow := t.V1.Row(i)
		dst := newV.Row(i)
		for l := 0; l < d; l++ {
			vs := vrow[l] * t.Sigma[l]
			if vs == 0 {
				continue
			}
			wrow := W.Row(l)
			for j := 0; j < d; j++ {
				dst[j] += vs * wrow[j]
			}
		}
		for j := 0; j < d; j++ {
			dst[j] *= inv[j]
		}
	}
	last := newV.Row(n)
	for l := 0; l < d; l++ {
		if m[l] == 0 {
			continue
		}
		wrow := W.Row(l)
		for j := 0; j < d; j++ {
			last[j] += m[l] * wrow[j]
		}
	}
	for j := 0; j < d; j++ {
		last[j] *= inv[j]
	}

	newU := t.U.Mul(W)
	return &Thin{U: newU, Sigma: newSigma, V1: newV}, nil
}

// smallSVD factorizes a small square matrix K = A·diag(s)·Bᵀ via the
// Jacobi eigensolver on KᵀK.
func smallSVD(K *vec.Matrix) (A *vec.Matrix, s []float64, B *vec.Matrix, err error) {
	n := K.Rows
	G := vec.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for l := 0; l < n; l++ {
				acc += K.At(l, i) * K.At(l, j)
			}
			G.Set(i, j, acc)
		}
	}
	lambda, B, err := SymEigen(G)
	if err != nil {
		return nil, nil, nil, err
	}
	s = make([]float64, n)
	A = vec.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		if lambda[j] < 0 {
			lambda[j] = 0
		}
		s[j] = math.Sqrt(lambda[j])
		if s[j] == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			var acc float64
			for l := 0; l < n; l++ {
				acc += K.At(i, l) * B.At(l, j)
			}
			A.Set(i, j, acc/s[j])
		}
	}
	return A, s, B, nil
}

func padSquare(m *vec.Matrix, d int) *vec.Matrix {
	if m.Cols == d {
		return m
	}
	out := vec.NewMatrix(d, d)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i)[:m.Cols], m.Row(i))
	}
	return out
}

func padSigma(s []float64, d int) []float64 {
	if len(s) == d {
		return s
	}
	out := make([]float64, d)
	copy(out, s)
	return out
}

func padCols(m *vec.Matrix, d int) *vec.Matrix {
	if m.Cols == d {
		return m
	}
	out := vec.NewMatrix(m.Rows, d)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i)[:m.Cols], m.Row(i))
	}
	return out
}
