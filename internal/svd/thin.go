package svd

import (
	"fmt"
	"math"

	"fexipro/internal/vec"
)

// Thin holds a thin SVD P = U·Σ·V₁ᵀ of the paper's d×n item matrix P.
// Items is the n×d matrix whose ROWS are the item vectors (i.e. Pᵀ), so
// in terms of Items: Items = V₁·Σ·Uᵀ.
type Thin struct {
	// U is d×d with orthonormal columns (left singular vectors of P).
	U *vec.Matrix
	// Sigma holds the singular values σ₁ ≥ σ₂ ≥ … ≥ σ_d ≥ 0.
	Sigma []float64
	// V1 is n×d; row i is the SVD-transformed item vector p̄ᵢ
	// (Theorem 1: P̄ = V₁ᵀ, so the columns of P̄ are the rows of V₁).
	V1 *vec.Matrix
}

// Rank returns the number of singular values greater than tol·σ₁.
func (t *Thin) Rank(tol float64) int {
	if len(t.Sigma) == 0 || t.Sigma[0] == 0 {
		return 0
	}
	r := 0
	for _, s := range t.Sigma {
		if s > tol*t.Sigma[0] {
			r++
		}
	}
	return r
}

// TransformQuery maps a query q from the original space into the SVD
// space: q̄ = Σ_d·Uᵀ·q (Theorem 1). The result has the same inner
// products with the rows of V1 as q has with the original item vectors.
func (t *Thin) TransformQuery(q []float64) []float64 {
	d := t.U.Rows
	if len(q) != d {
		panic(fmt.Sprintf("svd: TransformQuery dim mismatch: %d vs %d", len(q), d))
	}
	out := make([]float64, d)
	// out[j] = σ_j * Σ_i U[i][j]·q[i]
	for i := 0; i < d; i++ {
		qi := q[i]
		if qi == 0 {
			continue
		}
		urow := t.U.Row(i)
		for j := 0; j < d; j++ {
			out[j] += urow[j] * qi
		}
	}
	for j := 0; j < d; j++ {
		out[j] *= t.Sigma[j]
	}
	return out
}

// Decompose computes the thin SVD of the item collection. items is the
// n×d matrix whose rows are item vectors (Pᵀ in paper notation).
//
// Singular values smaller than rankTol·σ₁ are treated as zero and their
// V₁ columns zeroed: those directions carry none of P, so inner products
// are preserved exactly (Theorem 1) while avoiding division blow-ups on
// rank-deficient inputs. Pass rankTol ≤ 0 for the default 1e-12.
func Decompose(items *vec.Matrix, rankTol float64) (*Thin, error) {
	if rankTol <= 0 {
		rankTol = 1e-12
	}
	n, d := items.Rows, items.Cols
	if d == 0 {
		return nil, fmt.Errorf("svd: Decompose on zero-dimensional items")
	}

	// G = P·Pᵀ = Itemsᵀ·Items (d×d).
	g := items.GramLower()
	lambda, u, err := SymEigen(g)
	if err != nil {
		return nil, err
	}

	sigma := make([]float64, d)
	for i, l := range lambda {
		if l < 0 {
			l = 0 // clip tiny negative rounding noise of PSD matrices
		}
		sigma[i] = math.Sqrt(l)
	}

	// V1 = Pᵀ·U·Σ⁻¹ = Items·U·Σ⁻¹ (n×d); zero columns for null σ.
	v1 := vec.NewMatrix(n, d)
	inv := make([]float64, d)
	for j := 0; j < d; j++ {
		if sigma[0] > 0 && sigma[j] > rankTol*sigma[0] {
			inv[j] = 1 / sigma[j]
		} else {
			sigma[j] = 0
			inv[j] = 0
		}
	}
	for i := 0; i < n; i++ {
		src := items.Row(i)
		dst := v1.Row(i)
		for kk := 0; kk < d; kk++ {
			v := src[kk]
			if v == 0 {
				continue
			}
			urow := u.Row(kk)
			for j := 0; j < d; j++ {
				dst[j] += v * urow[j]
			}
		}
		for j := 0; j < d; j++ {
			dst[j] *= inv[j]
		}
	}

	return &Thin{U: u, Sigma: sigma, V1: v1}, nil
}

// Reconstruct rebuilds the n×d item matrix V₁·Σ·Uᵀ; used by tests to
// validate the factorization.
func (t *Thin) Reconstruct() *vec.Matrix {
	n := t.V1.Rows
	d := t.U.Rows
	out := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		vrow := t.V1.Row(i)
		dst := out.Row(i)
		for j := 0; j < d; j++ {
			sv := vrow[j] * t.Sigma[j]
			if sv == 0 {
				continue
			}
			// add sv * U[:,j]ᵀ, i.e. dst[k] += sv·U[k][j]
			for k := 0; k < d; k++ {
				dst[k] += sv * t.U.At(k, j)
			}
		}
	}
	return out
}
