package svd

import (
	"math"
	"math/rand"
	"testing"

	"fexipro/internal/vec"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *vec.Matrix {
	m := vec.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestSymEigenDiagonal(t *testing.T) {
	g := vec.FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := SymEigen(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Columns are unit eigenvectors aligned with the axes.
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-12 {
		t.Fatalf("eigenvector matrix = %+v", vecs.Data)
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	g := vec.FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _, err := SymEigen(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 10, 25} {
		a := randomMatrix(rng, n, n)
		// Symmetrize.
		g := vec.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, (a.At(i, j)+a.At(j, i))/2)
			}
		}
		vals, vecs, err := SymEigen(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("n=%d: eigenvalues not descending: %v", n, vals)
			}
		}
		// Orthonormal columns.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var dot float64
				for r := 0; r < n; r++ {
					dot += vecs.At(r, i) * vecs.At(r, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Fatalf("n=%d: column %d·%d = %v, want %v", n, i, j, dot, want)
				}
			}
		}
		// G·v = λ·v.
		for j := 0; j < n; j++ {
			col := make([]float64, n)
			for r := 0; r < n; r++ {
				col[r] = vecs.At(r, j)
			}
			gv := g.MulVec(col)
			for r := 0; r < n; r++ {
				if math.Abs(gv[r]-vals[j]*col[r]) > 1e-8*(1+math.Abs(vals[j])) {
					t.Fatalf("n=%d: G·v != λv for eigenpair %d", n, j)
				}
			}
		}
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, _, err := SymEigen(vec.NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestDecomposeReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, shape := range []struct{ n, d int }{{1, 1}, {5, 3}, {40, 10}, {200, 25}, {3, 8}} {
		items := randomMatrix(rng, shape.n, shape.d)
		thin, err := Decompose(items, 0)
		if err != nil {
			t.Fatalf("%dx%d: %v", shape.n, shape.d, err)
		}
		rec := thin.Reconstruct()
		if !rec.Equal(items, 1e-8) {
			t.Fatalf("%dx%d: reconstruction mismatch", shape.n, shape.d)
		}
		// Singular values descending and nonnegative.
		for i, s := range thin.Sigma {
			if s < 0 {
				t.Fatalf("negative σ_%d = %v", i, s)
			}
			if i > 0 && s > thin.Sigma[i-1]+1e-12 {
				t.Fatalf("σ not descending: %v", thin.Sigma)
			}
		}
	}
}

// Theorem 1: qᵀp = q̄ᵀp̄ for every item, where q̄ = Σ·Uᵀ·q and p̄ is the
// matching row of V₁.
func TestTheorem1InnerProductPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []struct{ n, d int }{{30, 5}, {100, 20}, {64, 50}} {
		items := randomMatrix(rng, shape.n, shape.d)
		thin, err := Decompose(items, 0)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, shape.d)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			qbar := thin.TransformQuery(q)
			for i := 0; i < shape.n; i++ {
				orig := vec.Dot(q, items.Row(i))
				trans := vec.Dot(qbar, thin.V1.Row(i))
				if math.Abs(orig-trans) > 1e-8*(1+math.Abs(orig)) {
					t.Fatalf("shape %+v item %d: qᵀp=%v but q̄ᵀp̄=%v", shape, i, orig, trans)
				}
			}
		}
	}
}

// The transformation must skew the query: with a decaying spectrum, the
// leading q̄ coordinates should carry most of the energy.
func TestTransformSkewsQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, d := 500, 20
	items := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			items.Set(i, j, rng.NormFloat64()*math.Exp(-0.3*float64(j)))
		}
	}
	thin, err := Decompose(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	var headEnergy, totalEnergy float64
	for trial := 0; trial < 50; trial++ {
		q := make([]float64, d)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		qbar := thin.TransformQuery(q)
		for j, v := range qbar {
			if j < d/4 {
				headEnergy += v * v
			}
			totalEnergy += v * v
		}
	}
	if headEnergy < 0.5*totalEnergy {
		t.Fatalf("expected first quarter of q̄ to carry ≥50%% of energy, got %.1f%%",
			100*headEnergy/totalEnergy)
	}
}

func TestRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, d, r := 60, 10, 3
	base := randomMatrix(rng, r, d)
	items := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for b := 0; b < r; b++ {
			w := rng.NormFloat64()
			for j := 0; j < d; j++ {
				items.Data[i*d+j] += w * base.At(b, j)
			}
		}
	}
	thin, err := Decompose(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Gram-based SVD halves the accurate digits of tiny singular values
	// (σ = √λ), so rank detection needs a tolerance around √machine-eps.
	if got := thin.Rank(1e-6); got != r {
		t.Fatalf("Rank = %d, want %d (σ = %v)", got, r, thin.Sigma)
	}
	if !thin.Reconstruct().Equal(items, 1e-8) {
		t.Fatal("rank-deficient reconstruction mismatch")
	}
	// Inner products still preserved.
	q := make([]float64, d)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	qbar := thin.TransformQuery(q)
	for i := 0; i < n; i++ {
		orig := vec.Dot(q, items.Row(i))
		trans := vec.Dot(qbar, thin.V1.Row(i))
		if math.Abs(orig-trans) > 1e-8*(1+math.Abs(orig)) {
			t.Fatalf("item %d: %v vs %v", i, orig, trans)
		}
	}
}

func TestZeroMatrix(t *testing.T) {
	items := vec.NewMatrix(10, 4)
	thin, err := Decompose(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if thin.Rank(1e-12) != 0 {
		t.Fatalf("zero matrix rank = %d", thin.Rank(1e-12))
	}
	q := []float64{1, 2, 3, 4}
	qbar := thin.TransformQuery(q)
	for _, v := range qbar {
		if v != 0 {
			t.Fatalf("q̄ = %v, want all zeros", qbar)
		}
	}
}

func TestDecomposeRejectsZeroDim(t *testing.T) {
	if _, err := Decompose(vec.NewMatrix(5, 0), 0); err == nil {
		t.Fatal("expected error for zero-dimensional items")
	}
}

func TestTransformQueryPanicsOnDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	thin, err := Decompose(randomMatrix(rng, 10, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	thin.TransformQuery([]float64{1, 2})
}
