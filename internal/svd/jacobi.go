// Package svd implements the thin singular value decomposition used by
// FEXIPRO's SVD transformation (Section 3 of the paper).
//
// The item matrix P has shape d×n with d (tens to low hundreds) much
// smaller than n (up to millions). Only U (d×d), the singular values
// σ₁ ≥ … ≥ σ_d and V₁ (n×d) are needed, so instead of a full SVD we:
//
//  1. form the small Gram matrix G = P·Pᵀ (d×d, symmetric PSD),
//  2. diagonalize G = U Λ Uᵀ with a cyclic Jacobi eigensolver,
//  3. recover σᵢ = √λᵢ and V₁ = Pᵀ·U·Σ⁻¹.
//
// The total cost is O(n·d²) + O(d³), matching the "thin SVD" complexity
// the paper relies on.
package svd

import (
	"fmt"
	"math"
	"sort"

	"fexipro/internal/vec"
)

// jacobiMaxSweeps bounds the number of full cyclic sweeps. Jacobi
// converges quadratically; symmetric matrices of dimension ≤ a few
// hundred settle in well under 30 sweeps.
const jacobiMaxSweeps = 60

// SymEigen diagonalizes the symmetric matrix g, returning eigenvalues in
// descending order and a matrix whose COLUMNS are the matching
// orthonormal eigenvectors. g is not modified.
//
// The implementation is the classical cyclic Jacobi rotation method:
// repeatedly zero the largest-magnitude off-diagonal entries with Givens
// rotations until the off-diagonal mass is negligible.
func SymEigen(g *vec.Matrix) (eigenvalues []float64, eigenvectors *vec.Matrix, err error) {
	n := g.Rows
	if g.Cols != n {
		return nil, nil, fmt.Errorf("svd: SymEigen requires a square matrix, got %d×%d", n, g.Cols)
	}
	a := g.Clone()
	v := identity(n)

	if n <= 1 {
		vals := make([]float64, n)
		if n == 1 {
			vals[0] = a.At(0, 0)
		}
		return vals, v, nil
	}

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off <= 1e-14*(1+diagNorm(a)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := a.At(p, p)
				aqq := a.At(q, q)
				// rotation angle zeroing a[p][q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e154 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				applyJacobiRotation(a, v, p, q, c, s)
			}
		}
	}

	off := offDiagNorm(a)
	if off > 1e-8*(1+diagNorm(a)) {
		return nil, nil, fmt.Errorf("svd: Jacobi failed to converge (off-diagonal norm %g)", off)
	}

	// Extract and sort eigenpairs by descending eigenvalue.
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = a.At(i, i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })

	sortedVals := make([]float64, n)
	sortedVecs := vec.NewMatrix(n, n)
	for newCol, oldCol := range order {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// applyJacobiRotation applies the Givens rotation J(p,q,c,s) as a
// similarity transform a ← Jᵀ·a·J and accumulates v ← v·J.
func applyJacobiRotation(a, v *vec.Matrix, p, q int, c, s float64) {
	n := a.Rows
	for i := 0; i < n; i++ {
		aip := a.At(i, p)
		aiq := a.At(i, q)
		a.Set(i, p, c*aip-s*aiq)
		a.Set(i, q, s*aip+c*aiq)
	}
	for j := 0; j < n; j++ {
		apj := a.At(p, j)
		aqj := a.At(q, j)
		a.Set(p, j, c*apj-s*aqj)
		a.Set(q, j, s*apj+c*aqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func identity(n int) *vec.Matrix {
	m := vec.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

func offDiagNorm(a *vec.Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if i != j {
				v := a.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

func diagNorm(a *vec.Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		v := a.At(i, i)
		s += v * v
	}
	return math.Sqrt(s)
}
