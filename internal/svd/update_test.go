package svd

import (
	"math"
	"math/rand"
	"testing"

	"fexipro/internal/vec"
)

func appendRow(m *vec.Matrix, row []float64) *vec.Matrix {
	out := vec.NewMatrix(m.Rows+1, m.Cols)
	copy(out.Data, m.Data)
	copy(out.Row(m.Rows), row)
	return out
}

func TestAppendItemMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, shape := range []struct{ n, d int }{{10, 4}, {50, 8}, {200, 16}} {
		items := randomMatrix(rng, shape.n, shape.d)
		thin, err := Decompose(items, 0)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 5; step++ {
			x := make([]float64, shape.d)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			items = appendRow(items, x)
			thin, err = thin.AppendItem(x)
			if err != nil {
				t.Fatal(err)
			}
			if thin.V1.Rows != items.Rows {
				t.Fatalf("V1 has %d rows, want %d", thin.V1.Rows, items.Rows)
			}
			// The updated factorization must reconstruct the grown matrix.
			if !thin.Reconstruct().Equal(items, 1e-6) {
				t.Fatalf("shape %+v step %d: reconstruction mismatch", shape, step)
			}
			// And the singular values must match a fresh decomposition.
			fresh, err := Decompose(items, 0)
			if err != nil {
				t.Fatal(err)
			}
			for j := range fresh.Sigma {
				if math.Abs(fresh.Sigma[j]-thin.Sigma[j]) > 1e-6*(1+fresh.Sigma[j]) {
					t.Fatalf("shape %+v step %d: σ_%d = %v, want %v",
						shape, step, j, thin.Sigma[j], fresh.Sigma[j])
				}
			}
		}
	}
}

func TestAppendItemPreservesInnerProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n, d := 80, 10
	items := randomMatrix(rng, n, d)
	thin, err := Decompose(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	items = appendRow(items, x)
	thin, err = thin.AppendItem(x)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, d)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	qbar := thin.TransformQuery(q)
	for i := 0; i < items.Rows; i++ {
		orig := vec.Dot(q, items.Row(i))
		trans := vec.Dot(qbar, thin.V1.Row(i))
		if math.Abs(orig-trans) > 1e-6*(1+math.Abs(orig)) {
			t.Fatalf("item %d: qᵀp=%v, q̄ᵀp̄=%v", i, orig, trans)
		}
	}
}

func TestAppendItemRankGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	// Start from a rank-deficient matrix living in a 2D subspace of ℝ⁵.
	n, d := 30, 5
	base := randomMatrix(rng, 2, d)
	items := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		for j := 0; j < d; j++ {
			items.Set(i, j, a*base.At(0, j)+b*base.At(1, j))
		}
	}
	thin, err := Decompose(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if thin.Rank(1e-6) != 2 {
		t.Fatalf("initial rank %d, want 2", thin.Rank(1e-6))
	}
	// Append a vector OUTSIDE the subspace: rank must grow to 3.
	x := make([]float64, d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	items = appendRow(items, x)
	thin, err = thin.AppendItem(x)
	if err != nil {
		t.Fatal(err)
	}
	if !thin.Reconstruct().Equal(items, 1e-6) {
		t.Fatal("reconstruction mismatch after rank growth")
	}
	if got := thin.Rank(1e-6); got != 3 {
		t.Fatalf("rank after growth = %d, want 3 (σ=%v)", got, thin.Sigma)
	}
}

func TestAppendItemDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	thin, err := Decompose(randomMatrix(rng, 10, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := thin.AppendItem([]float64{1, 2}); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestAppendManySequential(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	n, d := 40, 6
	items := randomMatrix(rng, n, d)
	thin, err := Decompose(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 30 sequential updates must not drift.
	for step := 0; step < 30; step++ {
		x := make([]float64, d)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		items = appendRow(items, x)
		thin, err = thin.AppendItem(x)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !thin.Reconstruct().Equal(items, 1e-5) {
		t.Fatal("drift after 30 sequential updates")
	}
}
