package batch_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/batch"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func randomQueries(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMiniBatchMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	items, _ := searchtest.RandomInstance(rng, 700, 18)
	queries := randomQueries(rng, 33, 18)
	for _, bs := range []int{1, 7, 100} {
		for _, workers := range []int{1, 4} {
			mb := batch.New(items, batch.Options{BatchSize: bs, Workers: workers})
			all := mb.TopKAll(queries, 6)
			if len(all) != queries.Rows {
				t.Fatalf("bs=%d workers=%d: %d result lists", bs, workers, len(all))
			}
			for qi := 0; qi < queries.Rows; qi++ {
				searchtest.CheckTopK(t, items, queries.Row(qi), 6, all[qi], "minibatch")
			}
		}
	}
}

func TestMiniBatchBlockingGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	items, _ := searchtest.RandomInstance(rng, 300, 25)
	queries := randomQueries(rng, 9, 25)
	for _, bk := range []int{1, 8, 25, 100} {
		for _, bn := range []int{1, 17, 300, 1000} {
			mb := batch.New(items, batch.Options{BatchSize: 4, BlockK: bk, BlockN: bn})
			all := mb.TopKAll(queries, 3)
			for qi := 0; qi < queries.Rows; qi++ {
				searchtest.CheckTopK(t, items, queries.Row(qi), 3, all[qi], "minibatch/blocking")
			}
		}
	}
}

func TestMiniBatchKExceedsItems(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	items, _ := searchtest.RandomInstance(rng, 5, 4)
	queries := randomQueries(rng, 2, 4)
	mb := batch.New(items, batch.Options{})
	all := mb.TopKAll(queries, 50)
	for _, res := range all {
		if len(res) != 5 {
			t.Fatalf("got %d results, want 5", len(res))
		}
	}
}

func TestMiniBatchPanicsOnDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	items, _ := searchtest.RandomInstance(rng, 5, 4)
	mb := batch.New(items, batch.Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mb.TopKAll(vec.NewMatrix(1, 3), 1)
}
