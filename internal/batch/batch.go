// Package batch implements the MiniBatch baseline of Table 5: top-k
// retrieval for a query workload via dense matrix multiplication with a
// cache-blocked GEMM kernel (standing in for the paper's Intel MKL
// dgemm), in single- and multi-goroutine flavors.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Options configures MiniBatch processing.
type Options struct {
	// BatchSize is the number of queries multiplied per block (the
	// paper sweeps 1, 100, 10000). Default 100.
	BatchSize int
	// Workers is the number of goroutines (default: GOMAXPROCS).
	Workers int
	// BlockK and BlockN are the GEMM cache-blocking tile sizes along the
	// shared dimension and the item dimension (defaults 64 and 256).
	BlockK, BlockN int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 100
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BlockK <= 0 {
		o.BlockK = 64
	}
	if o.BlockN <= 0 {
		o.BlockN = 256
	}
	return o
}

// MiniBatch holds the item matrix for batched retrieval.
type MiniBatch struct {
	items *vec.Matrix
	opts  Options
}

// New creates a MiniBatch engine over items (rows are item vectors;
// referenced, not copied).
func New(items *vec.Matrix, opts Options) *MiniBatch {
	return &MiniBatch{items: items, opts: opts.withDefaults()}
}

// TopKAll computes the top-k lists for every query row by multiplying
// query batches against the item matrix and selecting per row.
func (m *MiniBatch) TopKAll(queries *vec.Matrix, k int) [][]topk.Result {
	out, _ := m.TopKAllContext(context.Background(), queries, k)
	return out
}

// TopKAllContext behaves like TopKAll but honours ctx between batches:
// a cancelled context returns the batches completed so far (unprocessed
// query rows are nil) with an ErrDeadline-wrapping error. Every slot
// that is filled holds the exact top-k for its query; cancellation
// granularity is one batch (BatchSize GEMM rows), the unit of work the
// blocked multiply cannot cheaply interrupt.
func (m *MiniBatch) TopKAllContext(ctx context.Context, queries *vec.Matrix, k int) ([][]topk.Result, error) {
	if queries.Cols != m.items.Cols {
		panic(fmt.Sprintf("batch: query dim %d != item dim %d", queries.Cols, m.items.Cols))
	}
	out := make([][]topk.Result, queries.Rows)
	done := ctx.Done()
	for start := 0; start < queries.Rows; start += m.opts.BatchSize {
		if done != nil && start > 0 {
			if err := ctx.Err(); err != nil {
				return out, search.Canceled(err)
			}
		}
		end := start + m.opts.BatchSize
		if end > queries.Rows {
			end = queries.Rows
		}
		m.processBatch(queries, start, end, k, out)
	}
	return out, nil
}

// processBatch multiplies queries[start:end] with the item matrix and
// fills the matching result slots.
func (m *MiniBatch) processBatch(queries *vec.Matrix, start, end, k int, out [][]topk.Result) {
	rows := end - start
	scores := vec.NewMatrix(rows, m.items.Rows)
	m.gemm(queries, start, end, scores)

	selectRows := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			c := topk.New(k)
			row := scores.Row(r)
			for i, s := range row {
				c.Push(i, s)
			}
			out[start+r] = c.Results()
		}
	}
	if m.opts.Workers <= 1 || rows == 1 {
		selectRows(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + m.opts.Workers - 1) / m.opts.Workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			selectRows(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemm computes scores = Q_batch · Pᵀ with cache blocking over the shared
// dimension (d) and the item dimension (n), parallelized over item tiles.
func (m *MiniBatch) gemm(queries *vec.Matrix, start, end int, scores *vec.Matrix) {
	d := m.items.Cols
	n := m.items.Rows
	rows := end - start

	type tile struct{ nLo, nHi int }
	tiles := []tile{}
	for nLo := 0; nLo < n; nLo += m.opts.BlockN {
		nHi := nLo + m.opts.BlockN
		if nHi > n {
			nHi = n
		}
		tiles = append(tiles, tile{nLo, nHi})
	}

	work := func(tl tile) {
		for kLo := 0; kLo < d; kLo += m.opts.BlockK {
			kHi := kLo + m.opts.BlockK
			if kHi > d {
				kHi = d
			}
			for r := 0; r < rows; r++ {
				qrow := queries.Row(start + r)
				srow := scores.Row(r)
				for i := tl.nLo; i < tl.nHi; i++ {
					srow[i] += vec.DotRange(qrow, m.items.Row(i), kLo, kHi)
				}
			}
		}
	}

	if m.opts.Workers <= 1 || len(tiles) == 1 {
		for _, tl := range tiles {
			work(tl)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan tile, len(tiles))
	for _, tl := range tiles {
		ch <- tl
	}
	close(ch)
	for wkr := 0; wkr < m.opts.Workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tl := range ch {
				work(tl)
			}
		}()
	}
	wg.Wait()
}
