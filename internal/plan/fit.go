package plan

import (
	"fmt"
	"math"

	"fexipro/internal/method"
)

// Sample is one measured query (or averaged batch of queries) for the
// offline fit: the workload features plus the observed per-query wall
// time and pruning fraction.
type Sample struct {
	N, D, K         int
	Shards, Workers int
	// PruneFrac is the observed fraction of items pruned before a full
	// product (search.Stats.TotalPruned / N).
	PruneFrac float64
	// Seconds is the observed per-query wall time.
	Seconds float64
}

// Fit solves the cost model's three linear coefficients by ordinary
// least squares over the samples:
//
//	seconds ≈ Setup + (PerItem·n + PerDim·survivors·d) / parallelism
//
// is linear in (Setup, PerItem, PerDim) once the observed pruning
// fraction fixes survivors, so the normal equations are a 3×3 solve. A
// tiny ridge term keeps the system well-posed when a sweep does not
// vary a feature (e.g. single dimension), and negative coefficients —
// physically meaningless, an artifact of collinear sweeps — are clamped
// to zero. PrunePrior becomes the mean observed pruning fraction.
func Fit(samples []Sample) (method.CostModel, error) {
	if len(samples) < 3 {
		return method.CostModel{}, fmt.Errorf("plan: fit needs ≥ 3 samples, got %d", len(samples))
	}
	var ata [3][3]float64
	var aty [3]float64
	var pruneSum float64
	for _, s := range samples {
		f := method.Features{N: s.N, D: s.D, K: s.K, Shards: s.Shards, Workers: s.Workers}
		par := f.Parallelism()
		prune := math.Max(0, math.Min(1, s.PruneFrac))
		pruneSum += prune
		x := [3]float64{
			1,
			float64(s.N) / par,
			(1 - prune) * float64(s.N) * float64(s.D) / par,
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				ata[i][j] += x[i] * x[j]
			}
			aty[i] += x[i] * s.Seconds
		}
	}
	// Ridge scaled to each diagonal entry so it regularizes without
	// drowning the data regardless of feature magnitudes.
	for i := 0; i < 3; i++ {
		ata[i][i] += 1e-9 * (ata[i][i] + 1)
	}
	w, err := solve3(ata, aty)
	if err != nil {
		return method.CostModel{}, err
	}
	m := method.CostModel{
		Setup:      math.Max(0, w[0]),
		PerItem:    math.Max(0, w[1]),
		PerDim:     math.Max(0, w[2]),
		PrunePrior: pruneSum / float64(len(samples)),
	}
	return m, nil
}

// solve3 is Gaussian elimination with partial pivoting for the 3×3
// normal equations.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-30 {
			return [3]float64{}, fmt.Errorf("plan: singular fit system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for r := 2; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < 3; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return [3]float64{}, fmt.Errorf("plan: non-finite fit solution")
		}
	}
	return x, nil
}
