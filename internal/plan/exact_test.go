package plan_test

import (
	"testing"

	"fexipro/internal/method"
	"fexipro/internal/searchtest"
)

// TestPlannerExactAutoPool runs the planner delegation harness over the
// registry's default auto candidates — the pool fexserve/fexquery
// `-method auto` actually serves with.
func TestPlannerExactAutoPool(t *testing.T) {
	searchtest.CheckPlannerExact(t, method.AutoNames(), "planner/auto")
}

// TestPlannerExactMixedPool widens the pool across structurally
// different methods (blocked scan, tree, pruned scan, full FEXIPRO
// index) so delegation identity is checked against every kernel shape.
func TestPlannerExactMixedPool(t *testing.T) {
	searchtest.CheckPlannerExact(t, []string{"Naive", "BallTree", "SS-L", "F-SIR"}, "planner/mixed")
}
