package plan

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fexipro/internal/method"
	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// fakeCand is a controllable candidate: fixed result list, fixed stats,
// optional artificial delay so decisions based on observed cost are
// deterministic in tests.
type fakeCand struct {
	id    int
	delay time.Duration
	stats search.Stats
	calls int
}

func (f *fakeCand) Search(q []float64, k int) []topk.Result {
	r, _ := f.SearchContext(context.Background(), q, k)
	return r
}

func (f *fakeCand) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	f.calls++
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return []topk.Result{{ID: f.id, Score: float64(f.id)}}, nil
}

func (f *fakeCand) Stats() search.Stats { return f.stats }

func newTestPlanner(t *testing.T, o Options, cands ...Candidate) *Planner {
	t.Helper()
	p, err := New(cands, o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlannerWarmsUpEveryCandidate(t *testing.T) {
	a := &fakeCand{id: 1, stats: search.Stats{Scanned: 100, FullProducts: 100}}
	b := &fakeCand{id: 2, stats: search.Stats{Scanned: 100, FullProducts: 5, PrunedByLength: 95}}
	p := newTestPlanner(t, Options{N: 100, D: 8, ProbeEvery: -1},
		Candidate{Name: "A", Searcher: a, Exact: true, Cost: method.CostModel{PerDim: 1e-9}},
		Candidate{Name: "B", Searcher: b, Exact: true, Cost: method.CostModel{PerDim: 1e-9, PrunePrior: 0.9}},
	)
	q := []float64{1}
	res, err := p.SearchContext(context.Background(), q, 1)
	if err != nil || len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("first query: res=%v err=%v, want candidate A's result", res, err)
	}
	if d := p.LastDecision(); d.Method != "A" || d.Reason != ReasonWarmup {
		t.Fatalf("decision %+v, want A/warmup", d)
	}
	if got := p.Stats(); got != a.stats {
		t.Fatalf("Stats() = %+v, want delegated %+v", got, a.stats)
	}
	_, _ = p.SearchContext(context.Background(), q, 1)
	if d := p.LastDecision(); d.Method != "B" || d.Reason != ReasonWarmup {
		t.Fatalf("second decision %+v, want B/warmup", d)
	}
	// Warmed up: all further decisions are cost-driven.
	_, _ = p.SearchContext(context.Background(), q, 1)
	if d := p.LastDecision(); d.Reason != ReasonCost {
		t.Fatalf("third decision %+v, want reason cost", d)
	}
	if a.calls+b.calls != 3 {
		t.Fatalf("calls %d+%d, want 3 total", a.calls, b.calls)
	}
}

func TestPlannerPrefersObservedCheaper(t *testing.T) {
	// Identical priors; candidate B is observably 50× faster. After
	// warmup the planner must route cost decisions to B.
	slow := &fakeCand{id: 1, delay: 5 * time.Millisecond, stats: search.Stats{Scanned: 1000, FullProducts: 1000}}
	fast := &fakeCand{id: 2, delay: 100 * time.Microsecond, stats: search.Stats{Scanned: 1000, FullProducts: 10, PrunedByLength: 990}}
	cost := method.CostModel{Setup: 1e-6, PerItem: 1e-9, PerDim: 1e-9}
	p := newTestPlanner(t, Options{N: 1000, D: 16, ProbeEvery: -1},
		Candidate{Name: "slow", Searcher: slow, Exact: true, Cost: cost},
		Candidate{Name: "fast", Searcher: fast, Exact: true, Cost: cost},
	)
	q := []float64{1}
	for i := 0; i < 10; i++ {
		_, _ = p.SearchContext(context.Background(), q, 1)
	}
	if d := p.LastDecision(); d.Method != "fast" || d.Reason != ReasonCost {
		t.Fatalf("steady-state decision %+v, want fast/cost", d)
	}
	sum := p.Summary()
	if sum.Queries != 10 {
		t.Fatalf("summary queries = %d, want 10", sum.Queries)
	}
	var fastRow *MethodPlan
	for i := range sum.Methods {
		if sum.Methods[i].Method == "fast" {
			fastRow = &sum.Methods[i]
		}
	}
	if fastRow == nil || fastRow.Queries < 8 {
		t.Fatalf("fast row %+v, want ≥ 8 of 10 queries", fastRow)
	}
	if fastRow.ObservedMs <= 0 || fastRow.PredictedMs <= 0 {
		t.Fatalf("fast row %+v, want positive predicted/observed EWMAs", fastRow)
	}
}

func TestPlannerProbesStaleCandidate(t *testing.T) {
	a := &fakeCand{id: 1, stats: search.Stats{Scanned: 10}}
	b := &fakeCand{id: 2, delay: 2 * time.Millisecond, stats: search.Stats{Scanned: 10}}
	p := newTestPlanner(t, Options{N: 10, D: 4, ProbeEvery: 5},
		Candidate{Name: "A", Searcher: a, Exact: true, Cost: method.CostModel{PerItem: 1e-9}},
		Candidate{Name: "B", Searcher: b, Exact: true, Cost: method.CostModel{PerItem: 1e-9}},
	)
	q := []float64{1}
	probes := 0
	for i := 0; i < 25; i++ {
		_, _ = p.SearchContext(context.Background(), q, 1)
		if p.LastDecision().Reason == ReasonProbe {
			probes++
		}
	}
	if probes == 0 {
		t.Fatal("no probe decisions in 25 queries with ProbeEvery=5")
	}
}

func TestPlannerCountsMispredicts(t *testing.T) {
	// A mispredict needs the calibrated model to be wrong about the
	// world, not just the prior (the warmup observation corrects a bad
	// prior before the first cost decision — that self-repair is
	// TestPlannerPrefersObservedCheaper). So drift the workload: the
	// favored candidate turns slow AFTER its cheap warmup observation.
	// The next cost decision routes to it, observes the new slowness,
	// and must be counted as a mispredict — a wrong plan that was slow,
	// never incorrect: the results still come from a real exact method.
	steady := &fakeCand{id: 1, delay: 2 * time.Millisecond, stats: search.Stats{Scanned: 100, FullProducts: 100}}
	drifty := &fakeCand{id: 2, stats: search.Stats{Scanned: 100, FullProducts: 1, PrunedByLength: 99}}
	cost := method.CostModel{Setup: 1e-6, PerItem: 1e-9, PerDim: 1e-9}
	p := newTestPlanner(t, Options{N: 100, D: 8, ProbeEvery: -1, Alpha: 1},
		Candidate{Name: "steady", Searcher: steady, Exact: true, Cost: cost},
		Candidate{Name: "drifty", Searcher: drifty, Exact: true, Cost: cost},
	)
	q := []float64{1}
	_, _ = p.SearchContext(context.Background(), q, 1) // warmup steady (2ms)
	_, _ = p.SearchContext(context.Background(), q, 1) // warmup drifty (~0)
	drifty.delay = 20 * time.Millisecond               // the world changes
	res, err := p.SearchContext(context.Background(), q, 1)
	if err != nil || len(res) != 1 || res[0].ID != 2 {
		t.Fatalf("post-drift query: res=%v err=%v, want drifty's exact result", res, err)
	}
	if d := p.LastDecision(); d.Method != "drifty" || d.Reason != ReasonCost {
		t.Fatalf("post-drift decision %+v, want drifty/cost", d)
	}
	sum := p.Summary()
	if sum.Mispredicts == 0 {
		t.Fatalf("summary %+v: drifted workload produced no mispredicts", sum)
	}
	if sum.MispredictRate <= 0 || sum.MispredictRate > 1 {
		t.Fatalf("mispredict rate %v out of range", sum.MispredictRate)
	}
	// With Alpha=1 the drift observation replaces the stale EWMA, so
	// the planner immediately routes back to the steady candidate.
	_, _ = p.SearchContext(context.Background(), q, 1)
	if d := p.LastDecision(); d.Method != "steady" {
		t.Fatalf("recovery decision %+v, want steady", d)
	}
}

func TestPlannerRequiresExactCandidates(t *testing.T) {
	approx := &fakeCand{id: 1}
	if _, err := New([]Candidate{{Name: "PCATree", Searcher: approx, Exact: false}}, Options{}); err == nil {
		t.Fatal("New accepted an approximate-only pool without AllowApprox")
	}
	p, err := New([]Candidate{
		{Name: "PCATree", Searcher: approx, Exact: false},
		{Name: "Naive", Searcher: &fakeCand{id: 2}, Exact: true},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Candidates(); len(got) != 1 || got[0] != "Naive" {
		t.Fatalf("candidates %v, want [Naive]", got)
	}
	p2, err := New([]Candidate{{Name: "PCATree", Searcher: approx, Exact: false}}, Options{AllowApprox: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Candidates(); len(got) != 1 || got[0] != "PCATree" {
		t.Fatalf("AllowApprox candidates %v, want [PCATree]", got)
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	c := &Calibration{Schema: Schema, Methods: map[string]method.CostModel{
		"Naive": {Setup: 1e-7, PerItem: 2e-10, PerDim: 1.1e-9},
		"F-SIR": {Setup: 2e-6, PerItem: 1e-9, PerDim: 1.2e-9, PrunePrior: 0.93},
	}}
	raw, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Methods) != 2 || got.Methods["F-SIR"].PrunePrior != 0.93 {
		t.Fatalf("round trip lost data: %+v", got)
	}

	path := filepath.Join(t.TempDir(), CalibrationFile)
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Methods["Naive"].PerDim != 1.1e-9 {
		t.Fatalf("file round trip lost data: %+v", got2)
	}

	// Corrupt one payload byte: the fexsnap CRC must catch it.
	raw[len(raw)-20] ^= 0xff
	if _, err := Decode(raw); err == nil {
		t.Fatal("Decode accepted a corrupted container")
	}
}

func TestCalibrationValidate(t *testing.T) {
	bad := []*Calibration{
		{Schema: "fexplan/v9", Methods: map[string]method.CostModel{"Naive": {}}},
		{Schema: Schema},
		{Schema: Schema, Methods: map[string]method.CostModel{"NoSuchMethod": {}}},
		{Schema: Schema, Methods: map[string]method.CostModel{"Naive": {Setup: -1}}},
		{Schema: Schema, Methods: map[string]method.CostModel{"Naive": {PrunePrior: 1.5}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestSetCalibrationOverridesCost(t *testing.T) {
	a := &fakeCand{id: 1, stats: search.Stats{Scanned: 10}}
	b := &fakeCand{id: 2, stats: search.Stats{Scanned: 10}}
	// Priors say A is free and B is absurdly expensive.
	p := newTestPlanner(t, Options{N: 1000, D: 8, ProbeEvery: -1},
		Candidate{Name: "Naive", Searcher: a, Exact: true, Cost: method.CostModel{}},
		Candidate{Name: "F-SIR", Searcher: b, Exact: true, Cost: method.CostModel{Setup: 10}},
	)
	// Calibration flips the ranking before any query runs.
	p.SetCalibration(&Calibration{Schema: Schema, Methods: map[string]method.CostModel{
		"Naive": {Setup: 10},
		"F-SIR": {},
	}})
	f := p.features(1)
	if ca, cb := p.predict(0, f), p.predict(1, f); ca <= cb {
		t.Fatalf("after calibration predict(Naive)=%g <= predict(F-SIR)=%g, want flipped", ca, cb)
	}
	// Exported calibration reflects the override.
	out := p.Calibration()
	if out.Methods["Naive"].Setup != 10 {
		t.Fatalf("exported calibration %+v lost the override", out.Methods["Naive"])
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFitRecoversKnownModel(t *testing.T) {
	truth := method.CostModel{Setup: 5e-6, PerItem: 2e-9, PerDim: 1.5e-9}
	var samples []Sample
	for _, n := range []int{1000, 5000, 20000, 80000} {
		for _, d := range []int{8, 32, 64} {
			for _, prune := range []float64{0, 0.5, 0.9} {
				f := method.Features{N: n, D: d, K: 10, Shards: 1, PruneFrac: prune}
				samples = append(samples, Sample{
					N: n, D: d, K: 10, Shards: 1, Workers: 1,
					PruneFrac: prune,
					Seconds:   truth.Predict(f),
				})
			}
		}
	}
	got, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	within := func(got, want float64) bool {
		return got > want*0.98 && got < want*1.02
	}
	if !within(got.Setup, truth.Setup) || !within(got.PerItem, truth.PerItem) || !within(got.PerDim, truth.PerDim) {
		t.Fatalf("fit %+v, want ≈ %+v", got, truth)
	}
	// The fitted model must predict the training points closely.
	f := method.Features{N: 40000, D: 16, K: 10, Shards: 1, PruneFrac: 0.7}
	if p, w := got.Predict(f), truth.Predict(f); !within(p, w) {
		t.Fatalf("fitted prediction %g, want ≈ %g", p, w)
	}
	if _, err := Fit(samples[:2]); err == nil {
		t.Fatal("Fit accepted 2 samples")
	}
}

func TestWriteFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, CalibrationFile)
	c1 := &Calibration{Schema: Schema, Methods: map[string]method.CostModel{"Naive": {Setup: 1}}}
	c2 := &Calibration{Schema: Schema, Methods: map[string]method.CostModel{"Naive": {Setup: 2}}}
	if err := WriteFile(path, c1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, c2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Methods["Naive"].Setup != 2 {
		t.Fatalf("got %+v, want the replacement", got)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("data dir holds %d entries, want just the calibration", len(entries))
	}
}
