// Package plan is the cost-based query planner behind `-method auto`
// (ROADMAP item 1): given several already-built exact retrieval methods
// from the internal/method registry, it predicts each candidate's
// per-query cost from the registry's analytic model — calibrated online
// with an EWMA of the observed latencies and pruning fractions each
// query's obs stage counters already provide — and delegates every
// query to the predicted-cheapest candidate.
//
// Exactness is untouched by construction: the planner never computes a
// score itself, it only picks WHICH registered exact method answers, so
// its results and stage counters are bit-identical to the chosen
// method run standalone (searchtest.CheckPlannerExact pins this, with
// a deliberately mispredicting cost model as the adversarial case — a
// wrong plan is slow, never wrong). Approximate methods are excluded
// from the candidate pool unless Options.AllowApprox opts in.
package plan

import (
	"context"
	"fmt"
	"time"

	"fexipro/internal/faults"
	"fexipro/internal/method"
	"fexipro/internal/obs"
	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// Decision reasons recorded per query (span attr plan.reason and the
// fexipro_plan_decisions_total metric's reason label).
const (
	// ReasonWarmup: the candidate had never run; the planner measures
	// every candidate once before trusting predictions.
	ReasonWarmup = "warmup"
	// ReasonProbe: a periodic re-measurement of a non-best candidate so
	// a drifting workload can dethrone the incumbent.
	ReasonProbe = "probe"
	// ReasonCost: the candidate predicted cheapest.
	ReasonCost = "cost"
)

// Candidate is one method the planner may pick.
type Candidate struct {
	// Name is the registry name recorded in decisions and metrics.
	Name string
	// Searcher answers the delegated queries.
	Searcher search.ContextSearcher
	// Cost is the prior cost model, normally the registry descriptor's
	// (overridden by a loaded Calibration).
	Cost method.CostModel
	// Exact marks provably exact candidates; non-exact ones are dropped
	// unless Options.AllowApprox.
	Exact bool
}

// Options configures a Planner.
type Options struct {
	// N and D describe the catalog (cost-model features). SizeFn, when
	// set, overrides N per query — the dynamic-catalog server uses it so
	// predictions track adds and deletes.
	N, D   int
	SizeFn func() int
	// Shards and Workers describe the candidates' execution so the
	// model's parallelism term matches reality.
	Shards, Workers int
	// ProbeEvery re-measures a non-best candidate every ProbeEvery
	// queries (0 = default 64, negative = never probe).
	ProbeEvery int
	// Alpha is the EWMA smoothing factor for observed cost and pruning
	// fractions (0 = default 0.2).
	Alpha float64
	// AllowApprox admits candidates with Exact == false. The planner
	// NEVER picks an approximate method without this.
	AllowApprox bool
	// OnDecision, when set, is invoked after every query with the
	// completed decision (the server bridges this to the
	// fexipro_plan_decisions_total metric). Called with the planner's
	// internal lock held: it must not call back into the Planner.
	OnDecision func(Decision)
}

// Decision is one query's plan: what was picked, why, and how the
// prediction compared to reality.
type Decision struct {
	Method    string  `json:"method"`
	Reason    string  `json:"reason"`
	Predicted float64 `json:"predictedSeconds"`
	Observed  float64 `json:"observedSeconds"`
	// Cancelled marks queries cut short (ErrDeadline): their wall time
	// is reported but excluded from calibration.
	Cancelled bool `json:"cancelled,omitempty"`
}

// candState is one candidate's calibration state.
type candState struct {
	queries    int64            // completed (uncancelled) observations
	chosen     int64            // decisions routed here (any reason)
	reasons    map[string]int64 // reason → decisions
	lastChosen int64            // planner query seq of last routing
	ewmaObs    float64          // observed seconds
	ewmaPred   float64          // predicted seconds at decision time
	ewmaPrune  float64          // observed pruned fraction of n
	ratio      float64          // observed / analytic correction factor
}

// Planner delegates each query to the predicted-cheapest candidate.
// It serializes queries (the candidates' executors are single-query
// and the calibration state is single-writer); for concurrent load,
// give each goroutine its own Planner over shared indexes, or let the
// server's existing request serialization do it.
type Planner struct {
	cands []Candidate
	state []candState
	opts  Options

	seq         int64 // queries planned so far
	mispredicts int64
	last        Decision
	lastStats   search.Stats
}

// New builds a Planner over the candidate pool. Non-exact candidates
// are dropped unless o.AllowApprox; at least one candidate must
// survive.
func New(cands []Candidate, o Options) (*Planner, error) {
	if o.ProbeEvery == 0 {
		o.ProbeEvery = 64
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.2
	}
	kept := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Name == "" || c.Searcher == nil {
			return nil, fmt.Errorf("plan: candidate %+v missing name or searcher", c)
		}
		if !c.Exact && !o.AllowApprox {
			continue
		}
		kept = append(kept, c)
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("plan: no usable candidates (exact required) among %d", len(cands))
	}
	p := &Planner{cands: kept, opts: o, state: make([]candState, len(kept))}
	for i := range p.state {
		p.state[i].reasons = map[string]int64{}
	}
	return p, nil
}

// Candidates lists the candidate method names in pool order.
func (p *Planner) Candidates() []string {
	out := make([]string, len(p.cands))
	for i, c := range p.cands {
		out[i] = c.Name
	}
	return out
}

// SetCalibration replaces matching candidates' cost priors with fitted
// coefficients (fexcalibrate -fit output, or a previous run's persisted
// state) and resets their analytic correction factors — the fit IS the
// correction.
func (p *Planner) SetCalibration(c *Calibration) {
	if c == nil {
		return
	}
	for i := range p.cands {
		if m, ok := c.Methods[p.cands[i].Name]; ok {
			p.cands[i].Cost = m
			p.state[i].ratio = 0
		}
	}
}

// Calibration exports the candidates' current effective cost models
// (prior or fitted, with the online correction folded into the linear
// terms) for persistence, so a restart plans from where this run left
// off.
func (p *Planner) Calibration() *Calibration {
	out := &Calibration{Schema: Schema, Methods: map[string]method.CostModel{}}
	for i, c := range p.cands {
		m := c.Cost
		if st := &p.state[i]; st.queries > 0 {
			if st.ratio > 0 {
				m.Setup *= st.ratio
				m.PerItem *= st.ratio
				m.PerDim *= st.ratio
			}
			m.PrunePrior = st.ewmaPrune
		}
		out.Methods[c.Name] = m
	}
	return out
}

func (p *Planner) features(k int) method.Features {
	n := p.opts.N
	if p.opts.SizeFn != nil {
		n = p.opts.SizeFn()
	}
	return method.Features{N: n, D: p.opts.D, K: k, Shards: p.opts.Shards, Workers: p.opts.Workers, PruneFrac: -1}
}

// predict returns candidate i's corrected cost prediction.
func (p *Planner) predict(i int, f method.Features) float64 {
	st := &p.state[i]
	if st.queries > 0 {
		f.PruneFrac = st.ewmaPrune
	}
	c := p.cands[i].Cost.Predict(f)
	if st.queries > 0 && st.ratio > 0 {
		c *= st.ratio
	}
	return c
}

// pick selects the next candidate: warmup until every candidate has
// one observation, a probe every ProbeEvery queries, otherwise the
// predicted-cheapest.
func (p *Planner) pick(f method.Features) (i int, reason string) {
	for i := range p.cands {
		if p.state[i].queries == 0 {
			return i, ReasonWarmup
		}
	}
	best, bestCost := 0, p.predict(0, f)
	for i := 1; i < len(p.cands); i++ {
		if c := p.predict(i, f); c < bestCost {
			best, bestCost = i, c
		}
	}
	if len(p.cands) > 1 && p.opts.ProbeEvery > 0 && p.seq%int64(p.opts.ProbeEvery) == int64(p.opts.ProbeEvery)-1 {
		// Probe the stalest non-best candidate: cheap insurance against a
		// drifted workload pinning a stale incumbent forever.
		probe, probeAge := -1, int64(-1)
		for i := range p.cands {
			if i == best {
				continue
			}
			if age := p.seq - p.state[i].lastChosen; age > probeAge {
				probe, probeAge = i, age
			}
		}
		if probe >= 0 {
			return probe, ReasonProbe
		}
	}
	return best, ReasonCost
}

// Search implements search.Searcher by delegating to the planned
// candidate.
func (p *Planner) Search(q []float64, k int) []topk.Result {
	res, _ := p.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext plans and delegates one query. The chosen method and
// reason are attached to the context's span as plan.method and
// plan.reason; the result, error, and subsequent Stats() are exactly
// the chosen candidate's.
func (p *Planner) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	f := p.features(k)
	i, reason := p.pick(f)
	st := &p.state[i]
	pred := p.predict(i, f)
	st.chosen++
	st.reasons[reason]++
	st.lastChosen = p.seq
	p.seq++

	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.AttrStr("plan.method", p.cands[i].Name)
		sp.AttrStr("plan.reason", reason)
	}
	start := time.Now()
	res, err := p.cands[i].Searcher.SearchContext(ctx, q, k)
	observed := time.Since(start).Seconds()
	p.lastStats = p.cands[i].Searcher.Stats()

	d := Decision{Method: p.cands[i].Name, Reason: reason, Predicted: pred, Observed: observed, Cancelled: err != nil}
	p.last = d
	if err == nil {
		p.observe(i, f, pred, observed, reason)
	}
	if p.opts.OnDecision != nil {
		p.opts.OnDecision(d)
	}
	return res, err
}

// observe folds one completed query into candidate i's calibration.
func (p *Planner) observe(i int, f method.Features, pred, observed float64, reason string) {
	st := &p.state[i]
	a := p.opts.Alpha
	prune := 0.0
	if f.N > 0 {
		prune = float64(p.lastStats.TotalPruned()) / float64(f.N)
		if prune < 0 {
			prune = 0
		} else if prune > 1 {
			prune = 1
		}
	}
	f.PruneFrac = prune
	analytic := p.cands[i].Cost.Predict(f)
	ratio := 1.0
	if analytic > 0 {
		ratio = observed / analytic
	}
	if st.queries == 0 {
		st.ewmaObs, st.ewmaPred, st.ewmaPrune, st.ratio = observed, pred, prune, ratio
	} else {
		st.ewmaObs += a * (observed - st.ewmaObs)
		st.ewmaPred += a * (pred - st.ewmaPred)
		st.ewmaPrune += a * (prune - st.ewmaPrune)
		st.ratio += a * (ratio - st.ratio)
	}
	st.queries++

	// A cost-driven decision mispredicted when, with everything this
	// query taught us, some other candidate still predicts materially
	// (25%) cheaper than what the chosen one actually cost. Warmups and
	// probes are deliberately non-optimal and never count.
	if reason == ReasonCost && len(p.cands) > 1 {
		f.PruneFrac = -1
		for j := range p.cands {
			if j != i && p.predict(j, f)*1.25 < observed {
				p.mispredicts++
				break
			}
		}
	}
}

// Stats implements search.Searcher: the counters of the method the
// last query was delegated to, unchanged.
func (p *Planner) Stats() search.Stats { return p.lastStats }

// LastDecision reports the most recent query's plan.
func (p *Planner) LastDecision() Decision { return p.last }

// SetFaultHook forwards the hook to every candidate that accepts one
// (all searchers in this repository do), so fault-injection tests can
// cancel whichever method the planner picks.
func (p *Planner) SetFaultHook(h *faults.Hook) {
	for _, c := range p.cands {
		if fs, ok := c.Searcher.(interface{ SetFaultHook(*faults.Hook) }); ok {
			fs.SetFaultHook(h)
		}
	}
}

// MethodPlan is one candidate's row in a Summary.
type MethodPlan struct {
	Method      string           `json:"method"`
	Queries     int64            `json:"queries"` // decisions routed here
	Decisions   map[string]int64 `json:"decisions"`
	PredictedMs float64          `json:"predictedMs"`
	ObservedMs  float64          `json:"observedMs"`
	PruneFrac   float64          `json:"pruneFrac"`
}

// Summary is the planner's aggregate state: the `plan` block of
// fexbench -statsjson and fexload -slojson, and the body of the
// server's /v1/plan endpoint.
type Summary struct {
	Queries        int64        `json:"queries"`
	Mispredicts    int64        `json:"mispredicts"`
	MispredictRate float64      `json:"mispredictRate"`
	Methods        []MethodPlan `json:"methods"`
}

// Summary snapshots decisions, mispredicts, and per-method
// predicted-vs-observed EWMAs.
func (p *Planner) Summary() Summary {
	s := Summary{Queries: p.seq, Mispredicts: p.mispredicts}
	if p.seq > 0 {
		s.MispredictRate = float64(p.mispredicts) / float64(p.seq)
	}
	for i, c := range p.cands {
		st := &p.state[i]
		reasons := make(map[string]int64, len(st.reasons))
		for r, n := range st.reasons {
			reasons[r] = n
		}
		s.Methods = append(s.Methods, MethodPlan{
			Method:      c.Name,
			Queries:     st.chosen,
			Decisions:   reasons,
			PredictedMs: st.ewmaPred * 1e3,
			ObservedMs:  st.ewmaObs * 1e3,
			PruneFrac:   st.ewmaPrune,
		})
	}
	return s
}

var _ search.ContextSearcher = (*Planner)(nil)
