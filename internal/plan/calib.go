package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"fexipro/internal/method"
	"fexipro/internal/snap"
)

// Schema is the versioned identifier of the planner coefficients
// format. The payload is JSON for diffability, carried inside a
// fexsnap/v1 container section so readers get the same magic/CRC/
// forward-compat guarantees as every other persisted artifact.
const Schema = "fexplan/v1"

// SectionTag is the fexsnap section holding the JSON payload.
const SectionTag = "plan.cal"

// CalibrationFile is the conventional file name inside a server data
// directory; fexserve -data-dir boots load it when present and
// checkpoints write it back, so calibration survives restarts.
const CalibrationFile = "plan.snap"

// Calibration is a set of fitted per-method cost-model coefficients —
// the output of fexcalibrate -fit or of a running planner's persisted
// state.
type Calibration struct {
	Schema  string                      `json:"schema"`
	Methods map[string]method.CostModel `json:"methods"`
}

// Validate checks structural integrity.
func (c *Calibration) Validate() error {
	if c.Schema != Schema {
		return fmt.Errorf("plan: schema %q, want %q", c.Schema, Schema)
	}
	if len(c.Methods) == 0 {
		return fmt.Errorf("plan: calibration has no methods")
	}
	for name, m := range c.Methods {
		if _, ok := method.Lookup(name); !ok {
			return fmt.Errorf("plan: calibration for unregistered method %q", name)
		}
		if m.Setup < 0 || m.PerItem < 0 || m.PerDim < 0 || m.PrunePrior < 0 || m.PrunePrior > 1 {
			return fmt.Errorf("plan: calibration for %q has out-of-range coefficients %+v", name, m)
		}
	}
	return nil
}

// Encode renders the calibration as a fexsnap container.
func (c *Calibration) Encode() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	var b snap.Builder
	b.Raw(SectionTag, payload)
	var buf bytes.Buffer
	if err := b.Flush(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses a fexsnap container produced by Encode. Unknown extra
// sections are tolerated (forward compatibility); a missing plan.cal
// section or a schema mismatch is an error.
func Decode(raw []byte) (*Calibration, error) {
	f, err := snap.Read(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	payload, ok := f.Section(SectionTag)
	if !ok {
		return nil, fmt.Errorf("plan: no %q section", SectionTag)
	}
	var c Calibration
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("plan: decoding calibration: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// WriteFile persists the calibration atomically (temp + fsync +
// rename), the same durability idiom as core.WriteSnapshotDir.
func WriteFile(path string, c *Calibration) error {
	raw, err := c.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".plan-*.tmp")
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	if _, err := tmp.Write(raw); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads a calibration written by WriteFile.
func ReadFile(path string) (*Calibration, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(raw)
}
