package lemp

import (
	"context"
	"fmt"
	"math"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// SearchAbove answers LEMP's original problem for one query: every item
// with qᵀp ≥ t, sorted by descending score. Buckets are visited in
// decreasing max-norm order and the scan stops at the first bucket whose
// best possible product is below t.
func (idx *Index) SearchAbove(q []float64, t float64) []topk.Result {
	res, _ := idx.SearchAboveContext(context.Background(), q, t)
	return res
}

// SearchAboveContext behaves like SearchAbove but honours ctx: the
// bucket scan polls cancellation every search.CheckStride items (and on
// every item when a fault hook is installed) and returns the (sorted)
// qualifying items found so far with an ErrDeadline-wrapping error. On
// cancellation the set may be missing qualifying items, but every
// returned score is a true inner product.
func (idx *Index) SearchAboveContext(ctx context.Context, q []float64, t float64) ([]topk.Result, error) {
	if len(q) != idx.d {
		panic(fmt.Sprintf("lemp: query dim %d != item dim %d", len(q), idx.d))
	}
	idx.stats = search.Stats{}
	qNorm := vec.Norm(q)
	done := ctx.Done()
	hook := idx.hook
	pos := 0
	var out []topk.Result
	if qNorm == 0 {
		if t <= 0 {
			for bi := range idx.buckets {
				b := &idx.buckets[bi]
				for _, id := range b.ids {
					if hook != nil || (done != nil && pos&search.StrideMask == 0) {
						if err := search.Poll(ctx, hook, pos); err != nil {
							topk.SortResults(out)
							return out, err
						}
					}
					pos++
					out = append(out, topk.Result{ID: id, Score: 0})
				}
			}
			topk.SortResults(out)
		}
		return out, nil
	}
	qUnit := vec.Scaled(q, 1/qNorm)

	for bi := range idx.buckets {
		b := &idx.buckets[bi]
		if qNorm*b.maxNorm < t {
			for _, rest := range idx.buckets[bi:] {
				idx.stats.PrunedByLength += len(rest.ids)
			}
			break
		}
		if err := idx.scanBucketAbove(ctx, hook, done, &pos, b, qUnit, qNorm, t, &out); err != nil {
			topk.SortResults(out)
			return out, err
		}
	}
	topk.SortResults(out)
	return out, nil
}

func (idx *Index) scanBucketAbove(ctx context.Context, hook *faults.Hook, done <-chan struct{}, pos *int, b *bucket, qUnit []float64, qNorm, t float64, out *[]topk.Result) error {
	d := idx.d
	w := b.w
	qTail := vec.NormRange(qUnit, w, d)
	for i := 0; i < b.unit.Rows; i++ {
		if hook != nil || (done != nil && *pos&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, *pos); err != nil {
				return err
			}
		}
		*pos++
		lenBound := qNorm * b.norms[i]
		if lenBound < t {
			idx.stats.PrunedByLength += b.unit.Rows - i
			return nil
		}
		idx.stats.Scanned++
		theta := math.Inf(-1)
		if lenBound > 0 {
			theta = t / lenBound
		}
		row := b.unit.Row(i)
		var cos float64
		if w < d {
			cos = vec.DotRange(qUnit, row, 0, w)
			if cos+qTail*b.tailNorms[i] < theta {
				idx.stats.PrunedByIncremental++
				continue
			}
			cos += vec.DotRange(qUnit, row, w, d)
		} else {
			cos = vec.Dot(qUnit, row)
		}
		idx.stats.FullProducts++
		if v := cos * lenBound; v >= t {
			*out = append(*out, topk.Result{ID: b.ids[i], Score: v})
		}
	}
	return nil
}

// AboveJoin answers the batch above-t task: for every query row, all
// items with product ≥ t.
func (idx *Index) AboveJoin(queries *vec.Matrix, t float64) [][]topk.Result {
	out := make([][]topk.Result, queries.Rows)
	var acc search.Stats
	for i := 0; i < queries.Rows; i++ {
		out[i] = idx.SearchAbove(queries.Row(i), t)
		acc.Add(idx.stats)
	}
	idx.stats = acc
	return out
}
