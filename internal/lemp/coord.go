package lemp

import "math"

// Strategy selects the per-bucket pruning machinery, mirroring LEMP's
// strategy families: LI (length + incremental pruning, the paper's
// LEMP-LI configuration — the default) or COORD (additionally uses
// per-bucket coordinate bounds to skip whole buckets and a focus-
// coordinate test per candidate, LEMP-C style).
type Strategy int

const (
	// StrategyLI is length + incremental pruning (LEMP-LI).
	StrategyLI Strategy = iota
	// StrategyCoord adds coordinate-based bucket skipping and candidate
	// tests (LEMP-C on top of LI).
	StrategyCoord
)

// coordBounds holds per-dimension extrema of a bucket's NORMALIZED
// vectors, plus the bucket's smallest original norm: for any p' in the
// bucket, p'_s ∈ [lo_s, hi_s], so
//
//	cos(q', p') ≤ Σ_s max(q'_s·hi_s, q'_s·lo_s)
//
// bounds the best cosine any member can reach — one O(d) evaluation that
// can skip the entire bucket.
type coordBounds struct {
	lo, hi  []float64
	minNorm float64
}

func buildCoordBounds(b *bucket) *coordBounds {
	d := b.unit.Cols
	cb := &coordBounds{
		lo:      make([]float64, d),
		hi:      make([]float64, d),
		minNorm: b.norms[len(b.norms)-1],
	}
	for s := 0; s < d; s++ {
		cb.lo[s] = math.Inf(1)
		cb.hi[s] = math.Inf(-1)
	}
	for i := 0; i < b.unit.Rows; i++ {
		row := b.unit.Row(i)
		for s, v := range row {
			if v < cb.lo[s] {
				cb.lo[s] = v
			}
			if v > cb.hi[s] {
				cb.hi[s] = v
			}
		}
	}
	return cb
}

// cosUpperBound returns the best cosine any bucket member can achieve
// with the unit query.
//
//fex:bound
func (cb *coordBounds) cosUpperBound(qUnit []float64) float64 {
	var ub float64
	for s, q := range qUnit {
		a, b := q*cb.hi[s], q*cb.lo[s]
		if a > b {
			ub += a
		} else {
			ub += b
		}
	}
	if ub > 1 {
		ub = 1 // cosines cannot exceed 1
	}
	return ub
}

// bucketBound converts the cosine bound into an inner-product bound over
// the bucket, handling the negative-cosine case via the smallest norm.
//
//fex:bound
func (cb *coordBounds) bucketBound(qNorm, maxNorm, cosUB float64) float64 {
	if cosUB >= 0 {
		return qNorm * maxNorm * cosUB
	}
	return qNorm * cb.minNorm * cosUB
}
