package lemp

import (
	"fmt"
	"io"

	"fexipro/internal/snap"
)

// LEMP persistence (fexsnap/v1, DESIGN.md §15): bucket construction
// costs a full sort plus per-bucket w tuning against sample queries, so
// a deployed service saves the finished buckets once. Load restores the
// exact bucket layout — normalized rows, per-bucket w, tail norms,
// coord bounds — so a loaded index scans bit-identically to the one
// that was saved (tuning samples are NOT needed again).

const (
	secLempMeta = "lmp.meta" // d, strategy, bucket count
	secLempBkts = "lmp.bkts" // the buckets, in scan order
)

// Save writes the index as a fexsnap/v1 container.
func (idx *Index) Save(w io.Writer) error {
	var b snap.Builder
	b.Section(secLempMeta, func(e *snap.Encoder) {
		e.I64(int64(idx.d))
		e.I64(int64(idx.strategy))
		e.I64(int64(len(idx.buckets)))
	})
	b.Section(secLempBkts, func(e *snap.Encoder) {
		for i := range idx.buckets {
			bk := &idx.buckets[i]
			e.Matrix(bk.unit)
			e.Floats(bk.norms)
			e.Ints(bk.ids)
			e.I64(int64(bk.w))
			e.Floats(bk.tailNorms)
			e.F64(bk.maxNorm)
			e.Bool(bk.coord != nil)
			if bk.coord != nil {
				e.Floats(bk.coord.lo)
				e.Floats(bk.coord.hi)
				e.F64(bk.coord.minNorm)
			}
		}
	})
	return b.Flush(w)
}

// Load reads an index written by Save. Every error wraps one of the
// snap sentinels (snap.ErrBadMagic / snap.ErrChecksum /
// snap.ErrTruncated).
func Load(r io.Reader) (*Index, error) {
	f, err := snap.Read(r)
	if err != nil {
		return nil, fmt.Errorf("lemp: reading index: %w", err)
	}
	payload, ok := f.Section(secLempMeta)
	if !ok {
		return nil, fmt.Errorf("%w: LEMP snapshot missing section %q", snap.ErrChecksum, secLempMeta)
	}
	d := snap.NewDecoder(payload)
	idx := &Index{d: int(d.I64()), strategy: Strategy(d.I64())}
	nBuckets := int(d.I64())
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("lemp: meta section: %w", err)
	}
	if idx.d < 1 || idx.strategy < StrategyLI || idx.strategy > StrategyCoord || nBuckets < 0 {
		return nil, fmt.Errorf("%w: LEMP snapshot meta d=%d strategy=%d buckets=%d",
			snap.ErrChecksum, idx.d, idx.strategy, nBuckets)
	}

	payload, ok = f.Section(secLempBkts)
	if !ok {
		return nil, fmt.Errorf("%w: LEMP snapshot missing section %q", snap.ErrChecksum, secLempBkts)
	}
	d = snap.NewDecoder(payload)
	idx.buckets = make([]bucket, 0, nBuckets)
	for i := 0; i < nBuckets; i++ {
		var bk bucket
		bk.unit = d.Matrix()
		bk.norms = d.Floats()
		bk.ids = d.Ints()
		bk.w = int(d.I64())
		bk.tailNorms = d.Floats()
		bk.maxNorm = d.F64()
		if d.Bool() {
			cb := &coordBounds{}
			cb.lo = d.Floats()
			cb.hi = d.Floats()
			cb.minNorm = d.F64()
			bk.coord = cb
		}
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("lemp: bucket %d: %w", i, err)
		}
		if err := validateBucket(&bk, idx.d, idx.strategy); err != nil {
			return nil, fmt.Errorf("bucket %d: %w", i, err)
		}
		idx.buckets = append(idx.buckets, bk)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("lemp: bucket section: %w", err)
	}
	return idx, nil
}

// validateBucket checks the structural invariants the scan loops assume
// so a corrupted file cannot cause out-of-range panics later.
func validateBucket(bk *bucket, dim int, strategy Strategy) error {
	if bk.unit == nil || bk.unit.Cols != dim || bk.unit.Rows < 1 {
		return fmt.Errorf("%w: LEMP bucket matrix shape", snap.ErrChecksum)
	}
	n := bk.unit.Rows
	if len(bk.norms) != n || len(bk.ids) != n || len(bk.tailNorms) != n {
		return fmt.Errorf("%w: LEMP bucket arrays disagree with %d rows", snap.ErrChecksum, n)
	}
	if bk.w < 1 || bk.w > dim {
		return fmt.Errorf("%w: LEMP bucket w=%d outside [1, %d]", snap.ErrChecksum, bk.w, dim)
	}
	if (strategy == StrategyCoord) != (bk.coord != nil) {
		return fmt.Errorf("%w: LEMP bucket coord bounds disagree with strategy", snap.ErrChecksum)
	}
	if bk.coord != nil && (len(bk.coord.lo) != dim || len(bk.coord.hi) != dim) {
		return fmt.Errorf("%w: LEMP coord bounds have wrong dimension", snap.ErrChecksum)
	}
	return nil
}
