package lemp_test

import (
	"testing"

	"fexipro/internal/engine"
	"fexipro/internal/lemp"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// Small buckets so even the harness's small instances span many
// buckets and every shard count in the grid gets real work.
func buildSharded(items *vec.Matrix, strategy lemp.Strategy, shards int) *engine.Engine {
	idx := lemp.New(items, lemp.Options{BucketSize: 16, Strategy: strategy})
	return engine.New(lemp.NewKernel(idx, shards), 2)
}

func TestShardedLEMPBitExact(t *testing.T) {
	for _, st := range []struct {
		name     string
		strategy lemp.Strategy
	}{{"LI", lemp.StrategyLI}, {"Coord", lemp.StrategyCoord}} {
		st := st
		t.Run(st.name, func(t *testing.T) {
			searchtest.CheckSharded(t, func(items *vec.Matrix, shards int) search.ContextSearcher {
				return buildSharded(items, st.strategy, shards)
			}, "lemp-"+st.name)
		})
	}
}

func TestShardedLEMPCancellation(t *testing.T) {
	searchtest.CheckShardedCancellation(t, func(items *vec.Matrix, shards int) searchtest.FaultSearcher {
		return buildSharded(items, lemp.StrategyLI, shards)
	}, "lemp")
}
