package lemp_test

import (
	"testing"

	"fexipro/internal/engine"
	"fexipro/internal/lemp"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// TestSnapshotRoundTrip: a saved-and-loaded LEMP index must serve
// queries bit-identically to the one that was built, for both bucket
// strategies (the coordinate strategy persists per-bucket bounds the
// incremental strategy does not).
func TestSnapshotRoundTrip(t *testing.T) {
	for _, st := range []struct {
		name     string
		strategy lemp.Strategy
	}{{"LI", lemp.StrategyLI}, {"Coord", lemp.StrategyCoord}} {
		st := st
		t.Run(st.name, func(t *testing.T) {
			searchtest.CheckSnapshotRoundTrip(t, searchtest.SnapshotCodec[*lemp.Index]{
				Build: func(items *vec.Matrix) *lemp.Index {
					return lemp.New(items, lemp.Options{BucketSize: 16, Strategy: st.strategy})
				},
				Save: (*lemp.Index).Save,
				Load: lemp.Load,
				Searcher: func(ix *lemp.Index, shards int) searchtest.FaultSearcher {
					return engine.New(lemp.NewKernel(ix, shards), 2)
				},
			}, "lemp-"+st.name)
		})
	}
}
