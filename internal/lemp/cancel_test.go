package lemp_test

import (
	"testing"

	"fexipro/internal/lemp"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestLEMPCancellationLI(t *testing.T) {
	searchtest.CheckCancellation(t, func(items *vec.Matrix) searchtest.FaultSearcher {
		return lemp.New(items, lemp.Options{Strategy: lemp.StrategyLI})
	}, "LEMP-LI")
}

func TestLEMPCancellationCoord(t *testing.T) {
	searchtest.CheckCancellation(t, func(items *vec.Matrix) searchtest.FaultSearcher {
		return lemp.New(items, lemp.Options{Strategy: lemp.StrategyCoord})
	}, "LEMP-COORD")
}
