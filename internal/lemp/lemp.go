// Package lemp implements the LEMP batch top-k inner-product join of
// Teflioudi, Gemulla & Mykytiuk (SIGMOD 2015) — the state-of-the-art
// batch baseline the paper compares against in Table 6 (LEMP-LI: length
// plus incremental pruning).
//
// Preprocessing sorts the item vectors by decreasing length and packs
// consecutive runs into buckets sized to stay cache-resident. Each bucket
// stores its normalized vectors and tunes its own checking dimension w on
// sample queries. A query q with current threshold t visits buckets in
// order, stops as soon as ‖q‖·maxnorm(bucket) ≤ t, and inside a bucket
// prunes candidates with the length test and the incremental cosine test
// before finishing any inner product.
package lemp

import (
	"context"
	"fmt"
	"math"
	"sync"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// DefaultBucketSize keeps a bucket of 50-dimensional float64 vectors
// around 100 KiB — comfortably inside L2, the sizing rule LEMP uses.
const DefaultBucketSize = 256

// Options configures index construction.
type Options struct {
	// BucketSize is the number of vectors per bucket (default 256).
	BucketSize int
	// W fixes the checking dimension for every bucket; ≤ 0 tunes per
	// bucket on SampleQueries or falls back to d/5.
	W int
	// SampleQueries drives per-bucket w tuning when W ≤ 0.
	SampleQueries *vec.Matrix
	// Strategy selects the pruning family (default StrategyLI).
	Strategy Strategy
}

// Index is an immutable LEMP index.
type Index struct {
	d        int
	strategy Strategy
	buckets  []bucket
	hook     *faults.Hook
	stats    search.Stats
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// called once per scanned item (with a global item counter that runs
// across bucket boundaries).
func (idx *Index) SetFaultHook(h *faults.Hook) { idx.hook = h }

type bucket struct {
	unit      *vec.Matrix // normalized vectors
	norms     []float64   // original lengths, descending
	ids       []int       // original item IDs
	w         int
	tailNorms []float64 // ‖p'^h‖ per vector at the bucket's w
	maxNorm   float64
	coord     *coordBounds // non-nil under StrategyCoord
}

// New builds the index over items (rows are item vectors; copied).
func New(items *vec.Matrix, opts Options) *Index {
	if opts.BucketSize <= 0 {
		opts.BucketSize = DefaultBucketSize
	}
	sorted := items.Clone()
	perm := sorted.SortRowsByNormDesc()
	norms := sorted.RowNorms()
	d := sorted.Cols

	idx := &Index{d: d, strategy: opts.Strategy}
	for start := 0; start < sorted.Rows; start += opts.BucketSize {
		end := start + opts.BucketSize
		if end > sorted.Rows {
			end = sorted.Rows
		}
		b := bucket{
			unit:  vec.NewMatrix(end-start, d),
			norms: make([]float64, end-start),
			ids:   make([]int, end-start),
		}
		for i := start; i < end; i++ {
			row := b.unit.Row(i - start)
			copy(row, sorted.Row(i))
			if norms[i] > 0 {
				vec.Scale(row, 1/norms[i])
			}
			b.norms[i-start] = norms[i]
			b.ids[i-start] = perm[i]
		}
		b.maxNorm = b.norms[0]
		if opts.Strategy == StrategyCoord {
			b.coord = buildCoordBounds(&b)
		}
		idx.buckets = append(idx.buckets, b)
	}

	for i := range idx.buckets {
		b := &idx.buckets[i]
		switch {
		case opts.W > 0:
			b.setW(min(opts.W, d))
		case opts.SampleQueries != nil && d > 1:
			b.tuneW(opts.SampleQueries)
		default:
			b.setW(defaultW(d))
		}
	}
	return idx
}

func defaultW(d int) int {
	w := d / 5
	if w < 1 {
		w = 1
	}
	if w >= d {
		w = d
	}
	return w
}

func (b *bucket) setW(w int) {
	d := b.unit.Cols
	b.w = w
	b.tailNorms = make([]float64, b.unit.Rows)
	for i := range b.tailNorms {
		b.tailNorms[i] = vec.NormRange(b.unit.Row(i), w, d)
	}
}

// tuneW picks the w minimizing the modeled scan cost on the samples: for
// each sample's unit vector, count dimensions that incremental pruning at
// w would touch against a mid-bucket threshold.
func (b *bucket) tuneW(samples *vec.Matrix) {
	d := b.unit.Cols
	candidates := []int{}
	for _, frac := range []int{10, 5, 3, 2} {
		w := d / frac
		if w < 1 {
			w = 1
		}
		if w >= d {
			w = d - 1
		}
		if len(candidates) == 0 || candidates[len(candidates)-1] != w {
			candidates = append(candidates, w)
		}
	}
	bestW, bestCost := candidates[0], math.Inf(1)
	for _, w := range candidates {
		b.setW(w)
		var cost float64
		for s := 0; s < samples.Rows; s++ {
			q := samples.Row(s)
			qn := vec.Norm(q)
			if qn == 0 {
				continue
			}
			qu := vec.Scaled(q, 1/qn)
			quTail := vec.NormRange(qu, w, d)
			// Model a moderately selective threshold: 60% of the best
			// possible product in this bucket.
			theta := 0.6
			for i := 0; i < b.unit.Rows; i++ {
				cost += float64(w)
				partial := vec.DotRange(qu, b.unit.Row(i), 0, w)
				if partial+quTail*b.tailNorms[i] > theta {
					cost += float64(d - w)
				}
			}
		}
		if cost < bestCost {
			bestCost, bestW = cost, w
		}
	}
	b.setW(bestW)
}

// Search implements search.Searcher for a single query.
func (idx *Index) Search(q []float64, k int) []topk.Result {
	res, _ := idx.SearchContext(context.Background(), q, k)
	return res
}

// lempQuery is the per-query state shared read-only across shard scans.
type lempQuery struct {
	qNorm float64
	qUnit []float64
	focus int
	qf    float64
	qRest float64
}

func (idx *Index) prepareQuery(q []float64) *lempQuery {
	if len(q) != idx.d {
		panic(fmt.Sprintf("lemp: query dim %d != item dim %d", len(q), idx.d))
	}
	qs := &lempQuery{qNorm: vec.Norm(q)}
	if qs.qNorm == 0 {
		return qs
	}
	qs.qUnit = vec.Scaled(q, 1/qs.qNorm)

	// Focus coordinate for the COORD candidate test.
	if idx.strategy == StrategyCoord {
		for j := 1; j < idx.d; j++ {
			if math.Abs(qs.qUnit[j]) > math.Abs(qs.qUnit[qs.focus]) {
				qs.focus = j
			}
		}
		qs.qf = qs.qUnit[qs.focus]
		qs.qRest = math.Sqrt(math.Max(0, 1-qs.qf*qs.qf))
	}
	return qs
}

// SearchContext implements search.ContextSearcher: bucket scans poll ctx
// every search.CheckStride items (counted across buckets) and return the
// best-so-far partial top-k with an ErrDeadline-wrapping error on
// cancellation.
func (idx *Index) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	qs := idx.prepareQuery(q)
	idx.stats = search.Stats{}
	if k == 0 {
		return nil, nil
	}
	c := topk.New(k)
	if err := idx.scanBuckets(ctx, idx.hook, qs, 0, len(idx.buckets), c, nil, &idx.stats); err != nil {
		return c.Results(), err
	}
	return c.Results(), nil
}

// scanBuckets runs the bucket scan over buckets [bLo, bHi) — the whole
// index for the classic single scan, a contiguous bucket range for one
// shard of the sharded engine. Buckets hold consecutive runs of the
// norm-sorted items, so a contiguous bucket range preserves the sorted
// prefix structure and the bucket-level stop stays valid within the
// range. Pruning is STRICT against the max of the local and cross-shard
// thresholds; ctx is polled at SHARD-LOCAL item positions (counted from
// the start of the range, across bucket boundaries).
func (idx *Index) scanBuckets(ctx context.Context, hook *faults.Hook, qs *lempQuery, bLo, bHi int, c *topk.Collector, shared *search.SharedThreshold, stats *search.Stats) error {
	done := ctx.Done()
	pos := 0 // item counter across the range's buckets, for Poll indices
	if qs.qNorm == 0 {
		// Zero query: every item ties at 0. Offer the WHOLE range so the
		// canonical collector retains the same k IDs no matter how
		// buckets are split across shards.
		for bi := bLo; bi < bHi; bi++ {
			b := &idx.buckets[bi]
			for i := range b.ids {
				if hook != nil || (done != nil && pos&search.StrideMask == 0) {
					if err := search.Poll(ctx, hook, pos); err != nil {
						return err
					}
				}
				pos++
				c.Push(b.ids[i], 0)
			}
		}
		return nil
	}
	for bi := bLo; bi < bHi; bi++ {
		b := &idx.buckets[bi]
		t := shared.Floor(c.Threshold())
		bucketCap := qs.qNorm * b.maxNorm //fex:bound
		if bucketCap < t {
			for bj := bi; bj < bHi; bj++ {
				stats.PrunedByLength += len(idx.buckets[bj].ids)
			}
			return nil
		}
		// COORD: one O(d) bound may rule out the whole bucket without
		// stopping the scan (later buckets can still qualify).
		if b.coord != nil && !math.IsInf(t, -1) {
			cosUB := b.coord.cosUpperBound(qs.qUnit)
			if b.coord.bucketBound(qs.qNorm, b.maxNorm, cosUB) < t {
				stats.PrunedByIncremental += len(b.ids)
				pos += len(b.ids)
				continue
			}
		}
		if err := idx.scanBucket(ctx, hook, done, &pos, b, qs, c, shared, stats); err != nil {
			return err
		}
	}
	return nil
}

func (idx *Index) scanBucket(ctx context.Context, hook *faults.Hook, done <-chan struct{}, pos *int, b *bucket, qs *lempQuery, c *topk.Collector, shared *search.SharedThreshold, stats *search.Stats) error {
	d := idx.d
	w := b.w
	qTail := vec.NormRange(qs.qUnit, w, d)
	//fex:hot
	for i := 0; i < b.unit.Rows; i++ {
		if hook != nil || (done != nil && *pos&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, *pos); err != nil {
				return err
			}
		}
		*pos++
		t := shared.Floor(c.Threshold())
		lenBound := qs.qNorm * b.norms[i] //fex:bound
		if lenBound < t {
			stats.PrunedByLength += b.unit.Rows - i
			return nil
		}
		stats.Scanned++
		theta := math.Inf(-1)
		if !math.IsInf(t, -1) {
			theta = t / lenBound
		}
		row := b.unit.Row(i)
		if b.coord != nil {
			// LEMP-C focus-coordinate test: a single multiplication per
			// candidate before any partial dot product.
			pf := row[qs.focus]
			if qs.qf*pf+qs.qRest*math.Sqrt(math.Max(0, 1-pf*pf)) < theta {
				stats.PrunedByIncremental++
				continue
			}
		}
		var cos float64
		if w < d {
			cos = vec.DotRange(qs.qUnit, row, 0, w)
			if cos+qTail*b.tailNorms[i] < theta {
				stats.PrunedByIncremental++
				continue
			}
			cos += vec.DotRange(qs.qUnit, row, w, d)
		} else {
			cos = vec.Dot(qs.qUnit, row)
		}
		stats.FullProducts++
		v := cos * lenBound
		if c.Push(b.ids[i], v) && c.Len() == c.K() {
			shared.Publish(c.Threshold())
		}
	}
	return nil
}

// Stats implements search.Searcher (counters of the most recent Search;
// for TopKJoin they accumulate over the whole batch).
func (idx *Index) Stats() search.Stats { return idx.stats }

// TopKJoin answers the paper's batch task: the top-k list for every
// query row. Queries are processed in descending-norm order internally
// (LEMP's locality optimization) but results are returned in input order.
// It delegates to TopKJoinContext with a background context and one
// worker (the deterministic sequential order).
func (idx *Index) TopKJoin(queries *vec.Matrix, k int) [][]topk.Result {
	out, _ := idx.TopKJoinContext(context.Background(), queries, k, 1)
	return out
}

// TopKJoinContext is TopKJoin with cancellation and worker parallelism:
// queries are processed in descending-norm order, sharded across
// workers (≤ 0 or 1 means sequential), each worker accumulating its own
// stage counters over the shared read-only buckets. On cancellation it
// returns the batch completed so far — unprocessed queries have nil
// slots, the query cut short mid-scan keeps its true-inner-product
// partial — together with an ErrDeadline-wrapping error. Stats() after
// the call reports the counters accumulated over the whole batch.
func (idx *Index) TopKJoinContext(ctx context.Context, queries *vec.Matrix, k, workers int) ([][]topk.Result, error) {
	if queries.Cols != idx.d {
		panic(fmt.Sprintf("lemp: query dim %d != item dim %d", queries.Cols, idx.d))
	}
	out := make([][]topk.Result, queries.Rows)
	ordered := queries.Clone()
	perm := ordered.SortRowsByNormDesc()
	if workers <= 1 || queries.Rows <= 1 {
		var acc search.Stats
		var firstErr error
		for i := 0; i < ordered.Rows; i++ {
			qs := idx.prepareQuery(ordered.Row(i))
			var st search.Stats
			c := topk.New(k)
			err := idx.scanBuckets(ctx, idx.hook, qs, 0, len(idx.buckets), c, nil, &st)
			out[perm[i]] = c.Results()
			acc.Add(st)
			if err != nil {
				firstErr = err
				break
			}
		}
		idx.stats = acc
		if firstErr != nil {
			return out, search.Canceled(firstErr)
		}
		return out, nil
	}

	chunk := (ordered.Rows + workers - 1) / workers
	type chunkOut struct {
		st  search.Stats
		err error
	}
	nchunks := (ordered.Rows + chunk - 1) / chunk
	couts := make([]chunkOut, nchunks)
	var wg sync.WaitGroup
	for ci := 0; ci < nchunks; ci++ {
		lo := ci * chunk
		hi := lo + chunk
		if hi > ordered.Rows {
			hi = ordered.Rows
		}
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			co := &couts[ci]
			for i := lo; i < hi; i++ {
				qs := idx.prepareQuery(ordered.Row(i))
				var st search.Stats
				c := topk.New(k)
				err := idx.scanBuckets(ctx, idx.hook, qs, 0, len(idx.buckets), c, nil, &st)
				out[perm[i]] = c.Results()
				co.st.Add(st)
				if err != nil {
					co.err = err
					return
				}
			}
		}(ci, lo, hi)
	}
	wg.Wait()
	var acc search.Stats
	var firstErr error
	for ci := range couts {
		acc.Add(couts[ci].st)
		if couts[ci].err != nil && firstErr == nil {
			firstErr = couts[ci].err
		}
	}
	idx.stats = acc
	if firstErr != nil {
		return out, search.Canceled(firstErr)
	}
	return out, nil
}

var _ search.ContextSearcher = (*Index)(nil)
