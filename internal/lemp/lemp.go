// Package lemp implements the LEMP batch top-k inner-product join of
// Teflioudi, Gemulla & Mykytiuk (SIGMOD 2015) — the state-of-the-art
// batch baseline the paper compares against in Table 6 (LEMP-LI: length
// plus incremental pruning).
//
// Preprocessing sorts the item vectors by decreasing length and packs
// consecutive runs into buckets sized to stay cache-resident. Each bucket
// stores its normalized vectors and tunes its own checking dimension w on
// sample queries. A query q with current threshold t visits buckets in
// order, stops as soon as ‖q‖·maxnorm(bucket) ≤ t, and inside a bucket
// prunes candidates with the length test and the incremental cosine test
// before finishing any inner product.
package lemp

import (
	"context"
	"fmt"
	"math"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// DefaultBucketSize keeps a bucket of 50-dimensional float64 vectors
// around 100 KiB — comfortably inside L2, the sizing rule LEMP uses.
const DefaultBucketSize = 256

// Options configures index construction.
type Options struct {
	// BucketSize is the number of vectors per bucket (default 256).
	BucketSize int
	// W fixes the checking dimension for every bucket; ≤ 0 tunes per
	// bucket on SampleQueries or falls back to d/5.
	W int
	// SampleQueries drives per-bucket w tuning when W ≤ 0.
	SampleQueries *vec.Matrix
	// Strategy selects the pruning family (default StrategyLI).
	Strategy Strategy
}

// Index is an immutable LEMP index.
type Index struct {
	d        int
	strategy Strategy
	buckets  []bucket
	hook     *faults.Hook
	stats    search.Stats
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook
// called once per scanned item (with a global item counter that runs
// across bucket boundaries).
func (idx *Index) SetFaultHook(h *faults.Hook) { idx.hook = h }

type bucket struct {
	unit      *vec.Matrix // normalized vectors
	norms     []float64   // original lengths, descending
	ids       []int       // original item IDs
	w         int
	tailNorms []float64 // ‖p'^h‖ per vector at the bucket's w
	maxNorm   float64
	coord     *coordBounds // non-nil under StrategyCoord
}

// New builds the index over items (rows are item vectors; copied).
func New(items *vec.Matrix, opts Options) *Index {
	if opts.BucketSize <= 0 {
		opts.BucketSize = DefaultBucketSize
	}
	sorted := items.Clone()
	perm := sorted.SortRowsByNormDesc()
	norms := sorted.RowNorms()
	d := sorted.Cols

	idx := &Index{d: d, strategy: opts.Strategy}
	for start := 0; start < sorted.Rows; start += opts.BucketSize {
		end := start + opts.BucketSize
		if end > sorted.Rows {
			end = sorted.Rows
		}
		b := bucket{
			unit:  vec.NewMatrix(end-start, d),
			norms: make([]float64, end-start),
			ids:   make([]int, end-start),
		}
		for i := start; i < end; i++ {
			row := b.unit.Row(i - start)
			copy(row, sorted.Row(i))
			if norms[i] > 0 {
				vec.Scale(row, 1/norms[i])
			}
			b.norms[i-start] = norms[i]
			b.ids[i-start] = perm[i]
		}
		b.maxNorm = b.norms[0]
		if opts.Strategy == StrategyCoord {
			b.coord = buildCoordBounds(&b)
		}
		idx.buckets = append(idx.buckets, b)
	}

	for i := range idx.buckets {
		b := &idx.buckets[i]
		switch {
		case opts.W > 0:
			b.setW(min(opts.W, d))
		case opts.SampleQueries != nil && d > 1:
			b.tuneW(opts.SampleQueries)
		default:
			b.setW(defaultW(d))
		}
	}
	return idx
}

func defaultW(d int) int {
	w := d / 5
	if w < 1 {
		w = 1
	}
	if w >= d {
		w = d
	}
	return w
}

func (b *bucket) setW(w int) {
	d := b.unit.Cols
	b.w = w
	b.tailNorms = make([]float64, b.unit.Rows)
	for i := range b.tailNorms {
		b.tailNorms[i] = vec.NormRange(b.unit.Row(i), w, d)
	}
}

// tuneW picks the w minimizing the modeled scan cost on the samples: for
// each sample's unit vector, count dimensions that incremental pruning at
// w would touch against a mid-bucket threshold.
func (b *bucket) tuneW(samples *vec.Matrix) {
	d := b.unit.Cols
	candidates := []int{}
	for _, frac := range []int{10, 5, 3, 2} {
		w := d / frac
		if w < 1 {
			w = 1
		}
		if w >= d {
			w = d - 1
		}
		if len(candidates) == 0 || candidates[len(candidates)-1] != w {
			candidates = append(candidates, w)
		}
	}
	bestW, bestCost := candidates[0], math.Inf(1)
	for _, w := range candidates {
		b.setW(w)
		var cost float64
		for s := 0; s < samples.Rows; s++ {
			q := samples.Row(s)
			qn := vec.Norm(q)
			if qn == 0 {
				continue
			}
			qu := vec.Scaled(q, 1/qn)
			quTail := vec.NormRange(qu, w, d)
			// Model a moderately selective threshold: 60% of the best
			// possible product in this bucket.
			theta := 0.6
			for i := 0; i < b.unit.Rows; i++ {
				cost += float64(w)
				partial := vec.DotRange(qu, b.unit.Row(i), 0, w)
				if partial+quTail*b.tailNorms[i] > theta {
					cost += float64(d - w)
				}
			}
		}
		if cost < bestCost {
			bestCost, bestW = cost, w
		}
	}
	b.setW(bestW)
}

// Search implements search.Searcher for a single query.
func (idx *Index) Search(q []float64, k int) []topk.Result {
	res, _ := idx.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: bucket scans poll ctx
// every search.CheckStride items (counted globally across buckets) and
// return the best-so-far partial top-k with an ErrDeadline-wrapping
// error on cancellation.
func (idx *Index) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	if len(q) != idx.d {
		panic(fmt.Sprintf("lemp: query dim %d != item dim %d", len(q), idx.d))
	}
	idx.stats = search.Stats{}
	c := topk.New(k)
	if k == 0 {
		return nil, nil
	}
	qNorm := vec.Norm(q)
	if qNorm == 0 {
		for bi := range idx.buckets {
			b := &idx.buckets[bi]
			for i := range b.ids {
				if c.Len() >= k {
					break
				}
				c.Push(b.ids[i], 0)
			}
		}
		return c.Results(), nil
	}
	qUnit := vec.Scaled(q, 1/qNorm)

	// Focus coordinate for the COORD candidate test.
	var focus int
	var qf, qRest float64
	if idx.strategy == StrategyCoord {
		for j := 1; j < idx.d; j++ {
			if math.Abs(qUnit[j]) > math.Abs(qUnit[focus]) {
				focus = j
			}
		}
		qf = qUnit[focus]
		qRest = math.Sqrt(math.Max(0, 1-qf*qf))
	}

	done := ctx.Done()
	hook := idx.hook
	pos := 0 // global item counter across buckets, for Poll indices
	for bi := range idx.buckets {
		b := &idx.buckets[bi]
		t := c.Threshold()
		if qNorm*b.maxNorm <= t {
			for _, rest := range idx.buckets[bi:] {
				idx.stats.PrunedByLength += len(rest.ids)
			}
			break
		}
		// COORD: one O(d) bound may rule out the whole bucket without
		// stopping the scan (later buckets can still qualify).
		if b.coord != nil && !math.IsInf(t, -1) {
			cosUB := b.coord.cosUpperBound(qUnit)
			if b.coord.bucketBound(qNorm, b.maxNorm, cosUB) <= t {
				idx.stats.PrunedByIncremental += len(b.ids)
				pos += len(b.ids)
				continue
			}
		}
		if err := idx.scanBucket(ctx, hook, done, &pos, b, qUnit, qNorm, focus, qf, qRest, c); err != nil {
			return c.Results(), err
		}
	}
	return c.Results(), nil
}

func (idx *Index) scanBucket(ctx context.Context, hook *faults.Hook, done <-chan struct{}, pos *int, b *bucket, qUnit []float64, qNorm float64, focus int, qf, qRest float64, c *topk.Collector) error {
	d := idx.d
	w := b.w
	qTail := vec.NormRange(qUnit, w, d)
	for i := 0; i < b.unit.Rows; i++ {
		if hook != nil || (done != nil && *pos&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, *pos); err != nil {
				return err
			}
		}
		*pos++
		t := c.Threshold()
		lenBound := qNorm * b.norms[i]
		if lenBound <= t {
			idx.stats.PrunedByLength += b.unit.Rows - i
			return nil
		}
		idx.stats.Scanned++
		theta := math.Inf(-1)
		if !math.IsInf(t, -1) {
			theta = t / lenBound
		}
		row := b.unit.Row(i)
		if b.coord != nil {
			// LEMP-C focus-coordinate test: a single multiplication per
			// candidate before any partial dot product.
			pf := row[focus]
			if qf*pf+qRest*math.Sqrt(math.Max(0, 1-pf*pf)) <= theta {
				idx.stats.PrunedByIncremental++
				continue
			}
		}
		var cos float64
		if w < d {
			cos = vec.DotRange(qUnit, row, 0, w)
			if cos+qTail*b.tailNorms[i] <= theta {
				idx.stats.PrunedByIncremental++
				continue
			}
			cos += vec.DotRange(qUnit, row, w, d)
		} else {
			cos = vec.Dot(qUnit, row)
		}
		idx.stats.FullProducts++
		if v := cos * lenBound; v > t {
			c.Push(b.ids[i], v)
		}
	}
	return nil
}

// Stats implements search.Searcher (counters of the most recent Search;
// for TopKJoin they accumulate over the whole batch).
func (idx *Index) Stats() search.Stats { return idx.stats }

// TopKJoin answers the paper's batch task: the top-k list for every
// query row. Queries are processed in descending-norm order internally
// (LEMP's locality optimization) but results are returned in input order.
func (idx *Index) TopKJoin(queries *vec.Matrix, k int) [][]topk.Result {
	out := make([][]topk.Result, queries.Rows)
	ordered := queries.Clone()
	perm := ordered.SortRowsByNormDesc()
	var acc search.Stats
	for i := 0; i < ordered.Rows; i++ {
		out[perm[i]] = idx.Search(ordered.Row(i), k)
		acc.Add(idx.stats)
	}
	idx.stats = acc
	return out
}

var _ search.ContextSearcher = (*Index)(nil)
