package lemp_test

import (
	"math"
	"math/rand"
	"testing"

	"fexipro/internal/lemp"
	"fexipro/internal/scan"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestSearchAboveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	items, _ := searchtest.RandomInstance(rng, 700, 12)
	idx := lemp.New(items, lemp.Options{BucketSize: 64})
	naive := scan.NewNaive(items)
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, 12)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		ranked := naive.Search(q, 700)
		for _, pick := range []int{0, 10, 300} {
			thr := ranked[pick].Score - 1e-9*(1+math.Abs(ranked[pick].Score))
			got := idx.SearchAbove(q, thr)
			want := naive.SearchAbove(q, thr)
			if len(got) != len(want) {
				t.Fatalf("t=%v: got %d, want %d", thr, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Score-want[i].Score) > 1e-7*(1+math.Abs(want[i].Score)) {
					t.Fatalf("rank %d: %v vs %v", i, got[i], want[i])
				}
			}
		}
	}
}

func TestAboveJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	items, _ := searchtest.RandomInstance(rng, 400, 10)
	queries := vec.NewMatrix(8, 10)
	for i := range queries.Data {
		queries.Data[i] = rng.NormFloat64()
	}
	idx := lemp.New(items, lemp.Options{})
	naive := scan.NewNaive(items)
	all := idx.AboveJoin(queries, 2.0)
	for qi := 0; qi < queries.Rows; qi++ {
		want := naive.SearchAbove(queries.Row(qi), 2.0)
		if len(all[qi]) != len(want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(all[qi]), len(want))
		}
	}
}

func TestSearchAboveZeroQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	items, _ := searchtest.RandomInstance(rng, 50, 6)
	idx := lemp.New(items, lemp.Options{})
	zq := make([]float64, 6)
	if got := idx.SearchAbove(zq, 0); len(got) != 50 {
		t.Fatalf("zero query with t=0 should return all 50 items, got %d", len(got))
	}
	if got := idx.SearchAbove(zq, 0.5); len(got) != 0 {
		t.Fatalf("zero query with t>0 should return nothing, got %d", len(got))
	}
}

func TestSearchAbovePrunesBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	items, q := searchtest.RandomInstance(rng, 5000, 12)
	idx := lemp.New(items, lemp.Options{})
	top := idx.Search(q, 1)
	idx.SearchAbove(q, top[0].Score*0.95)
	if st := idx.Stats(); st.PrunedByLength == 0 {
		t.Error("above-t never pruned by bucket length")
	}
}
