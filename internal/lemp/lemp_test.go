package lemp_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/lemp"
	"fexipro/internal/scan"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestLEMPExactSingleQuery(t *testing.T) {
	searchtest.CheckSearcher(t, func(items *vec.Matrix) search.Searcher {
		return lemp.New(items, lemp.Options{})
	}, "lemp")
	searchtest.CheckSearcherEdgeCases(t, func(items *vec.Matrix) search.Searcher {
		return lemp.New(items, lemp.Options{})
	}, "lemp")
}

func TestLEMPExactSmallBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	items, _ := searchtest.RandomInstance(rng, 500, 12)
	for _, bs := range []int{1, 7, 64, 10000} {
		idx := lemp.New(items, lemp.Options{BucketSize: bs})
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, 12)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			searchtest.CheckTopK(t, items, q, 5, idx.Search(q, 5), "lemp/bucket")
		}
	}
}

func TestLEMPTopKJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	items, _ := searchtest.RandomInstance(rng, 800, 16)
	queries := vec.NewMatrix(25, 16)
	for i := range queries.Data {
		queries.Data[i] = rng.NormFloat64()
	}
	idx := lemp.New(items, lemp.Options{BucketSize: 128})
	all := idx.TopKJoin(queries, 7)
	if len(all) != 25 {
		t.Fatalf("join returned %d result lists", len(all))
	}
	for qi := 0; qi < queries.Rows; qi++ {
		searchtest.CheckTopK(t, items, queries.Row(qi), 7, all[qi], "lemp/join")
	}
}

func TestLEMPWithTunedW(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	items, _ := searchtest.RandomInstance(rng, 600, 20)
	samples := vec.NewMatrix(5, 20)
	for i := range samples.Data {
		samples.Data[i] = rng.NormFloat64()
	}
	idx := lemp.New(items, lemp.Options{SampleQueries: samples})
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, 20)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		searchtest.CheckTopK(t, items, q, 10, idx.Search(q, 10), "lemp/tuned")
	}
}

func TestLEMPBucketTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	items, q := searchtest.RandomInstance(rng, 5000, 16)
	idx := lemp.New(items, lemp.Options{})
	idx.Search(q, 1)
	st := idx.Stats()
	if st.PrunedByLength == 0 {
		t.Error("LEMP never pruned by length on norm-skewed data")
	}
	if st.FullProducts >= 5000 {
		t.Errorf("LEMP computed all %d products", st.FullProducts)
	}
}

func TestLEMPFasterPathAgreesWithSSL(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	items, _ := searchtest.RandomInstance(rng, 400, 10)
	idx := lemp.New(items, lemp.Options{})
	ssl := scan.NewSSL(items, scan.SSLOptions{})
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, 10)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		a := idx.Search(q, 5)
		b := ssl.Search(q, 5)
		if len(a) != len(b) {
			t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if d := a[i].Score - b[i].Score; d > 1e-9 || d < -1e-9 {
				t.Fatalf("rank %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestCoordStrategyExact(t *testing.T) {
	searchtest.CheckSearcher(t, func(items *vec.Matrix) search.Searcher {
		return lemp.New(items, lemp.Options{Strategy: lemp.StrategyCoord})
	}, "lemp-coord")
	searchtest.CheckSearcherEdgeCases(t, func(items *vec.Matrix) search.Searcher {
		return lemp.New(items, lemp.Options{Strategy: lemp.StrategyCoord})
	}, "lemp-coord")
}

func TestCoordStrategyJoinMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	items, _ := searchtest.RandomInstance(rng, 900, 14)
	queries := vec.NewMatrix(12, 14)
	for i := range queries.Data {
		queries.Data[i] = rng.NormFloat64()
	}
	li := lemp.New(items, lemp.Options{})
	coord := lemp.New(items, lemp.Options{Strategy: lemp.StrategyCoord})
	a := li.TopKJoin(queries, 5)
	b := coord.TopKJoin(queries, 5)
	for qi := range a {
		for i := range a[qi] {
			if d := a[qi][i].Score - b[qi][i].Score; d > 1e-9 || d < -1e-9 {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, a[qi][i], b[qi][i])
			}
		}
	}
}
