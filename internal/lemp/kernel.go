package lemp

import (
	"context"

	"fexipro/internal/engine"
	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// Kernel adapts a LEMP index to engine.Kernel: the norm-ordered buckets
// are partitioned into contiguous bucket ranges, one per shard. The
// buckets themselves (normalization, per-bucket w tuning, coord bounds)
// are built once over the full matrix, so per-item arithmetic is
// bit-identical regardless of shard count, and a contiguous bucket
// range preserves the descending-norm structure the bucket-level stop
// relies on.
type Kernel struct {
	idx  *Index
	part engine.Partition
}

// NewKernel partitions idx's buckets into (at most) shards contiguous
// ranges.
func NewKernel(idx *Index, shards int) *Kernel {
	return &Kernel{idx: idx, part: engine.NewPartition(len(idx.buckets), shards)}
}

// Shards implements engine.Kernel.
func (k *Kernel) Shards() int { return k.part.Shards() }

// Prepare implements engine.Kernel.
func (k *Kernel) Prepare(q []float64) any { return k.idx.prepareQuery(q) }

// Scan implements engine.Kernel: one contiguous bucket range of the
// LEMP scan, with strict pruning against the max of the local and
// shared thresholds.
func (k *Kernel) Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error) {
	bLo, bHi := k.part.Range(shard)
	var st search.Stats
	err := k.idx.scanBuckets(ctx, hook, pq.(*lempQuery), bLo, bHi, c, shared, &st)
	return st, err
}

var _ engine.Kernel = (*Kernel)(nil)
