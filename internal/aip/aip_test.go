package aip_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"fexipro/internal/aip"
	"fexipro/internal/core"
	"fexipro/internal/vec"
)

func randomMatrix(rng *rand.Rand, rows, cols int, skew float64) *vec.Matrix {
	m := vec.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		scale := math.Exp(skew * rng.NormFloat64())
		for j := 0; j < cols; j++ {
			m.Set(i, j, scale*rng.NormFloat64())
		}
	}
	return m
}

// bruteAIP computes the true top-k pairs by enumerating everything.
func bruteAIP(users, items *vec.Matrix, k int) []aip.Pair {
	var all []aip.Pair
	for u := 0; u < users.Rows; u++ {
		for i := 0; i < items.Rows; i++ {
			all = append(all, aip.Pair{User: u, Item: i, Score: vec.Dot(users.Row(u), items.Row(i))})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Score > all[b].Score })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []struct{ m, n, d, k int }{
		{10, 20, 4, 1}, {50, 80, 8, 10}, {30, 200, 16, 25}, {5, 5, 3, 100},
	} {
		users := randomMatrix(rng, shape.m, shape.d, 0.4)
		items := randomMatrix(rng, shape.n, shape.d, 0.4)
		got, err := aip.Exact(users, items, shape.k, core.Options{SVD: true, Int: true, Reduction: true})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAIP(users, items, shape.k)
		if len(got) != len(want) {
			t.Fatalf("%+v: got %d pairs, want %d", shape, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-7*(1+math.Abs(want[i].Score)) {
				t.Fatalf("%+v rank %d: %+v vs %+v", shape, i, got[i], want[i])
			}
		}
	}
}

func TestExactEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	users := randomMatrix(rng, 5, 4, 0)
	items := randomMatrix(rng, 5, 4, 0)
	if got, err := aip.Exact(users, items, 0, core.Options{}); err != nil || got != nil {
		t.Fatalf("k=0: %v, %v", got, err)
	}
	if _, err := aip.Exact(users, randomMatrix(rng, 5, 3, 0), 1, core.Options{}); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestSampleFindsTopPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	users := randomMatrix(rng, 60, 8, 0.5)
	items := randomMatrix(rng, 100, 8, 0.5)
	// Plant a dominant pair so sampling must find it.
	for j := 0; j < 8; j++ {
		users.Set(0, j, 3)
		items.Set(0, j, 3)
	}
	got, err := aip.Sample(users, items, 5, aip.SampleConfig{Samples: 200000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no pairs returned")
	}
	if got[0].User != 0 || got[0].Item != 0 {
		t.Fatalf("planted pair not found: top = %+v", got[0])
	}
	// Scores must be exact inner products.
	for _, p := range got {
		exact := vec.Dot(users.Row(p.User), items.Row(p.Item))
		if math.Abs(exact-p.Score) > 1e-9 {
			t.Fatalf("score %v != exact %v", p.Score, exact)
		}
	}
}

func TestSampleRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	users := randomMatrix(rng, 80, 10, 0.6)
	items := randomMatrix(rng, 120, 10, 0.6)
	want := bruteAIP(users, items, 10)
	got, err := aip.Sample(users, items, 10, aip.SampleConfig{Samples: 500000, Candidates: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	inTrue := map[[2]int]bool{}
	for _, p := range want {
		inTrue[[2]int{p.User, p.Item}] = true
	}
	hits := 0
	for _, p := range got {
		if inTrue[[2]int{p.User, p.Item}] {
			hits++
		}
	}
	if hits < 5 {
		t.Fatalf("sampling recall too low: %d/10 true top pairs found", hits)
	}
}

func TestSampleZeroMatrices(t *testing.T) {
	users := vec.NewMatrix(5, 4)
	items := vec.NewMatrix(5, 4)
	got, err := aip.Sample(users, items, 3, aip.SampleConfig{Samples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("zero matrices should yield no candidates, got %v", got)
	}
}

func TestSampleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	users := randomMatrix(rng, 5, 4, 0)
	if _, err := aip.Sample(users, randomMatrix(rng, 5, 3, 0), 1, aip.SampleConfig{}); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if got, err := aip.Sample(users, randomMatrix(rng, 5, 4, 0), 0, aip.SampleConfig{}); err != nil || got != nil {
		t.Fatalf("k=0: %v, %v", got, err)
	}
}
