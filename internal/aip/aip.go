// Package aip solves the top-k All-pairs Inner Product problem (Ballard,
// Kolda, Pinar & Seshadhri, ICDM 2015): find the k largest entries of
// QᵀP across ALL (user, item) pairs. The paper lists extending FEXIPRO
// to AIP as future work (Section 9); this package provides
//
//   - Exact: an exact solver that drives a FEXIPRO index with a GLOBAL
//     threshold — queries are processed in decreasing norm order, the
//     current global k-th product prunes whole queries via the
//     Cauchy–Schwarz test, and each surviving query reuses the whole
//     single-query pruning cascade; and
//
//   - Sample: a wedge/diamond-style sampling estimator in the spirit of
//     [8]: dimensions are sampled with probability proportional to their
//     |Q|-row × |P|-row mass, producing candidate pairs whose exact
//     products are then verified, so the returned scores are true inner
//     products even when the candidate set is approximate.
package aip

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fexipro/internal/core"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Pair is one (user, item) result with its exact inner product.
type Pair struct {
	User, Item int
	Score      float64
}

// Exact returns the k largest inner products over all pairs of rows of
// users × items, exactly.
func Exact(users, items *vec.Matrix, k int, opts core.Options) ([]Pair, error) {
	if users.Cols != items.Cols {
		return nil, fmt.Errorf("aip: dim mismatch %d vs %d", users.Cols, items.Cols)
	}
	if k <= 0 {
		return nil, nil
	}
	idx, err := core.NewIndex(items, opts)
	if err != nil {
		return nil, err
	}
	r := core.NewRetriever(idx)

	// Process queries in decreasing norm order so the global threshold
	// rises quickly and the Cauchy–Schwarz test can drop whole queries.
	qNorms := users.RowNorms()
	order := make([]int, users.Rows)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return qNorms[order[a]] > qNorms[order[b]] })

	maxItemNorm := 0.0
	for _, n := range items.RowNorms() {
		if n > maxItemNorm {
			maxItemNorm = n
		}
	}

	global := newPairHeap(k)
	for _, u := range order {
		t := global.threshold()
		if qNorms[u]*maxItemNorm <= t {
			break // no remaining query can contribute
		}
		// Above-t retrieval against the current global threshold keeps
		// only candidates that could enter the global top-k.
		for _, res := range r.SearchAbove(users.Row(u), nextAfter(t)) {
			global.push(Pair{User: u, Item: res.ID, Score: res.Score})
		}
	}
	return global.sorted(), nil
}

// nextAfter nudges the exclusive threshold t into an inclusive one for
// SearchAbove without re-admitting t itself.
func nextAfter(t float64) float64 {
	if math.IsInf(t, -1) {
		return t
	}
	return math.Nextafter(t, math.Inf(1))
}

// SampleConfig tunes the sampling estimator.
type SampleConfig struct {
	// Samples is the number of wedge samples (default 100k).
	Samples int
	// Candidates is how many distinct pairs (by sample count) are
	// verified exactly (default 10·k).
	Candidates int
	Seed       int64
}

// Sample approximates the top-k all-pairs products: it samples candidate
// pairs with probability proportional to Σ_s |q_s·p_s| mass, then
// verifies the most-sampled candidates exactly. Returned scores are
// exact; the candidate SET may miss true top-k pairs (it is an
// approximation, like diamond sampling in [8]).
func Sample(users, items *vec.Matrix, k int, cfg SampleConfig) ([]Pair, error) {
	if users.Cols != items.Cols {
		return nil, fmt.Errorf("aip: dim mismatch %d vs %d", users.Cols, items.Cols)
	}
	if k <= 0 {
		return nil, nil
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 100000
	}
	if cfg.Candidates <= 0 {
		cfg.Candidates = 10 * k
	}
	d := users.Cols
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-dimension absolute mass and per-dimension alias-free CDFs over
	// rows: P(dim s) ∝ (Σ_u |Q[u][s]|)·(Σ_i |P[i][s]|);
	// P(u | s) ∝ |Q[u][s]|, P(i | s) ∝ |P[i][s]|.
	userCDF := columnCDFs(users)
	itemCDF := columnCDFs(items)
	dimWeights := make([]float64, d)
	var totalW float64
	for s := 0; s < d; s++ {
		dimWeights[s] = userCDF.total[s] * itemCDF.total[s]
		totalW += dimWeights[s]
	}
	if totalW == 0 {
		return nil, nil // all-zero matrices: every product is 0
	}
	dimCum := make([]float64, d)
	acc := 0.0
	for s := 0; s < d; s++ {
		acc += dimWeights[s]
		dimCum[s] = acc
	}

	counts := make(map[[2]int]int, cfg.Samples/4)
	for n := 0; n < cfg.Samples; n++ {
		s := searchCum(dimCum, rng.Float64()*totalW)
		u := userCDF.sample(s, rng)
		i := itemCDF.sample(s, rng)
		// Wedge weight sign: count only same-sign contributions to bias
		// candidates toward large POSITIVE products.
		if users.At(u, s)*items.At(i, s) > 0 {
			counts[[2]int{u, i}]++
		}
	}

	type scored struct {
		pair  [2]int
		count int
	}
	cands := make([]scored, 0, len(counts))
	for p, c := range counts {
		cands = append(cands, scored{p, c})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].count != cands[b].count {
			return cands[a].count > cands[b].count
		}
		return cands[a].pair[0] < cands[b].pair[0] ||
			(cands[a].pair[0] == cands[b].pair[0] && cands[a].pair[1] < cands[b].pair[1])
	})
	if len(cands) > cfg.Candidates {
		cands = cands[:cfg.Candidates]
	}

	h := newPairHeap(k)
	for _, c := range cands {
		u, i := c.pair[0], c.pair[1]
		h.push(Pair{User: u, Item: i, Score: vec.Dot(users.Row(u), items.Row(i))})
	}
	return h.sorted(), nil
}

// columnCDF holds per-dimension cumulative |value| sums over rows for
// O(log n) conditional sampling.
type columnCDF struct {
	rows  int
	cum   []float64 // d × rows, cum[s*rows+r] = Σ_{r'≤r} |M[r'][s]|
	total []float64 // per-dimension totals
}

func columnCDFs(m *vec.Matrix) *columnCDF {
	c := &columnCDF{
		rows:  m.Rows,
		cum:   make([]float64, m.Cols*m.Rows),
		total: make([]float64, m.Cols),
	}
	for s := 0; s < m.Cols; s++ {
		acc := 0.0
		base := s * m.Rows
		for r := 0; r < m.Rows; r++ {
			acc += math.Abs(m.At(r, s))
			c.cum[base+r] = acc
		}
		c.total[s] = acc
	}
	return c
}

func (c *columnCDF) sample(s int, rng *rand.Rand) int {
	base := s * c.rows
	return searchCum(c.cum[base:base+c.rows], rng.Float64()*c.total[s])
}

// searchCum returns the first index whose cumulative value exceeds x.
func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// pairHeap is a bounded min-heap over Pair scores.
type pairHeap struct {
	k     int
	inner *topk.Collector
	byID  map[int]Pair // collector IDs → pairs
	next  int
}

func newPairHeap(k int) *pairHeap {
	return &pairHeap{k: k, inner: topk.New(k), byID: make(map[int]Pair, k+1)}
}

func (h *pairHeap) threshold() float64 { return h.inner.Threshold() }

func (h *pairHeap) push(p Pair) {
	id := h.next
	h.next++
	if h.inner.Push(id, p.Score) {
		h.byID[id] = p
		if len(h.byID) > 4*h.k {
			h.compact()
		}
	}
}

// compact drops evicted pairs from the side map.
func (h *pairHeap) compact() {
	live := make(map[int]Pair, h.k)
	for _, r := range h.inner.Results() {
		live[r.ID] = h.byID[r.ID]
	}
	h.byID = live
}

func (h *pairHeap) sorted() []Pair {
	res := h.inner.Results()
	out := make([]Pair, len(res))
	for i, r := range res {
		out[i] = h.byID[r.ID]
	}
	return out
}
