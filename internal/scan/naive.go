// Package scan implements the sequential-scan retrieval baselines of
// Section 2.2: the Naive full scan, the Cauchy–Schwarz sorted scan SS
// with incremental pruning (Algorithms 1 and 2), and SS-L, the LEMP-style
// single-query variant operating on normalized vectors.
//
// Every baseline exposes its scan as a range-scan over a contiguous row
// interval, so the same code path serves both the classic single-scan
// SearchContext (range [0, n)) and one shard of the sharded execution
// engine (see the *Kernel types in kernel.go and DESIGN.md §11).
package scan

import (
	"context"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Naive scans every item and computes every inner product, tracking the
// top-k with a bounded heap — the paper's Naive baseline and the ground
// truth for all exactness tests.
type Naive struct {
	items *vec.Matrix
	hook  *faults.Hook
	stats search.Stats
}

// NewNaive indexes the item matrix (rows are item vectors). The matrix is
// used as-is and must not be mutated afterwards.
func NewNaive(items *vec.Matrix) *Naive {
	return &Naive{items: items}
}

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook called once per scanned item.
func (n *Naive) SetFaultHook(h *faults.Hook) { n.hook = h }

// Search implements search.Searcher.
func (n *Naive) Search(q []float64, k int) []topk.Result {
	res, _ := n.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: the scan polls ctx
// every search.CheckStride items and returns the best-so-far partial
// top-k with an ErrDeadline-wrapping error on cancellation.
func (n *Naive) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	n.stats = search.Stats{}
	c := topk.New(k)
	if err := n.scanRange(ctx, n.hook, q, 0, n.items.Rows, c, &n.stats); err != nil {
		return c.Results(), err
	}
	return c.Results(), nil
}

// scanRange scans rows [lo, hi), offering every inner product to c.
// ctx is polled at RANGE-LOCAL indices (i−lo) so each shard of a
// sharded scan polls at its own first item.
//
// Naive is the cheapest per-item scan in the repository (a bare dot
// product), so it is the one place where even a predictable per-item
// branch shows up in profiles. The loop is therefore split three ways:
// no guard at all when neither a hook nor a cancellable context is
// present, stride-sized tight chunks with one poll between chunks when
// only the context needs watching, and the fully guarded per-item loop
// only when a fault hook demands per-item OnItem calls.
// BenchmarkSearchContextOverhead in bench_test.go holds the first two
// paths within 1% of a guard-free scan at d = 1.
func (n *Naive) scanRange(ctx context.Context, hook *faults.Hook, q []float64, lo, hi int, c *topk.Collector, stats *search.Stats) error {
	done := ctx.Done()
	switch {
	case hook == nil && done == nil:
		//fex:hot
		for i := lo; i < hi; i++ {
			c.Push(i, vec.Dot(q, n.items.Row(i)))
		}
	case hook == nil:
		for base := lo; base < hi; base += search.CheckStride {
			if err := search.Poll(ctx, nil, base-lo); err != nil {
				stats.Scanned += base - lo
				stats.FullProducts += base - lo
				return err
			}
			end := base + search.CheckStride
			if end > hi {
				end = hi
			}
			//fex:hot
			for i := base; i < end; i++ {
				c.Push(i, vec.Dot(q, n.items.Row(i)))
			}
		}
	default:
		//fex:hot
		for i := lo; i < hi; i++ {
			if err := search.Poll(ctx, hook, i-lo); err != nil {
				stats.Scanned += i - lo
				stats.FullProducts += i - lo
				return err
			}
			c.Push(i, vec.Dot(q, n.items.Row(i)))
		}
	}
	stats.Scanned += hi - lo
	stats.FullProducts += hi - lo
	return nil
}

// Stats implements search.Searcher.
func (n *Naive) Stats() search.Stats { return n.stats }

var _ search.ContextSearcher = (*Naive)(nil)
