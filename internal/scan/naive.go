// Package scan implements the sequential-scan retrieval baselines of
// Section 2.2: the Naive full scan, the Cauchy–Schwarz sorted scan SS
// with incremental pruning (Algorithms 1 and 2), and SS-L, the LEMP-style
// single-query variant operating on normalized vectors.
package scan

import (
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// Naive scans every item and computes every inner product, tracking the
// top-k with a bounded heap — the paper's Naive baseline and the ground
// truth for all exactness tests.
type Naive struct {
	items *vec.Matrix
	stats search.Stats
}

// NewNaive indexes the item matrix (rows are item vectors). The matrix is
// used as-is and must not be mutated afterwards.
func NewNaive(items *vec.Matrix) *Naive {
	return &Naive{items: items}
}

// Search implements search.Searcher.
func (n *Naive) Search(q []float64, k int) []topk.Result {
	n.stats = search.Stats{}
	c := topk.New(k)
	for i := 0; i < n.items.Rows; i++ {
		c.Push(i, vec.Dot(q, n.items.Row(i)))
	}
	n.stats.Scanned = n.items.Rows
	n.stats.FullProducts = n.items.Rows
	return c.Results()
}

// Stats implements search.Searcher.
func (n *Naive) Stats() search.Stats { return n.stats }

var _ search.Searcher = (*Naive)(nil)
