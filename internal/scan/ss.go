package scan

import (
	"context"
	"fmt"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// SS is the basic optimized sequential scan of Algorithm 1: items sorted
// by decreasing length, Cauchy–Schwarz early termination, and incremental
// pruning (Algorithm 2) at a fixed checking dimension w.
type SS struct {
	items     *vec.Matrix // rows sorted by decreasing norm
	perm      []int       // perm[row] = original item ID
	norms     []float64   // ‖p‖ per sorted row
	tailNorms []float64   // ‖p^h‖ (coordinates w..d) per sorted row
	w         int
	hook      *faults.Hook
	stats     search.Stats
}

// NewSS indexes items (rows are item vectors; the matrix is copied so the
// caller's data is never reordered). w is the checking dimension for
// incremental pruning; w ≤ 0 selects the default d/5 (clamped to [1,d-1]),
// and w ≥ d disables incremental pruning.
func NewSS(items *vec.Matrix, w int) *SS {
	m := items.Clone()
	perm := m.SortRowsByNormDesc()
	d := m.Cols
	if w <= 0 {
		w = clampW(d/5, d)
	}
	if w > d {
		w = d
	}
	s := &SS{items: m, perm: perm, w: w, norms: m.RowNorms()}
	s.tailNorms = make([]float64, m.Rows)
	for i := range s.tailNorms {
		s.tailNorms[i] = vec.NormRange(m.Row(i), w, d)
	}
	return s
}

func clampW(w, d int) int {
	if w < 1 {
		w = 1
	}
	if w >= d {
		w = d - 1
	}
	if w < 1 { // d == 1: no room for a residual; disable pruning
		w = d
	}
	return w
}

// W returns the checking dimension in use.
func (s *SS) W() int { return s.w }

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook called once per scanned item.
func (s *SS) SetFaultHook(h *faults.Hook) { s.hook = h }

// Search implements search.Searcher.
func (s *SS) Search(q []float64, k int) []topk.Result {
	res, _ := s.SearchContext(context.Background(), q, k)
	return res
}

// SearchContext implements search.ContextSearcher: the scan polls ctx
// every search.CheckStride items and returns the best-so-far partial
// top-k with an ErrDeadline-wrapping error on cancellation.
func (s *SS) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	if len(q) != s.items.Cols {
		panic(fmt.Sprintf("scan: query dim %d != item dim %d", len(q), s.items.Cols))
	}
	s.stats = search.Stats{}
	c := topk.New(k)
	qNorm := vec.Norm(q)
	qTail := vec.NormRange(q, s.w, len(q))
	done := ctx.Done()
	hook := s.hook

	for i := 0; i < s.items.Rows; i++ {
		if hook != nil || (done != nil && i&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, i); err != nil {
				return c.Results(), err
			}
		}
		t := c.Threshold()
		if qNorm*s.norms[i] <= t {
			// Everything after i has a smaller length: terminate.
			s.stats.PrunedByLength += s.items.Rows - i
			break
		}
		s.stats.Scanned++
		row := s.items.Row(i)
		v := s.coordinateScan(q, row, qTail, s.tailNorms[i], t)
		if v > t {
			c.Push(s.perm[i], v)
		}
	}
	return c.Results(), nil
}

// coordinateScan is Algorithm 2: accumulate the first w products, attempt
// the Eq. 1 bound, then finish the product only if the bound fails.
func (s *SS) coordinateScan(q, p []float64, qTail, pTail, t float64) float64 {
	d := len(q)
	if s.w >= d {
		s.stats.FullProducts++
		return vec.Dot(q, p)
	}
	v := vec.DotRange(q, p, 0, s.w)
	if v+qTail*pTail <= t {
		s.stats.PrunedByIncremental++
		return negInf
	}
	s.stats.FullProducts++
	return v + vec.DotRange(q, p, s.w, d)
}

// Stats implements search.Searcher.
func (s *SS) Stats() search.Stats { return s.stats }

var _ search.ContextSearcher = (*SS)(nil)

const negInf = -1.7976931348623157e308 // ≈ -math.MaxFloat64; sentinel for "pruned"
