package scan

import (
	"context"
	"fmt"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// SS is the basic optimized sequential scan of Algorithm 1: items sorted
// by decreasing length, Cauchy–Schwarz early termination, and incremental
// pruning (Algorithm 2) at a fixed checking dimension w.
type SS struct {
	items     *vec.Matrix // rows sorted by decreasing norm
	perm      []int       // perm[row] = original item ID
	norms     []float64   // ‖p‖ per sorted row
	tailNorms []float64   // ‖p^h‖ (coordinates w..d) per sorted row
	w         int
	hook      *faults.Hook
	stats     search.Stats
}

// NewSS indexes items (rows are item vectors; the matrix is copied so the
// caller's data is never reordered). w is the checking dimension for
// incremental pruning; w ≤ 0 selects the default d/5 (clamped to [1,d-1]),
// and w ≥ d disables incremental pruning.
func NewSS(items *vec.Matrix, w int) *SS {
	m := items.Clone()
	perm := m.SortRowsByNormDesc()
	d := m.Cols
	if w <= 0 {
		w = clampW(d/5, d)
	}
	if w > d {
		w = d
	}
	s := &SS{items: m, perm: perm, w: w, norms: m.RowNorms()}
	s.tailNorms = make([]float64, m.Rows)
	for i := range s.tailNorms {
		s.tailNorms[i] = vec.NormRange(m.Row(i), w, d)
	}
	return s
}

func clampW(w, d int) int {
	if w < 1 {
		w = 1
	}
	if w >= d {
		w = d - 1
	}
	if w < 1 { // d == 1: no room for a residual; disable pruning
		w = d
	}
	return w
}

// W returns the checking dimension in use.
func (s *SS) W() int { return s.w }

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook called once per scanned item.
func (s *SS) SetFaultHook(h *faults.Hook) { s.hook = h }

// Search implements search.Searcher.
func (s *SS) Search(q []float64, k int) []topk.Result {
	res, _ := s.SearchContext(context.Background(), q, k)
	return res
}

// ssQuery is the per-query state shared read-only across shard scans.
type ssQuery struct {
	q     []float64
	qNorm float64
	qTail float64
}

func (s *SS) prepareQuery(q []float64) *ssQuery {
	if len(q) != s.items.Cols {
		panic(fmt.Sprintf("scan: query dim %d != item dim %d", len(q), s.items.Cols))
	}
	return &ssQuery{q: q, qNorm: vec.Norm(q), qTail: vec.NormRange(q, s.w, len(q))}
}

// SearchContext implements search.ContextSearcher: the scan polls ctx
// every search.CheckStride items and returns the best-so-far partial
// top-k with an ErrDeadline-wrapping error on cancellation.
func (s *SS) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	qs := s.prepareQuery(q)
	s.stats = search.Stats{}
	c := topk.New(k)
	if err := s.scanRange(ctx, s.hook, qs, 0, s.items.Rows, c, nil, &s.stats); err != nil {
		return c.Results(), err
	}
	return c.Results(), nil
}

// scanRange is Algorithm 1 over the sorted rows [lo, hi): Cauchy–
// Schwarz early termination (valid within any contiguous sub-range of
// the sorted order) plus the Algorithm 2 coordinate scan. Pruning is
// STRICT (a candidate is discarded only when its bound is strictly
// below the effective threshold) and the effective threshold is the
// max of the local heap's and the cross-shard shared one, so the
// surviving candidate set is independent of how [0, n) is partitioned.
// ctx is polled at RANGE-LOCAL indices (i−lo).
func (s *SS) scanRange(ctx context.Context, hook *faults.Hook, qs *ssQuery, lo, hi int, c *topk.Collector, shared *search.SharedThreshold, stats *search.Stats) error {
	done := ctx.Done()
	//fex:hot
	for i := lo; i < hi; i++ {
		if hook != nil || (done != nil && (i-lo)&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, i-lo); err != nil {
				return err
			}
		}
		t := shared.Floor(c.Threshold())
		lenBound := qs.qNorm * s.norms[i] //fex:bound
		if lenBound < t {
			// Everything after i has a smaller length: terminate this range.
			stats.PrunedByLength += hi - i
			return nil
		}
		stats.Scanned++
		row := s.items.Row(i)
		v, ok := s.coordinateScan(qs, row, s.tailNorms[i], t, stats)
		if ok {
			if c.Push(s.perm[i], v) && c.Len() == c.K() {
				shared.Publish(c.Threshold())
			}
		}
	}
	return nil
}

// coordinateScan is Algorithm 2: accumulate the first w products, attempt
// the Eq. 1 bound, then finish the product only if the bound fails. It
// returns the exact product and true, or (0, false) when pruned.
func (s *SS) coordinateScan(qs *ssQuery, p []float64, pTail, t float64, stats *search.Stats) (float64, bool) {
	q := qs.q
	d := len(q)
	if s.w >= d {
		stats.FullProducts++
		return vec.Dot(q, p), true
	}
	v := vec.DotRange(q, p, 0, s.w)
	ub := v + qs.qTail*pTail //fex:bound
	if ub < t {
		stats.PrunedByIncremental++
		return 0, false
	}
	stats.FullProducts++
	return v + vec.DotRange(q, p, s.w, d), true
}

// Stats implements search.Searcher.
func (s *SS) Stats() search.Stats { return s.stats }

var _ search.ContextSearcher = (*SS)(nil)
