package scan

import (
	"context"
	"fmt"
	"math"

	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// SSL is SS-L: the sequential scan with the LEMP optimizations that are
// effective for single-query top-k retrieval (Section 7.1). Inner
// products are computed over NORMALIZED vectors against the cosine
// threshold t/(‖q‖·‖p‖), with a coordinate-based check (LEMP-C style, on
// the query's dominant coordinate) before the incremental-pruning check
// (LEMP-I, Eq. 1 on unit vectors). The checking dimension w is tuned on
// sample queries, as LEMP does in its preprocessing phase.
type SSL struct {
	unit      *vec.Matrix // normalized item vectors, sorted by original norm desc
	perm      []int
	norms     []float64 // original ‖p‖ per sorted row
	tailNorms []float64 // ‖p'^h‖ on the unit vectors, coordinates w..d
	w         int
	hook      *faults.Hook
	stats     search.Stats
}

// SSLOptions configures SS-L construction.
type SSLOptions struct {
	// W fixes the checking dimension; ≤ 0 means tune (or default).
	W int
	// SampleQueries, when non-nil, drives LEMP-style w tuning: each
	// candidate w is evaluated on the samples and the cheapest wins.
	SampleQueries *vec.Matrix
	// SampleK is the k used while tuning (default 10).
	SampleK int
}

// NewSSL indexes items (rows are item vectors; copied, caller data kept
// intact).
func NewSSL(items *vec.Matrix, opts SSLOptions) *SSL {
	m := items.Clone()
	perm := m.SortRowsByNormDesc()
	d := m.Cols
	norms := m.RowNorms()
	unit := m
	for i := 0; i < unit.Rows; i++ {
		if norms[i] > 0 {
			vec.Scale(unit.Row(i), 1/norms[i])
		}
	}
	s := &SSL{unit: unit, perm: perm, norms: norms}

	switch {
	case opts.W > 0:
		s.setW(min(opts.W, d))
	case opts.SampleQueries != nil && d > 1:
		s.tuneW(opts.SampleQueries, opts.SampleK)
	default:
		s.setW(clampW(d/5, d))
	}
	return s
}

func (s *SSL) setW(w int) {
	d := s.unit.Cols
	s.w = w
	s.tailNorms = make([]float64, s.unit.Rows)
	for i := range s.tailNorms {
		s.tailNorms[i] = vec.NormRange(s.unit.Row(i), w, d)
	}
}

// tuneW evaluates candidate checking dimensions on the sample queries and
// keeps the one with the lowest modeled scan cost (dimensions touched).
func (s *SSL) tuneW(samples *vec.Matrix, k int) {
	if k <= 0 {
		k = 10
	}
	d := s.unit.Cols
	candidates := []int{}
	for _, frac := range []int{10, 5, 3, 2} {
		w := clampW(d/frac, d)
		if len(candidates) == 0 || candidates[len(candidates)-1] != w {
			candidates = append(candidates, w)
		}
	}
	bestW, bestCost := candidates[0], math.Inf(1)
	for _, w := range candidates {
		s.setW(w)
		var cost float64
		for i := 0; i < samples.Rows; i++ {
			s.Search(samples.Row(i), k)
			st := s.stats
			cost += float64(st.Scanned*w + st.FullProducts*(d-w))
		}
		if cost < bestCost {
			bestCost, bestW = cost, w
		}
	}
	s.setW(bestW)
}

// W returns the checking dimension in use.
func (s *SSL) W() int { return s.w }

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook called once per scanned item.
func (s *SSL) SetFaultHook(h *faults.Hook) { s.hook = h }

// Search implements search.Searcher.
func (s *SSL) Search(q []float64, k int) []topk.Result {
	res, _ := s.SearchContext(context.Background(), q, k)
	return res
}

// sslQuery is the per-query state shared read-only across shard scans.
type sslQuery struct {
	qNorm float64
	qUnit []float64
	qTail float64
	focus int
	qf    float64
	qRest float64
}

func (s *SSL) prepareQuery(q []float64) *sslQuery {
	d := s.unit.Cols
	if len(q) != d {
		panic(fmt.Sprintf("scan: query dim %d != item dim %d", len(q), d))
	}
	qs := &sslQuery{qNorm: vec.Norm(q)}
	if qs.qNorm == 0 {
		return qs
	}
	qs.qUnit = vec.Scaled(q, 1/qs.qNorm)
	qs.qTail = vec.NormRange(qs.qUnit, s.w, d)

	// Focus coordinate: the query's largest-magnitude unit coordinate.
	for j := 1; j < d; j++ {
		if math.Abs(qs.qUnit[j]) > math.Abs(qs.qUnit[qs.focus]) {
			qs.focus = j
		}
	}
	qs.qf = qs.qUnit[qs.focus]
	qs.qRest = math.Sqrt(math.Max(0, 1-qs.qf*qs.qf))
	return qs
}

// SearchContext implements search.ContextSearcher: the scan polls ctx
// every search.CheckStride items and returns the best-so-far partial
// top-k with an ErrDeadline-wrapping error on cancellation.
func (s *SSL) SearchContext(ctx context.Context, q []float64, k int) ([]topk.Result, error) {
	qs := s.prepareQuery(q)
	s.stats = search.Stats{}
	c := topk.New(k)
	if err := s.scanRange(ctx, s.hook, qs, 0, s.unit.Rows, c, nil, &s.stats); err != nil {
		return c.Results(), err
	}
	return c.Results(), nil
}

// scanRange is the SS-L scan over the sorted rows [lo, hi). Pruning is
// STRICT against the max of the local and cross-shard thresholds, so
// the surviving candidate set is independent of how [0, n) is
// partitioned; ctx is polled at RANGE-LOCAL indices (i−lo).
func (s *SSL) scanRange(ctx context.Context, hook *faults.Hook, qs *sslQuery, lo, hi int, c *topk.Collector, shared *search.SharedThreshold, stats *search.Stats) error {
	d := s.unit.Cols
	if qs.qNorm == 0 {
		// Zero query: all inner products are zero; every row ties.
		// Offer the WHOLE range so the canonical collector retains the
		// same k IDs no matter how rows are split across shards.
		done := ctx.Done()
		for i := lo; i < hi; i++ {
			if hook != nil || (done != nil && (i-lo)&search.StrideMask == 0) {
				if err := search.Poll(ctx, hook, i-lo); err != nil {
					return err
				}
			}
			c.Push(s.perm[i], 0)
		}
		return nil
	}
	done := ctx.Done()
	//fex:hot
	for i := lo; i < hi; i++ {
		if hook != nil || (done != nil && (i-lo)&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, i-lo); err != nil {
				return err
			}
		}
		t := shared.Floor(c.Threshold())
		lenBound := qs.qNorm * s.norms[i] //fex:bound
		if lenBound < t {
			stats.PrunedByLength += hi - i
			return nil
		}
		stats.Scanned++
		row := s.unit.Row(i)
		// Cosine threshold: p can be discarded only if cos(q,p) is
		// strictly below t / (‖q‖‖p‖).
		theta := math.Inf(-1)
		if !math.IsInf(t, -1) {
			theta = t / lenBound
		}

		// Coordinate-based check on the focus coordinate.
		pf := row[qs.focus]
		if qs.qf*pf+qs.qRest*math.Sqrt(math.Max(0, 1-pf*pf)) < theta {
			stats.PrunedByIncremental++
			continue
		}

		// Incremental pruning on the unit vectors.
		var cos float64
		if s.w < d {
			cos = vec.DotRange(qs.qUnit, row, 0, s.w)
			if cos+qs.qTail*s.tailNorms[i] < theta {
				stats.PrunedByIncremental++
				continue
			}
			cos += vec.DotRange(qs.qUnit, row, s.w, d)
		} else {
			cos = vec.Dot(qs.qUnit, row)
		}
		stats.FullProducts++
		v := cos * lenBound
		if c.Push(s.perm[i], v) && c.Len() == c.K() {
			shared.Publish(c.Threshold())
		}
	}
	return nil
}

// Stats implements search.Searcher.
func (s *SSL) Stats() search.Stats { return s.stats }

var _ search.ContextSearcher = (*SSL)(nil)
