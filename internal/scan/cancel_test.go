package scan_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"fexipro/internal/faults"
	"fexipro/internal/scan"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestNaiveCancellation(t *testing.T) {
	searchtest.CheckCancellation(t, func(items *vec.Matrix) searchtest.FaultSearcher {
		return scan.NewNaive(items)
	}, "Naive")
}

func TestSSCancellation(t *testing.T) {
	searchtest.CheckCancellation(t, func(items *vec.Matrix) searchtest.FaultSearcher {
		return scan.NewSS(items, 0)
	}, "SS")
}

func TestSSLCancellation(t *testing.T) {
	searchtest.CheckCancellation(t, func(items *vec.Matrix) searchtest.FaultSearcher {
		return scan.NewSSL(items, scan.SSLOptions{})
	}, "SS-L")
}

// TestDeadlineAcceptance is the PR's acceptance criterion: a query with
// a 1 ms deadline against a 100k-item index comes back well under 10 ms
// with partial results and an ErrDeadline-wrapping error — even when an
// injected fault makes the scan pathologically slow. The injected 2 ms
// stall at item 0 guarantees the deadline has expired by the very first
// context poll, so the scan gives up after O(1) work.
func TestDeadlineAcceptance(t *testing.T) {
	const n, d = 100_000, 16
	rng := rand.New(rand.NewSource(7))
	items := vec.NewMatrix(n, d)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	s := scan.NewNaive(items)
	reg := faults.NewRegistry(7)
	// Sleep 2 ms at item 0 only: the 1 ms deadline is stale before the
	// first poll completes.
	s.SetFaultHook(reg.Enable(faults.SiteScan, faults.Plan{
		ItemLatency:      2 * time.Millisecond,
		ItemLatencyEvery: 1 << 30,
	}))
	defer s.SetFaultHook(nil)

	// Wall-clock assertions flake on loaded machines; accept the fastest
	// of a few attempts but require correct semantics on every attempt.
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		start := time.Now()
		res, err := s.SearchContext(ctx, q, 10)
		took := time.Since(start)
		cancel()
		if !errors.Is(err, search.ErrDeadline) {
			t.Fatalf("attempt %d: err = %v, want ErrDeadline", attempt, err)
		}
		if len(res) >= 10 && s.Stats().Scanned >= n {
			t.Fatalf("attempt %d: scan ran to completion despite 1ms deadline", attempt)
		}
		if took < best {
			best = took
		}
	}
	if best >= 10*time.Millisecond {
		t.Fatalf("best-of-5 deadline return took %v, want < 10ms", best)
	}
}

// TestDeadlineUnexpiredIsExact is the control: the same index with no
// deadline pressure completes and returns a nil (exact) error.
func TestDeadlineUnexpiredIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := vec.NewMatrix(5000, 8)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	q := make([]float64, 8)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	s := scan.NewNaive(items)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := s.SearchContext(ctx, q, 10)
	if err != nil {
		t.Fatalf("unexpired deadline returned error %v", err)
	}
	searchtest.CheckTopK(t, items, q, 10, res, "Naive/deadline-unexpired")
}
