package scan_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/scan"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestNaiveExact(t *testing.T) {
	searchtest.CheckSearcher(t, func(items *vec.Matrix) search.Searcher {
		return scan.NewNaive(items)
	}, "naive")
}

func TestNaiveStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items, q := searchtest.RandomInstance(rng, 100, 8)
	n := scan.NewNaive(items)
	n.Search(q, 5)
	st := n.Stats()
	if st.Scanned != 100 || st.FullProducts != 100 {
		t.Fatalf("stats = %+v, want 100 scanned/full", st)
	}
}

func TestSSExact(t *testing.T) {
	searchtest.CheckSearcher(t, func(items *vec.Matrix) search.Searcher {
		return scan.NewSS(items, 0)
	}, "ss")
	searchtest.CheckSearcherEdgeCases(t, func(items *vec.Matrix) search.Searcher {
		return scan.NewSS(items, 0)
	}, "ss")
}

func TestSSExactVariousW(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items, _ := searchtest.RandomInstance(rng, 200, 16)
	for _, w := range []int{1, 4, 8, 15, 16, 100} {
		s := scan.NewSS(items, w)
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, 16)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			searchtest.CheckTopK(t, items, q, 10, s.Search(q, 10), "ss/w")
		}
	}
}

func TestSSPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items, q := searchtest.RandomInstance(rng, 2000, 16)
	s := scan.NewSS(items, 0)
	s.Search(q, 1)
	st := s.Stats()
	if st.PrunedByLength == 0 {
		t.Error("SS never used Cauchy–Schwarz termination on skewed data")
	}
	if st.FullProducts >= 2000 {
		t.Errorf("SS computed %d full products of %d items — no pruning at all", st.FullProducts, 2000)
	}
}

func TestSSLExact(t *testing.T) {
	searchtest.CheckSearcher(t, func(items *vec.Matrix) search.Searcher {
		return scan.NewSSL(items, scan.SSLOptions{})
	}, "ssl")
	searchtest.CheckSearcherEdgeCases(t, func(items *vec.Matrix) search.Searcher {
		return scan.NewSSL(items, scan.SSLOptions{})
	}, "ssl")
}

func TestSSLExactWithTuning(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items, _ := searchtest.RandomInstance(rng, 500, 24)
	samples := vec.NewMatrix(10, 24)
	for i := range samples.Data {
		samples.Data[i] = rng.NormFloat64()
	}
	s := scan.NewSSL(items, scan.SSLOptions{SampleQueries: samples})
	if s.W() < 1 || s.W() >= 24 {
		t.Fatalf("tuned w = %d out of range", s.W())
	}
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, 24)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		searchtest.CheckTopK(t, items, q, 5, s.Search(q, 5), "ssl/tuned")
	}
}

func TestSSLPrunesMoreThanNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items, q := searchtest.RandomInstance(rng, 3000, 16)
	s := scan.NewSSL(items, scan.SSLOptions{})
	s.Search(q, 1)
	if st := s.Stats(); st.FullProducts >= 3000 {
		t.Errorf("SSL computed %d/%d full products", st.FullProducts, 3000)
	}
}

func TestSearchPanicsOnDimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items, _ := searchtest.RandomInstance(rng, 10, 4)
	s := scan.NewSS(items, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Search([]float64{1}, 1)
}
