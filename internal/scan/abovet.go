package scan

import (
	"context"

	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// SearchAbove returns every item with qᵀp ≥ t by exhaustive scan — the
// ground truth for the above-t retrieval mode.
func (n *Naive) SearchAbove(q []float64, t float64) []topk.Result {
	res, _ := n.SearchAboveContext(context.Background(), q, t)
	return res
}

// SearchAboveContext behaves like SearchAbove but honours ctx: the scan
// polls cancellation every search.CheckStride items and returns the
// (sorted) qualifying items found so far with an ErrDeadline-wrapping
// error; on cancellation the set may be missing items, but every
// returned score is a true inner product.
func (n *Naive) SearchAboveContext(ctx context.Context, q []float64, t float64) ([]topk.Result, error) {
	n.stats = search.Stats{}
	done := ctx.Done()
	hook := n.hook
	var out []topk.Result
	for i := 0; i < n.items.Rows; i++ {
		if hook != nil || (done != nil && i&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, i); err != nil {
				n.stats.Scanned = i
				n.stats.FullProducts = i
				topk.SortResults(out)
				return out, err
			}
		}
		if v := vec.Dot(q, n.items.Row(i)); v >= t {
			out = append(out, topk.Result{ID: i, Score: v})
		}
	}
	n.stats.Scanned = n.items.Rows
	n.stats.FullProducts = n.items.Rows
	topk.SortResults(out)
	return out, nil
}
