package scan

import (
	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// SearchAbove returns every item with qᵀp ≥ t by exhaustive scan — the
// ground truth for the above-t retrieval mode.
func (n *Naive) SearchAbove(q []float64, t float64) []topk.Result {
	n.stats = search.Stats{}
	var out []topk.Result
	for i := 0; i < n.items.Rows; i++ {
		if v := vec.Dot(q, n.items.Row(i)); v >= t {
			out = append(out, topk.Result{ID: i, Score: v})
		}
	}
	n.stats.Scanned = n.items.Rows
	n.stats.FullProducts = n.items.Rows
	topk.SortResults(out)
	return out
}
