package scan_test

import (
	"testing"

	"fexipro/internal/engine"
	"fexipro/internal/scan"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func TestShardedNaiveBitExact(t *testing.T) {
	searchtest.CheckSharded(t, func(items *vec.Matrix, shards int) search.ContextSearcher {
		return engine.New(scan.NewNaiveKernel(scan.NewNaive(items), shards), 2)
	}, "naive")
}

func TestShardedSSBitExact(t *testing.T) {
	searchtest.CheckSharded(t, func(items *vec.Matrix, shards int) search.ContextSearcher {
		return engine.New(scan.NewSSKernel(scan.NewSS(items, 0), shards), 2)
	}, "ss")
}

func TestShardedSSLBitExact(t *testing.T) {
	searchtest.CheckSharded(t, func(items *vec.Matrix, shards int) search.ContextSearcher {
		return engine.New(scan.NewSSLKernel(scan.NewSSL(items, scan.SSLOptions{}), shards), 2)
	}, "ssl")
}

func TestShardedScanCancellation(t *testing.T) {
	t.Run("naive", func(t *testing.T) {
		searchtest.CheckShardedCancellation(t, func(items *vec.Matrix, shards int) searchtest.FaultSearcher {
			return engine.New(scan.NewNaiveKernel(scan.NewNaive(items), shards), 2)
		}, "naive")
	})
	t.Run("ss", func(t *testing.T) {
		searchtest.CheckShardedCancellation(t, func(items *vec.Matrix, shards int) searchtest.FaultSearcher {
			return engine.New(scan.NewSSKernel(scan.NewSS(items, 0), shards), 2)
		}, "ss")
	})
	t.Run("ssl", func(t *testing.T) {
		searchtest.CheckShardedCancellation(t, func(items *vec.Matrix, shards int) searchtest.FaultSearcher {
			return engine.New(scan.NewSSLKernel(scan.NewSSL(items, scan.SSLOptions{}), shards), 2)
		}, "ssl")
	})
}
