package scan

import (
	"context"

	"fexipro/internal/engine"
	"fexipro/internal/faults"
	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// This file adapts the sequential-scan baselines to engine.Kernel: each
// kernel wraps one globally-built searcher and partitions its
// (norm-sorted, where applicable) rows into contiguous ranges. The
// index build — sort order, checking dimension, tail norms, tuning —
// happens once over the full matrix, so per-item arithmetic is
// bit-identical regardless of shard count.

// NaiveKernel shards the Naive full scan.
type NaiveKernel struct {
	n    *Naive
	part engine.Partition
}

// NewNaiveKernel partitions n's rows into (at most) shards contiguous
// ranges.
func NewNaiveKernel(n *Naive, shards int) *NaiveKernel {
	return &NaiveKernel{n: n, part: engine.NewPartition(n.items.Rows, shards)}
}

// Shards implements engine.Kernel.
func (k *NaiveKernel) Shards() int { return k.part.Shards() }

// Prepare implements engine.Kernel. Naive needs no derived query state.
func (k *NaiveKernel) Prepare(q []float64) any {
	if len(q) != k.n.items.Cols {
		panic("scan: query dim != item dim")
	}
	return q
}

// Scan implements engine.Kernel. Naive never prunes, so the shared
// threshold is unused.
func (k *NaiveKernel) Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error) {
	lo, hi := k.part.Range(shard)
	var st search.Stats
	err := k.n.scanRange(ctx, hook, pq.([]float64), lo, hi, c, &st)
	return st, err
}

// SSKernel shards the SS sorted scan: each shard owns a contiguous
// sub-range of the norm-sorted rows, so its Cauchy–Schwarz early
// termination stays valid within the shard.
type SSKernel struct {
	s    *SS
	part engine.Partition
}

// NewSSKernel partitions s's sorted rows into (at most) shards
// contiguous ranges.
func NewSSKernel(s *SS, shards int) *SSKernel {
	return &SSKernel{s: s, part: engine.NewPartition(s.items.Rows, shards)}
}

// Shards implements engine.Kernel.
func (k *SSKernel) Shards() int { return k.part.Shards() }

// Prepare implements engine.Kernel.
func (k *SSKernel) Prepare(q []float64) any { return k.s.prepareQuery(q) }

// Scan implements engine.Kernel.
func (k *SSKernel) Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error) {
	lo, hi := k.part.Range(shard)
	var st search.Stats
	err := k.s.scanRange(ctx, hook, pq.(*ssQuery), lo, hi, c, shared, &st)
	return st, err
}

// SSLKernel shards the SS-L normalized scan the same way.
type SSLKernel struct {
	s    *SSL
	part engine.Partition
}

// NewSSLKernel partitions s's sorted rows into (at most) shards
// contiguous ranges.
func NewSSLKernel(s *SSL, shards int) *SSLKernel {
	return &SSLKernel{s: s, part: engine.NewPartition(s.unit.Rows, shards)}
}

// Shards implements engine.Kernel.
func (k *SSLKernel) Shards() int { return k.part.Shards() }

// Prepare implements engine.Kernel.
func (k *SSLKernel) Prepare(q []float64) any { return k.s.prepareQuery(q) }

// Scan implements engine.Kernel.
func (k *SSLKernel) Scan(ctx context.Context, pq any, shard int, c *topk.Collector, shared *search.SharedThreshold, hook *faults.Hook) (search.Stats, error) {
	lo, hi := k.part.Range(shard)
	var st search.Stats
	err := k.s.scanRange(ctx, hook, pq.(*sslQuery), lo, hi, c, shared, &st)
	return st, err
}

var (
	_ engine.Kernel = (*NaiveKernel)(nil)
	_ engine.Kernel = (*SSKernel)(nil)
	_ engine.Kernel = (*SSLKernel)(nil)
)
