package core_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fexipro/internal/core"
	"fexipro/internal/vec"
)

// integerUpperBound computes IU(q,p) of Theorem 2 directly from the
// definition: Σ(⌊q_s⌋·⌊p_s⌋ + |⌊q_s⌋| + |⌊p_s⌋| + 1).
func integerUpperBound(q, p []float64) float64 {
	var iu float64
	for s := range q {
		fq, fp := math.Floor(q[s]), math.Floor(p[s])
		iu += fq*fp + math.Abs(fq) + math.Abs(fp) + 1
	}
	return iu
}

// Theorem 2: IU(q,p) ≥ qᵀp for arbitrary real vectors.
func TestTheorem2IntegerBoundDominates(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		q, p := raw[:half], raw[half:2*half]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true
			}
		}
		return integerUpperBound(q, p) >= vec.Dot(q, p)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Theorem 5 (Appendix A): the scaled integer bound converges to the exact
// inner product as e → ∞, with error inversely proportional to e.
func TestIntegerBoundTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	d := 50
	q := make([]float64, d)
	p := make([]float64, d)
	for i := 0; i < d; i++ {
		q[i] = rng.NormFloat64() * 0.4
		p[i] = rng.NormFloat64() * 0.4
	}
	exact := vec.Dot(q, p)
	maxQ, maxP := vec.AbsMax(q), vec.AbsMax(p)

	prevErr := math.Inf(1)
	for _, e := range []float64{10, 100, 1000, 10000} {
		qs := vec.Scaled(q, e/maxQ)
		ps := vec.Scaled(p, e/maxP)
		bound := integerUpperBound(qs, ps) * maxQ * maxP / (e * e)
		if bound < exact-1e-9 {
			t.Fatalf("e=%v: bound %v below exact %v", e, bound, exact)
		}
		err := bound - exact
		if err > prevErr*0.5 {
			t.Fatalf("e=%v: error %v did not shrink enough from %v", e, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 0.01*(math.Abs(exact)+1) {
		t.Fatalf("error at e=10000 still %v", prevErr)
	}
}

// Theorem 4 + Lemma 1: the (d+2)-dimensional reduction preserves the
// inner-product ORDER, every reduced item coordinate is nonnegative, and
// the reduced product is an affine function of the original one.
func TestTheorem4OrderPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(12)
		n := 2 + rng.Intn(40)
		items := vec.NewMatrix(n, d)
		for i := range items.Data {
			items.Data[i] = rng.NormFloat64() * 2
		}
		q := make([]float64, d)
		for i := range q {
			q[i] = rng.NormFloat64() * 2
		}
		qn := vec.Norm(q)
		if qn == 0 {
			continue
		}

		// Build the reduction exactly as Section 5.2 specifies.
		pmin := vec.Min(items.Data)
		b := 0.0
		for i := 0; i < n; i++ {
			if nv := vec.Norm(items.Row(i)); nv > b {
				b = nv
			}
		}
		c := make([]float64, d)
		for s := range c {
			c[s] = math.Max(1, math.Abs(pmin)) + rng.Float64() // any c_s ≥ max(1,|p_min|)
		}

		reduce := func(p []float64) []float64 {
			acute := make([]float64, d+1)
			acute[0] = math.Sqrt(math.Max(0, b*b-vec.NormSquared(p)))
			for s := 0; s < d; s++ {
				acute[s+1] = p[s] + c[s]
			}
			hh := make([]float64, d+2)
			hh[0] = vec.NormSquared(acute)
			copy(hh[1:], acute)
			return hh
		}
		qAcute := make([]float64, d+1)
		for s := 0; s < d; s++ {
			qAcute[s+1] = q[s]/qn + c[s]
		}
		qhh := make([]float64, d+2)
		qhh[0] = -1
		for s := 0; s <= d; s++ {
			qhh[s+1] = 2 * qAcute[s]
		}

		type pair struct{ orig, red float64 }
		pairs := make([]pair, n)
		for i := 0; i < n; i++ {
			p := items.Row(i)
			hh := reduce(p)
			for s := 1; s < len(hh); s++ {
				if hh[s] < -1e-12 {
					t.Fatalf("reduced item coordinate %d negative: %v", s, hh[s])
				}
			}
			pairs[i] = pair{orig: vec.Dot(q, p), red: vec.Dot(qhh, hh)}
		}
		// Order preservation: strictly increasing map.
		for a := 0; a < n; a++ {
			for bb := 0; bb < n; bb++ {
				if pairs[a].orig > pairs[bb].orig+1e-9 && pairs[a].red <= pairs[bb].red-1e-9 {
					t.Fatalf("order violated: orig %v>%v but reduced %v<=%v",
						pairs[a].orig, pairs[bb].orig, pairs[a].red, pairs[bb].red)
				}
			}
		}
		// Affine relationship: red = (2/‖q‖)·orig + K_q.
		var sumCQ, sumC2 float64
		for s := 0; s < d; s++ {
			sumCQ += c[s] * q[s]
			sumC2 += c[s] * c[s]
		}
		kq := -b*b + sumC2 + 2*sumCQ/qn
		for _, pr := range pairs {
			want := 2*pr.orig/qn + kq
			if math.Abs(pr.red-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("affine map violated: reduced %v, want %v", pr.red, want)
			}
		}
	}
}

// The Eq. 6 partial integer bound must dominate the head inner product
// for every split w.
func TestEquation6PartialIntegerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 200; trial++ {
		d := 2 + rng.Intn(20)
		w := 1 + rng.Intn(d-1)
		q := make([]float64, d)
		p := make([]float64, d)
		for i := 0; i < d; i++ {
			q[i] = rng.NormFloat64() * 3
			p[i] = rng.NormFloat64() * 3
		}
		head := integerUpperBound(q[:w], p[:w])
		tail := vec.NormRange(q, w, d) * vec.NormRange(p, w, d)
		if vec.Dot(q, p) > head+tail+1e-9 {
			t.Fatalf("Eq.6 violated: exact %v > %v", vec.Dot(q, p), head+tail)
		}
	}
}

// PruneSlack=0 reproduces the paper's strict comparisons and must still
// be exact on generic (non-adversarial) data.
func TestStrictComparisonsStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	items := vec.NewMatrix(500, 16)
	for i := range items.Data {
		items.Data[i] = rng.NormFloat64()
	}
	idx, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true, PruneSlack: -1})
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRetriever(idx)
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, 16)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		got := r.Search(q, 5)
		if len(got) != 5 {
			t.Fatalf("got %d results", len(got))
		}
	}
}
