package core_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/scan"
	"fexipro/internal/searchtest"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// liveReference mirrors the dynamic index with a plain slice + naive scan.
type liveReference struct {
	items [][]float64
	dead  map[int]bool
}

func (lr *liveReference) topK(q []float64, k int) []topk.Result {
	rows := [][]float64{}
	ids := []int{}
	for id, it := range lr.items {
		if !lr.dead[id] {
			rows = append(rows, it)
			ids = append(ids, id)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	res := scan.NewNaive(vec.FromRows(rows)).Search(q, k)
	out := make([]topk.Result, len(res))
	for i, r := range res {
		out[i] = topk.Result{ID: ids[r.ID], Score: r.Score}
	}
	return out
}

func TestDynamicIndexRandomizedOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	d := 12
	initial := vec.NewMatrix(100, d)
	for i := range initial.Data {
		initial.Data[i] = rng.NormFloat64()
	}
	di, err := core.NewDynamicIndex(initial, core.Options{SVD: true, Int: true, Reduction: true}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ref := &liveReference{dead: map[int]bool{}}
	for i := 0; i < 100; i++ {
		ref.items = append(ref.items, vec.Clone(initial.Row(i)))
	}

	liveIDs := func() []int {
		var out []int
		for id := range ref.items {
			if !ref.dead[id] {
				out = append(out, id)
			}
		}
		return out
	}

	for step := 0; step < 300; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // add
			item := make([]float64, d)
			for j := range item {
				item[j] = rng.NormFloat64()
			}
			id, err := di.Add(item)
			if err != nil {
				t.Fatal(err)
			}
			if id != len(ref.items) {
				t.Fatalf("step %d: id %d, want %d", step, id, len(ref.items))
			}
			ref.items = append(ref.items, vec.Clone(item))
		case op < 6: // delete a random live item
			live := liveIDs()
			if len(live) <= 5 {
				continue
			}
			id := live[rng.Intn(len(live))]
			if err := di.Delete(id); err != nil {
				t.Fatal(err)
			}
			ref.dead[id] = true
		default: // query
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			k := 1 + rng.Intn(8)
			got := di.Search(q, k)
			want := ref.topK(q, k)
			if len(got) != len(want) {
				t.Fatalf("step %d: got %d results, want %d", step, len(got), len(want))
			}
			for i := range want {
				if diff := got[i].Score - want[i].Score; diff > 1e-7 || diff < -1e-7 {
					t.Fatalf("step %d rank %d: %v vs %v", step, i, got[i], want[i])
				}
				if ref.dead[got[i].ID] {
					t.Fatalf("step %d: returned deleted item %d", step, got[i].ID)
				}
			}
		}
	}
	if di.Len() != len(liveIDs()) {
		t.Fatalf("Len = %d, want %d", di.Len(), len(liveIDs()))
	}
}

func TestDynamicIndexStartsEmpty(t *testing.T) {
	di, err := core.NewDynamicIndex(vec.NewMatrix(0, 4), core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{1, 0, 0, 0}
	if got := di.Search(q, 3); len(got) != 0 {
		t.Fatalf("empty index returned %v", got)
	}
	id, err := di.Add([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	got := di.Search(q, 3)
	if len(got) != 1 || got[0].ID != id {
		t.Fatalf("got %v", got)
	}
}

func TestDynamicIndexErrors(t *testing.T) {
	if _, err := core.NewDynamicIndex(vec.NewMatrix(0, 0), core.Options{}, 0); err == nil {
		t.Fatal("expected error for zero dim")
	}
	di, err := core.NewDynamicIndex(vec.NewMatrix(3, 2), core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := di.Add([]float64{1}); err == nil {
		t.Fatal("expected dim error")
	}
	if err := di.Delete(99); err == nil {
		t.Fatal("expected unknown-id error")
	}
	if err := di.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := di.Delete(0); err == nil {
		t.Fatal("expected double-delete error")
	}
}

func TestDynamicIndexDeleteEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	items, q := searchtest.RandomInstance(rng, 20, 5)
	di, err := core.NewDynamicIndex(items, core.Options{SVD: true}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 20; id++ {
		if err := di.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if di.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", di.Len())
	}
	if got := di.Search(q, 5); len(got) != 0 {
		t.Fatalf("search over empty catalog returned %v", got)
	}
}
