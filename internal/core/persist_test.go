package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/searchtest"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	items, _ := searchtest.RandomInstance(rng, 400, 16)
	for _, opts := range []core.Options{
		{},
		{SVD: true},
		{Int: true},
		{SVD: true, Int: true, Reduction: true},
		{SVD: true, Int: true, Reduction: true, CompactInts: true},
		{SVD: true, Int: true, Reduction: true, Unsorted: true, GlobalIntScaling: true, ReductionFirst: true},
	} {
		orig, err := core.NewIndex(items, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		loaded, err := core.ReadIndex(&buf)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if loaded.W() != orig.W() || loaded.Len() != orig.Len() || loaded.Dim() != orig.Dim() {
			t.Fatalf("loaded shape mismatch: %d/%d/%d vs %d/%d/%d",
				loaded.W(), loaded.Len(), loaded.Dim(), orig.W(), orig.Len(), orig.Dim())
		}

		ro, rl := core.NewRetriever(orig), core.NewRetriever(loaded)
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, 16)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			a := ro.Search(q, 5)
			b := rl.Search(q, 5)
			if len(a) != len(b) {
				t.Fatalf("result count mismatch after load")
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("rank %d: %v vs %v after load", i, a[i], b[i])
				}
			}
			if ro.Stats() != rl.Stats() {
				t.Fatalf("pruning stats diverged after load: %+v vs %+v", ro.Stats(), rl.Stats())
			}
			searchtest.CheckTopK(t, items, q, 5, b, "loaded-index")
		}
	}
}

func TestReadIndexRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	items, _ := searchtest.RandomInstance(rng, 50, 8)
	idx, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte("NOPE"), full[4:]...)
	if _, err := core.ReadIndex(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected magic error")
	}
	// Truncations at various points must error, never panic.
	for _, cut := range []int{3, 10, 50, len(full) / 2, len(full) - 3} {
		if _, err := core.ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Random corruption in the header region.
	for i := 0; i < 30; i++ {
		c := append([]byte(nil), full...)
		pos := 4 + rng.Intn(200)
		c[pos] ^= 0xFF
		// May legitimately still parse (flipping a float bit), but must
		// never panic; the error itself is irrelevant.
		_, _ = core.ReadIndex(bytes.NewReader(c))
	}
}
