package core_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// TestDynamicShardedMatchesReference drives a sharded dynamic index
// through a randomized add/delete/query workload and checks every query
// against a naive live-catalog reference. Per-shard preprocessing means
// scores match to tolerance (each shard has its own SVD), not bitwise.
func TestDynamicShardedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	d := 10
	initial := vec.NewMatrix(80, d)
	for i := range initial.Data {
		initial.Data[i] = rng.NormFloat64()
	}
	di, err := core.NewDynamicIndexSharded(initial, core.Options{SVD: true, Int: true, Reduction: true}, 0.25, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if di.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", di.Shards())
	}
	ref := &liveReference{dead: map[int]bool{}}
	for i := 0; i < 80; i++ {
		ref.items = append(ref.items, vec.Clone(initial.Row(i)))
	}

	for step := 0; step < 250; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // add
			item := make([]float64, d)
			for j := range item {
				item[j] = rng.NormFloat64()
			}
			id, err := di.Add(item)
			if err != nil {
				t.Fatal(err)
			}
			if id != len(ref.items) {
				t.Fatalf("step %d: id %d, want %d", step, id, len(ref.items))
			}
			ref.items = append(ref.items, vec.Clone(item))
		case op < 6: // delete a random live item
			var live []int
			for id := range ref.items {
				if !ref.dead[id] {
					live = append(live, id)
				}
			}
			if len(live) <= 5 {
				continue
			}
			id := live[rng.Intn(len(live))]
			if err := di.Delete(id); err != nil {
				t.Fatal(err)
			}
			ref.dead[id] = true
		default: // query
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			k := 1 + rng.Intn(8)
			got := di.Search(q, k)
			want := ref.topK(q, k)
			if len(got) != len(want) {
				t.Fatalf("step %d: got %d results, want %d", step, len(got), len(want))
			}
			for i := range want {
				if diff := got[i].Score - want[i].Score; diff > searchtest.Tolerance || diff < -searchtest.Tolerance {
					t.Fatalf("step %d rank %d: %v vs %v", step, i, got[i], want[i])
				}
				if ref.dead[got[i].ID] {
					t.Fatalf("step %d: returned deleted item %d", step, got[i].ID)
				}
			}
		}
	}
}

// TestDynamicShardedRebuildIsolation pins the ~S× amortized rebuild
// saving: every rebuild triggered by an Add or Delete touches ONLY the
// shard owning the mutated ID (id mod S), never its siblings.
func TestDynamicShardedRebuildIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	const S, d = 4, 6
	initial := vec.NewMatrix(120, d)
	for i := range initial.Data {
		initial.Data[i] = rng.NormFloat64()
	}
	di, err := core.NewDynamicIndexSharded(initial, core.Options{SVD: true}, 0.1, S, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := di.Rebuilds()
	for s, c := range start {
		if c != 1 {
			t.Fatalf("shard %d built %d times at init, want 1", s, c)
		}
	}

	rebuildEvents := 0
	mutate := func(id int, f func() error) {
		t.Helper()
		before := di.Rebuilds()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		after := di.Rebuilds()
		for s := 0; s < S; s++ {
			diff := after[s] - before[s]
			if diff < 0 || diff > 1 {
				t.Fatalf("shard %d rebuild count moved by %d in one update", s, diff)
			}
			if diff == 1 {
				rebuildEvents++
				if s != id%S {
					t.Fatalf("update to id %d (shard %d) rebuilt shard %d", id, id%S, s)
				}
			}
		}
	}

	nextID := 120
	dead := map[int]bool{}
	for step := 0; step < 200; step++ {
		if step%3 == 0 {
			// Delete a deterministically chosen live ID.
			id := (step * 7) % nextID
			if dead[id] {
				continue
			}
			dead[id] = true
			mutate(id, func() error { return di.Delete(id) })
			continue
		}
		item := make([]float64, d)
		for j := range item {
			item[j] = rng.NormFloat64()
		}
		id := nextID
		mutate(id, func() error {
			got, err := di.Add(item)
			if err == nil && got != id {
				t.Fatalf("Add returned id %d, want %d", got, id)
			}
			return err
		})
		nextID++
	}
	if rebuildEvents == 0 {
		t.Fatal("workload never triggered a rebuild; the isolation property was not exercised")
	}
}

// TestDynamicStatsPerQuery pins the documented Stats() contract:
// counters cover only the most recent query (same semantics as
// Retriever.Stats()), resetting at every Search* call rather than
// accumulating.
func TestDynamicStatsPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(20260810))
	items, q := searchtest.RandomInstance(rng, 150, 8)
	for _, cfg := range []struct {
		name    string
		shards  int
		workers int
	}{{"monolithic", 1, 1}, {"sharded", 3, 1}} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			di, err := core.NewDynamicIndexSharded(items, core.Options{SVD: true, Int: true}, 0.25, cfg.shards, cfg.workers)
			if err != nil {
				t.Fatal(err)
			}
			di.Search(q, 5)
			first := di.Stats()
			if first.Scanned == 0 && first.PrunedByLength == 0 {
				t.Fatal("first query recorded no work")
			}
			// A different query in between must not leak into the repeat.
			q2 := make([]float64, len(q))
			for j := range q2 {
				q2[j] = rng.NormFloat64()
			}
			di.Search(q2, 9)
			di.Search(q, 5)
			if di.Stats() != first {
				t.Fatalf("Stats() accumulated across queries: first %+v, repeat %+v", first, di.Stats())
			}
		})
	}
}

// TestDynamicShardedCancellation runs the cancellation property suite
// against the sharded dynamic index for every harness shard count.
func TestDynamicShardedCancellation(t *testing.T) {
	searchtest.CheckShardedCancellation(t, func(items *vec.Matrix, shards int) searchtest.FaultSearcher {
		di, err := core.NewDynamicIndexSharded(items, mustOptions(t, "F-SIR"), 0.25, shards, 2)
		if err != nil {
			t.Fatalf("NewDynamicIndexSharded: %v", err)
		}
		return di
	}, "dynamic")
}
