package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"fexipro/internal/search"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// BatchTopK answers the top-k lists for every query row against one
// shared index — the "unified framework for both single and batch
// retrieval" the paper sketches as future work (Section 9). It applies
// LEMP's two batch-side optimizations that are compatible with the
// FEXIPRO cascade:
//
//   - queries are processed in decreasing norm order, which keeps the
//     per-query scan prefixes aligned with the norm-sorted items for
//     cache locality, and
//   - queries are sharded across workers, each with its own Retriever
//     over the shared immutable index.
//
// Results are returned in input order. workers ≤ 0 uses one worker.
func BatchTopK(idx *Index, queries *vec.Matrix, k, workers int) ([][]topk.Result, error) {
	return BatchTopKContext(context.Background(), idx, queries, k, workers)
}

// BatchTopKContext behaves like BatchTopK but honours ctx: on
// cancellation it stops promptly and returns the per-query lists
// completed so far (unprocessed slots stay nil; the query cut short
// keeps its best-so-far partial) together with an ErrDeadline-wrapping
// error. A nil error flags every list as exact.
func BatchTopKContext(ctx context.Context, idx *Index, queries *vec.Matrix, k, workers int) ([][]topk.Result, error) {
	if queries.Cols != idx.d {
		return nil, fmt.Errorf("core: query dim %d != item dim %d", queries.Cols, idx.d)
	}
	if workers <= 0 {
		workers = 1
	}
	order := make([]int, queries.Rows)
	for i := range order {
		order[i] = i
	}
	norms := queries.RowNorms()
	sort.Slice(order, func(a, b int) bool { return norms[order[a]] > norms[order[b]] })

	out := make([][]topk.Result, queries.Rows)
	if workers == 1 || queries.Rows <= 1 {
		r := NewRetriever(idx)
		for _, qi := range order {
			res, err := r.SearchContext(ctx, queries.Row(qi), k)
			out[qi] = res
			if err != nil {
				return out, search.Canceled(err)
			}
		}
		return out, nil
	}

	var wg sync.WaitGroup
	chunk := (len(order) + workers - 1) / workers
	errs := make([]error, (len(order)+chunk-1)/chunk)
	ci := 0
	for lo := 0; lo < len(order); lo += chunk {
		hi := lo + chunk
		if hi > len(order) {
			hi = len(order)
		}
		wg.Add(1)
		go func(part []int, slot *error) {
			defer wg.Done()
			r := NewRetriever(idx)
			for _, qi := range part {
				res, err := r.SearchContext(ctx, queries.Row(qi), k)
				out[qi] = res
				if err != nil {
					*slot = err
					return
				}
			}
		}(order[lo:hi], &errs[ci])
		ci++
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, search.Canceled(err) // first chunk's error: deterministic
		}
	}
	return out, nil
}
