package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/data"
	"fexipro/internal/snap"
)

// Golden fixtures pin the on-disk fexsnap/v1 format: the committed
// bytes were written by the Save code of the commit that introduced
// them, so any later encoding change — field order, widths, section
// layout — fails these tests instead of silently orphaning every
// snapshot in production. Regenerate (after a DELIBERATE format bump)
// with:
//
//	UPDATE_SNAP_GOLDEN=1 go test ./internal/core/ -run TestWriteGoldenSnapshots
const (
	goldenSnapFile    = "fexsnap_v1_movielens.snap"
	goldenUnknownFile = "fexsnap_v1_unknown_section.snap"
)

// goldenIndex builds the fixture index: a seeded 200×16 MovieLens-like
// item set through the full FEXIPRO pipeline (SVD + integer +
// reduction), so every optional section appears in the container.
func goldenIndex(t testing.TB) (*core.Index, *data.Dataset) {
	t.Helper()
	ds := data.Generate(data.MovieLens(), 200, 8, 16)
	idx, err := core.NewIndex(ds.Items, core.Options{SVD: true, Int: true, Reduction: true})
	if err != nil {
		t.Fatal(err)
	}
	return idx, ds
}

// TestWriteGoldenSnapshots regenerates the committed fixtures. Gated on
// UPDATE_SNAP_GOLDEN so a normal test run never rewrites what it is
// supposed to verify.
func TestWriteGoldenSnapshots(t *testing.T) {
	if os.Getenv("UPDATE_SNAP_GOLDEN") == "" {
		t.Skip("set UPDATE_SNAP_GOLDEN=1 to regenerate golden snapshots")
	}
	idx, _ := goldenIndex(t)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", goldenSnapFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// The forward-compat fixture is the same index with an extra section
	// a newer writer might add: readers must checksum and skip it.
	f, err := snap.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b snap.Builder
	for i, s := range f.Sections {
		b.Raw(s.Tag, s.Payload)
		if i == 0 {
			b.Raw("zz.v2ext", []byte("payload from a future format revision"))
		}
	}
	var fut bytes.Buffer
	if err := b.Flush(&fut); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", goldenUnknownFile), fut.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenSnapshotBitIdentical loads the committed fixture and
// requires (a) today's Save to reproduce its bytes exactly — format
// stability AND build determinism — and (b) the loaded index to answer
// the dataset's own queries bit-identically to a freshly built one,
// stage counters included.
func TestGoldenSnapshotBitIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", goldenSnapFile))
	if err != nil {
		t.Fatal(err)
	}
	fresh, ds := goldenIndex(t)

	var resaved bytes.Buffer
	if err := fresh.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), want) {
		t.Fatalf("Save produced %d bytes that differ from the %d-byte golden fixture: the fexsnap/v1 encoding changed (if deliberate, bump the format and regenerate with UPDATE_SNAP_GOLDEN=1)",
			resaved.Len(), len(want))
	}

	loaded, err := core.ReadIndex(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("loading golden fixture: %v", err)
	}
	assertGoldenEquivalent(t, fresh, loaded, ds)
}

// TestGoldenUnknownSectionForwardCompat: a fixture containing a section
// tag no current reader knows must still load (the unknown payload is
// checksummed and skipped) and answer identically — old binaries can
// read files written by newer ones.
func TestGoldenUnknownSectionForwardCompat(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", goldenUnknownFile))
	if err != nil {
		t.Fatal(err)
	}
	f, err := snap.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parsing unknown-section fixture: %v", err)
	}
	if _, ok := f.Section("zz.v2ext"); !ok {
		t.Fatal("fixture lost its unknown section: it no longer tests forward compatibility")
	}
	loaded, err := core.ReadIndex(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("loading fixture with unknown section: %v", err)
	}
	fresh, ds := goldenIndex(t)
	assertGoldenEquivalent(t, fresh, loaded, ds)
}

func assertGoldenEquivalent(t *testing.T, fresh, loaded *core.Index, ds *data.Dataset) {
	t.Helper()
	rf, rl := core.NewRetriever(fresh), core.NewRetriever(loaded)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		q := ds.Queries.Row(qi)
		want := rf.Search(q, 10)
		got := rl.Search(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: loaded returned %d results, fresh %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: loaded %+v, fresh %+v", qi, i, got[i], want[i])
			}
		}
		if rf.Stats() != rl.Stats() {
			t.Fatalf("query %d: stage counters diverged: fresh %+v, loaded %+v", qi, rf.Stats(), rl.Stats())
		}
	}
}
