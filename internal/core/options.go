// Package core implements the FEXIPRO framework (Sections 3–6 of the
// paper): preprocessing (Algorithm 3), retrieval (Algorithm 4), and the
// staged coordinate scan (Algorithm 5) combining the SVD transformation
// (S), scaled integer upper bounds (I), and the monotonicity reduction
// (R) on top of a Cauchy–Schwarz sorted sequential scan.
package core

import "fmt"

// Options selects the FEXIPRO variant and its parameters.
type Options struct {
	// SVD enables the lossless SVD transformation of Section 3 ("S").
	SVD bool
	// Int enables the scaled integer upper bound of Section 4 ("I").
	Int bool
	// Reduction enables the monotonicity reduction of Section 5 ("R").
	// The paper's workflow applies it after SVD (the SIR order); it can
	// be enabled without SVD but is not expected to help there.
	Reduction bool

	// Rho is the singular-value mass ratio that selects the checking
	// dimension w (Section 3). Default 0.7 — the paper's best setting.
	Rho float64
	// E is the integer scaling parameter e of Section 4.2. Default 100.
	E float64
	// W overrides the checking dimension; ≤ 0 derives it from Rho (with
	// SVD) or uses d/5 (without).
	W int
	// PruneSlack is the relative safety margin added to every pruning
	// comparison so float64 rounding can never discard a true top-k item
	// (the transformations are lossless in real arithmetic only).
	// Default 1e-9; set negative to force exactly the paper's strict
	// comparisons.
	PruneSlack float64
	// RankTol is the relative threshold under which singular values are
	// treated as zero. Default 1e-12.
	RankTol float64

	// Ablation switches (all default false = the paper's configuration).
	// They quantify the value of individual design choices; see
	// ablation_bench_test.go at the repository root.

	// GlobalIntScaling scales integer approximations with one maximum
	// over all dimensions (Equation 4) instead of separate head/tail
	// maxima (Equation 7). The paper argues Eq. 7 is tighter after the
	// SVD transformation skews the value ranges.
	GlobalIntScaling bool
	// ReductionFirst attempts the monotonicity-reduction bound BEFORE
	// the integer bounds in the coordinate scan — the SRI order the
	// paper found inferior to SIR.
	ReductionFirst bool
	// Unsorted scans items in their original order, disabling the
	// early-termination break (the length test still prunes items
	// individually). Quantifies the value of the norm sort.
	Unsorted bool

	// CompactInts stores the integer approximations as int16 instead of
	// int32 — the "small integer types" direction of the paper's
	// future-work discussion: with e = 100 the floors fit comfortably,
	// halving the integer data footprint and improving cache residency.
	// Ignored (with int32 fallback) when E > 16000 would overflow int16.
	CompactInts bool
}

func (o Options) withDefaults() Options {
	if o.Rho <= 0 || o.Rho > 1 {
		o.Rho = 0.7
	}
	if o.E <= 0 {
		o.E = 100
	}
	if o.PruneSlack == 0 {
		o.PruneSlack = 1e-9
	}
	if o.PruneSlack < 0 {
		o.PruneSlack = 0
	}
	if o.RankTol <= 0 {
		o.RankTol = 1e-12
	}
	return o
}

// Variant returns the paper's name for the enabled technique set:
// F-S, F-I, F-SI, F-SR, F-SIR, or F (bare sorted scan with incremental
// pruning).
func (o Options) Variant() string {
	s := "F"
	if o.SVD || o.Int || o.Reduction {
		s += "-"
	}
	if o.SVD {
		s += "S"
	}
	if o.Int {
		s += "I"
	}
	if o.Reduction {
		s += "R"
	}
	return s
}

// OptionsForVariant parses a paper variant name ("F-S", "F-I", "F-SI",
// "F-SR", "F-SIR", case-insensitive, with or without the "F-" prefix)
// into Options with default parameters.
func OptionsForVariant(name string) (Options, error) {
	var o Options
	suffix := name
	if suffix == "F" || suffix == "f" {
		return o, nil
	}
	if len(suffix) >= 2 && (suffix[0] == 'F' || suffix[0] == 'f') && suffix[1] == '-' {
		suffix = suffix[2:]
	}
	for _, ch := range suffix {
		switch ch {
		case 'S', 's':
			o.SVD = true
		case 'I', 'i':
			o.Int = true
		case 'R', 'r':
			o.Reduction = true
		default:
			return Options{}, fmt.Errorf("core: unknown variant %q", name)
		}
	}
	return o, nil
}
