package core

import (
	"context"
	"fmt"

	"fexipro/internal/search"
	"fexipro/internal/topk"
)

// SearchAbove returns every item whose inner product with q is at least
// t, sorted by descending score — the paper's "above-t" problem (its
// Section 9 future work; the original LEMP task). The whole pruning
// cascade applies unchanged because the threshold is constant: the
// sorted scan stops at the first item with ‖q‖·‖p‖ < t, and
// per-candidate bounds below t discard candidates without full products.
func (r *Retriever) SearchAbove(q []float64, t float64) []topk.Result {
	res, _ := r.SearchAboveContext(context.Background(), q, t)
	return res
}

// SearchAboveContext behaves like SearchAbove but honours ctx: the scan
// polls ctx every search.CheckStride items and returns the sorted
// best-so-far partial result with an ErrDeadline-wrapping error on
// cancellation.
func (r *Retriever) SearchAboveContext(ctx context.Context, q []float64, t float64) ([]topk.Result, error) {
	idx := r.idx
	if len(q) != idx.d {
		panic(fmt.Sprintf("core: query dim %d != item dim %d", len(q), idx.d))
	}
	r.stats = search.Stats{}
	idx.prepareQuery(q, r.qs)
	qs := r.qs
	slack := idx.opts.PruneSlack
	done := ctx.Done()
	hook := r.hook

	var out []topk.Result
	for i := 0; i < idx.n; i++ {
		if hook != nil || (done != nil && i&search.StrideMask == 0) {
			if err := search.Poll(ctx, hook, i); err != nil {
				topk.SortResults(out)
				return out, err
			}
		}
		if qs.qNorm*idx.norms[i] < t {
			if !idx.opts.Unsorted {
				r.stats.PrunedByLength += idx.n - i
				break
			}
			r.stats.PrunedByLength++
			continue
		}
		r.stats.Scanned++
		// The cascade prunes only when a bound drops BELOW t (strictly,
		// minus the safety margin), so items with qᵀp == t survive.
		v, ok := idx.coordinateScan(i, qs, t, slack, &r.stats)
		if ok && v >= t {
			out = append(out, topk.Result{ID: idx.perm[i], Score: v})
		}
	}
	topk.SortResults(out)
	return out, nil
}
