package core_test

import (
	"math/rand"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// allVariants covers every technique combination the paper evaluates,
// plus the bare framework.
var allVariants = []string{"F", "F-S", "F-I", "F-SI", "F-SR", "F-SIR", "F-R", "F-IR"}

func buildVariant(t testing.TB, items *vec.Matrix, variant string) *core.Retriever {
	opts, err := core.OptionsForVariant(variant)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.NewIndex(items, opts)
	if err != nil {
		t.Fatalf("%s: %v", variant, err)
	}
	return core.NewRetriever(idx)
}

func TestAllVariantsExact(t *testing.T) {
	for _, variant := range allVariants {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			searchtest.CheckSearcher(t, func(items *vec.Matrix) search.Searcher {
				return buildVariant(t, items, variant)
			}, variant)
		})
	}
}

func TestAllVariantsEdgeCases(t *testing.T) {
	for _, variant := range allVariants {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			searchtest.CheckSearcherEdgeCases(t, func(items *vec.Matrix) search.Searcher {
				return buildVariant(t, items, variant)
			}, variant)
		})
	}
}

// Exactness must hold across the ρ and e parameter grids the paper sweeps
// (Figures 10 and 11).
func TestExactAcrossParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	items, _ := searchtest.RandomInstance(rng, 400, 30)
	queries := make([][]float64, 5)
	for i := range queries {
		q := make([]float64, 30)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
	}
	for _, rho := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		for _, e := range []float64{10, 100, 1000} {
			idx, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true, Rho: rho, E: e})
			if err != nil {
				t.Fatal(err)
			}
			r := core.NewRetriever(idx)
			for _, q := range queries {
				searchtest.CheckTopK(t, items, q, 10, r.Search(q, 10), "param-grid")
			}
		}
	}
}

func TestExactAcrossW(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	items, _ := searchtest.RandomInstance(rng, 300, 20)
	for _, w := range []int{1, 2, 5, 10, 19, 20, 50} {
		idx, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true, W: w})
		if err != nil {
			t.Fatal(err)
		}
		r := core.NewRetriever(idx)
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, 20)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			searchtest.CheckTopK(t, items, q, 5, r.Search(q, 5), "w-grid")
		}
	}
}

func TestVariantParsing(t *testing.T) {
	cases := map[string]core.Options{
		"F-S":   {SVD: true},
		"F-I":   {Int: true},
		"F-SI":  {SVD: true, Int: true},
		"F-SR":  {SVD: true, Reduction: true},
		"F-SIR": {SVD: true, Int: true, Reduction: true},
		"sir":   {SVD: true, Int: true, Reduction: true},
	}
	for name, want := range cases {
		got, err := core.OptionsForVariant(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.SVD != want.SVD || got.Int != want.Int || got.Reduction != want.Reduction {
			t.Fatalf("%s parsed to %+v", name, got)
		}
	}
	if _, err := core.OptionsForVariant("F-X"); err == nil {
		t.Fatal("expected error for unknown variant")
	}
	if got := (core.Options{SVD: true, Int: true, Reduction: true}).Variant(); got != "F-SIR" {
		t.Fatalf("Variant() = %q", got)
	}
	if got := (core.Options{}).Variant(); got != "F" {
		t.Fatalf("Variant() = %q", got)
	}
}

func TestNewIndexRejectsEmpty(t *testing.T) {
	if _, err := core.NewIndex(vec.NewMatrix(0, 5), core.Options{}); err == nil {
		t.Fatal("expected error for zero items")
	}
	if _, err := core.NewIndex(vec.NewMatrix(5, 0), core.Options{}); err == nil {
		t.Fatal("expected error for zero dims")
	}
}

func TestSearchZeroK(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	items, q := searchtest.RandomInstance(rng, 20, 4)
	r := buildVariant(t, items, "F-SIR")
	if got := r.Search(q, 0); len(got) != 0 {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestWSelectionFromRho(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Strongly decaying spectrum: w should be much smaller than d.
	d := 40
	items := vec.NewMatrix(600, d)
	for i := 0; i < 600; i++ {
		for j := 0; j < d; j++ {
			items.Set(i, j, rng.NormFloat64()*pow(0.75, j))
		}
	}
	idx, err := core.NewIndex(items, core.Options{SVD: true, Rho: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if idx.W() < 1 || idx.W() > d/2 {
		t.Fatalf("w = %d for a sharply decaying spectrum (d=%d)", idx.W(), d)
	}
	// Flat spectrum: w should approach ρ·d.
	flat := vec.NewMatrix(600, d)
	for i := range flat.Data {
		flat.Data[i] = rng.NormFloat64()
	}
	idxFlat, err := core.NewIndex(flat, core.Options{SVD: true, Rho: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if idxFlat.W() < d/2 {
		t.Fatalf("flat spectrum w = %d, expected near %0.0f", idxFlat.W(), 0.7*float64(d))
	}
}

func pow(b float64, e int) float64 {
	out := 1.0
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// The pruning cascade must actually fire: on skewed data F-SIR should
// compute far fewer full products than items scanned by Naive, and each
// added technique must not increase the full-product count.
func TestPruningPowerOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	items, _ := searchtest.RandomInstance(rng, 5000, 32)
	queries := make([][]float64, 20)
	for i := range queries {
		q := make([]float64, 32)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
	}

	full := map[string]int{}
	for _, variant := range []string{"F-S", "F-SI", "F-SIR"} {
		r := buildVariant(t, items, variant)
		total := 0
		for _, q := range queries {
			r.Search(q, 1)
			total += r.Stats().FullProducts
		}
		full[variant] = total
	}
	if full["F-S"] >= 5000*len(queries) {
		t.Errorf("F-S pruned nothing: %d full products", full["F-S"])
	}
	if full["F-SI"] > full["F-S"] {
		t.Errorf("F-SI full products (%d) exceed F-S (%d)", full["F-SI"], full["F-S"])
	}
	if full["F-SIR"] > full["F-SI"] {
		t.Errorf("F-SIR full products (%d) exceed F-SI (%d)", full["F-SIR"], full["F-SI"])
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	items, q := searchtest.RandomInstance(rng, 1000, 16)
	r := buildVariant(t, items, "F-SIR")
	r.Search(q, 3)
	st := r.Stats()
	accounted := st.Scanned + st.PrunedByLength
	if accounted != 1000 {
		t.Fatalf("scanned(%d) + length-pruned(%d) = %d, want 1000", st.Scanned, st.PrunedByLength, accounted)
	}
	inner := st.PrunedByIntHead + st.PrunedByIntFull + st.PrunedByIncremental + st.PrunedByMonotone + st.FullProducts
	if inner != st.Scanned {
		t.Fatalf("per-candidate outcomes %d != scanned %d (%+v)", inner, st.Scanned, st)
	}
}

// Concurrent retrievers over one shared index must be race-free and
// return identical results (run with -race).
func TestConcurrentRetrievers(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	items, _ := searchtest.RandomInstance(rng, 500, 16)
	idx, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true})
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, 16)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	want := core.NewRetriever(idx).Search(q, 5)

	done := make(chan []int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			r := core.NewRetriever(idx)
			ids := []int{}
			for rep := 0; rep < 50; rep++ {
				for _, res := range r.Search(q, 5) {
					ids = append(ids, res.ID)
				}
			}
			done <- ids
		}()
	}
	for g := 0; g < 8; g++ {
		ids := <-done
		for i := 0; i < 5; i++ {
			if ids[i] != want[i].ID {
				t.Fatalf("goroutine result mismatch: %v vs %v", ids[:5], want)
			}
		}
	}
}
