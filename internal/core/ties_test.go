package core_test

import (
	"math"
	"math/rand"
	"testing"

	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

// nearTieInstance builds an adversarial matrix where a block of items
// all score within ±eps of each other exactly at the k boundary: a base
// direction is duplicated with tiny orthogonal-ish perturbations, so the
// k-th and (k+1)-th scores are separated by far less than typical
// pruning-bound slack. Exactness bugs that round near-tied bounds the
// wrong way surface here and nowhere else.
func nearTieInstance(rng *rand.Rand, n, d, tieBlock int, eps float64) (*vec.Matrix, []float64) {
	items := vec.NewMatrix(n, d)
	base := make([]float64, d)
	for j := range base {
		base[j] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		row := items.Row(i)
		if i < tieBlock {
			// Near-tied block: base vector plus an eps-scale perturbation.
			for j := range row {
				row[j] = base[j] + eps*rng.NormFloat64()
			}
		} else {
			// Background items with strictly lower expected scores.
			for j := range row {
				row[j] = 0.25 * rng.NormFloat64()
			}
		}
	}
	q := make([]float64, d)
	for j := range q {
		// Query aligned with the base direction so the tie block crowds
		// the top of the ranking.
		q[j] = base[j] + 0.1*rng.NormFloat64()
	}
	return items, q
}

// TestNearTiesAtKBoundary sweeps tie tightness from "barely separated"
// down to float-noise scale, with k landing inside the tied block, for
// every variant.
func TestNearTiesAtKBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for _, eps := range []float64{1e-3, 1e-6, 1e-9, 1e-12} {
		items, q := nearTieInstance(rng, 300, 12, 20, eps)
		for _, variant := range allVariants {
			r := buildVariant(t, items, variant)
			for _, k := range []int{5, 10, 19, 20, 21, 40} {
				got := r.Search(q, k)
				searchtest.CheckTopK(t, items, q, k, got, variant+"/ties")
			}
		}
	}
}

// TestSearchDeterministic pins run-to-run determinism: the same index
// answering the same query twice returns identical results, byte for
// byte. Pruning order and heap tie-breaks must not depend on hidden
// state.
func TestSearchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	items, q := nearTieInstance(rng, 250, 10, 15, 1e-9)
	for _, variant := range allVariants {
		r := buildVariant(t, items, variant)
		a := r.Search(q, 12)
		b := r.Search(q, 12)
		if len(a) != len(b) {
			t.Fatalf("%s: result counts differ %d != %d", variant, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: rank %d differs between runs: %+v != %+v", variant, i, a[i], b[i])
			}
		}
	}
}

// TestQueryScaleMetamorphic is a metamorphic exactness property: scaling
// the query by a positive constant scales every score by that constant
// and must not change the identity ordering outside near-tied groups.
// CheckTopK validates the scaled run against Naive on the scaled query,
// and here we additionally tie the two runs to each other.
func TestQueryScaleMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	items, q := searchtest.RandomInstance(rng, 400, 16)
	const k = 10
	for _, variant := range allVariants {
		r := buildVariant(t, items, variant)
		base := r.Search(q, k)
		for _, c := range []float64{0.001, 3.5, 1e4} {
			scaled := make([]float64, len(q))
			for j := range q {
				scaled[j] = c * q[j]
			}
			got := r.Search(scaled, k)
			searchtest.CheckTopK(t, items, scaled, k, got, variant+"/scaled")
			for i := range got {
				want := c * base[i].Score
				if math.Abs(got[i].Score-want) > searchtest.Tolerance*(1+math.Abs(want)) {
					t.Fatalf("%s: scale %v rank %d score %v, want %v", variant, c, i, got[i].Score, want)
				}
			}
		}
	}
}
