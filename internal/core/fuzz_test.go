package core_test

import (
	"encoding/binary"
	"math"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/scan"
	"fexipro/internal/vec"
)

// floatsFromBytes decodes the fuzzer's byte soup into bounded floats.
func floatsFromBytes(data []byte, max int) []float64 {
	var out []float64
	for len(data) >= 8 && len(out) < max {
		bits := binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		// Clamp to a sane dynamic range; the algorithms assume finite
		// well-scaled factors (MF output is in [-1,1]-ish ranges).
		if v > 1e6 {
			v = 1e6
		}
		if v < -1e6 {
			v = -1e6
		}
		out = append(out, v)
	}
	return out
}

// FuzzSearchMatchesNaive feeds arbitrary small item matrices and queries
// through the full F-SIR cascade and cross-checks the naive scan.
func FuzzSearchMatchesNaive(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(3), uint8(2))
	f.Add(make([]byte, 256), uint8(4), uint8(1))
	seed := make([]byte, 800)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed, uint8(5), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, dRaw, kRaw uint8) {
		d := int(dRaw%8) + 1
		k := int(kRaw%5) + 1
		vals := floatsFromBytes(data, 200)
		n := len(vals) / (d + 1) // reserve one query vector
		if n < 1 {
			return
		}
		items := vec.NewMatrix(n, d)
		copy(items.Data, vals[:n*d])
		q := make([]float64, d)
		copy(q, vals[n*d:])

		idx, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true})
		if err != nil {
			t.Fatal(err)
		}
		got := core.NewRetriever(idx).Search(q, k)
		want := scan.NewNaive(items).Search(q, k)
		if len(got) != len(want) {
			t.Fatalf("got %d results, want %d (n=%d d=%d k=%d)", len(got), len(want), n, d, k)
		}
		// The SVD transform is lossless in real arithmetic; in float64
		// its absolute error scales with the COMPUTATION magnitude
		// (‖items‖·‖q‖·d), not with the possibly tiny score itself.
		scale := vec.AbsMax(items.Data) * vec.AbsMax(q) * float64(d)
		tol := 1e-9 * (1 + scale)
		for i := range want {
			diff := math.Abs(got[i].Score - want[i].Score)
			if diff > tol+1e-6*math.Abs(want[i].Score) {
				t.Fatalf("rank %d: score %v, want %v (tol %v)", i, got[i].Score, want[i].Score, tol)
			}
		}
	})
}

// FuzzIntegerBound checks Theorem 2 on arbitrary finite vectors.
func FuzzIntegerBound(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add([]byte{255, 127, 0, 1, 128, 64, 32, 16, 8, 4, 2, 1, 99, 98, 97, 96})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := floatsFromBytes(data, 64)
		if len(vals) < 2 {
			return
		}
		half := len(vals) / 2
		q, p := vals[:half], vals[half:2*half]
		var iu, dot float64
		for s := range q {
			fq, fp := math.Floor(q[s]), math.Floor(p[s])
			iu += fq*fp + math.Abs(fq) + math.Abs(fp) + 1
			dot += q[s] * p[s]
		}
		if dot > iu+1e-6*(1+math.Abs(iu)) {
			t.Fatalf("integer bound violated: dot %v > IU %v", dot, iu)
		}
	})
}
