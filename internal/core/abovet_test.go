package core_test

import (
	"math"
	"math/rand"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/scan"
	"fexipro/internal/searchtest"
)

func TestSearchAboveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, variant := range []string{"F", "F-S", "F-SI", "F-SIR"} {
		items, _ := searchtest.RandomInstance(rng, 800, 16)
		r := buildVariant(t, items, variant)
		naive := scan.NewNaive(items)
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, 16)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			// Pick thresholds spanning empty to large result sets. Nudge
			// each threshold just below a score boundary: a threshold
			// EXACTLY equal to some qᵀp is ill-posed under float64 (the
			// summation order perturbs the last bits), for this engine
			// and for any other.
			naiveAll := naive.Search(q, 800)
			for _, pick := range []int{0, 5, 50, 400} {
				thr := naiveAll[pick].Score - 1e-9*(1+math.Abs(naiveAll[pick].Score))
				got := r.SearchAbove(q, thr)
				want := naive.SearchAbove(q, thr)
				if len(got) != len(want) {
					t.Fatalf("%s t=%v: got %d results, want %d", variant, thr, len(got), len(want))
				}
				for i := range want {
					if math.Abs(got[i].Score-want[i].Score) > 1e-7*(1+math.Abs(want[i].Score)) {
						t.Fatalf("%s t=%v rank %d: %v vs %v", variant, thr, i, got[i], want[i])
					}
					if got[i].Score < thr-1e-9 {
						t.Fatalf("%s: returned item below threshold: %v < %v", variant, got[i].Score, thr)
					}
				}
			}
		}
	}
}

func TestSearchAboveHighThresholdEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	items, q := searchtest.RandomInstance(rng, 200, 8)
	r := buildVariant(t, items, "F-SIR")
	if got := r.SearchAbove(q, 1e18); len(got) != 0 {
		t.Fatalf("expected empty result, got %d", len(got))
	}
	st := r.Stats()
	if st.Scanned != 0 {
		t.Fatalf("high threshold should terminate immediately, scanned %d", st.Scanned)
	}
}

func TestSearchAboveMinusInfReturnsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	items, q := searchtest.RandomInstance(rng, 150, 6)
	r := buildVariant(t, items, "F-SIR")
	got := r.SearchAbove(q, math.Inf(-1))
	if len(got) != 150 {
		t.Fatalf("got %d results, want 150", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("results not sorted descending")
		}
	}
}

func TestSearchAbovePrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	items, q := searchtest.RandomInstance(rng, 5000, 16)
	r := buildVariant(t, items, "F-SIR")
	top := r.Search(q, 10)
	r.SearchAbove(q, top[9].Score)
	st := r.Stats()
	if st.FullProducts >= 5000 {
		t.Fatalf("above-t computed all %d products", st.FullProducts)
	}
}

func TestSearchAboveWithExplicitOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	items, q := searchtest.RandomInstance(rng, 300, 10)
	idx, err := core.NewIndex(items, core.Options{SVD: true, Int: true, Reduction: true, W: 3, E: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRetriever(idx)
	naive := scan.NewNaive(items)
	got := r.SearchAbove(q, 0)
	want := naive.SearchAbove(q, 0)
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}
