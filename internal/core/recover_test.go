package core_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/faults"
	"fexipro/internal/snap"
	"fexipro/internal/topk"
	"fexipro/internal/vec"
)

// The crash-recovery battery (ISSUE 8): a data directory must recover a
// prefix-consistent, bit-identical state from a WAL cut at EVERY byte
// offset, and detect (never absorb) a flipped bit — the "exact after a
// crash at any byte" claim of DESIGN.md §15, tested literally.

// mutation is one scripted DynamicIndex update.
type mutation struct {
	del bool
	id  int       // delete target
	vec []float64 // add payload
}

// recoverFixture is a seeded instance: initial catalog, a mutation
// script, probe queries, and reference states at every prefix length.
type recoverFixture struct {
	initial *vec.Matrix
	opts    core.Options
	muts    []mutation
	queries [][]float64
}

func newRecoverFixture(t *testing.T) *recoverFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(20260808))
	const d, n = 5, 20
	fx := &recoverFixture{
		initial: vec.NewMatrix(n, d),
		opts:    core.Options{SVD: true, Int: true, Reduction: true},
	}
	for i := range fx.initial.Data {
		fx.initial.Data[i] = rng.NormFloat64()
	}
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	next := n
	for m := 0; m < 18; m++ {
		if m%3 == 2 && len(live) > 4 {
			pick := rng.Intn(len(live))
			fx.muts = append(fx.muts, mutation{del: true, id: live[pick]})
			live = append(live[:pick], live[pick+1:]...)
			continue
		}
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		fx.muts = append(fx.muts, mutation{vec: v})
		live = append(live, next)
		next++
	}
	for q := 0; q < 3; q++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		fx.queries = append(fx.queries, v)
	}
	return fx
}

// build returns a fresh index with the first n mutations applied — the
// in-memory reference the recovered state must match bit-for-bit.
func (fx *recoverFixture) build(t *testing.T, n int) *core.DynamicIndex {
	t.Helper()
	di, err := core.NewDynamicIndexSharded(fx.initial, fx.opts, 0.25, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := fx.apply(di, fx.muts[i]); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	return di
}

func (fx *recoverFixture) apply(di *core.DynamicIndex, m mutation) error {
	if m.del {
		return di.Delete(m.id)
	}
	_, err := di.Add(m.vec)
	return err
}

// assertSameResults compares two indexes bit-for-bit on the fixture's
// probe queries plus catalog shape.
func (fx *recoverFixture) assertSameResults(t *testing.T, label string, got, want *core.DynamicIndex) {
	t.Helper()
	if got.Len() != want.Len() || got.NextID() != want.NextID() {
		t.Fatalf("%s: catalog shape %d/%d, want %d/%d", label, got.Len(), got.NextID(), want.Len(), want.NextID())
	}
	for qi, q := range fx.queries {
		gres := got.Search(q, 5)
		gst := got.Stats()
		wres := want.Search(q, 5)
		wst := want.Stats()
		topk.SortResults(gres)
		topk.SortResults(wres)
		if !reflect.DeepEqual(gres, wres) {
			t.Fatalf("%s: query %d results differ:\n got %v\nwant %v", label, qi, gres, wres)
		}
		if gst != wst {
			t.Fatalf("%s: query %d stats differ: got %+v want %+v", label, qi, gst, wst)
		}
	}
}

// writeDataDir materializes a data directory: the checkpoint at prefix
// length checkpointAt, and the given WAL bytes.
func writeDataDir(t *testing.T, di *core.DynamicIndex, lastSeq uint64, wal []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := core.WriteSnapshotDir(dir, di, lastSeq); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, core.WALFile), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// buildWAL logs muts[from:] into a fresh WAL file starting after
// baseSeq and returns the raw bytes.
func buildWAL(t *testing.T, fx *recoverFixture, from int, baseSeq uint64) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), core.WALFile)
	w, _, err := snap.OpenWAL(path, fx.initial.Cols, 1, baseSeq)
	if err != nil {
		t.Fatal(err)
	}
	// IDs for adds follow the catalog: initial rows, then one per add.
	nextID := fx.initial.Rows
	for i := 0; i < from; i++ {
		if !fx.muts[i].del {
			nextID++
		}
	}
	for _, m := range fx.muts[from:] {
		if m.del {
			if _, err := w.Append(snap.WALDelete, int64(m.id), nil); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := w.Append(snap.WALAdd, int64(nextID), m.vec); err != nil {
			t.Fatal(err)
		}
		nextID++
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func openRecovered(dir string) (*core.Recovered, error) {
	rec, err := core.OpenRecovered(context.Background(), dir, 1, 1)
	if err != nil {
		return nil, err
	}
	_ = rec.WAL.Close()
	return rec, nil
}

// TestRecoverSnapshotOnly: checkpoint, empty WAL, recovery equals the
// checkpointed state exactly.
func TestRecoverSnapshotOnly(t *testing.T) {
	fx := newRecoverFixture(t)
	full := fx.build(t, len(fx.muts))
	dir := t.TempDir()
	if err := core.WriteSnapshotDir(dir, full, 7); err != nil {
		t.Fatal(err)
	}
	rec, err := openRecovered(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 7 || rec.Replayed != 0 || rec.TornTail {
		t.Fatalf("recovered meta %+v", rec)
	}
	fx.assertSameResults(t, "snapshot-only", rec.Index, full)
	if rec.Index.Shards() != full.Shards() || !reflect.DeepEqual(rec.Index.Rebuilds(), full.Rebuilds()) {
		t.Fatalf("shard state differs: %v vs %v", rec.Index.Rebuilds(), full.Rebuilds())
	}
}

// TestRecoverNoSnapshot: an empty directory is ErrNoSnapshot, the
// build-then-checkpoint signal.
func TestRecoverNoSnapshot(t *testing.T) {
	_, err := core.OpenRecovered(context.Background(), t.TempDir(), 1, 1)
	if !errors.Is(err, core.ErrNoSnapshot) {
		t.Fatalf("got %v, want ErrNoSnapshot", err)
	}
}

// TestRecoverWALTruncationEveryByte is the headline property: with the
// checkpoint at mutation 6 and the remaining 12 mutations in the WAL,
// cut the WAL at EVERY byte offset; recovery must restore exactly the
// acknowledged prefix the surviving records describe, bit-identical to
// an in-memory index that applied the same prefix.
func TestRecoverWALTruncationEveryByte(t *testing.T) {
	fx := newRecoverFixture(t)
	const checkpointAt = 6
	base := fx.build(t, checkpointAt)
	wal := buildWAL(t, fx, checkpointAt, 0)

	// Reference states for every achievable prefix, built once.
	refs := make([]*core.DynamicIndex, len(fx.muts)+1)
	for n := checkpointAt; n <= len(fx.muts); n++ {
		refs[n] = fx.build(t, n)
	}

	for cut := 0; cut <= len(wal); cut++ {
		dir := writeDataDir(t, base, 0, wal[:cut])
		rec, err := openRecovered(dir)
		if err != nil {
			// Only a cut inside the 16-byte WAL header may fail (the file
			// is not recognizably a WAL); a zero-byte file reads as fresh.
			if cut == 0 || cut >= 16 {
				t.Fatalf("cut %d: %v", cut, err)
			}
			if !errors.Is(err, snap.ErrTruncated) && !errors.Is(err, snap.ErrBadMagic) {
				t.Fatalf("cut %d: untyped error %v", cut, err)
			}
			continue
		}
		prefix := checkpointAt + rec.Replayed
		fx.assertSameResults(t, "truncated WAL", rec.Index, refs[prefix])
	}
}

// TestRecoverWALBitFlipEveryByte flips one bit at every post-header WAL
// offset: recovery must fail typed or restore a true acknowledged
// prefix — never a silently wrong index.
func TestRecoverWALBitFlipEveryByte(t *testing.T) {
	fx := newRecoverFixture(t)
	const checkpointAt = 6
	base := fx.build(t, checkpointAt)
	wal := buildWAL(t, fx, checkpointAt, 0)
	refs := make([]*core.DynamicIndex, len(fx.muts)+1)
	for n := checkpointAt; n <= len(fx.muts); n++ {
		refs[n] = fx.build(t, n)
	}

	for off := 16; off < len(wal); off++ {
		b := append([]byte(nil), wal...)
		b[off] ^= 0x20
		dir := writeDataDir(t, base, 0, b)
		rec, err := openRecovered(dir)
		if err != nil {
			if !errors.Is(err, snap.ErrChecksum) && !errors.Is(err, snap.ErrTruncated) && !errors.Is(err, snap.ErrBadMagic) {
				t.Fatalf("flip %d: untyped error %v", off, err)
			}
			continue
		}
		prefix := checkpointAt + rec.Replayed
		fx.assertSameResults(t, "flipped WAL", rec.Index, refs[prefix])
	}
}

// TestRecoverSnapshotBitFlipPerSection flips one payload bit in every
// section of the snapshot container: the load must fail with a typed
// error (the CRC gate), never produce an index.
func TestRecoverSnapshotBitFlipPerSection(t *testing.T) {
	fx := newRecoverFixture(t)
	full := fx.build(t, len(fx.muts))
	var buf bytes.Buffer
	if err := full.SaveSnapshot(&buf, 9); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	f, err := snap.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Walk the container layout to find each payload's file offset.
	off := 16
	for _, s := range f.Sections {
		payloadOff := off + 24
		if len(s.Payload) > 0 {
			b := append([]byte(nil), raw...)
			b[payloadOff+len(s.Payload)/2] ^= 0x01
			_, _, err := core.LoadSnapshot(bytes.NewReader(b), 1)
			if err == nil {
				t.Fatalf("section %q: flipped payload loaded successfully", s.Tag)
			}
			if !errors.Is(err, snap.ErrChecksum) && !errors.Is(err, snap.ErrTruncated) {
				t.Fatalf("section %q: untyped error %v", s.Tag, err)
			}
		}
		off = payloadOff + len(s.Payload) + (8-len(s.Payload)%8)%8
	}
}

// TestRecoverCheckpointRace covers the crash window between the
// snapshot rename and the WAL reset: the WAL still holds records the
// checkpoint already covers, and replay must skip exactly those.
func TestRecoverCheckpointRace(t *testing.T) {
	fx := newRecoverFixture(t)
	const checkpointAt = 10
	mid := fx.build(t, checkpointAt)
	// The WAL holds ALL 18 mutations (seq 1..18); the snapshot covers
	// through seq 10. Recovery must apply only records 11..18.
	wal := buildWAL(t, fx, 0, 0)
	dir := writeDataDir(t, mid, checkpointAt, wal)
	rec, err := openRecovered(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != len(fx.muts)-checkpointAt {
		t.Fatalf("replayed %d records, want %d", rec.Replayed, len(fx.muts)-checkpointAt)
	}
	fx.assertSameResults(t, "checkpoint race", rec.Index, fx.build(t, len(fx.muts)))
}

// TestRecoverAfterInjectedTornWrite drives the whole loop the way the
// server does, with faults.SiteWALWrite tearing a deterministic append:
// the unacknowledged mutation must be absent after recovery, everything
// acknowledged must be present.
func TestRecoverAfterInjectedTornWrite(t *testing.T) {
	fx := newRecoverFixture(t)
	const checkpointAt = 6
	live := fx.build(t, checkpointAt)
	dir := t.TempDir()
	if err := core.WriteSnapshotDir(dir, live, 0); err != nil {
		t.Fatal(err)
	}
	w, _, err := snap.OpenWAL(filepath.Join(dir, core.WALFile), fx.initial.Cols, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := faults.NewRegistry(7)
	w.SetFaultHook(reg.Enable(faults.SiteWALWrite, faults.Plan{FailEveryNCalls: 5}))

	// Server loop: append, and only on success apply + acknowledge.
	acked := checkpointAt
	nextID := live.NextID()
	for _, m := range fx.muts[checkpointAt:] {
		var err error
		if m.del {
			_, err = w.Append(snap.WALDelete, int64(m.id), nil)
		} else {
			_, err = w.Append(snap.WALAdd, int64(nextID), m.vec)
		}
		if err != nil {
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatal(err)
			}
			break // crash: mutation never applied, never acknowledged
		}
		if err := fx.apply(live, m); err != nil {
			t.Fatal(err)
		}
		if !m.del {
			nextID++
		}
		acked++
	}
	if acked != checkpointAt+4 {
		t.Fatalf("fault fired after %d acks, want %d", acked-checkpointAt, 4)
	}
	_ = w.Close()

	rec, err := openRecovered(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail {
		t.Fatal("recovery saw no torn tail after the injected torn write")
	}
	if rec.Replayed != acked-checkpointAt {
		t.Fatalf("replayed %d, want %d", rec.Replayed, acked-checkpointAt)
	}
	fx.assertSameResults(t, "torn write", rec.Index, fx.build(t, acked))
}

// TestSaveSnapshotDeterministic: two saves of the same state are
// byte-identical (map iteration must not leak into the file).
func TestSaveSnapshotDeterministic(t *testing.T) {
	fx := newRecoverFixture(t)
	di := fx.build(t, len(fx.muts))
	var a, b bytes.Buffer
	if err := di.SaveSnapshot(&a, 3); err != nil {
		t.Fatal(err)
	}
	if err := di.SaveSnapshot(&b, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same state differ")
	}
}
