package core_test

import (
	"context"
	"math/rand"
	"testing"

	"fexipro/internal/core"
	"fexipro/internal/engine"
	"fexipro/internal/search"
	"fexipro/internal/searchtest"
	"fexipro/internal/vec"
)

func buildShardedVariant(t testing.TB, items *vec.Matrix, variant string, shards int) *engine.Engine {
	t.Helper()
	opts, err := core.OptionsForVariant(variant)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.NewIndex(items, opts)
	if err != nil {
		t.Fatalf("%s: %v", variant, err)
	}
	return engine.New(core.NewSharded(idx, shards), 2)
}

// TestShardedVariantsBitExact is the ISSUE's bit-exactness harness for
// the FEXIPRO variants: S ∈ {2, 3, 7} through the engine must return
// IDs, scores, and tie order identical to S=1, for every technique
// combination, including tie-heavy degenerate instances.
func TestShardedVariantsBitExact(t *testing.T) {
	for _, variant := range allVariants {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			searchtest.CheckSharded(t, func(items *vec.Matrix, shards int) search.ContextSearcher {
				return buildShardedVariant(t, items, variant, shards)
			}, variant)
		})
	}
}

// TestShardedMatchesLegacyRetriever pins the refactor seam: the engine
// path (any shard count) must return results identical to the plain
// single-scan Retriever over the same index — the pre-sharding code
// path that scanRange was extracted from.
func TestShardedMatchesLegacyRetriever(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	items, _ := searchtest.RandomInstance(rng, 350, 20)
	for _, variant := range allVariants {
		opts, err := core.OptionsForVariant(variant)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := core.NewIndex(items, opts)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		legacy := core.NewRetriever(idx)
		for _, shards := range []int{1, 4} {
			eng := engine.New(core.NewSharded(idx, shards), 2)
			for trial := 0; trial < 3; trial++ {
				q := make([]float64, items.Cols)
				for j := range q {
					q[j] = rng.NormFloat64()
				}
				want := legacy.Search(q, 9)
				got := eng.Search(q, 9)
				if len(got) != len(want) {
					t.Fatalf("%s S=%d: %d results, want %d", variant, shards, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s S=%d rank %d: engine %+v, legacy %+v", variant, shards, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardedCancellation: cancelled sharded scans return
// ErrDeadline-flagged partials whose scores are true inner products,
// for every shard count in the harness grid.
func TestShardedCancellation(t *testing.T) {
	searchtest.CheckShardedCancellation(t, func(items *vec.Matrix, shards int) searchtest.FaultSearcher {
		return buildShardedVariant(t, items, "F-SIR", shards)
	}, "core/F-SIR")
}

// TestShardedStatsAggregate: the engine's Stats must be the sum of the
// per-shard stage counters and account for every row exactly once.
func TestShardedStatsAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	items, q := searchtest.RandomInstance(rng, 500, 16)
	eng := buildShardedVariant(t, items, "F-SIR", 5)
	if _, err := eng.SearchContext(context.Background(), q, 10); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if got := st.Scanned + st.PrunedByLength; got != 500 {
		t.Fatalf("Scanned+PrunedByLength = %d, want 500 (every row accounted once)", got)
	}
	if st.FullProducts+st.TotalPruned() != 500 {
		t.Fatalf("FullProducts+TotalPruned = %d, want 500", st.FullProducts+st.TotalPruned())
	}
}
