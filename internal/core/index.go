package core

import (
	"fmt"
	"math"

	"fexipro/internal/svd"
	"fexipro/internal/vec"
)

// Index is a preprocessed FEXIPRO item index (the output of Algorithm 3).
// It is immutable after construction and safe for concurrent Search calls
// through separate Retriever values (see NewRetriever).
type Index struct {
	opts Options
	n, d int
	w    int

	perm  []int     // perm[row] = original item ID (rows sorted by ‖p‖ desc)
	norms []float64 // original ‖p‖ per sorted row

	// Working representation: the SVD-transformed vectors p̄ when
	// opts.SVD, otherwise the (sorted) original vectors.
	bar     *vec.Matrix
	barTail []float64 // ‖p̄^h‖ over coordinates w..d per row
	thin    *svd.Thin // nil unless opts.SVD
	sigma   []float64 // singular values (nil unless opts.SVD)

	ints *intData // nil unless opts.Int
	red  *redData // nil unless opts.Reduction
}

// intData holds the scaled integer approximation of Section 4.2 with the
// separate head/tail scaling of Equation 7. Exactly one of floors
// (int32) or floors16 (compact int16, Options.CompactInts) is populated.
type intData struct {
	e                    float64
	maxHead, maxTail     float64 // max |p̄_s| over s<w resp. s≥w, across all items
	floors               []int32 // n×d floors of the scaled vectors, row-major
	floors16             []int16 // compact alternative to floors
	sumAbsHead           []int64 // Σ_{s<w} |⌊p̂_s⌋| per row
	sumAbsTail           []int64 // Σ_{s≥w} |⌊p̂_s⌋| per row
	headScale, tailScale float64 // maxHead/e, maxTail/e — converts IU to a q̄-space factor
}

// redData holds the monotonicity-reduction preprocessing of Section 5.2.
//
// With c fixed, the reduced product collapses to an affine map of the
// working-space product (the per-item Σ c_s·p̄_s terms cancel between
// 2q́ᵀṕ and ‖ṕ‖²):
//
//	q̂̂ᵀp̂̂ = (2/‖q̄‖)·q̄ᵀp̄ + K_q,   K_q = −b² + Σc_s² + (2/‖q̄‖)·Σc_s·q̄_s
//
// so the threshold map t → t′ (Algorithm 4 line 17) is one affine map per
// query, while the PARTIAL reduced product still needs per-item constants:
//
//	q̂̂^ℓᵀp̂̂^ℓ = (2/‖q̄‖)·v + headConstP[i] + headConstQ
//
// with v the exact partial product over the first w working dimensions.
type redData struct {
	c          []float64 // c_s ≥ max(1,|p̄min|), skewed like σ (Section 5.2)
	b          float64   // max ‖p̄‖
	sumC2      float64   // Σ c_s²
	headConstP []float64 // −‖ṕ‖² + 2Σ_{s<w}(c_s·p̄_s + c_s²) per row
	hhTail     []float64 // ‖p̂̂^h‖ = sqrt(Σ_{s≥w}(p̄_s+c_s)²) per row
}

// NewIndex preprocesses the item matrix (rows are item vectors) per
// Algorithm 3. The input matrix is copied; the caller's data is never
// modified.
func NewIndex(items *vec.Matrix, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if items.Rows == 0 || items.Cols == 0 {
		return nil, fmt.Errorf("core: empty item matrix %d×%d", items.Rows, items.Cols)
	}
	for i, v := range items.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: item matrix contains non-finite value at row %d col %d",
				i/items.Cols, i%items.Cols)
		}
	}
	idx := &Index{opts: opts, n: items.Rows, d: items.Cols}

	// 1. Sort by decreasing original length (Algorithm 3 line 2) —
	// unless the Unsorted ablation keeps the original order.
	sorted := items.Clone()
	if opts.Unsorted {
		idx.perm = make([]int, sorted.Rows)
		for i := range idx.perm {
			idx.perm[i] = i
		}
	} else {
		idx.perm = sorted.SortRowsByNormDesc()
	}
	idx.norms = sorted.RowNorms()

	// 2. Thin SVD (line 3) and the working representation.
	if opts.SVD {
		thin, err := svd.Decompose(sorted, opts.RankTol)
		if err != nil {
			return nil, fmt.Errorf("core: SVD transformation failed: %w", err)
		}
		idx.thin = thin
		idx.sigma = thin.Sigma
		idx.bar = thin.V1
	} else {
		idx.bar = sorted
	}

	// 3. Checking dimension w (line 4).
	idx.w = idx.chooseW()

	// 4. Residual norms for incremental pruning (line 11).
	idx.barTail = make([]float64, idx.n)
	for i := 0; i < idx.n; i++ {
		idx.barTail[i] = vec.NormRange(idx.bar.Row(i), idx.w, idx.d)
	}

	// 5. Integer approximation (line 8).
	if opts.Int {
		compact := opts.CompactInts && opts.E <= 16000
		idx.ints = buildIntData(idx.bar, idx.w, opts.E, opts.GlobalIntScaling, compact)
	}

	// 6. Monotonicity reduction (line 9).
	if opts.Reduction {
		idx.red = buildRedData(idx.bar, idx.w, idx.sigma)
	}
	return idx, nil
}

// chooseW picks the checking dimension: the explicit override, else the
// smallest w whose singular-value mass reaches ρ (Section 3), else d/5.
func (idx *Index) chooseW() int {
	d := idx.d
	if idx.opts.W > 0 {
		if idx.opts.W > d {
			return d
		}
		return idx.opts.W
	}
	if d == 1 {
		return 1
	}
	if idx.sigma != nil {
		var total float64
		for _, s := range idx.sigma {
			total += s
		}
		if total > 0 {
			var acc float64
			for i, s := range idx.sigma {
				acc += s
				if acc >= idx.opts.Rho*total {
					w := i + 1
					if w >= d {
						w = d - 1
					}
					return w
				}
			}
		}
		return d - 1
	}
	w := d / 5
	if w < 1 {
		w = 1
	}
	if w >= d {
		w = d - 1
	}
	return w
}

// buildIntData scales the working vectors per Equation 7 (separate
// head/tail maxima) — or Equation 4 (one global maximum) under the
// GlobalIntScaling ablation — and stores their floors plus the per-row
// Σ|⌊·⌋| terms of the integer bound (Theorem 2).
func buildIntData(bar *vec.Matrix, w int, e float64, globalScaling, compact bool) *intData {
	n, d := bar.Rows, bar.Cols
	id := &intData{
		e:          e,
		sumAbsHead: make([]int64, n),
		sumAbsTail: make([]int64, n),
	}
	if compact {
		id.floors16 = make([]int16, n*d)
	} else {
		id.floors = make([]int32, n*d)
	}
	for i := 0; i < n; i++ {
		row := bar.Row(i)
		if h := vec.AbsMaxRange(row, 0, w); h > id.maxHead {
			id.maxHead = h
		}
		if t := vec.AbsMaxRange(row, w, d); t > id.maxTail {
			id.maxTail = t
		}
	}
	if globalScaling {
		m := math.Max(id.maxHead, id.maxTail)
		id.maxHead, id.maxTail = m, m
	}
	id.headScale = id.maxHead / e
	id.tailScale = id.maxTail / e
	for i := 0; i < n; i++ {
		row := bar.Row(i)
		var sh, st int64
		for s, v := range row {
			var scaled float64
			if s < w {
				if id.maxHead > 0 {
					scaled = e * v / id.maxHead
				}
			} else {
				if id.maxTail > 0 {
					scaled = e * v / id.maxTail
				}
			}
			f := int32(math.Floor(scaled))
			if compact {
				id.floors16[i*d+s] = int16(f)
			} else {
				id.floors[i*d+s] = f
			}
			a := int64(f)
			if a < 0 {
				a = -a
			}
			if s < w {
				sh += a
			} else {
				st += a
			}
		}
		id.sumAbsHead[i] = sh
		id.sumAbsTail[i] = st
	}
	return id
}

// buildRedData computes the Section 5.2 reduction constants over the
// working vectors. sigma may be nil (no SVD); the c skew then defaults
// to a constant shift.
func buildRedData(bar *vec.Matrix, w int, sigma []float64) *redData {
	n, d := bar.Rows, bar.Cols
	rd := &redData{
		c:          make([]float64, d),
		headConstP: make([]float64, n),
		hhTail:     make([]float64, n),
	}

	pmin := vec.Min(bar.Data)
	base := math.Max(1, math.Abs(pmin))
	// c_s = max(1,|p̄min|) + σ_s/σ_d — skewed like the singular values.
	sigmaLast := 0.0
	if sigma != nil {
		for i := len(sigma) - 1; i >= 0; i-- {
			if sigma[i] > 0 {
				sigmaLast = sigma[i]
				break
			}
		}
	}
	for s := 0; s < d; s++ {
		ratio := 1.0
		if sigma != nil && sigmaLast > 0 {
			ratio = sigma[s] / sigmaLast
		}
		rd.c[s] = base + ratio
		rd.sumC2 += rd.c[s] * rd.c[s]
	}

	// b = max ‖p̄‖ (the rows are sorted by ORIGINAL norm, which differs
	// from the working norm under SVD, so take the true maximum).
	for i := 0; i < n; i++ {
		if nb := vec.Norm(bar.Row(i)); nb > rd.b {
			rd.b = nb
		}
	}

	for i := 0; i < n; i++ {
		row := bar.Row(i)
		// ‖ṕ‖² = (b²−‖p̄‖²) + Σ(p̄_s+c_s)² = b² + 2Σc_s·p̄_s + Σc_s².
		var sumCP, headCP, headC2, tailSq float64
		for s, v := range row {
			sumCP += rd.c[s] * v
			if s < w {
				headCP += rd.c[s] * v
				headC2 += rd.c[s] * rd.c[s]
			} else {
				t := v + rd.c[s]
				tailSq += t * t
			}
		}
		pAcuteSq := rd.b*rd.b + 2*sumCP + rd.sumC2
		rd.headConstP[i] = -pAcuteSq + 2*(headCP+headC2)
		rd.hhTail[i] = math.Sqrt(tailSq)
	}
	return rd
}

// W returns the checking dimension chosen during preprocessing.
func (idx *Index) W() int { return idx.w }

// Dim returns the item dimensionality d.
func (idx *Index) Dim() int { return idx.d }

// Len returns the number of indexed items.
func (idx *Index) Len() int { return idx.n }

// Options returns the (defaulted) options the index was built with.
func (idx *Index) Options() Options { return idx.opts }

// SingularValues returns the singular values of the item matrix, or nil
// when the SVD transformation is disabled. The slice must not be
// modified.
func (idx *Index) SingularValues() []float64 { return idx.sigma }
